#!/usr/bin/env python3
"""Cluster simulation: steady-state ingest+transcode plus client latency.

Part 1 replays the paper's macrobenchmark (Fig 11c-f): continuous ingest
with files advancing through EC(5,8) -> EC(10,13) -> EC(20,23), on the
baseline (3-r + RRW) and on Morph (Hy(1,CC) + native transcode), and
prints the disk/capacity/CPU ledger.

Part 2 runs the event-driven client-latency experiments (Figs 3/13/14):
write and read percentiles for 3-r, hybrid, and RS(6,9) under load, plus
degraded-mode reads with 10% of the cluster down.

Run:  python examples/cluster_lifetime_sim.py
"""

from repro.bench import experiments as E
from repro.bench.reporting import print_table

MB = 1024 * 1024


def macro():
    r = E.fig11_macro(n_files=20)
    base, morph = r["baseline"], r["morph"]
    rows = [
        ("disk IO total (MB)", base["disk_total"] / MB, morph["disk_total"] / MB),
        ("network total (MB)", base["network_total"] / MB, morph["network_total"] / MB),
        ("capacity at rest (MB)", base["capacity_final"] / MB, morph["capacity_final"] / MB),
        ("client CPU (s)", base["client_cpu_s"], morph["client_cpu_s"]),
        ("datanode CPU (s)", base["datanode_cpu_s"], morph["datanode_cpu_s"]),
        ("peak node memory (MB)", base["peak_memory"] / MB, morph["peak_memory"] / MB),
        ("IO-bound completion (s)", base["completion_s"], morph["completion_s"]),
    ]
    print_table("Macrobenchmark: ingest + lifetime transitions (Fig 11c-f)",
                ["metric", "baseline", "morph"], rows)
    print(f"\ndisk IO reduction: {r['disk_reduction']:.1%}  "
          f"capacity overhead reduction: {r['capacity_overhead_reduction']:.1%}  "
          f"speedup: {r['speedup']:.2f}x")


def latency():
    writes = E.fig13_write_latency(ops=60)
    rows = [(name, v["p50_ms"], v["p90_ms"]) for name, v in writes.items()]
    print_table("8 MB write latency (Fig 13a; paper: hybrid ~ 3-r, RS ~6x)",
                ["scheme", "p50 (ms)", "p90 (ms)"], rows)

    reads = E.fig14_read_latency(loads=(12, 40), ops=60)
    for load, by_scheme in reads.items():
        rows = [(name, v["p50_ms"], v["p90_ms"]) for name, v in by_scheme.items()]
        print_table(f"8 MB read latency at t={load} threads (Fig 14)",
                    ["scheme", "p50 (ms)", "p90 (ms)"], rows)

    degraded = E.fig14_degraded(ops=60)
    rows = [(name, v["p50_ms"], v["p90_ms"]) for name, v in degraded.items()]
    print_table("8 MB reads with 10% of nodes down (Fig 14d)",
                ["scheme", "p50 (ms)", "p90 (ms)"], rows)


if __name__ == "__main__":
    macro()
    latency()
