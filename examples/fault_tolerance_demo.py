#!/usr/bin/env python3
"""Fault tolerance walkthrough: failures, corruption, and self-healing.

Demonstrates §4.4 and §6.1 end to end on MorphFS:

1. a Hy(1, CC(6,9)) file survives replica loss, data-chunk loss, parity
   loss, and their combination (c + (n-k) = 4 simultaneous failures);
2. silent corruption is caught by verify-on-read and by the scrubber;
3. the heartbeat monitor distinguishes transient blips from real deaths
   and reconstructs only when a node is declared dead;
4. every repair is metered — the demo prints what each recovery cost.

Run:  python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.dfs.integrity import Scrubber, corrupt_chunk
from repro.dfs.recovery import RecoveryManager

KB = 1024


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


def main():
    fs = MorphFS(chunk_size=16 * KB, future_widths=[6, 12])
    rng = np.random.default_rng(11)
    data = rng.integers(0, 256, 384 * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
    meta = fs.namenode.lookup("f")

    # --- 1. maximum simultaneous failures -------------------------------
    stripe = meta.stripes[0]
    block = meta.hybrid_blocks()[0].replicas[0]
    victims = [block.copies[0].node_id] + [c.node_id for c in stripe.all_chunks()[:3]]
    for v in victims:
        kill(fs, v)
    ok = np.array_equal(fs.read_file("f"), data)
    print(f"1. {len(victims)} simultaneous chunk failures (replica + 3 stripe "
          f"chunks): read still correct = {ok}")
    rows = []
    before = fs.metrics.summary()
    count = RecoveryManager(fs).recover_all()
    after = fs.metrics.summary()
    rows.append((f"rebuild {count} chunks",
                 (after["disk_read"] - before["disk_read"]) / KB,
                 (after["disk_write"] - before["disk_write"]) / KB,
                 (after["network"] - before["network"]) / KB))
    for v in victims:
        fs.cluster.recover_node(v)
        fs.datanodes[v].recover()

    # --- 2. silent corruption ---------------------------------------------
    corrupt_chunk(fs, meta.stripes[1].data[0])
    corrupt_chunk(fs, meta.stripes[2].parities[1])
    before = fs.metrics.summary()
    report = Scrubber(fs).scan_and_repair()
    after = fs.metrics.summary()
    print(f"2. scrubber: scanned {report.chunks_scanned} chunks, found "
          f"{len(report.corrupt)} corrupt, repaired {report.repaired}")
    rows.append(("scrub + repair",
                 (after["disk_read"] - before["disk_read"]) / KB,
                 (after["disk_write"] - before["disk_write"]) / KB,
                 (after["network"] - before["network"]) / KB))

    # --- 3. heartbeats: blip vs death ------------------------------------
    monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=3))
    blip = meta.stripes[0].data[1].node_id
    kill(fs, blip)
    monitor.tick(); monitor.tick()
    fs.cluster.recover_node(blip); fs.datanodes[blip].recover()
    r = monitor.tick()
    print(f"3. transient 2-beat blip of {blip}: declared dead = "
          f"{blip in monitor.declared_dead()}, chunks rebuilt = {r.chunks_recovered}")
    dead = meta.stripes[0].data[2].node_id
    kill(fs, dead)
    reports = monitor.run_ticks(3)
    rebuilt = sum(x.chunks_recovered for x in reports)
    print(f"   sustained failure of {dead}: declared dead = "
          f"{dead in monitor.declared_dead()}, chunks rebuilt = {rebuilt}")

    print_table("Repair IO ledger", ["operation", "read KB", "write KB", "net KB"], rows)
    assert np.array_equal(fs.read_file("f"), data)
    print("\nFinal read-back: byte-identical. The file never lost a byte.")


if __name__ == "__main__":
    main()
