#!/usr/bin/env python3
"""Convertible Codes deep dive: every conversion regime, byte-verified.

Walks through the paper's §5 / Appendix A machinery at the codes layer:

1. merge (Fig 7): 2x CC(6,9) -> CC(12,15), parities only;
2. split (Fig 16): CC(12,14) -> 3x CC(4,6), 10 reads instead of 12;
3. general: 5x CC(6,9) -> 2x CC(15,18), 40% fewer reads;
4. bandwidth-optimal vector codes (Fig 8): CC(4,5) -> CC(8,10) with
   piggybacked pre-computation, 25% fewer bytes read;
5. CC -> LRCC (the warm -> cool transition): first parities become local
   parities verbatim;
6. the §5.2 parameter advisor steering EC(6,9) -> EC(27,30) to a
   CC-friendly alternative.

Every conversion is checked byte-for-byte against a from-scratch encode.

Run:  python examples/transcode_deep_dive.py
"""

import numpy as np

from repro.codes import (
    BandwidthOptimalCC,
    ConvertibleCode,
    LocallyRecoverableConvertibleCode,
)
from repro.codes.base import chunks_equal
from repro.codes.convertible import convert, plan_conversion
from repro.codes.lrcc import convert_cc_to_lrcc
from repro.core.advisor import SchemeAdvisor

rng = np.random.default_rng(7)


def stripes_of(code, count, chunk_len=64):
    stripes, alldata = [], []
    for _ in range(count):
        data = [rng.integers(0, 256, chunk_len, dtype=np.uint8) for _ in range(code.k)]
        alldata.extend(data)
        stripes.append(code.encode_stripe(data))
    return stripes, alldata


def show(title, io, rs_reads):
    print(f"{title}")
    print(f"  reads: {io.chunks_read:g} chunk-equivalents (RS would read {rs_reads})"
          f" -> {1 - io.chunks_read / rs_reads:.0%} less")


def main():
    # 1. Merge.
    cc6, cc12 = ConvertibleCode(6, 9), ConvertibleCode(12, 15)
    stripes, alldata = stripes_of(cc6, 2)
    out, io = convert(cc6, cc12, stripes)
    assert chunks_equal(out[0].chunks, cc12.encode_stripe(alldata).chunks)
    show("1. merge 2x CC(6,9) -> CC(12,15) [Fig 7]", io, 12)

    # 2. Split.
    cc12b, cc4 = ConvertibleCode(12, 14), ConvertibleCode(4, 6)
    stripes, alldata = stripes_of(cc12b, 1)
    out, io = convert(cc12b, cc4, stripes)
    for m in range(3):
        assert chunks_equal(out[m].chunks,
                            cc4.encode_stripe(alldata[m * 4 : (m + 1) * 4]).chunks)
    show("2. split CC(12,14) -> 3x CC(4,6) [Fig 16]", io, 12)

    # 3. General regime.
    cc15 = ConvertibleCode(15, 18)
    stripes, alldata = stripes_of(cc6, 5)
    plan = plan_conversion(cc6, cc15, 5)
    out, io = convert(cc6, cc15, stripes, plan)
    for m in range(2):
        assert chunks_equal(out[m].chunks,
                            cc15.encode_stripe(alldata[m * 15 : (m + 1) * 15]).chunks)
    show("3. general 5x CC(6,9) -> 2x CC(15,18)", io, 30)

    # 4. Bandwidth-optimal vector codes.
    bwo = BandwidthOptimalCC(4, 1, 2, family_width=8)
    final = ConvertibleCode(8, 10, family_width=8)
    stripes, alldata = stripes_of(bwo, 2)
    merged, io = bwo.convert_merge(stripes, final)
    assert chunks_equal(merged.chunks, final.encode_stripe(alldata).chunks)
    show("4. BWO-CC merge CC(4,5) -> CC(8,10) [Fig 8, piggybacked]", io, 8)

    # 5. CC -> LRCC.
    lrcc = LocallyRecoverableConvertibleCode(24, 4, 2)
    stripes, alldata = stripes_of(cc6, 4)
    merged, io = convert_cc_to_lrcc(cc6, lrcc, stripes)
    assert chunks_equal(merged.chunks, lrcc.encode_stripe(alldata).chunks)
    for g in range(4):
        assert np.array_equal(merged.chunks[24 + g], stripes[g].chunks[6])
    show("5. 4x CC(6,9) -> LRCC(24,4,2): first parities become locals", io, 24)

    # 6. Parameter advice.
    advisor = SchemeAdvisor()
    best = advisor.suggest(6, 3, 27, 3)
    improvement = advisor.improvement_over_request(6, 3, 27, 3)
    print(f"6. advisor: EC(6,9) -> EC(27,30) requested; suggests "
          f"EC({best.k},{best.n}) — {improvement:.0%} cheaper transcode, "
          f"overhead {best.storage_overhead:.3f} vs {30/27:.3f} [§5.2]")


if __name__ == "__main__":
    main()
