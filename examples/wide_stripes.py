#!/usr/bin/env python3
"""Wide stripes: late-life economics and the GF(2^16) field.

Late-life data lives in very wide stripes (the paper cites 80- and even
150-wide deployments) because storage overhead shrinks as 1 + r/k. This
demo walks the width ladder:

1. the overhead / durability / repair-cost trade as stripes widen;
2. why GF(2^8) cannot host wide *convertible* codes (verified MDS point
   families run out) and how GF(2^16) fixes it;
3. the paper's own wide example — merging two EC(17,20) stripes into
   EC(34,37) — executed functionally with >80% read savings;
4. wide LRCC: local repair keeps wide stripes operable.

Run:  python examples/wide_stripes.py
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.codes.pointsearch import MAX_FEASIBLE_WIDTH
from repro.codes.wide import MAX_WIDTH_16, WideConvertibleCode
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.core.durability import FailureEnvironment, annual_loss_probability, nines
from repro.core.schemes import CodeKind, ECScheme


def width_ladder():
    env = FailureEnvironment()
    rows = []
    for (k, n) in [(6, 9), (12, 15), (24, 27), (48, 52), (72, 80)]:
        if n - k <= 3:
            scheme = ECScheme(CodeKind.RS, k, n)
        else:
            scheme = ECScheme(CodeKind.LRC, k, n, local_groups=n - k - 2, r_global=2)
        p = annual_loss_probability(scheme, env, groups=100_000)
        rows.append((
            str(scheme),
            f"{scheme.storage_overhead:.3f}x",
            scheme.fault_tolerance,
            k,  # chunks read for a plain RS repair
            f"{nines(p):.1f}",
        ))
    print_table(
        "The width ladder: overhead falls, repair widens",
        ["scheme", "overhead", "tolerates", "RS repair reads", "nines (100k groups)"],
        rows,
    )


def field_ceilings():
    rows = []
    for r in (2, 3, 4, 5):
        rows.append((r, MAX_FEASIBLE_WIDTH[r], MAX_WIDTH_16[r]))
    print_table(
        "Verified convertible-family width ceilings (MDS-safe points)",
        ["parities r", "GF(2^8) max width", "GF(2^16) max width"],
        rows,
    )


def paper_wide_merge():
    rng = np.random.default_rng(5)
    small = WideConvertibleCode(17, 20, family_width=34)
    big = WideConvertibleCode(34, 37, family_width=34)
    parities, alldata = [], []
    for _ in range(2):
        data = [rng.integers(0, 256, 32 * 1024, dtype=np.uint8) for _ in range(17)]
        alldata.extend(data)
        parities.append(small.encode(data))
    merged = big_parities = small.merge_parities(big, parities)
    direct = big.encode(alldata)
    assert all(np.array_equal(a, b) for a, b in zip(merged, direct))
    print("\nEC(17,20) x2 -> EC(34,37) over GF(2^16): byte-identical to a "
          "direct encode;")
    print(f"reads 6 parity chunks instead of 34 data chunks "
          f"({1 - 6 / 34:.0%} less — paper: 'saves > 80% of bandwidth').")


def wide_lrcc_repair():
    code = LocallyRecoverableConvertibleCode(72, 6, 2)
    rng = np.random.default_rng(6)
    data = [rng.integers(0, 256, 4096, dtype=np.uint8) for _ in range(72)]
    stripe = code.encode_stripe(data)
    failed = 40
    peers = [m for m in code.group_members(code.group_of(failed)) if m != failed]
    repaired = code.local_repair(
        failed, {m: stripe.chunks[m] for m in peers}
    )
    assert np.array_equal(repaired, stripe.chunks[failed])
    print(f"\nLRCC(72,6,2): repairing chunk {failed} read {len(peers)} group "
          f"chunks instead of 72 — locality is what makes wide stripes "
          f"operable (paper §2).")


if __name__ == "__main__":
    width_ladder()
    field_ceilings()
    paper_wide_merge()
    wide_lrcc_repair()
