#!/usr/bin/env python3
"""Quickstart: a file's whole life under Morph, next to the baseline.

Creates one 8 MB file on both systems, walks it through the paper's
microbenchmark lifetime (hot -> warm -> cool), and prints the IO and
capacity ledger side by side — the Fig 11a/b comparison in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS

MB = 1024 * 1024


def main():
    rng = np.random.default_rng(42)
    data = rng.integers(0, 256, 8 * MB, dtype=np.uint8)

    # --- Baseline HDFS: 3-way replication, then RRW transcodes ----------
    baseline = BaselineDFS(chunk_size=64 * 1024)
    baseline.write_file("video.mp4", data, Replication(3))
    baseline.transcode("video.mp4", ECScheme(CodeKind.RS, 6, 9))
    baseline.transcode("video.mp4", ECScheme(CodeKind.RS, 12, 15))
    baseline_ledger = dict(baseline.metrics.summary(), capacity=baseline.capacity_used())
    assert np.array_equal(baseline.read_file("video.mp4"), data)

    # --- Morph: hybrid ingest, free first transition, CC merge ----------
    cc69 = ECScheme(CodeKind.CC, 6, 9)
    morph = MorphFS(chunk_size=64 * 1024, future_widths=[6, 12])
    morph.write_file("video.mp4", data, HybridScheme(1, cc69))
    morph.transcode("video.mp4", cc69)              # delete replica: FREE
    morph.transcode("video.mp4", ECScheme(CodeKind.CC, 12, 15))  # parity merge
    morph_ledger = dict(morph.metrics.summary(), capacity=morph.capacity_used())
    assert np.array_equal(morph.read_file("video.mp4"), data)

    b, m = baseline_ledger, morph_ledger
    rows = [
        ("disk read (MB)", b["disk_read"] / MB, m["disk_read"] / MB),
        ("disk write (MB)", b["disk_write"] / MB, m["disk_write"] / MB),
        ("network (MB)", b["network"] / MB, m["network"] / MB),
        ("capacity at rest (MB)", b["capacity"] / MB, m["capacity"] / MB),
        ("IO amplification (x)",
         (b["disk_total"] + b["network"]) / len(data),
         (m["disk_total"] + m["network"]) / len(data)),
    ]
    print_table("8 MB file, full lifetime (3-r -> EC(6,9) -> EC(12,15))",
                ["metric", "baseline HDFS", "Morph"], rows)
    disk_cut = 1 - m["disk_total"] / b["disk_total"]
    net_cut = 1 - m["network"] / b["network"]
    print(f"\nMorph: {disk_cut:.0%} less disk IO, {net_cut:.0%} less network IO"
          f" (paper Fig 11: 58% / 55%).")


if __name__ == "__main__":
    main()
