#!/usr/bin/env python3
"""Production-trace analysis: what Morph saves two Google-scale services.

Generates month-long synthetic hourly traces calibrated to the paper's
Services A and B (Figs 1 and 12), costs every lifetime transition under
the baseline (3-r ingest + RRW) and under Morph (hybrid ingest + CC/LRCC
native transcode), and prints the reductions the paper headlines.

Run:  python examples/service_trace_analysis.py
"""

import numpy as np

from repro.bench.reporting import print_table, series_summary
from repro.traces import compare_systems, service_a, service_b


def main():
    hours = 24 * 30
    rows = []
    for svc in (service_a(), service_b()):
        comp = compare_systems(svc, hours=hours)
        rows.append((
            svc.name,
            comp.baseline.mean_total(),
            comp.morph.mean_total(),
            f"{comp.total_reduction:.1%}",
            f"{comp.transcode_reduction:.1%}",
            f"{comp.ingest_reduction:.1%}",
        ))
        # Per-flow breakdown for the service.
        flow_rows = [
            (label, float(np.mean(series)))
            for label, series in comp.baseline.transcode_io.items()
        ]
        flow_rows += [
            (f"[morph] {label}", float(np.mean(series)))
            for label, series in comp.morph.transcode_io.items()
        ]
        print_table(
            f"{svc.name}: mean transcode IO by lifetime transition (PB/h)",
            ["transition", "mean PB/h"], flow_rows,
        )
    print_table(
        "Month-long totals (paper Fig 12: A -43%, B -51%; transcode -95%/-100%)",
        ["service", "baseline PB/h", "morph PB/h", "total cut", "transcode cut", "ingest cut"],
        rows,
    )
    # Hour-by-hour shape, like the Fig 1 time series.
    comp_a = compare_systems(service_a(), hours=24 * 7)
    for name, series in [
        ("baseline total", comp_a.baseline.total_io),
        ("morph total", comp_a.morph.total_io),
        ("baseline transcode", comp_a.baseline.transcode_total),
        ("morph transcode", comp_a.morph.transcode_total),
    ]:
        s = series_summary(name, series)
        print(f"{name:>20}: mean {s['mean']:.2f} PB/h  (p10 {s['p10']:.2f}, p90 {s['p90']:.2f})")


if __name__ == "__main__":
    main()
