# Convenience targets for the Morph reproduction.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test bench bench-suite profile figures examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m repro bench

bench-suite:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

profile:
	$(PYTHON) -m repro profile

figures:
	$(PYTHON) -m repro all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/transcode_deep_dive.py
	$(PYTHON) examples/service_trace_analysis.py
	$(PYTHON) examples/fault_tolerance_demo.py
	$(PYTHON) examples/cluster_lifetime_sim.py

all: test bench-suite

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks *.egg-info src/*.egg-info
