"""System block metadata (paper §6.1).

A file is a list of blocks. A *hybrid block* is a single metadata entity
nesting one EC stripe and its replica blocks — keeping it one entity is
what makes the hybrid -> EC transition a pure metadata change (drop the
replica list) and simplifies recovery lookups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.schemes import RedundancyScheme


class ChunkKind(enum.Enum):
    DATA = "data"
    PARITY = "parity"
    LOCAL_PARITY = "local_parity"
    GLOBAL_PARITY = "global_parity"
    REPLICA = "replica"


class FileState(enum.Enum):
    HEALTHY = "healthy"
    TRANSCODING = "transcoding"


@dataclass
class ChunkMeta:
    """One stored chunk: where it lives and what role it plays."""

    chunk_id: str
    node_id: str
    kind: ChunkKind
    size: int

    def __hash__(self):
        return hash(self.chunk_id)


@dataclass
class ECStripeMeta:
    """One EC stripe: k data chunks + parity chunks, in stripe order."""

    stripe_index: int
    k: int
    n: int
    data: List[ChunkMeta] = field(default_factory=list)
    parities: List[ChunkMeta] = field(default_factory=list)

    @property
    def r(self) -> int:
        return self.n - self.k

    def all_chunks(self) -> List[ChunkMeta]:
        return self.data + self.parities

    def node_ids(self) -> List[str]:
        return [c.node_id for c in self.all_chunks()]


@dataclass
class ReplicaBlockMeta:
    """One replicated block: identical copies of a span of file data."""

    block_index: int
    #: first data-chunk index the block covers, and how many chunks
    first_chunk: int
    n_chunks: int
    copies: List[ChunkMeta] = field(default_factory=list)


@dataclass
class HybridBlockMeta:
    """Hybrid block: an EC stripe joined to its replica blocks (§6.1)."""

    stripe: ECStripeMeta
    replicas: List[ReplicaBlockMeta] = field(default_factory=list)


@dataclass
class FileMeta:
    """Namespace entry: scheme, layout and transcode state of one file."""

    name: str
    size: int
    chunk_size: int
    scheme: RedundancyScheme
    #: EC stripes in file order (empty for pure replication)
    stripes: List[ECStripeMeta] = field(default_factory=list)
    #: replica blocks in file order (empty for pure EC)
    replica_blocks: List[ReplicaBlockMeta] = field(default_factory=list)
    state: FileState = FileState.HEALTHY
    #: monotonically bumped on each completed transcode (metadata epoch)
    version: int = 0

    @property
    def is_hybrid(self) -> bool:
        return bool(self.stripes) and bool(self.replica_blocks)

    @property
    def n_data_chunks(self) -> int:
        if self.stripes:
            return sum(s.k for s in self.stripes)
        return sum(b.n_chunks for b in self.replica_blocks)

    def hybrid_blocks(self) -> List[HybridBlockMeta]:
        """Nested hybrid view: each stripe with the replicas covering it."""
        out = []
        for stripe in self.stripes:
            first = stripe.stripe_index * stripe.k
            last = first + stripe.k
            covering = [
                b
                for b in self.replica_blocks
                if b.first_chunk < last and b.first_chunk + b.n_chunks > first
            ]
            out.append(HybridBlockMeta(stripe=stripe, replicas=covering))
        return out

    def chunk_by_id(self, chunk_id: str) -> Optional[ChunkMeta]:
        for stripe in self.stripes:
            for chunk in stripe.all_chunks():
                if chunk.chunk_id == chunk_id:
                    return chunk
        for block in self.replica_blocks:
            for chunk in block.copies:
                if chunk.chunk_id == chunk_id:
                    return chunk
        return None

    def all_chunks(self) -> List[ChunkMeta]:
        out: List[ChunkMeta] = []
        for stripe in self.stripes:
            out.extend(stripe.all_chunks())
        for block in self.replica_blocks:
            out.extend(block.copies)
        return out
