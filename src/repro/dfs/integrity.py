"""Chunk integrity: checksums, corruption detection, scrubbing (§6.1).

HDFS-style block integrity: every stored chunk carries a CRC32 computed
at write time. Reads verify lazily; a background *scrubber* sweeps
datanodes on its own schedule. A checksum mismatch is treated exactly
like a missing chunk — the Namenode bundles the block's metadata and
hands reconstruction to :class:`repro.dfs.recovery.RecoveryManager`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dfs.blocks import ChunkMeta


def chunk_checksum(data: np.ndarray) -> int:
    """CRC32 of a chunk's bytes (what HDFS stores per block)."""
    return zlib.crc32(np.ascontiguousarray(data, dtype=np.uint8).tobytes())


class ChecksumRegistry:
    """Write-time checksums, keyed by chunk id.

    Lives beside the Namenode metadata (in HDFS, checksums live in .meta
    files next to the blocks; a central registry is equivalent for the
    simulator and keeps verification independent of the possibly-corrupt
    datanode).
    """

    def __init__(self):
        self._sums: Dict[str, int] = {}

    def record(self, chunk_id: str, data: np.ndarray) -> None:
        self._sums[chunk_id] = chunk_checksum(data)

    def forget(self, chunk_id: str) -> None:
        self._sums.pop(chunk_id, None)

    def expected(self, chunk_id: str) -> Optional[int]:
        return self._sums.get(chunk_id)

    def verify(self, chunk_id: str, data: np.ndarray) -> bool:
        expected = self._sums.get(chunk_id)
        if expected is None:
            return True  # nothing recorded: cannot dispute
        return chunk_checksum(data) == expected

    def __len__(self) -> int:
        return len(self._sums)


@dataclass
class ScrubReport:
    """Outcome of one scrub sweep."""

    chunks_scanned: int = 0
    corrupt: List[Tuple[str, str]] = field(default_factory=list)  # (file, chunk_id)
    repaired: int = 0


class Scrubber:
    """Background integrity sweeper + corruption repair driver.

    ``scan()`` verifies every on-disk chunk against the registry and
    quarantines mismatches (deletes the bad copy so it reads as missing);
    ``scan_and_repair()`` additionally reconstructs them through the
    normal recovery path — corrupt and missing chunks share one pipeline,
    as in the paper.
    """

    def __init__(self, fs):
        self.fs = fs

    def _iter_chunks(self):
        for meta in self.fs.namenode.files.values():
            for chunk in meta.all_chunks():
                yield meta, chunk

    def scan(self) -> ScrubReport:
        with self.fs.obs.span("scrub"):
            return self._scan_impl()

    def _scan_impl(self) -> ScrubReport:
        report = ScrubReport()
        registry = self.fs.checksums
        for meta, chunk in self._iter_chunks():
            datanode = self.fs.datanodes[chunk.node_id]
            if not datanode.is_alive or not datanode.chunk_on_disk(chunk.chunk_id):
                continue
            report.chunks_scanned += 1
            data = datanode.read(chunk.chunk_id, at=self.fs.clock)
            if not registry.verify(chunk.chunk_id, data):
                report.corrupt.append((meta.name, chunk.chunk_id))
                datanode.delete(chunk.chunk_id, at=self.fs.clock)  # quarantine
        return report

    def scan_and_repair(self) -> ScrubReport:
        from repro.dfs.recovery import RecoveryManager

        report = self.scan()
        if not report.corrupt:
            return report
        recovery = RecoveryManager(self.fs)
        corrupt_ids = {chunk_id for _f, chunk_id in report.corrupt}
        pairs = [
            (meta, chunk)
            for meta in list(self.fs.namenode.files.values())
            for chunk in meta.all_chunks()
            if chunk.chunk_id in corrupt_ids
        ]
        # One batched pass: corrupt chunks of a stripe decode together.
        report.repaired = recovery.recover_chunks(pairs)
        return report


def corrupt_chunk(fs, chunk: ChunkMeta, flip_byte: int = 0) -> None:
    """Test helper: silently flip one byte of a stored chunk on disk."""
    datanode = fs.datanodes[chunk.node_id]
    data = datanode._disk.get(chunk.chunk_id)
    if data is None:
        raise KeyError(f"{chunk.chunk_id} not on disk at {chunk.node_id}")
    data = data.copy()
    data[flip_byte % len(data)] ^= 0xFF
    datanode._disk[chunk.chunk_id] = data
