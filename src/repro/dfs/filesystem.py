"""MorphFS and BaselineDFS: the two DFS personalities (§3, §6).

Both share Namenode/Datanode/placement machinery; they differ only in
policy:

=================  ==========================  ============================
                   BaselineDFS                 MorphFS
=================  ==========================  ============================
ingest             3-way replication or RS     hybrid Hy(c, EC) (§4.2)
codes              RS / LRC                    CC / LRCC
placement          per-stripe random           k*-window + parity co-location
transcode          client RRW                  native (ATQ/UTM, CC merges)
=================  ==========================  ============================
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.metrics import IOMetrics
from repro.obs import NOOP_OBS, Observability
from repro.cluster.placement import DefaultPlacement, TranscodeAwarePlacement
from repro.cluster.topology import Cluster
from repro.codes.convertible import ConvertibleCode
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.core.planner import TranscodeKind, TranscodePlanner
from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    RedundancyScheme,
    Replication,
)
from repro.dfs.blocks import (
    ChunkKind,
    ChunkMeta,
    ECStripeMeta,
    FileMeta,
    ReplicaBlockMeta,
)
from repro.dfs.appends import AppendSupport
from repro.dfs.client import ClientReader
from repro.dfs.namenode import ConversionGroup, Namenode
from repro.dfs.transcoder import NativeTranscoder, RRWTranscoder, TranscodeError
from repro.sched.scheduler import MaintenanceScheduler

MB = 1024 * 1024
CLIENT = "client"


class _BaseDFS:
    """Shared substrate: datanodes, namespace, reads, deletes, codecs."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        chunk_size: int = 64 * 1024,
        replication_block_chunks: int = 8,
        seed: int = 0,
        obs: Optional[Observability] = None,
        namenode: Optional[Namenode] = None,
    ):
        from repro.dfs.datanode import Datanode

        self.cluster = cluster or Cluster()
        self.chunk_size = chunk_size
        self.replication_block_chunks = replication_block_chunks
        self.metrics = IOMetrics()
        self.datanodes: Dict[str, Datanode] = {
            node.node_id: Datanode(
                node.node_id, self.metrics, self.cluster.spec.buffer_cache_bytes
            )
            for node in self.cluster.nodes
        }
        from repro.dfs.integrity import ChecksumRegistry

        #: pluggable control plane: a plain in-memory Namenode by
        #: default; callers can inject a JournaledNamenode (durable) or
        #: a ShardedNamenode (hash-partitioned namespace) — the facade
        #: speaks the same API.
        self.namenode = namenode if namenode is not None else Namenode()
        self.checksums = ChecksumRegistry()
        self.planner = TranscodePlanner()
        #: network partition mask (inactive by default): heartbeats and
        #: the read/repair transfer paths consult it, so a split cluster
        #: behaves like one — minority-side chunks are unreachable until
        #: the partition heals.
        from repro.cluster.partition import NetworkPartition

        self.partition = NetworkPartition()
        #: hedged degraded reads: when a chunk's home node carries a disk
        #: multiplier at or above this threshold (a known straggler), the
        #: reader skips it and serves the chunk from a replica or a
        #: degraded decode instead of waiting out the slow disk.
        #: ``None`` disables hedging.
        self.hedge_slow_disk_multiplier: Optional[float] = None
        #: node class (tier) preferred for new placements — e.g. "ssd"
        #: on a heterogeneous cluster; None = no preference. Flows into
        #: every placement policy this filesystem constructs.
        self.placement_prefer_class: Optional[str] = None
        self.reader = ClientReader(self)
        #: unified background-maintenance control plane: repairs,
        #: transcode work and scrubs all flow through here
        self.scheduler = MaintenanceScheduler(self)
        self.clock = 0.0
        self.seed = seed
        #: observability sink — the default no-op sink never records, so
        #: instrumented hot paths cost nothing when tracing is off
        self.obs = obs or NOOP_OBS
        if self.obs.enabled:
            self.obs.attach_filesystem(self)
        self._cc_cache: Dict[Tuple[int, int], ConvertibleCode] = {}
        self._lrcc_cache: Dict[Tuple[int, int, int], LocallyRecoverableConvertibleCode] = {}
        self._codec_cache: Dict[ECScheme, object] = {}

    # -- codecs ---------------------------------------------------------------
    def codec_for(self, ec: ECScheme):
        if ec not in self._codec_cache:
            self._codec_cache[ec] = ec.make_code()
        return self._codec_cache[ec]

    def cc_codec(self, k: int, n: int) -> ConvertibleCode:
        key = (k, n)
        if key not in self._cc_cache:
            self._cc_cache[key] = ConvertibleCode(k, n)
        return self._cc_cache[key]

    def lrcc_codec(self, k: int, l: int, r_global: int) -> LocallyRecoverableConvertibleCode:
        key = (k, l, r_global)
        if key not in self._lrcc_cache:
            self._lrcc_cache[key] = LocallyRecoverableConvertibleCode(k, l, r_global)
        return self._lrcc_cache[key]

    def codec_for_stripe(self, meta: FileMeta, stripe: ECStripeMeta):
        """Codec matching a stripe's actual (possibly tail-short) width."""
        scheme = meta.scheme
        ec = scheme.ec if isinstance(scheme, HybridScheme) else scheme
        if not isinstance(ec, ECScheme):
            raise ValueError(f"{meta.name} has no EC component")
        if ec.kind in (CodeKind.LRC, CodeKind.LRCC) and stripe.k == ec.k:
            return self.codec_for(ec)
        if stripe.k == ec.k and stripe.n == ec.n:
            return self.codec_for(ec)
        # Tail stripe with its own width; same family, same parity count.
        if ec.kind is CodeKind.CC:
            return self.cc_codec(stripe.k, stripe.n)
        from repro.codes.rs import ReedSolomon

        return ReedSolomon(stripe.k, stripe.n)

    # -- CPU accounting -----------------------------------------------------------
    def encode_cpu_seconds(self, width: int, out_parities: int, nbytes: float) -> float:
        rate = self.cluster.spec.cpu.encode_mb_s * MB
        return width * out_parities * nbytes / rate

    def charge_client_encode(self, width: int, out_parities: int, nbytes: float) -> None:
        self.metrics.record_cpu(CLIENT, self.encode_cpu_seconds(width, out_parities, nbytes))

    def charge_client_decode(self, code, nbytes: float, width: Optional[int] = None) -> None:
        self.metrics.record_cpu(
            CLIENT, self.encode_cpu_seconds(width or code.k, 1, nbytes)
        )

    def charge_node_encode(self, node_id: str, width: int, out_parities: int, nbytes: float) -> None:
        self.metrics.record_cpu(node_id, self.encode_cpu_seconds(width, out_parities, nbytes))

    # -- reachability ----------------------------------------------------------
    def node_reachable(self, node_id: str, endpoint: str = CLIENT) -> bool:
        """Can ``endpoint`` (a node id, ``client`` or ``namenode``) reach
        the node through the current partition mask?"""
        return self.partition.reachable(node_id, endpoint)

    # -- common operations -------------------------------------------------------
    def read_file(
        self,
        name: str,
        offset: int = 0,
        length: Optional[int] = None,
        prefer_striped: bool = False,
    ) -> np.ndarray:
        meta = self.namenode.lookup(name)
        with self.obs.span("read", file=name):
            return self.reader.read(meta, offset, length, prefer_striped=prefer_striped)

    def delete_file(self, name: str) -> None:
        meta = self.namenode.unregister_file(name)
        for chunk in meta.all_chunks():
            self.datanodes[chunk.node_id].delete(chunk.chunk_id, at=self.clock)
            self.checksums.forget(chunk.chunk_id)

    def capacity_used(self) -> float:
        """Bytes at rest across all datanode disks.

        Also cross-checks the metrics ledger: every disk write and delete
        is metered, so ``IOMetrics.capacity_used()`` (written − deleted)
        must agree with the physical chunk maps.
        """
        physical = sum(dn.bytes_at_rest() for dn in self.datanodes.values())
        ledger = self.metrics.capacity_used()
        assert math.isclose(physical, ledger, rel_tol=1e-9, abs_tol=1.0), (
            f"capacity ledger drift: datanode disks hold {physical} bytes "
            f"but metrics say {ledger} (written - deleted)"
        )
        return physical

    def memory_used(self) -> float:
        return sum(dn.memory_bytes() for dn in self.datanodes.values())

    # -- write helpers ----------------------------------------------------------
    def _data_chunks(self, data: np.ndarray, k: int) -> List[np.ndarray]:
        """Split into chunk_size pieces, zero-padding the last stripe."""
        chunks = []
        for start in range(0, len(data), self.chunk_size):
            piece = data[start : start + self.chunk_size]
            if len(piece) < self.chunk_size:
                padded = np.zeros(self.chunk_size, dtype=np.uint8)
                padded[: len(piece)] = piece
                piece = padded
            chunks.append(np.asarray(piece, dtype=np.uint8))
        while len(chunks) % k:
            chunks.append(np.zeros(self.chunk_size, dtype=np.uint8))
        return chunks

    def _write_replica_pipeline(
        self,
        meta: FileMeta,
        block_index: int,
        first_chunk: int,
        n_chunks: int,
        block_bytes: np.ndarray,
        nodes: Sequence[str],
        persist_count: int,
        to_memory: bool,
    ) -> ReplicaBlockMeta:
        """Mirror a block down a chain of nodes (HDFS-style pipeline).

        The block meta is linked into ``meta.replica_blocks`` *before*
        the per-copy placement notes: a journaled namenode turns each
        note into a full-file record, and a recovery cut at any record
        boundary must see exactly the placements made so far.
        """
        copies: List[ChunkMeta] = []
        prev = CLIENT
        note_chunk = self.namenode.note_chunk
        chunk_ids = self.namenode.next_chunk_ids(
            f"{meta.name}/r{block_index}c", len(nodes)
        )
        block_meta = ReplicaBlockMeta(
            block_index=block_index,
            first_chunk=first_chunk,
            n_chunks=n_chunks,
            copies=copies,
        )
        meta.replica_blocks.append(block_meta)
        for i, node_id in enumerate(nodes):
            chunk_id = chunk_ids[i]
            datanode = self.datanodes[node_id]
            if to_memory:
                datanode.receive_to_memory(chunk_id, block_bytes, src=prev)
            else:
                datanode.receive_to_disk(chunk_id, block_bytes, src=prev, at=self.clock)
            if i < persist_count:
                self.checksums.record(chunk_id, block_bytes)
                copies.append(
                    ChunkMeta(chunk_id, node_id, ChunkKind.REPLICA, block_bytes.nbytes)
                )
                note_chunk(node_id, meta.name)
            prev = node_id
        if to_memory:
            for i in range(persist_count):
                self.datanodes[nodes[i]].persist(copies[i].chunk_id, at=self.clock)
        return block_meta

    def _write_replicated(self, meta: FileMeta, data: np.ndarray, copies: int) -> None:
        placement = DefaultPlacement(self.cluster, seed=self.seed + zlib.crc32(meta.name.encode()) % 997)
        placement.prefer_class = self.placement_prefer_class
        span = self.replication_block_chunks * self.chunk_size
        block_index = 0
        for start in range(0, max(len(data), 1), span):
            block = np.asarray(data[start : start + span], dtype=np.uint8)
            nodes = placement.place_replicas(copies)
            self._write_replica_pipeline(
                meta,
                block_index,
                first_chunk=start // self.chunk_size,
                n_chunks=(len(block) + self.chunk_size - 1) // self.chunk_size,
                block_bytes=block,
                nodes=nodes,
                persist_count=copies,
                to_memory=False,
            )
            block_index += 1

    def _write_ec(self, meta: FileMeta, data: np.ndarray, ec: ECScheme) -> None:
        """Client-driven EC write: encode locally, fan chunks out."""
        placement = DefaultPlacement(self.cluster, seed=self.seed + zlib.crc32(meta.name.encode()) % 997)
        placement.prefer_class = self.placement_prefer_class
        code = self.codec_for(ec)
        chunks = self._data_chunks(data, ec.k)
        stripe_lists = [chunks[s : s + ec.k] for s in range(0, len(chunks), ec.k)]
        # One batched kernel invocation computes every stripe's parities
        # (bit-identical to per-stripe encode; placement and metering
        # stay per stripe).
        parities_batch = code.encode_batch(stripe_lists)
        for stripe_index, stripe_chunks in enumerate(stripe_lists):
            parities = parities_batch[stripe_index]
            self.charge_client_encode(ec.k, ec.n - ec.k, self.chunk_size)
            spots = placement.place_stripe(ec.k, ec.n - ec.k)
            self._store_stripe(
                meta, stripe_index, stripe_chunks, parities, spots["data"], spots["parity"], ec
            )

    def _store_stripe(
        self,
        meta: FileMeta,
        stripe_index: int,
        data_chunks: Sequence[np.ndarray],
        parities: Sequence[np.ndarray],
        data_nodes: Sequence[str],
        parity_nodes: Sequence[str],
        ec: ECScheme,
        src: str = CLIENT,
        parity_src: Optional[str] = None,
    ) -> ECStripeMeta:
        parity_src = parity_src or src
        k = len(data_chunks)
        note_chunk = self.namenode.note_chunk
        data_ids = self.namenode.next_chunk_ids(f"{meta.name}/s{stripe_index}d", k)
        # Linked into the meta before the first placement note — see
        # _write_replica_pipeline for why (journal-boundary consistency).
        stripe_meta = ECStripeMeta(
            stripe_index=stripe_index,
            k=k,
            n=k + len(parities),
            data=[],
            parities=[],
        )
        meta.stripes.append(stripe_meta)
        for t, chunk in enumerate(data_chunks):
            chunk_id = data_ids[t]
            self.datanodes[data_nodes[t]].receive_to_disk(chunk_id, chunk, src=src, at=self.clock)
            self.checksums.record(chunk_id, chunk)
            stripe_meta.data.append(
                ChunkMeta(chunk_id, data_nodes[t], ChunkKind.DATA, chunk.nbytes)
            )
            note_chunk(data_nodes[t], meta.name)
        kinds = self._parity_kinds(ec)
        parity_ids = self.namenode.next_chunk_ids(
            f"{meta.name}/s{stripe_index}p", len(parities)
        )
        for j, parity in enumerate(parities):
            chunk_id = parity_ids[j]
            self.datanodes[parity_nodes[j]].receive_to_disk(
                chunk_id, parity, src=parity_src, at=self.clock
            )
            self.checksums.record(chunk_id, parity)
            stripe_meta.parities.append(
                ChunkMeta(chunk_id, parity_nodes[j], kinds[j], parity.nbytes)
            )
            note_chunk(parity_nodes[j], meta.name)
        return stripe_meta

    @staticmethod
    def _parity_kinds(ec: ECScheme) -> List[ChunkKind]:
        if ec.kind in (CodeKind.LRC, CodeKind.LRCC):
            return [ChunkKind.LOCAL_PARITY] * ec.local_groups + [
                ChunkKind.GLOBAL_PARITY
            ] * ec.r_global
        return [ChunkKind.PARITY] * (ec.n - ec.k)

    def write_file(self, name: str, data, scheme: RedundancyScheme) -> FileMeta:
        raise NotImplementedError

    def transcode(self, name: str, target: RedundancyScheme) -> FileMeta:
        raise NotImplementedError


class BaselineDFS(_BaseDFS):
    """HDFS-like baseline: 3-r / RS ingest, client RRW transcode."""

    def write_file(self, name: str, data, scheme: RedundancyScheme) -> FileMeta:
        data = np.asarray(data, dtype=np.uint8).reshape(-1)
        meta = FileMeta(
            name=name, size=len(data), chunk_size=self.chunk_size, scheme=scheme
        )
        with self.obs.span("ingest", file=name, nbytes=len(data)):
            if isinstance(scheme, Replication):
                self._write_replicated(meta, data, scheme.copies)
            elif isinstance(scheme, ECScheme):
                self._write_ec(meta, data, scheme)
            else:
                raise ValueError(f"BaselineDFS does not support {scheme}")
        self.namenode.register_file(meta)
        return meta

    def transcode(self, name: str, target: RedundancyScheme) -> FileMeta:
        """RRW: read the file, rewrite it under the target scheme."""
        with self.obs.span("transcode_request", file=name):
            return RRWTranscoder(self).transcode(name, target)


class MorphFS(AppendSupport, _BaseDFS):
    """Morph: hybrid ingest, k*-aware placement, native transcode."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        chunk_size: int = 64 * 1024,
        replication_block_chunks: int = 8,
        seed: int = 0,
        future_widths: Optional[Sequence[int]] = None,
        max_parities: int = 4,
        transcode_aware: bool = True,
        parity_mode: str = "async",
        spanning_protocol: bool = False,
        obs: Optional[Observability] = None,
        namenode: Optional[Namenode] = None,
    ):
        super().__init__(
            cluster, chunk_size, replication_block_chunks, seed,
            obs=obs, namenode=namenode,
        )
        self.future_widths = list(future_widths or [])
        self.max_parities = max_parities
        #: ablation switch: False disables k*-window planning and parity
        #: co-location (placement falls back to per-stripe random).
        self.transcode_aware = transcode_aware
        #: hybrid parity computation option (§6.1): "async" (Datanode
        #: striper, the default), "sync" (client computes on its critical
        #: path), or "none" (durability from c+1 persisted replicas only).
        if parity_mode not in ("async", "sync", "none"):
            raise ValueError(f"unknown parity_mode {parity_mode!r}")
        self.parity_mode = parity_mode
        #: spanning-write protocol (§4.2 / Fig 6): mirror to THREE replica
        #: holders before ack, then stripe asynchronously — one extra
        #: network copy versus the small-write variant.
        self.spanning_protocol = spanning_protocol
        self._placements: Dict[str, TranscodeAwarePlacement] = {}
        self.transcoder = NativeTranscoder(self)

    # -- placement ------------------------------------------------------------
    def _placement_for(self, name: str, ec: ECScheme) -> TranscodeAwarePlacement:
        if name in self._placements:
            # Keep the cached policy's tier preference in sync — the knob
            # may change between writes (e.g. as a file cools).
            self._placements[name].prefer_class = self.placement_prefer_class
        if name not in self._placements:
            from repro.core.schemes import lcm_of_widths

            if not self.transcode_aware:
                from repro.cluster.placement import UnplannedPlacement

                self._placements[name] = UnplannedPlacement(
                    self.cluster,
                    seed=self.seed + zlib.crc32(name.encode()) % 997,
                )
                self._placements[name].prefer_class = self.placement_prefer_class
                return self._placements[name]

            widths = [ec.k] + [w for w in self.future_widths]
            k_star = lcm_of_widths(*widths)
            r_star = max(self.max_parities, ec.n - ec.k)
            alive = len(self.cluster.alive_nodes())
            if k_star + r_star > alive:
                # Fall back to the largest feasible window (documented
                # trade-off: merges beyond the window may need data moves).
                k_star = max(w for w in widths if w + r_star <= alive)
            self._placements[name] = TranscodeAwarePlacement(
                self.cluster, k_star, r_star, seed=self.seed + zlib.crc32(name.encode()) % 997
            )
            self._placements[name].prefer_class = self.placement_prefer_class
        return self._placements[name]

    # -- writes -----------------------------------------------------------------
    def write_file(self, name: str, data, scheme: RedundancyScheme) -> FileMeta:
        data = np.asarray(data, dtype=np.uint8).reshape(-1)
        meta = FileMeta(
            name=name, size=len(data), chunk_size=self.chunk_size, scheme=scheme
        )
        with self.obs.span("ingest", file=name, nbytes=len(data)):
            if isinstance(scheme, HybridScheme):
                self._write_hybrid(meta, data, scheme)
            elif isinstance(scheme, ECScheme):
                self._write_ec_planned(meta, data, scheme)
            elif isinstance(scheme, Replication):
                self._write_replicated(meta, data, scheme.copies)
            else:
                raise ValueError(f"unsupported scheme {scheme}")
        self.namenode.register_file(meta)
        return meta

    def _write_ec_planned(self, meta: FileMeta, data: np.ndarray, ec: ECScheme) -> None:
        """EC write under the transcode-aware placement policy."""
        placement = self._placement_for(meta.name, ec)
        code = self.codec_for(ec)
        chunks = self._data_chunks(data, ec.k)
        stripe_lists = [chunks[s : s + ec.k] for s in range(0, len(chunks), ec.k)]
        # Batched parity computation across every stripe of the file.
        parities_batch = code.encode_batch(stripe_lists)
        for stripe_index, stripe_chunks in enumerate(stripe_lists):
            parities = parities_batch[stripe_index]
            self.charge_client_encode(ec.k, ec.n - ec.k, self.chunk_size)
            spots = placement.place_stripe(meta.name, stripe_index, ec.k, ec.n - ec.k)
            self._store_stripe(
                meta, stripe_index, stripe_chunks, parities, spots["data"], spots["parity"], ec
            )

    def _write_hybrid(self, meta: FileMeta, data: np.ndarray, hy: HybridScheme) -> None:
        """Hybrid ingest (§4.2).

        Small-write variant (default): the block is mirrored to two
        replica nodes in-memory; the second mirror acts as striper,
        distributing data chunks (the third durable copy) and the
        parities. Spanning variant (``spanning_protocol=True``): three
        full replicas are mirrored before the ack and the last one
        stripes asynchronously (Fig 6), costing one extra network copy.

        Parity handling follows ``parity_mode``: "async" encodes on the
        striper; "sync" encodes on the client (client CPU + client
        network for the parity sends); "none" skips parities and persists
        ``copies + 1`` replicas instead (§6.1).
        """
        ec = hy.ec
        placement = self._placement_for(meta.name, ec)
        code = self.codec_for(ec)
        chunks = self._data_chunks(data, ec.k)
        stripe_lists = [chunks[s : s + ec.k] for s in range(0, len(chunks), ec.k)]
        # Parities for every stripe in one batched kernel invocation; the
        # CPU charge (striper vs client, per parity_mode) stays per
        # stripe below, so accounting totals are unchanged.
        if self.parity_mode == "none":
            parities_batch: List[List[np.ndarray]] = [[] for _ in stripe_lists]
        else:
            parities_batch = code.encode_batch(stripe_lists)
        for s in range(0, len(chunks), ec.k):
            stripe_index = s // ec.k
            stripe_chunks = chunks[s : s + ec.k]
            block_bytes = np.concatenate(stripe_chunks)
            spots = placement.place_stripe(meta.name, stripe_index, ec.k, ec.n - ec.k)
            ec_nodes = spots["data"] + spots["parity"]
            persist_replicas = hy.copies + (1 if self.parity_mode == "none" else 0)
            n_replica_targets = 3 if self.spanning_protocol else max(persist_replicas, 2)
            n_replica_targets = max(n_replica_targets, persist_replicas)
            replica_nodes = placement.place_replicas(
                meta.name, stripe_index, n_replica_targets, exclude=ec_nodes
            )
            self._write_replica_pipeline(
                meta,
                stripe_index,
                first_chunk=s,
                n_chunks=len(stripe_chunks),
                block_bytes=block_bytes,
                nodes=replica_nodes,
                persist_count=persist_replicas,
                to_memory=True,
            )
            # Striping (§4.2 / Fig 6): the last replica holder distributes
            # the data chunks (they are the extra durable copy).
            striper = replica_nodes[-1]
            parities = parities_batch[stripe_index]
            if self.parity_mode == "sync":
                self.charge_client_encode(ec.k, ec.n - ec.k, self.chunk_size)
            elif self.parity_mode == "async":
                self.charge_node_encode(striper, ec.k, ec.n - ec.k, self.chunk_size)
            parity_src = CLIENT if self.parity_mode == "sync" else striper
            stripe_meta = self._store_stripe(
                meta,
                stripe_index,
                stripe_chunks,
                parities,
                spots["data"],
                spots["parity"][: len(parities)],
                ec,
                src=striper,
                parity_src=parity_src,
            )
            if self.parity_mode == "none":
                stripe_meta.n = stripe_meta.k
            # Parities persisted: temporary replicas leave memory for free.
            for i, node_id in enumerate(replica_nodes):
                if i >= persist_replicas:
                    # Temp replica ids share the block's batched-mint
                    # prefix; each pipeline node holds one copy, so the
                    # (node, prefix) pair pins it exactly.
                    chunk_id = f"{meta.name}/r{stripe_index}c"
                    self._drop_temp_replica(node_id, chunk_id)

    def _drop_temp_replica(self, node_id: str, chunk_id_prefix: str) -> None:
        datanode = self.datanodes[node_id]
        for cid in list(datanode._memory):
            if cid.startswith(chunk_id_prefix):
                datanode.drop_from_memory(cid)

    # -- native transcode ----------------------------------------------------------
    def transcode(self, name: str, target: RedundancyScheme, heartbeats: bool = True) -> FileMeta:
        """Native transcode (§6.2): plan, enqueue, execute, atomic switch."""
        with self.obs.span("transcode_request", file=name):
            return self._transcode_impl(name, target, heartbeats)

    def _transcode_impl(
        self, name: str, target: RedundancyScheme, heartbeats: bool = True
    ) -> FileMeta:
        meta = self.namenode.lookup(name)
        step = self.planner.plan(meta.scheme, target)
        if step.kind is TranscodeKind.FREE:
            return self._free_transition(meta, target)
        if step.kind is TranscodeKind.CONVERTIBLE:
            if isinstance(meta.scheme, HybridScheme):
                # Drop replicas first (free), then convert the EC part.
                self._free_transition(meta, meta.scheme.ec)
            groups, parities = self._build_groups(meta, target)
            self.namenode.enqueue_transcode(name, target, groups, parities)
            if heartbeats:
                self.transcoder.run_pending(name)
            return self.namenode.lookup(name)
        # RRW fallback (e.g. into plain RS/LRC targets).
        return RRWTranscoder(self).transcode(name, target)

    def run_transcode_heartbeats(self, name: str) -> None:
        """Drive a previously enqueued transcode to completion."""
        self.transcoder.run_pending(name)

    def schedule_transcode(
        self,
        name: str,
        target: RedundancyScheme,
        deadline: Optional[float] = None,
    ) -> FileMeta:
        """Deferred transcode: queue the work for the maintenance
        scheduler instead of executing inline.

        Free (hybrid -> EC) transitions become a single metadata-only
        task when every stripe already has its parities — the scheduler
        runs those regardless of budget pressure. Convertible
        conversions go through the ATQ; the heartbeat loop feeds the
        queued groups into the scheduler tick by tick, where ``deadline``
        boosts them as the lifetime policy's transition date nears.
        """
        from repro.sched.tasks import FreeTransitionTask

        meta = self.namenode.lookup(name)
        step = self.planner.plan(meta.scheme, target)
        if step.kind is TranscodeKind.FREE:
            ec = target.ec if isinstance(target, HybridScheme) else target
            sealed = not isinstance(ec, ECScheme) or all(
                len(s.parities) >= ec.r for s in meta.stripes
            )
            self.scheduler.submit(
                FreeTransitionTask(
                    name, target, metadata_only=sealed, deadline=deadline
                )
            )
            return meta
        if step.kind is TranscodeKind.CONVERTIBLE:
            if isinstance(meta.scheme, HybridScheme):
                # Replica drop first (free); the EC part converts queued.
                self._free_transition(meta, meta.scheme.ec)
            groups, parities = self._build_groups(meta, target)
            self.namenode.enqueue_transcode(
                name, target, groups, parities, deadline=deadline
            )
            return meta
        # RRW fallback has no incremental work units; run it inline.
        return RRWTranscoder(self).transcode(name, target)

    def _free_transition(self, meta: FileMeta, target: RedundancyScheme) -> FileMeta:
        """Hybrid -> EC: delete replicas, flip metadata. Zero IO (§4.5).

        Stripes whose parities were deferred (``parity_mode="none"`` or a
        still-open appended tail) must be sealed first — replicas are the
        only redundancy such stripes have, so deleting them without
        parities in place would silently lose protection.
        """
        ec = target.ec if isinstance(target, HybridScheme) else target
        if isinstance(ec, ECScheme):
            for stripe in meta.stripes:
                if len(stripe.parities) < ec.r:
                    self._seal_stripe(meta, stripe, ec)
        for block in meta.replica_blocks:
            for copy in block.copies:
                self.datanodes[copy.node_id].delete(copy.chunk_id, at=self.clock)
                self.checksums.forget(copy.chunk_id)
        meta.replica_blocks = []
        meta.scheme = target
        meta.version += 1
        # Zero-IO or not, the switch rewrites placement metadata — emit a
        # placement note so a journaled namenode records the transition.
        self.namenode.note_file(meta)
        return meta

    def _pick_striper(self, candidates: Sequence[str]) -> str:
        """First live candidate node, else any live node in the cluster."""
        for node_id in candidates:
            if self.datanodes[node_id].is_alive:
                return node_id
        alive = self.cluster.alive_nodes()
        if not alive:
            from repro.dfs.recovery import RecoveryError

            raise RecoveryError("no live node to act as striper")
        return alive[0].node_id

    def _alive_or_substitute(self, node_id: str, exclude: Sequence[str]) -> str:
        """The node itself if alive, else a live node outside ``exclude``."""
        if self.datanodes[node_id].is_alive:
            return node_id
        taken = set(exclude)
        for node in self.cluster.alive_nodes():
            if node.node_id not in taken:
                return node.node_id
        return self._pick_striper([])

    def _read_stripe_data_degraded(
        self, meta: FileMeta, stripe: ECStripeMeta, reader_node: str
    ) -> List[np.ndarray]:
        """Read a stripe's data chunks, falling back to the covering
        replica ranges when a chunk's home is down.

        Sealing a parity-less stripe must work during failures — the
        replicas are that stripe's only redundancy, so they are exactly
        what survives when a data-chunk home dies.
        """
        from repro.dfs.recovery import RecoveryError, RecoveryManager

        recovery = None
        first_chunk = sum(s.k for s in meta.stripes[: stripe.stripe_index])
        chunks: List[np.ndarray] = []
        for local, c in enumerate(stripe.data):
            datanode = self.datanodes[c.node_id]
            if datanode.is_alive and datanode.has_chunk(c.chunk_id):
                chunks.append(datanode.read(c.chunk_id, at=self.clock))
                continue
            if recovery is None:
                recovery = RecoveryManager(self)
            piece = recovery._replica_range(meta, first_chunk + local, reader_node)
            if piece is None:
                raise RecoveryError(
                    f"{meta.name}: stripe {stripe.stripe_index} data chunk "
                    f"{local} unavailable and no replica covers it"
                )
            chunks.append(piece)
        return chunks

    def _seal_stripe(self, meta: FileMeta, stripe: ECStripeMeta, ec: ECScheme) -> None:
        """Materialise missing parities for a parity-less stripe.

        Data is read from the stripe's chunks (one striper-local encode)
        with replica-range fallback for chunks on dead nodes; parities
        land on the reserved co-located parity nodes (or a live
        substitute when a reserved node is down).
        """
        code = (
            self.cc_codec(stripe.k, stripe.k + ec.r)
            if ec.kind is CodeKind.CC
            else self.codec_for(ec)
        )
        striper = self._pick_striper([c.node_id for c in stripe.data])
        chunks = self._read_stripe_data_degraded(meta, stripe, striper)
        parities = code.encode(chunks)
        placement = self._placement_for(meta.name, ec)
        first_chunk = sum(s.k for s in meta.stripes[: stripe.stripe_index])
        self.charge_node_encode(striper, stripe.k, len(parities), self.chunk_size)
        kinds = self._parity_kinds(ec)
        occupied = [c.node_id for c in stripe.all_chunks()]
        for j, parity in enumerate(
            parities[len(stripe.parities) :], start=len(stripe.parities)
        ):
            node = self._alive_or_substitute(
                placement.parity_node(meta.name, first_chunk, j), occupied
            )
            occupied.append(node)
            chunk_id = self.namenode.next_chunk_id(
                f"{meta.name}/s{stripe.stripe_index}p{j}"
            )
            self.datanodes[node].receive_to_disk(chunk_id, parity, src=striper, at=self.clock)
            self.checksums.record(chunk_id, parity)
            stripe.parities.append(ChunkMeta(chunk_id, node, kinds[j], parity.nbytes))
            self.namenode.note_chunk(node, meta.name)
        stripe.n = stripe.k + len(stripe.parities)
        # Final placement note after the width update so a journaled
        # namenode's last record for this op carries the sealed state.
        self.namenode.note_file(meta)

    def _build_groups(
        self, meta: FileMeta, target: RedundancyScheme
    ) -> Tuple[List[ConversionGroup], int]:
        from math import gcd

        ec = target.ec if isinstance(target, HybridScheme) else target
        if not isinstance(ec, ECScheme):
            raise TranscodeError(f"cannot transcode into {target}")
        n_stripes = len(meta.stripes)
        if ec.kind is CodeKind.LRCC:
            parities = ec.local_groups + ec.r_global
        else:
            parities = ec.n - ec.k
        groups: List[ConversionGroup] = []
        index = 0
        # Conversion groups must be width-homogeneous: appended/short tail
        # stripes form their own runs and convert at their own width.
        run_start = 0
        while run_start < n_stripes:
            k_run = meta.stripes[run_start].k
            run_end = run_start
            while run_end < n_stripes and meta.stripes[run_end].k == k_run:
                run_end += 1
            run_len = run_end - run_start
            if ec.kind is CodeKind.LRCC:
                lam = ec.k // k_run if ec.k % k_run == 0 else 0
                if not lam or run_len % lam:
                    raise TranscodeError(
                        f"LRCC({ec.k}) needs runs of stripes divisible by "
                        f"width {k_run}"
                    )
                group_size = lam
            else:
                span = k_run * ec.k // gcd(k_run, ec.k)
                group_size = span // k_run
            for start in range(run_start, run_end, group_size):
                members = list(range(start, min(start + group_size, run_end)))
                total = sum(meta.stripes[i].k for i in members)
                if ec.kind is CodeKind.LRCC or total % ec.k != 0:
                    n_finals = 1  # short tail merges into one narrower stripe
                else:
                    n_finals = total // ec.k
                groups.append(
                    ConversionGroup(
                        file_name=meta.name,
                        group_index=index,
                        initial_stripe_indices=members,
                        n_final_stripes=n_finals,
                        target_scheme=target,
                    )
                )
                index += 1
            run_start = run_end
        return groups, parities

