"""Namenode: namespace, chunk directory and the transcode module (§6.2).

The transcode module mirrors the paper's architecture:

* ``transcode(file, scheme)`` enqueues work; the Namenode forms new
  stripes over *sequential* data chunks and pushes conversion groups into
  the **awaiting-transcoding queue (ATQ)**.
* Work is polled from the ATQ (bounded per heartbeat) and tracked in the
  **undergoing-transcoding map (UTM)** — per file, a bitmap of pending
  final parities.
* Completion of every parity of every stripe triggers the **atomic
  metadata switch**: new stripes replace old, old parities become
  garbage, the file version bumps. Old parities are deleted only after
  the switch, so reads/degraded-reads/reconstruction work mid-transcode,
  and a crash before the switch simply leaves the (still valid) old
  metadata in place — restart re-runs the conversion idempotently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from sys import intern as _intern
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.schemes import RedundancyScheme
from repro.dfs.blocks import ChunkMeta, ECStripeMeta, FileMeta, FileState


class FileNotFoundError_(KeyError):
    """Requested file is not in the namespace."""


class TranscodeStateError(RuntimeError):
    """Invalid transcode lifecycle transition."""


@dataclass
class ConversionGroup:
    """One unit of transcode work: a run of initial stripes -> final stripes."""

    file_name: str
    group_index: int
    initial_stripe_indices: List[int]
    n_final_stripes: int
    target_scheme: RedundancyScheme


@dataclass
class TranscodeJob:
    """All pending work for one file's transcode."""

    file_name: str
    target_scheme: RedundancyScheme
    groups: List[ConversionGroup] = field(default_factory=list)
    #: bitmap over (group, final_stripe, parity) completion — int bitmask
    pending_bits: int = 0
    total_bits: int = 0
    #: final stripes accumulated by the transcoder, keyed by (group, idx)
    new_stripes: Dict[Tuple[int, int], ECStripeMeta] = field(default_factory=dict)
    #: absolute DFS-clock time the lifetime policy wants this transcode
    #: done by; the maintenance scheduler boosts the job as it nears
    deadline: Optional[float] = None

    def is_complete(self) -> bool:
        return self.total_bits > 0 and self.pending_bits == 0


class Namenode:
    """Namespace + block map + ATQ/UTM transcode bookkeeping."""

    def __init__(self):
        self.files: Dict[str, FileMeta] = {}
        #: awaiting-transcoding queue: conversion groups not yet assigned
        self.atq: Deque[ConversionGroup] = deque()
        #: undergoing-transcoding map: file -> job state
        self.utm: Dict[str, TranscodeJob] = {}
        self._chunk_seq = 0
        #: per-node chunk index: node_id -> {file_name: None} for every
        #: file with at least one chunk homed on the node.  A dict (not a
        #: set) so iteration order is insertion order, independent of str
        #: hash randomization — node-major scans stay run-deterministic.
        #: Maintained incrementally on register/note/finalize; removals
        #: are lazy (see chunks_on_node), so a stale name is harmless but
        #: a *missing* one would be a bug: every code path that homes a
        #: chunk on a node must call note_chunk/note_file.
        self._node_files: Dict[str, Dict[str, None]] = {}
        #: registration order of live files, so node-major queries can
        #: present results in the same file order as a full namespace
        #: scan would (keeps repair ordering identical to the O(files)
        #: implementation this index replaced).
        self._file_order: Dict[str, int] = {}
        self._file_seq = 0

    # -- namespace --------------------------------------------------------
    def register_file(self, meta: FileMeta) -> None:
        if meta.name in self.files:
            raise ValueError(f"file exists: {meta.name}")
        meta.name = _intern(meta.name)
        self.files[meta.name] = meta
        self._file_seq += 1
        self._file_order[meta.name] = self._file_seq
        self.note_file(meta)

    def register_files(self, metas: Iterable[FileMeta]) -> None:
        """Batched ingest registration: one call for a whole batch of
        files, resolving the per-call attribute/method overhead once."""
        files = self.files
        order = self._file_order
        node_files = self._node_files
        seq = self._file_seq
        for meta in metas:
            name = _intern(meta.name)
            if name in files:
                raise ValueError(f"file exists: {name}")
            meta.name = name
            files[name] = meta
            seq += 1
            order[name] = seq
            # Inlined chunk walk (not meta.all_chunks()): at a million
            # files the per-file list concatenations dominate this loop.
            for stripe in meta.stripes:
                for chunk in stripe.data:
                    index = node_files.get(chunk.node_id)
                    if index is None:
                        node_files[_intern(chunk.node_id)] = {name: None}
                    else:
                        index[name] = None
                for chunk in stripe.parities:
                    index = node_files.get(chunk.node_id)
                    if index is None:
                        node_files[_intern(chunk.node_id)] = {name: None}
                    else:
                        index[name] = None
            for block in meta.replica_blocks:
                for chunk in block.copies:
                    index = node_files.get(chunk.node_id)
                    if index is None:
                        node_files[_intern(chunk.node_id)] = {name: None}
                    else:
                        index[name] = None
        self._file_seq = seq

    def lookup(self, name: str) -> FileMeta:
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError_(name) from None

    def unregister_file(self, name: str) -> FileMeta:
        meta = self.files.pop(name)
        self._file_order.pop(name, None)
        # Per-node index entries are left behind and purged lazily by
        # chunks_on_node — deletion stays O(1) regardless of file size.
        if name in self.utm:
            # Deleting (or renaming) a file mid-transcode drops its job:
            # a UTM entry and queued ATQ groups keyed by a name that no
            # longer resolves would otherwise leak forever and crash any
            # worker that later polls them.
            del self.utm[name]
            self.atq = deque(g for g in self.atq if g.file_name != name)
            meta.state = FileState.HEALTHY
        return meta

    def next_chunk_id(self, prefix: str) -> str:
        self._chunk_seq += 1
        return f"{prefix}#{self._chunk_seq:08d}"

    def next_chunk_ids(self, prefix: str, count: int) -> List[str]:
        """Batched id mint: one namenode round-trip for a whole stripe
        or replica pipeline instead of one per chunk."""
        start = self._chunk_seq + 1
        self._chunk_seq += count
        return [f"{prefix}#{i:08d}" for i in range(start, start + count)]

    def rename(self, old: str, new: str) -> None:
        meta = self.unregister_file(old)
        meta.name = new
        self.register_file(meta)

    # -- per-node chunk index ----------------------------------------------
    def note_chunk(self, node_id: str, file_name: str) -> None:
        """Record that ``file_name`` now has a chunk homed on ``node_id``.

        Every path that places or moves a chunk must call this (or
        :meth:`note_file`); the index has no other way to learn about
        placements, and node-major queries trust it exhaustively.
        """
        index = self._node_files.get(node_id)
        if index is None:
            self._node_files[_intern(node_id)] = {file_name: None}
        else:
            index[file_name] = None

    def note_file(self, meta: FileMeta) -> None:
        """Index every current chunk placement of ``meta``."""
        node_files = self._node_files
        name = meta.name
        for chunk in meta.all_chunks():
            index = node_files.get(chunk.node_id)
            if index is None:
                node_files[_intern(chunk.node_id)] = {name: None}
            else:
                index[name] = None

    # -- transcode lifecycle -------------------------------------------------
    def enqueue_transcode(
        self,
        name: str,
        target_scheme: RedundancyScheme,
        groups: List[ConversionGroup],
        parities_per_final_stripe: int,
        deadline: Optional[float] = None,
    ) -> TranscodeJob:
        """Queue a file's conversion groups into the ATQ (transcode())."""
        meta = self.lookup(name)
        if name in self.utm:
            raise TranscodeStateError(f"{name} is already transcoding")
        job = TranscodeJob(
            file_name=name,
            target_scheme=target_scheme,
            groups=groups,
            deadline=deadline,
        )
        bit = 0
        for group in groups:
            for _final in range(group.n_final_stripes):
                for _p in range(parities_per_final_stripe):
                    job.pending_bits |= 1 << bit
                    bit += 1
        job.total_bits = bit
        self.utm[name] = job
        self.atq.extend(groups)
        meta.state = FileState.TRANSCODING
        return job

    def poll_work(self, max_items: int = 8) -> List[ConversionGroup]:
        """Pop up to ``max_items`` groups from the ATQ (per heartbeat)."""
        out = []
        while self.atq and len(out) < max_items:
            out.append(self.atq.popleft())
        return out

    def poll_work_for(self, name: str, max_items: int = 8) -> List[ConversionGroup]:
        """Pop up to ``max_items`` of one file's groups from the ATQ,
        leaving other files' groups queued in order."""
        out: List[ConversionGroup] = []
        rest: List[ConversionGroup] = []
        while self.atq:
            group = self.atq.popleft()
            if group.file_name == name and len(out) < max_items:
                out.append(group)
            else:
                rest.append(group)
        self.atq.extendleft(reversed(rest))
        return out

    def _bit_index(
        self, job: TranscodeJob, group_index: int, final_idx: int, parity_j: int, parities: int
    ) -> int:
        offset = 0
        for g in job.groups:
            if g.group_index == group_index:
                return offset + (final_idx * parities + parity_j)
            offset += g.n_final_stripes * parities
        raise TranscodeStateError(f"unknown group {group_index}")

    def complete_parity(
        self,
        name: str,
        group_index: int,
        final_idx: int,
        parity_j: int,
        parities_per_final_stripe: int,
    ) -> None:
        """Mark one new parity persisted (UTM bitmap update)."""
        job = self.utm.get(name)
        if job is None:
            raise TranscodeStateError(f"{name} is not transcoding")
        bit = self._bit_index(
            job, group_index, final_idx, parity_j, parities_per_final_stripe
        )
        job.pending_bits &= ~(1 << bit)

    def record_new_stripe(
        self, name: str, group_index: int, final_idx: int, stripe: ECStripeMeta
    ) -> None:
        job = self.utm.get(name)
        if job is None:
            raise TranscodeStateError(f"{name} is not transcoding")
        job.new_stripes[(group_index, final_idx)] = stripe

    def try_finalize(self, name: str) -> Optional[List[ChunkMeta]]:
        """Atomic metadata switch once every parity bit has cleared.

        Returns the now-garbage old parity chunks (for deletion by the
        caller) or None if the job is still pending. The switch itself is
        a single in-memory reassignment: a crash before it leaves the old,
        fully consistent metadata in effect.
        """
        job = self.utm.get(name)
        if job is None or not job.is_complete():
            return None
        meta = self.lookup(name)
        old_parities: List[ChunkMeta] = [
            p for stripe in meta.stripes for p in stripe.parities
        ]
        ordered = [job.new_stripes[key] for key in sorted(job.new_stripes)]
        for i, stripe in enumerate(ordered):
            stripe.stripe_index = i
        # THE atomic switch: one reference assignment.
        meta.stripes = ordered
        meta.scheme = job.target_scheme
        meta.replica_blocks = []
        meta.state = FileState.HEALTHY
        meta.version += 1
        del self.utm[name]
        # The new stripes' parities may live on nodes the file never
        # touched before the switch.
        self.note_file(meta)
        return old_parities

    def abort_transcode(self, name: str) -> None:
        """Simulate a crash: forget in-flight transcode state (UTM is
        in-memory only; the paper avoids persisting it). Old metadata
        stays in effect; the ATQ entries for the file are dropped."""
        self.utm.pop(name, None)
        self.atq = deque(g for g in self.atq if g.file_name != name)
        meta = self.files.get(name)
        if meta is not None:
            meta.state = FileState.HEALTHY

    # -- persistence --------------------------------------------------------
    def snapshot(self, include_transcode: bool = False) -> dict:
        """Durable Namenode state.

        By default the ATQ and UTM are absent (§6.2): the transcode
        completion signal is the reference point for filesystem state, so
        in-flight transcode bookkeeping never needs to be persisted — a
        restart simply re-runs any unfinished conversion.

        ``include_transcode=True`` captures them anyway; the op-log
        journal (:mod:`repro.dfs.journal`) uses this so queued and
        half-finished conversions survive a restart instead of being
        redone from scratch.
        """
        snap = {
            "files": dict(self.files),
            "chunk_seq": self._chunk_seq,
        }
        if include_transcode:
            snap["atq"] = list(self.atq)
            snap["utm"] = dict(self.utm)
        return snap

    @classmethod
    def restore(cls, snapshot: dict) -> "Namenode":
        """Bring up a fresh Namenode from a snapshot (post-crash)."""
        node = cls()
        node.files = dict(snapshot["files"])
        node._chunk_seq = snapshot["chunk_seq"]
        with_transcode = "utm" in snapshot
        if with_transcode:
            node.utm = dict(snapshot["utm"])
            node.atq = deque(snapshot.get("atq", ()))
        for meta in node.files.values():
            if not with_transcode:
                # In-flight transcodes died with the old process; their
                # files revert to HEALTHY under the old (still valid)
                # metadata.  With transcode state captured, file states
                # were consistent at snapshot time and stay as they are.
                meta.state = FileState.HEALTHY
            node._file_seq += 1
            node._file_order[meta.name] = node._file_seq
            node.note_file(meta)
        return node

    # -- capacity / health --------------------------------------------------
    def metadata_stats(self) -> dict:
        """Namespace size summary (report/observability; O(chunks))."""
        n_chunks = 0
        for meta in self.files.values():
            for stripe in meta.stripes:
                n_chunks += len(stripe.data) + len(stripe.parities)
            for block in meta.replica_blocks:
                n_chunks += len(block.copies)
        return {
            "files": len(self.files),
            "chunks": n_chunks,
            "atq": len(self.atq),
            "utm": len(self.utm),
        }

    def chunks_on_node(self, node_id: str) -> List[Tuple[FileMeta, ChunkMeta]]:
        """All (file, chunk) pairs currently homed on ``node_id``.

        O(index entries for the node), not O(all files): only files the
        per-node index knows to have touched the node are scanned.  Index
        entries whose file no longer has a chunk here (deleted, moved by
        repair or transcode) are purged as they are encountered, so the
        index self-heals without any unindex hooks on the removal paths.
        Results come out in file-registration order — the same order a
        full namespace scan would produce.
        """
        index = self._node_files.get(node_id)
        if index is None:
            return []
        out: List[Tuple[FileMeta, ChunkMeta]] = []
        stale: List[str] = []
        files = self.files
        order = self._file_order
        names = sorted(index, key=lambda n: order.get(n, 0)) if len(index) > 1 else index
        for name in names:
            meta = files.get(name)
            found = False
            if meta is not None:
                # Inlined chunk walk — same results as meta.all_chunks()
                # without building a throwaway list per file.
                for stripe in meta.stripes:
                    for chunk in stripe.data:
                        if chunk.node_id == node_id:
                            out.append((meta, chunk))
                            found = True
                    for chunk in stripe.parities:
                        if chunk.node_id == node_id:
                            out.append((meta, chunk))
                            found = True
                for block in meta.replica_blocks:
                    for chunk in block.copies:
                        if chunk.node_id == node_id:
                            out.append((meta, chunk))
                            found = True
            if not found:
                stale.append(name)
        for name in stale:
            del index[name]
        if not index:
            del self._node_files[node_id]
        return out
