"""Crash-consistent namenode persistence: op-log journal + snapshots.

The paper keeps the namenode's transcode bookkeeping (ATQ/UTM) in memory
and leans on the atomic metadata switch for crash safety (§6.2).  That
is correct but lossy: a restart forgets every queued and half-finished
conversion.  This module adds the missing durability layer as an
HDFS-style edit log:

* :class:`Journal` — an append-only log of versioned, checksummed
  records (length/version/opcode/CRC32 header + canonical-JSON payload),
  file-backed or in-memory.  A torn tail (crash mid-write) is detected
  and truncated on open; corruption *before* the tail raises.
* :class:`JournaledNamenode` — a :class:`~repro.dfs.namenode.Namenode`
  that applies each mutation in memory first and appends one record on
  success (write-behind: a crash between apply and append loses only the
  unacknowledged op).  Nested mutators (``rename`` calls
  ``unregister_file``/``register_file``, ``try_finalize`` calls
  ``note_file``) are suppressed so replay applies each record exactly
  once.
* Snapshot compaction — ``compact()`` rewrites the log as a single
  SNAPSHOT record built on ``Namenode.snapshot(include_transcode=True)``,
  atomically (write-new + rename) for file-backed logs.
* Replay recovery — :meth:`JournaledNamenode.recover` restores the last
  snapshot and replays the record suffix; a namenode killed at any
  record boundary restores byte-identical to the snapshot+replay oracle
  (see :func:`state_digest` and ``tests/test_journal_crash.py``).

Record coverage
---------------
Every namespace/transcode mutator writes its own opcode.  Chunk
placements made *after* registration (repair, transcode relocation,
stripe sealing, appends) flow through NOTE records: the PR-8 per-node
index invariant — every path that homes a chunk must call
``note_chunk``/``note_file`` — doubles as the durability hook, and a
NOTE record carries the file's full metadata as an upsert.  Placements
made before registration need no record: REGISTER carries final state.

Durable state is the canonical tuple (files in registration order,
chunk_seq, ATQ, UTM).  The per-node chunk index and the absolute
``_file_order`` sequence numbers are derived caches, rebuilt on
recovery; relative registration order is preserved by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from collections import deque
from enum import IntEnum
from pathlib import Path
from sys import intern as _intern
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    RedundancyScheme,
    Replication,
)
from repro.dfs.blocks import (
    ChunkKind,
    ChunkMeta,
    ECStripeMeta,
    FileMeta,
    FileState,
    ReplicaBlockMeta,
)
from repro.dfs.namenode import ConversionGroup, Namenode, TranscodeJob

RECORD_VERSION = 1
#: record header: payload length, format version, opcode, CRC32(payload)
_HEADER = struct.Struct("<IHHI")
_JSON = dict(separators=(",", ":"), sort_keys=True)
#: sanity bound on one record's payload (a full-state snapshot of a very
#: large shard still fits; anything bigger is corruption, not data)
_MAX_PAYLOAD = 1 << 31


class Op(IntEnum):
    """Journal record opcodes (stable on-disk values)."""

    SNAPSHOT = 0        # full canonical state (compaction point)
    REGISTER = 1        # register_file
    REGISTER_BATCH = 2  # register_files
    UNREGISTER = 3      # unregister_file
    RENAME = 4          # rename
    NOTE = 5            # full-file metadata upsert (post-registration
    #                     placement: repair / relocate / seal / append)
    MINT = 6            # next_chunk_id(s): chunk-sequence advance
    ENQUEUE = 7         # enqueue_transcode
    POLL = 8            # poll_work / poll_work_for (ATQ -> in-flight)
    COMPLETE = 9        # complete_parity
    NEW_STRIPE = 10     # record_new_stripe
    FINALIZE = 11       # try_finalize (the atomic metadata switch)
    ABORT = 12          # abort_transcode


class JournalError(RuntimeError):
    """Corrupt or unreadable journal (not a torn tail)."""


class JournalCrash(RuntimeError):
    """Simulated process death at a record boundary (fault injection)."""


# -- record payload codec -----------------------------------------------------

def encode_scheme(s: RedundancyScheme) -> Dict[str, Any]:
    if isinstance(s, Replication):
        return {"t": "rep", "c": s.copies}
    if isinstance(s, HybridScheme):
        return {"t": "hy", "c": s.copies, "ec": encode_scheme(s.ec)}
    if isinstance(s, ECScheme):
        return {
            "t": "ec", "kind": s.kind.value, "k": s.k, "n": s.n,
            "lg": s.local_groups, "rg": s.r_global, "ap": s.anticipate_parities,
        }
    raise TypeError(f"unknown scheme type {type(s).__name__}")


def decode_scheme(d: Dict[str, Any]) -> RedundancyScheme:
    t = d["t"]
    if t == "rep":
        return Replication(copies=d["c"])
    if t == "hy":
        return HybridScheme(copies=d["c"], ec=decode_scheme(d["ec"]))
    if t == "ec":
        return ECScheme(
            kind=CodeKind(d["kind"]), k=d["k"], n=d["n"],
            local_groups=d["lg"], r_global=d["rg"], anticipate_parities=d["ap"],
        )
    raise JournalError(f"unknown scheme tag {t!r}")


def encode_chunk(c: ChunkMeta) -> List[Any]:
    return [c.chunk_id, c.node_id, c.kind.value, c.size]


def decode_chunk(d: List[Any]) -> ChunkMeta:
    return ChunkMeta(_intern(d[0]), _intern(d[1]), ChunkKind(d[2]), d[3])


def encode_stripe(s: ECStripeMeta) -> Dict[str, Any]:
    return {
        "i": s.stripe_index, "k": s.k, "n": s.n,
        "d": [encode_chunk(c) for c in s.data],
        "p": [encode_chunk(c) for c in s.parities],
    }


def decode_stripe(d: Dict[str, Any]) -> ECStripeMeta:
    return ECStripeMeta(
        stripe_index=d["i"], k=d["k"], n=d["n"],
        data=[decode_chunk(c) for c in d["d"]],
        parities=[decode_chunk(c) for c in d["p"]],
    )


def encode_block(b: ReplicaBlockMeta) -> Dict[str, Any]:
    return {
        "i": b.block_index, "fc": b.first_chunk, "nc": b.n_chunks,
        "c": [encode_chunk(c) for c in b.copies],
    }


def decode_block(d: Dict[str, Any]) -> ReplicaBlockMeta:
    return ReplicaBlockMeta(
        block_index=d["i"], first_chunk=d["fc"], n_chunks=d["nc"],
        copies=[decode_chunk(c) for c in d["c"]],
    )


def encode_file(m: FileMeta) -> Dict[str, Any]:
    return {
        "name": m.name, "size": m.size, "cs": m.chunk_size,
        "scheme": encode_scheme(m.scheme),
        "st": [encode_stripe(s) for s in m.stripes],
        "rb": [encode_block(b) for b in m.replica_blocks],
        "state": m.state.value, "v": m.version,
    }


def decode_file(d: Dict[str, Any]) -> FileMeta:
    return FileMeta(
        name=_intern(d["name"]), size=d["size"], chunk_size=d["cs"],
        scheme=decode_scheme(d["scheme"]),
        stripes=[decode_stripe(s) for s in d["st"]],
        replica_blocks=[decode_block(b) for b in d["rb"]],
        state=FileState(d["state"]), version=d["v"],
    )


def encode_group(g: ConversionGroup) -> Dict[str, Any]:
    return {
        "f": g.file_name, "g": g.group_index,
        "init": list(g.initial_stripe_indices), "nf": g.n_final_stripes,
        "t": encode_scheme(g.target_scheme),
    }


def decode_group(d: Dict[str, Any]) -> ConversionGroup:
    return ConversionGroup(
        file_name=_intern(d["f"]), group_index=d["g"],
        initial_stripe_indices=list(d["init"]), n_final_stripes=d["nf"],
        target_scheme=decode_scheme(d["t"]),
    )


def encode_job(j: TranscodeJob) -> Dict[str, Any]:
    return {
        "f": j.file_name, "t": encode_scheme(j.target_scheme),
        "g": [encode_group(g) for g in j.groups],
        "pb": j.pending_bits, "tb": j.total_bits,
        "ns": [[g, i, encode_stripe(s)] for (g, i), s in sorted(j.new_stripes.items())],
        "dl": j.deadline,
    }


def decode_job(d: Dict[str, Any]) -> TranscodeJob:
    return TranscodeJob(
        file_name=_intern(d["f"]), target_scheme=decode_scheme(d["t"]),
        groups=[decode_group(g) for g in d["g"]],
        pending_bits=d["pb"], total_bits=d["tb"],
        new_stripes={(g, i): decode_stripe(s) for g, i, s in d["ns"]},
        deadline=d["dl"],
    )


# -- canonical state ----------------------------------------------------------

def encode_state(nn: Namenode) -> Dict[str, Any]:
    """Canonical durable state, built on ``snapshot(include_transcode=True)``.

    Files appear in registration order (dict order); the per-node index
    and absolute ``_file_order`` values are derived caches and excluded.
    """
    snap = nn.snapshot(include_transcode=True)
    return {
        "files": [encode_file(m) for m in snap["files"].values()],
        "chunk_seq": snap["chunk_seq"],
        "atq": [encode_group(g) for g in snap["atq"]],
        "utm": [encode_job(j) for j in snap["utm"].values()],
    }


def load_state(nn: Namenode, doc: Dict[str, Any]) -> None:
    """Reset ``nn`` to the decoded canonical state (recovery path)."""
    nn.files = {}
    nn.atq = deque()
    nn.utm = {}
    nn._node_files = {}
    nn._file_order = {}
    nn._file_seq = 0
    nn._chunk_seq = doc["chunk_seq"]
    for fd in doc["files"]:
        meta = decode_file(fd)
        nn.files[meta.name] = meta
        nn._file_seq += 1
        nn._file_order[meta.name] = nn._file_seq
        Namenode.note_file(nn, meta)
    for gd in doc["atq"]:
        nn.atq.append(decode_group(gd))
    for jd in doc["utm"]:
        job = decode_job(jd)
        nn.utm[job.file_name] = job


def state_digest(nn: Namenode) -> str:
    """sha256 over the canonical state — the byte-identity oracle."""
    payload = json.dumps(encode_state(nn), **_JSON).encode()
    return hashlib.sha256(payload).hexdigest()


# -- the log ------------------------------------------------------------------

class Journal:
    """Append-only record log, in-memory or file-backed.

    The full log is mirrored in memory (``data``); file-backed journals
    append-through and compact via write-new + ``os.replace``.  Opening
    an existing file validates every record: a torn tail is truncated
    (in memory *and* on disk), corruption before the tail raises
    :class:`JournalError`.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 fail_after: Optional[int] = None):
        self.path = Path(path) if path is not None else None
        #: crash injection: raise JournalCrash *before* appending record
        #: number ``fail_after`` (0-based count of records already in the
        #: log), simulating process death at that record boundary.
        self.fail_after = fail_after
        self._buf = bytearray()
        self._offsets: List[int] = []
        self._fh = None
        self.snapshots = 0
        self.records_since_snapshot = 0
        self.appended_total = 0
        if self.path is not None and self.path.exists():
            raw = self.path.read_bytes()
            valid = self._load(raw)
            if valid != len(raw):
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid)

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def data(self) -> bytes:
        return bytes(self._buf)

    @property
    def byte_size(self) -> int:
        return len(self._buf)

    def stats(self) -> Dict[str, int]:
        return {
            "records": len(self._offsets),
            "bytes": len(self._buf),
            "snapshots": self.snapshots,
            "records_since_snapshot": self.records_since_snapshot,
            "appended_total": self.appended_total,
        }

    # -- scanning -------------------------------------------------------------
    def _load(self, raw: bytes) -> int:
        """Validate ``raw`` into this (empty) journal; return valid length."""
        offsets: List[int] = []
        pos, end = 0, len(raw)
        snapshots = since = 0
        while pos < end:
            if end - pos < _HEADER.size:
                break  # torn header at the tail
            length, version, opcode, crc = _HEADER.unpack_from(raw, pos)
            body_at = pos + _HEADER.size
            torn = (
                length > _MAX_PAYLOAD
                or body_at + length > end
                or zlib.crc32(raw[body_at:body_at + length]) != crc
            )
            if torn:
                # Damage that does not reach EOF is corruption, not a
                # crash artifact — refuse to silently drop good records.
                if body_at + min(length, _MAX_PAYLOAD) < end:
                    raise JournalError(f"corrupt record at offset {pos}")
                break
            if version > RECORD_VERSION:
                raise JournalError(
                    f"record version {version} > supported {RECORD_VERSION}"
                )
            offsets.append(pos)
            if opcode == Op.SNAPSHOT:
                snapshots += 1
                since = 0
            else:
                since += 1
            pos = body_at + length
        self._buf = bytearray(raw[:pos])
        self._offsets = offsets
        self.snapshots = snapshots
        self.records_since_snapshot = since
        return pos

    def records(self) -> Iterator[Tuple[Op, Dict[str, Any]]]:
        """Decoded (opcode, payload) pairs; offsets were validated on load."""
        buf = self._buf
        for start in self._offsets:
            length, _version, opcode, _crc = _HEADER.unpack_from(buf, start)
            body_at = start + _HEADER.size
            payload = json.loads(bytes(buf[body_at:body_at + length]))
            yield Op(opcode), payload

    def prefix(self, n: int) -> "Journal":
        """In-memory copy of the first ``n`` records (crash-test harness)."""
        end = len(self._buf) if n >= len(self._offsets) else self._offsets[n]
        j = Journal()
        j._load(bytes(self._buf[:end]))
        return j

    # -- writing --------------------------------------------------------------
    def append(self, op: Op, payload: Dict[str, Any]) -> int:
        """Append one record; returns its index.  Raises
        :class:`JournalCrash` before writing when fault injection fires."""
        if self.fail_after is not None and len(self._offsets) >= self.fail_after:
            raise JournalCrash(
                f"injected crash before record {len(self._offsets)}"
            )
        body = json.dumps(payload, **_JSON).encode()
        rec = _HEADER.pack(len(body), RECORD_VERSION, int(op), zlib.crc32(body)) + body
        index = len(self._offsets)
        self._offsets.append(len(self._buf))
        self._buf += rec
        self.appended_total += 1
        if op is Op.SNAPSHOT:
            self.snapshots += 1
            self.records_since_snapshot = 0
        else:
            self.records_since_snapshot += 1
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "ab")
            self._fh.write(rec)
            self._fh.flush()
        return index

    def rewrite(self, records: Iterable[Tuple[Op, Dict[str, Any]]]) -> None:
        """Atomically replace the log's contents (snapshot compaction).

        File-backed logs write a sibling temp file and ``os.replace`` it
        in, so a crash mid-compaction leaves the old log intact.
        """
        fresh = Journal()
        for op, payload in records:
            fresh.append(op, payload)
        if self.path is not None:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            tmp = self.path.with_name(self.path.name + ".compact")
            tmp.write_bytes(fresh.data)
            os.replace(tmp, self.path)
        self._buf = fresh._buf
        self._offsets = fresh._offsets
        self.snapshots = fresh.snapshots
        self.records_since_snapshot = fresh.records_since_snapshot
        self.appended_total += len(fresh._offsets)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- in-place metadata merge (NOTE replay) ------------------------------------
#
# A NOTE record upserts one file's full metadata.  Replay merges it into
# the live FileMeta *in place*, position-matched, so chunk objects keep
# their identity: mid-transcode, a file's old data chunks are shared
# between ``files[name].stripes`` and the UTM job's accumulated new
# stripes, and a repair that moves one must be visible through both —
# exactly as it is live, where the repair mutates the shared object.

def _merge_chunk(c: ChunkMeta, d: List[Any]) -> None:
    c.chunk_id = _intern(d[0])
    c.node_id = _intern(d[1])
    c.kind = ChunkKind(d[2])
    c.size = d[3]


def _merge_list(live: list, docs: list, decode: Callable, merge: Callable) -> None:
    del live[len(docs):]
    for i, d in enumerate(docs):
        if i < len(live):
            merge(live[i], d)
        else:
            live.append(decode(d))


def _merge_stripe(s: ECStripeMeta, d: Dict[str, Any]) -> None:
    s.stripe_index, s.k, s.n = d["i"], d["k"], d["n"]
    _merge_list(s.data, d["d"], decode_chunk, _merge_chunk)
    _merge_list(s.parities, d["p"], decode_chunk, _merge_chunk)


def _merge_block(b: ReplicaBlockMeta, d: Dict[str, Any]) -> None:
    b.block_index, b.first_chunk, b.n_chunks = d["i"], d["fc"], d["nc"]
    _merge_list(b.copies, d["c"], decode_chunk, _merge_chunk)


def merge_file(meta: FileMeta, d: Dict[str, Any]) -> None:
    """Mutate ``meta`` to match an encoded file document, in place."""
    meta.size = d["size"]
    meta.chunk_size = d["cs"]
    meta.scheme = decode_scheme(d["scheme"])
    meta.state = FileState(d["state"])
    meta.version = d["v"]
    _merge_list(meta.stripes, d["st"], decode_stripe, _merge_stripe)
    _merge_list(meta.replica_blocks, d["rb"], decode_block, _merge_block)


# -- the journaled namenode ---------------------------------------------------

class JournaledNamenode(Namenode):
    """A Namenode whose every mutation is durable in an op-log journal.

    Write-behind: the mutation is applied in memory first (validation
    errors produce no record), then one record is appended.  A crash
    between the two loses only the op the caller never saw acknowledged.
    ``compact_every`` > 0 folds the log into a single SNAPSHOT record
    whenever that many records accumulate past the last snapshot.
    """

    def __init__(self, journal: Optional[Journal] = None, compact_every: int = 0):
        super().__init__()
        self.journal = Journal() if journal is None else journal
        self.compact_every = compact_every
        #: records replayed by the last recover() that built this node
        self.replayed = 0
        #: test hook: called as ``after_append(node, op)`` once a record
        #: has landed (used by the crash sweep to pin per-boundary digests)
        self.after_append: Optional[Callable[["JournaledNamenode", Op], None]] = None
        self._suspended = False

    # -- logging core ---------------------------------------------------------
    def _log(self, op: Op, payload: Dict[str, Any]) -> None:
        self.journal.append(op, payload)
        if self.after_append is not None:
            self.after_append(self, op)
        if (
            self.compact_every
            and self.journal.records_since_snapshot >= self.compact_every
        ):
            self.compact()

    def compact(self) -> None:
        """Fold the whole log into one SNAPSHOT of the current state."""
        self.journal.rewrite([(Op.SNAPSHOT, encode_state(self))])

    def stats(self) -> Dict[str, int]:
        out = self.journal.stats()
        out["replayed"] = self.replayed
        return out

    def metadata_stats(self) -> Dict[str, Any]:
        out = super().metadata_stats()
        s = self.journal.stats()
        out.update(
            journal_records=s["records"],
            journal_bytes=s["bytes"],
            journal_snapshots=s["snapshots"],
            journal_since_snapshot=s["records_since_snapshot"],
            replayed=self.replayed,
        )
        return out

    # -- recovery -------------------------------------------------------------
    @classmethod
    def recover(cls, journal: Journal, compact_every: int = 0) -> "JournaledNamenode":
        """Rebuild a namenode from its journal: restore the last SNAPSHOT
        record (if any), replay everything after it."""
        node = cls(journal=Journal(), compact_every=0)
        node._suspended = True
        replayed = 0
        try:
            for op, payload in journal.records():
                node._apply(op, payload)
                replayed += 1
        finally:
            node._suspended = False
        node.journal = journal
        node.compact_every = compact_every
        node.replayed = replayed
        return node

    def _apply(self, op: Op, p: Dict[str, Any]) -> None:
        if op is Op.SNAPSHOT:
            load_state(self, p)
        elif op is Op.REGISTER:
            self.register_file(decode_file(p["f"]))
        elif op is Op.REGISTER_BATCH:
            self.register_files([decode_file(fd) for fd in p["fs"]])
        elif op is Op.UNREGISTER:
            self.unregister_file(p["n"])
        elif op is Op.RENAME:
            self.rename(p["o"], p["n"])
        elif op is Op.NOTE:
            meta = self.files.get(p["n"])
            if meta is not None:
                merge_file(meta, p["f"])
                Namenode.note_file(self, meta)
        elif op is Op.MINT:
            self._chunk_seq += p["c"]
        elif op is Op.ENQUEUE:
            self.enqueue_transcode(
                p["n"], decode_scheme(p["t"]),
                [decode_group(g) for g in p["g"]], p["p"], deadline=p["dl"],
            )
        elif op is Op.POLL:
            if p["n"] is None:
                self.poll_work(p["m"])
            else:
                self.poll_work_for(p["n"], p["m"])
        elif op is Op.COMPLETE:
            self.complete_parity(p["n"], p["g"], p["i"], p["j"], p["p"])
        elif op is Op.NEW_STRIPE:
            self._apply_new_stripe(p)
        elif op is Op.FINALIZE:
            self.try_finalize(p["n"])
        elif op is Op.ABORT:
            self.abort_transcode(p["n"])
        else:  # pragma: no cover - scan already validated opcodes
            raise JournalError(f"unknown opcode {op}")

    def _apply_new_stripe(self, p: Dict[str, Any]) -> None:
        stripe = decode_stripe(p["s"])
        meta = self.files.get(p["n"])
        if meta is not None:
            # Re-link data chunks to the live objects they were built
            # from, so later in-place repairs stay visible through both
            # the old stripes and the accumulating new ones (identity
            # sharing, exactly as the live transcoder produced it).
            by_id = {c.chunk_id: c for c in meta.all_chunks()}
            stripe.data = [by_id.get(c.chunk_id, c) for c in stripe.data]
        self.record_new_stripe(p["n"], p["g"], p["i"], stripe)

    # -- journaled mutators ---------------------------------------------------
    # Pattern: while _suspended (replay, or a nested call from another
    # mutator) delegate straight to super().  Otherwise apply with
    # nested logging suppressed, then append exactly one record.

    def register_file(self, meta: FileMeta) -> None:
        if self._suspended:
            return super().register_file(meta)
        self._suspended = True
        try:
            super().register_file(meta)
        finally:
            self._suspended = False
        self._log(Op.REGISTER, {"f": encode_file(meta)})

    def register_files(self, metas: Iterable[FileMeta]) -> None:
        metas = list(metas)
        if self._suspended:
            return super().register_files(metas)
        # Pre-validate so the journaled batch is atomic: either every
        # file registers and one record lands, or none do.
        files = self.files
        for meta in metas:
            if meta.name in files:
                raise ValueError(f"file exists: {meta.name}")
        self._suspended = True
        try:
            super().register_files(metas)
        finally:
            self._suspended = False
        self._log(Op.REGISTER_BATCH, {"fs": [encode_file(m) for m in metas]})

    def unregister_file(self, name: str) -> FileMeta:
        if self._suspended:
            return super().unregister_file(name)
        self._suspended = True
        try:
            meta = super().unregister_file(name)
        finally:
            self._suspended = False
        self._log(Op.UNREGISTER, {"n": name})
        return meta

    def rename(self, old: str, new: str) -> None:
        if self._suspended:
            return super().rename(old, new)
        self._suspended = True
        try:
            super().rename(old, new)
        finally:
            self._suspended = False
        self._log(Op.RENAME, {"o": old, "n": new})

    def note_chunk(self, node_id: str, file_name: str) -> None:
        super().note_chunk(node_id, file_name)
        if self._suspended:
            return
        meta = self.files.get(file_name)
        if meta is not None:
            self._log(Op.NOTE, {"n": file_name, "f": encode_file(meta)})

    def note_file(self, meta: FileMeta) -> None:
        super().note_file(meta)
        if self._suspended:
            return
        current = self.files.get(meta.name)
        if current is not None:
            self._log(Op.NOTE, {"n": current.name, "f": encode_file(current)})

    def next_chunk_id(self, prefix: str) -> str:
        out = super().next_chunk_id(prefix)
        if not self._suspended:
            self._log(Op.MINT, {"c": 1})
        return out

    def next_chunk_ids(self, prefix: str, count: int) -> List[str]:
        out = super().next_chunk_ids(prefix, count)
        if not self._suspended:
            self._log(Op.MINT, {"c": count})
        return out

    def enqueue_transcode(self, name, target_scheme, groups,
                          parities_per_final_stripe, deadline=None):
        if self._suspended:
            return super().enqueue_transcode(
                name, target_scheme, groups, parities_per_final_stripe, deadline
            )
        self._suspended = True
        try:
            job = super().enqueue_transcode(
                name, target_scheme, groups, parities_per_final_stripe, deadline
            )
        finally:
            self._suspended = False
        self._log(Op.ENQUEUE, {
            "n": name, "t": encode_scheme(target_scheme),
            "g": [encode_group(g) for g in groups],
            "p": parities_per_final_stripe, "dl": deadline,
        })
        return job

    def poll_work(self, max_items: int = 8):
        out = super().poll_work(max_items)
        if out and not self._suspended:
            self._log(Op.POLL, {"n": None, "m": max_items})
        return out

    def poll_work_for(self, name: str, max_items: int = 8):
        out = super().poll_work_for(name, max_items)
        if out and not self._suspended:
            self._log(Op.POLL, {"n": name, "m": max_items})
        return out

    def complete_parity(self, name, group_index, final_idx, parity_j,
                        parities_per_final_stripe) -> None:
        if self._suspended:
            return super().complete_parity(
                name, group_index, final_idx, parity_j, parities_per_final_stripe
            )
        self._suspended = True
        try:
            super().complete_parity(
                name, group_index, final_idx, parity_j, parities_per_final_stripe
            )
        finally:
            self._suspended = False
        self._log(Op.COMPLETE, {
            "n": name, "g": group_index, "i": final_idx,
            "j": parity_j, "p": parities_per_final_stripe,
        })

    def record_new_stripe(self, name, group_index, final_idx, stripe) -> None:
        if self._suspended:
            return super().record_new_stripe(name, group_index, final_idx, stripe)
        self._suspended = True
        try:
            super().record_new_stripe(name, group_index, final_idx, stripe)
        finally:
            self._suspended = False
        self._log(Op.NEW_STRIPE, {
            "n": name, "g": group_index, "i": final_idx, "s": encode_stripe(stripe),
        })

    def try_finalize(self, name: str):
        if self._suspended:
            return super().try_finalize(name)
        self._suspended = True
        try:
            out = super().try_finalize(name)
        finally:
            self._suspended = False
        if out is not None:
            self._log(Op.FINALIZE, {"n": name})
        return out

    def abort_transcode(self, name: str) -> None:
        if self._suspended:
            return super().abort_transcode(name)
        had_job = name in self.utm
        self._suspended = True
        try:
            super().abort_transcode(name)
        finally:
            self._suspended = False
        if had_job:
            self._log(Op.ABORT, {"n": name})
