"""Transcode execution: native CC/LRCC conversions and baseline RRW.

The native path executes :class:`ConversionGroup` work items the Namenode
queued (ATQ -> UTM), moving only the chunks the conversion plan names:

* same-r merges read co-located old parities **locally** on each parity
  node and write the merged parity back locally — zero network IO (§5.3);
* split/general-regime data reads are transferred to every parity node
  that combines them;
* completion of each new parity clears a UTM bit; when the file's bitmap
  empties, the Namenode performs the atomic metadata switch and only then
  are the old parities deleted (crash consistency, §6.2).

The RRW path is the baseline: the *client* reads the whole file, re-
encodes it, writes it as a new file and deletes the original.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.codes.base import Stripe
from repro.codes.convertible import plan_conversion, convert
from repro.codes.lrcc import (
    LocallyRecoverableConvertibleCode,
    convert_cc_to_lrcc,
    convert_lrcc_to_lrcc,
)
from repro.core.schemes import CodeKind, ECScheme
from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta
from repro.dfs.namenode import ConversionGroup


class TranscodeError(RuntimeError):
    """A conversion group could not be executed."""


class NativeTranscoder:
    """Executes queued conversion groups against the datanodes."""

    def __init__(self, fs):
        self.fs = fs

    # -- work loop ------------------------------------------------------------
    def run_pending(self, name: str, max_per_heartbeat: int = 8) -> None:
        """Drain the ATQ for a file, then finalize (the heartbeat loop).

        Work flows through a private, unthrottled maintenance scheduler:
        each ATQ batch becomes a tick of :class:`ConversionGroupTask`s.
        ``max_attempts=1`` keeps the inline path fail-fast — an
        unexecutable group (planner/width errors) surfaces to the caller
        as the original exception, via the scheduler's dead-letter list.
        """
        from repro.sched.policies import SchedulerPolicy
        from repro.sched.scheduler import MaintenanceScheduler
        from repro.sched.tasks import ConversionGroupTask, TranscodeFinalizeTask

        namenode = self.fs.namenode
        job = namenode.utm.get(name)
        deadline = job.deadline if job is not None else None
        sched = MaintenanceScheduler(self.fs, SchedulerPolicy(max_attempts=1))
        while True:
            groups = namenode.poll_work_for(name, max_per_heartbeat)
            if not groups:
                break
            for group in groups:
                sched.submit(ConversionGroupTask(group, deadline=deadline))
            sched.run_until_drained()
            if sched.dead_letter:
                raise sched.dead_letter[0].last_error
        sched.submit(TranscodeFinalizeTask(name))
        sched.run_until_drained()
        if sched.dead_letter:
            raise sched.dead_letter[0].last_error

    # -- group execution ----------------------------------------------------------
    def execute_group(self, group: ConversionGroup) -> None:
        with self.fs.obs.span(
            "transcode", file=group.file_name, group=group.group_index
        ):
            self._execute_group_impl(group)

    def _execute_group_impl(self, group: ConversionGroup) -> None:
        meta = self.fs.namenode.lookup(group.file_name)
        target = group.target_scheme
        ec = target.ec if hasattr(target, "ec") else target
        if not isinstance(ec, ECScheme):
            raise TranscodeError(f"cannot natively transcode into {target}")
        if ec.kind is CodeKind.CC:
            self._execute_cc_group(meta, group, ec)
        elif ec.kind is CodeKind.LRCC:
            self._execute_lrcc_group(meta, group, ec)
        else:
            raise TranscodeError(f"native transcode needs a convertible code, got {ec}")

    def _load_stripes(
        self,
        meta: FileMeta,
        stripe_metas: List[ECStripeMeta],
        data_reads,
        parity_reads,
        parity_targets: Dict[int, str],
    ) -> List[Stripe]:
        """Fetch exactly the planned chunks into Stripe objects.

        ``parity_targets`` maps final parity index j -> computing node, so
        network transfers can be charged for every remote read.
        """
        k_i = stripe_metas[0].k
        stripes = [
            Stripe(sm.k, sm.n, [None] * sm.n) for sm in stripe_metas
        ]
        for t in sorted(data_reads):
            stripe_i, local = divmod(t, k_i)
            chunk = stripe_metas[stripe_i].data[local]
            data = self._read_or_reconstruct(meta, stripe_metas[stripe_i], local)
            stripes[stripe_i].chunks[local] = data
            # Every parity-computing node combines this chunk.
            for node in set(parity_targets.values()):
                self.fs.metrics.record_transfer(
                    chunk.node_id, node, float(data.nbytes), at=self.fs.clock, tag="transcode"
                )
        for (i, j) in sorted(parity_reads):
            chunk = stripe_metas[i].parities[j]
            data = self._read_or_reconstruct(
                meta, stripe_metas[i], stripe_metas[i].k + j
            )
            stripes[i].chunks[stripe_metas[i].k + j] = data
            target_node = parity_targets.get(j)
            if target_node is not None:
                self.fs.metrics.record_transfer(
                    chunk.node_id, target_node, float(data.nbytes), at=self.fs.clock, tag="transcode"
                )
        return stripes

    def _read_or_reconstruct(
        self, meta: FileMeta, stripe_meta: ECStripeMeta, index: int
    ):
        """Read a planned chunk, reconstructing it if its home is down.

        A transcode must not fail because a source chunk is temporarily
        unavailable — the paper keeps old stripes fully serviceable
        throughout; a degraded transcode simply decodes the needed chunk
        from the stripe's survivors (metered like any degraded read).
        """
        chunk = stripe_meta.all_chunks()[index]
        datanode = self.fs.datanodes[chunk.node_id]
        if datanode.is_alive and datanode.has_chunk(chunk.chunk_id):
            return datanode.read(chunk.chunk_id, at=self.fs.clock)
        code = self.fs.codec_for_stripe(meta, stripe_meta)
        available = {}
        for idx, other in enumerate(stripe_meta.all_chunks()):
            if idx == index:
                continue
            dn = self.fs.datanodes[other.node_id]
            if dn.is_alive and dn.has_chunk(other.chunk_id):
                available[idx] = dn.read(other.chunk_id, at=self.fs.clock)
                if len(available) >= stripe_meta.k:
                    break
        recovered = code.decode(available, [index])
        self.fs.charge_node_encode(
            chunk.node_id, stripe_meta.k, 1, meta.chunk_size
        )
        return recovered[index]

    def _parity_targets(
        self, stripe_metas: List[ECStripeMeta], n_parities: int
    ) -> Dict[int, str]:
        """Computing node per final parity: the old parity-j home.

        Under Morph's co-located placement every constituent stripe's
        parity j lives on one node, so the merge is local there. With
        unplanned placement we fall back to the first stripe's parity-j
        node (remote reads get charged as network IO).
        """
        targets: Dict[int, str] = {}
        for j in range(n_parities):
            homes = [
                sm.parities[j].node_id for sm in stripe_metas if j < len(sm.parities)
            ]
            targets[j] = homes[0] if homes else stripe_metas[0].data[0].node_id
        return targets

    def _execute_cc_group(self, meta: FileMeta, group: ConversionGroup, ec: ECScheme) -> None:
        stripe_metas = [meta.stripes[i] for i in group.initial_stripe_indices]
        k_i = stripe_metas[0].k
        r_i = stripe_metas[0].n - k_i
        total_data = sum(sm.k for sm in stripe_metas)
        if any(sm.k != k_i for sm in stripe_metas[:-1]):
            raise TranscodeError("conversion group has inconsistent widths")
        if ec.r > r_i:
            # Parity growth: needs the bandwidth-optimal vector-code path
            # (only valid when the stripes were encoded anticipating it).
            self._execute_bwo_group(meta, group, ec, stripe_metas)
            return
        # Short tail groups merge into one stripe of their own total width.
        k_f = ec.k if total_data % ec.k == 0 else total_data
        r_f = ec.r
        initial = self.fs.cc_codec(k_i, k_i + r_i)
        final = self.fs.cc_codec(k_f, k_f + r_f)
        plan = plan_conversion(initial, final, len(stripe_metas))
        targets = self._parity_targets(stripe_metas, r_f)
        stripes = self._load_stripes(
            meta, stripe_metas, plan.data_reads, plan.parity_reads, targets
        )
        finals, _io = convert(initial, final, stripes, plan)
        chunk_size = meta.chunk_size
        for m, final_stripe in enumerate(finals):
            new_meta = self._assemble_final_meta(
                meta, group, m, stripe_metas, final_stripe, k_i, targets
            )
            # Without k*-aware placement, merge partners may share servers;
            # reliability demands moving the colliding chunks (§5.3 — the
            # IO Morph's data-separation policy designs away).
            self._relocate_collisions(meta, new_meta)
            # Write the new parities (local when co-located) and charge CPU
            # proportional to the combination width on each parity node.
            for j in range(r_f):
                node = targets[j]
                self.fs.datanodes[node].store_local(
                    new_meta.parities[j].chunk_id,
                    final_stripe.chunks[final_stripe.k + j],
                    at=self.fs.clock,
                )
                self.fs.checksums.record(
                    new_meta.parities[j].chunk_id,
                    final_stripe.chunks[final_stripe.k + j],
                )
                width = len(stripe_metas) + len(plan.data_reads)
                self.fs.charge_node_encode(node, width, 1, chunk_size)
                self.fs.namenode.complete_parity(
                    meta.name, group.group_index, m, j, r_f
                )
            self.fs.namenode.record_new_stripe(meta.name, group.group_index, m, new_meta)

    def _execute_bwo_group(
        self,
        meta: FileMeta,
        group: ConversionGroup,
        ec: ECScheme,
        stripe_metas: List[ECStripeMeta],
    ) -> None:
        """Merge BWO-encoded stripes into a wider stripe with more parities.

        Reads every old parity in full plus only the **tail fraction**
        ``(r_F - r_I) / r_F`` of each data chunk (hop-and-couple: one
        contiguous range per chunk, metered as a partial read).
        """
        from repro.codes.bandwidth import BandwidthOptimalCC

        source = meta.scheme.ec if hasattr(meta.scheme, "ec") else meta.scheme
        if (
            not isinstance(source, ECScheme)
            or source.anticipate_parities != ec.r
        ):
            raise TranscodeError(
                "parity growth requires stripes encoded with "
                f"anticipate_parities={ec.r}"
            )
        k_i = stripe_metas[0].k
        r_i = stripe_metas[0].n - k_i
        r_f = ec.r
        lam = len(stripe_metas)
        if ec.k != lam * k_i:
            raise TranscodeError("BWO conversion supports the merge regime only")
        bwo = BandwidthOptimalCC(k_i, r_i, r_f, family_width=ec.k)
        final = self.fs.cc_codec(ec.k, ec.n)
        chunk_size = meta.chunk_size
        sublen = chunk_size // r_f
        tail_start = r_i * sublen
        targets = self._parity_targets(stripe_metas, r_i)
        # Extra parity homes: reuse placement's reserved parity nodes.
        placement = self.fs._placement_for(meta.name, ec)
        first_chunk = group.initial_stripe_indices[0] * k_i
        for j in range(r_i, r_f):
            try:
                targets[j] = placement.parity_node(meta.name, first_chunk, j)
            except Exception:
                targets[j] = targets[0]

        stripes = []
        for sm in stripe_metas:
            chunks: List[Optional[np.ndarray]] = []
            for t, chunk in enumerate(sm.data):
                dn = self.fs.datanodes[chunk.node_id]
                tail = dn.read_range(
                    chunk.chunk_id, tail_start, chunk_size - tail_start, at=self.fs.clock
                )
                padded = np.zeros(chunk_size, dtype=np.uint8)
                padded[tail_start:] = tail
                chunks.append(padded)
                for node in set(targets.values()):
                    self.fs.metrics.record_transfer(
                        chunk.node_id,
                        node,
                        float(chunk_size - tail_start),
                        at=self.fs.clock,
                        tag="transcode",
                    )
            for j, parity in enumerate(sm.parities):
                dn = self.fs.datanodes[parity.node_id]
                data = dn.read(parity.chunk_id, at=self.fs.clock)
                chunks.append(data)
                self.fs.metrics.record_transfer(
                    parity.node_id,
                    targets.get(j, targets[0]),
                    float(data.nbytes),
                    at=self.fs.clock,
                    tag="transcode",
                )
            stripes.append(Stripe(sm.k, sm.n, chunks))
        merged, _io = bwo.convert_merge(stripes, final)
        new_meta = self._assemble_final_meta(
            meta, group, 0, stripe_metas, merged, k_i, targets
        )
        self._relocate_collisions(meta, new_meta)
        for j in range(r_f):
            node = targets[j]
            self.fs.datanodes[node].store_local(
                new_meta.parities[j].chunk_id,
                merged.chunks[merged.k + j],
                at=self.fs.clock,
            )
            self.fs.checksums.record(
                new_meta.parities[j].chunk_id, merged.chunks[merged.k + j]
            )
            self.fs.charge_node_encode(node, lam * r_i + ec.k, 1, chunk_size)
            self.fs.namenode.complete_parity(meta.name, group.group_index, 0, j, r_f)
        self.fs.namenode.record_new_stripe(meta.name, group.group_index, 0, new_meta)

    def _relocate_collisions(self, meta: FileMeta, stripe: ECStripeMeta) -> None:
        """Move data chunks so no two chunks of the stripe share a node."""
        seen = {p.node_id for p in stripe.parities}
        for chunk in stripe.data:
            if chunk.node_id not in seen:
                seen.add(chunk.node_id)
                continue
            fresh = next(
                (
                    node.node_id
                    for node in self.fs.cluster.alive_nodes()
                    if node.node_id not in seen
                ),
                None,
            )
            if fresh is None:
                # Cluster too small/degraded to fully separate this stripe:
                # tolerate the collision (capacity pressure trade-off).
                continue
            source = self.fs.datanodes[chunk.node_id]
            data = source.read(chunk.chunk_id, at=self.fs.clock)
            new_id = self.fs.namenode.next_chunk_id(f"{meta.name}/moved")
            self.fs.datanodes[fresh].receive_to_disk(
                new_id, data, src=chunk.node_id, at=self.fs.clock
            )
            self.fs.checksums.forget(chunk.chunk_id)
            self.fs.checksums.record(new_id, data)
            source.delete(chunk.chunk_id)
            chunk.chunk_id = new_id
            chunk.node_id = fresh
            self.fs.namenode.note_chunk(fresh, meta.name)
            seen.add(fresh)

    def _assemble_final_meta(
        self,
        meta: FileMeta,
        group: ConversionGroup,
        m: int,
        stripe_metas: List[ECStripeMeta],
        final_stripe: Stripe,
        k_i: int,
        targets: Dict[int, str],
        parity_kinds: Optional[List[ChunkKind]] = None,
    ) -> ECStripeMeta:
        """Build the final stripe's metadata, reusing data-chunk homes."""
        data_metas: List[ChunkMeta] = []
        for t in range(m * final_stripe.k, (m + 1) * final_stripe.k):
            stripe_i, local = divmod(t, k_i)
            data_metas.append(stripe_metas[stripe_i].data[local])
        parity_metas: List[ChunkMeta] = []
        r_f = final_stripe.n - final_stripe.k
        for j in range(r_f):
            kind = parity_kinds[j] if parity_kinds else ChunkKind.PARITY
            parity_metas.append(
                ChunkMeta(
                    chunk_id=self.fs.namenode.next_chunk_id(f"{meta.name}/t{meta.version+1}/g{group.group_index}s{m}p{j}"),
                    node_id=targets[j],
                    kind=kind,
                    size=meta.chunk_size,
                )
            )
        return ECStripeMeta(
            stripe_index=0,  # renumbered at finalize
            k=final_stripe.k,
            n=final_stripe.n,
            data=data_metas,
            parities=parity_metas,
        )

    def _execute_lrcc_group(self, meta: FileMeta, group: ConversionGroup, ec: ECScheme) -> None:
        stripe_metas = [meta.stripes[i] for i in group.initial_stripe_indices]
        k_i = stripe_metas[0].k
        source_ec = meta.scheme.ec if hasattr(meta.scheme, "ec") else meta.scheme
        final = self.fs.lrcc_codec(ec.k, ec.local_groups, ec.r_global)
        chunk_size = meta.chunk_size
        n_parities = ec.local_groups + ec.r_global
        if isinstance(source_ec, ECScheme) and source_ec.kind is CodeKind.LRCC:
            initial = self.fs.lrcc_codec(
                source_ec.k, source_ec.local_groups, source_ec.r_global
            )
            # Reads: all local parities + the globals that merge.
            parity_reads = [
                (i, g) for i in range(len(stripe_metas)) for g in range(initial.l)
            ] + [
                (i, initial.l + j)
                for i in range(len(stripe_metas))
                for j in range(ec.r_global)
            ]
            targets = self._lrcc_targets(stripe_metas, initial, final)
            stripes = self._load_stripes(meta, stripe_metas, [], parity_reads, targets)
            final_stripe, _io = convert_lrcc_to_lrcc(initial, final, stripes)
        else:
            initial = self.fs.cc_codec(k_i, stripe_metas[0].n)
            parity_reads = [
                (i, j)
                for i in range(len(stripe_metas))
                for j in range(ec.r_global + 1)
            ]
            targets = self._lrcc_targets(stripe_metas, None, final)
            stripes = self._load_stripes(meta, stripe_metas, [], parity_reads, targets)
            final_stripe, _io = convert_cc_to_lrcc(initial, final, stripes)
        kinds = [ChunkKind.LOCAL_PARITY] * ec.local_groups + [
            ChunkKind.GLOBAL_PARITY
        ] * ec.r_global
        new_meta = self._assemble_final_meta(
            meta, group, 0, stripe_metas, final_stripe, k_i, targets, parity_kinds=kinds
        )
        for j in range(n_parities):
            node = targets[j]
            self.fs.datanodes[node].store_local(
                new_meta.parities[j].chunk_id,
                final_stripe.chunks[final_stripe.k + j],
                at=self.fs.clock,
            )
            self.fs.checksums.record(
                new_meta.parities[j].chunk_id,
                final_stripe.chunks[final_stripe.k + j],
            )
            self.fs.charge_node_encode(node, len(stripe_metas), 1, chunk_size)
            self.fs.namenode.complete_parity(meta.name, group.group_index, 0, j, n_parities)
        self.fs.namenode.record_new_stripe(meta.name, group.group_index, 0, new_meta)

    def _lrcc_targets(
        self,
        stripe_metas: List[ECStripeMeta],
        initial: Optional[LocallyRecoverableConvertibleCode],
        final: LocallyRecoverableConvertibleCode,
    ) -> Dict[int, str]:
        """Computing node per final parity (locals then globals)."""
        targets: Dict[int, str] = {}
        if initial is None:
            # CC source: local parity of group g inherits the first
            # constituent stripe's parity-0 home; globals inherit parity-j.
            stripes_per_group = final.group_size // stripe_metas[0].k
            for g in range(final.l):
                src = stripe_metas[g * stripes_per_group]
                targets[g] = src.parities[0].node_id
            for j in range(final.r_global):
                targets[final.l + j] = stripe_metas[0].parities[j + 1].node_id
        else:
            groups_per_final = final.group_size // initial.group_size
            for g in range(final.l):
                src_group = g * groups_per_final
                stripe_i = src_group // initial.l
                local_g = src_group - stripe_i * initial.l
                targets[g] = stripe_metas[stripe_i].parities[local_g].node_id
            for j in range(final.r_global):
                targets[final.l + j] = stripe_metas[0].parities[initial.l + j].node_id
        return targets


class RRWTranscoder:
    """Baseline: the application reads, re-encodes and re-writes the file."""

    def __init__(self, fs):
        self.fs = fs

    def transcode(self, name: str, target_scheme) -> FileMeta:
        meta = self.fs.namenode.lookup(name)
        data = self.fs.read_file(name)  # client reads everything
        temp_name = f"{name}.rrw-tmp"
        self.fs.write_file(temp_name, data, target_scheme)
        self.fs.delete_file(name)
        self.fs.namenode.rename(temp_name, name)
        return self.fs.namenode.lookup(name)
