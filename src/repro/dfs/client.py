"""Client read paths (§4.3, §6.1).

Strategy selection mirrors Morph:

* **Replica-first** for latency-sensitive reads: hybrid and replicated
  files read from a live replica; dead/missing replicas fall through to
  the next copy, then to the stripe.
* **Striped** for throughput-bound scans: a stripe-spanning read pulls
  all k data chunks in parallel (the caller opts in, or the read spans a
  whole stripe).
* **Degraded** only as a last resort: a data chunk with no live replica
  and no live home decodes from k surviving stripe chunks (metered reads
  plus decode CPU).

All byte movement is metered: disk reads at the owning Datanode, one
network transfer per chunk delivered to the reading client.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.codes.base import DecodeError
from repro.dfs.blocks import ECStripeMeta, FileMeta, ReplicaBlockMeta


class ReadError(Exception):
    """The requested range cannot be served from any copy."""


class ClientReader:
    """Reads file ranges through a DFS's datanodes with Morph's strategy."""

    CLIENT = "client"

    def __init__(self, fs):
        self.fs = fs
        #: reads served from an alternative source because the primary
        #: copy sat on a known-slow (straggler) node
        self.hedged_reads = 0

    # -- availability ------------------------------------------------------
    def _reachable(self, node_id: str) -> bool:
        return self.fs.partition.reachable(node_id, self.CLIENT)

    def _chunk_available(self, chunk) -> bool:
        """Live, holding the chunk, and on the client's partition side."""
        datanode = self.fs.datanodes[chunk.node_id]
        return (
            datanode.is_alive
            and datanode.has_chunk(chunk.chunk_id)
            and self._reachable(chunk.node_id)
        )

    def _is_straggler(self, node_id: str) -> bool:
        """A node whose disk multiplier crosses the hedge threshold."""
        hedge = self.fs.hedge_slow_disk_multiplier
        if hedge is None:
            return False
        return self.fs.cluster.disk_multiplier(node_id) >= hedge

    def _count_hedge(self) -> None:
        self.hedged_reads += 1
        obs = self.fs.obs
        if obs.enabled and obs.registry is not None:
            obs.registry.counter("dfs_hedged_reads_total").inc()

    def _has_fast_alternative(
        self, meta: FileMeta, stripe: ECStripeMeta, stripe_first: int, local: int
    ) -> bool:
        """Can this data chunk be served without touching its slow home?

        True when a replica copy sits on a fast reachable node, or the
        stripe has k fast reachable survivors to decode from. Hedging
        never makes a read *fail*: with no fast source, the slow home
        copy serves as usual.
        """
        if meta.replica_blocks:
            block = self._block_covering(meta, (stripe_first + local) * meta.chunk_size)
            if block is not None:
                for copy in block.copies:
                    if self._chunk_available(copy) and not self._is_straggler(
                        copy.node_id
                    ):
                        return True
        fast = 0
        for idx, chunk in enumerate(stripe.all_chunks()):
            if idx == local:
                continue
            if self._chunk_available(chunk) and not self._is_straggler(chunk.node_id):
                fast += 1
                if fast >= stripe.k:
                    return True
        return False

    # -- public ------------------------------------------------------------
    def read(
        self,
        meta: FileMeta,
        offset: int = 0,
        length: Optional[int] = None,
        prefer_striped: bool = False,
    ) -> np.ndarray:
        """Read ``length`` bytes at ``offset``; returns the exact bytes."""
        if length is None:
            length = meta.size - offset
        if offset < 0 or offset + length > meta.size:
            raise ValueError(f"range [{offset}, {offset + length}) outside file")
        if meta.stripes:
            span = meta.stripes[0].k * meta.chunk_size
            spans_whole_stripe = length >= span
            use_striped = (prefer_striped or spans_whole_stripe or not meta.replica_blocks)
            if meta.is_hybrid and not use_striped:
                data = self._read_from_replicas(meta, offset, length)
                if data is not None:
                    return data
            return self._read_striped(meta, offset, length)
        data = self._read_from_replicas(meta, offset, length)
        if data is None:
            raise ReadError(f"{meta.name}: no live replica for [{offset}, {offset+length})")
        return data

    # -- replica path ----------------------------------------------------------
    def _read_from_replicas(
        self, meta: FileMeta, offset: int, length: int
    ) -> Optional[np.ndarray]:
        out = np.zeros(length, dtype=np.uint8)
        pos = offset
        end = offset + length
        while pos < end:
            block = self._block_covering(meta, pos)
            if block is None:
                return None
            block_start = block.first_chunk * meta.chunk_size
            block_len = block.n_chunks * meta.chunk_size
            take = min(end, block_start + block_len) - pos
            piece = self._read_replica_block(block, pos - block_start, take)
            if piece is None:
                return None
            out[pos - offset : pos - offset + take] = piece
            pos += take
        return out

    def _block_covering(self, meta: FileMeta, pos: int) -> Optional[ReplicaBlockMeta]:
        chunk_index = pos // meta.chunk_size
        for block in meta.replica_blocks:
            if block.first_chunk <= chunk_index < block.first_chunk + block.n_chunks:
                return block
        return None

    def _read_replica_block(
        self, block: ReplicaBlockMeta, start: int, length: int
    ) -> Optional[np.ndarray]:
        # Hedged ordering: prefer copies on fast nodes; a copy on a
        # straggler disk serves only when no fast copy is available.
        ranked = sorted(
            enumerate(block.copies),
            key=lambda pair: (self._is_straggler(pair[1].node_id), pair[0]),
        )
        for index, copy in ranked:
            if not self._chunk_available(copy):
                continue
            if index != 0 and self._chunk_available(block.copies[0]) and self._is_straggler(
                block.copies[0].node_id
            ):
                # The primary copy was readable but slow — this read hedged.
                self._count_hedge()
            piece = self.fs.datanodes[copy.node_id].read_range(
                copy.chunk_id, start, length, at=self.fs.clock
            )
            self.fs.metrics.record_transfer(
                copy.node_id, self.CLIENT, float(length), at=self.fs.clock, tag="read"
            )
            return piece
        return None

    # -- striped path ------------------------------------------------------------
    def _read_striped(self, meta: FileMeta, offset: int, length: int) -> np.ndarray:
        out = np.zeros(length, dtype=np.uint8)
        chunk_size = meta.chunk_size
        pos = offset
        end = offset + length
        while pos < end:
            # Gather every data chunk of the current stripe the range
            # touches, so multiple missing chunks decode in ONE fused
            # pass (one set of k survivor fetches) instead of one
            # k-fetch degraded read per chunk.
            chunk_index = pos // chunk_size
            stripe, first_local = self._stripe_of(meta, chunk_index)
            stripe_first = chunk_index - first_local
            last_needed = (end - 1) // chunk_size
            last_local = min(first_local + (last_needed - chunk_index), stripe.k - 1)
            locals_needed = list(range(first_local, last_local + 1))
            fetched = self._read_data_chunks(meta, stripe, stripe_first, locals_needed)
            for local in locals_needed:
                c_start = (stripe_first + local) * chunk_size
                a = max(pos, c_start)
                b = min(end, c_start + chunk_size)
                out[a - offset : b - offset] = fetched[local][a - c_start : b - c_start]
            pos = min(end, (stripe_first + last_local + 1) * chunk_size)
        return out

    def _stripe_of(self, meta: FileMeta, chunk_index: int):
        passed = 0
        for stripe in meta.stripes:
            if chunk_index < passed + stripe.k:
                return stripe, chunk_index - passed
            passed += stripe.k
        raise ReadError(f"{meta.name}: data chunk {chunk_index} beyond file")

    def _read_data_chunks(
        self,
        meta: FileMeta,
        stripe: ECStripeMeta,
        stripe_first: int,
        locals_needed: List[int],
    ) -> Dict[int, np.ndarray]:
        """Fetch several data chunks of one stripe (local index -> bytes).

        Live chunks read from their home node (verify-on-read, §6.1),
        dead/corrupt ones fall back to a hybrid replica (§4.3), and
        whatever is still missing decodes from one shared set of k
        survivors in a single degraded read.
        """
        fetched: Dict[int, np.ndarray] = {}
        missing: List[int] = []
        for local in locals_needed:
            chunk = stripe.data[local]
            datanode = self.fs.datanodes[chunk.node_id]
            hedge_away = self._chunk_available(chunk) and self._is_straggler(
                chunk.node_id
            ) and self._has_fast_alternative(meta, stripe, stripe_first, local)
            if hedge_away:
                # The home copy works but sits on a straggler disk and a
                # fast source exists: skip it (replica or decode below).
                self._count_hedge()
            elif self._chunk_available(chunk):
                data = datanode.read(chunk.chunk_id, at=self.fs.clock)
                self.fs.metrics.record_transfer(
                    chunk.node_id, self.CLIENT, float(data.nbytes), at=self.fs.clock, tag="read"
                )
                if self.fs.checksums.verify(chunk.chunk_id, data):
                    fetched[local] = data
                    continue
                # Verify-on-read (§6.1): a corrupt chunk is treated as missing.
                datanode.delete(chunk.chunk_id, at=self.fs.clock)
            # Hybrid fast path for degraded reads: serve from a replica (§4.3).
            if meta.replica_blocks:
                block = self._block_covering(meta, (stripe_first + local) * meta.chunk_size)
                if block is not None:
                    start = (stripe_first + local - block.first_chunk) * meta.chunk_size
                    piece = self._read_replica_block(block, start, meta.chunk_size)
                    if piece is not None:
                        fetched[local] = piece
                        continue
            missing.append(local)
        if len(missing) == 1:
            # Single erasure keeps the existing path (LRC local repair
            # reads only the k/l group peers).
            fetched[missing[0]] = self._degraded_read(meta, stripe, missing[0])
        elif missing:
            fetched.update(self._degraded_read_many(meta, stripe, missing))
        return fetched

    def _degraded_read_many(
        self, meta: FileMeta, stripe: ECStripeMeta, missing: List[int]
    ) -> Dict[int, np.ndarray]:
        """Decode several missing data chunks of one stripe at once."""
        with self.fs.obs.span(
            "degraded_read", file=meta.name, stripe=stripe.stripe_index
        ):
            code = self.fs.codec_for_stripe(meta, stripe)
            chunks = stripe.all_chunks()
            missing_set = set(missing)
            available: Dict[int, np.ndarray] = {}
            # Survivors on fast disks are preferred; stragglers only fill
            # in when fewer than k fast survivors exist.
            order = sorted(
                range(len(chunks)),
                key=lambda i: (self._is_straggler(chunks[i].node_id), i),
            )
            for idx in order:
                if idx in missing_set:
                    continue
                chunk = chunks[idx]
                datanode = self.fs.datanodes[chunk.node_id]
                if self._chunk_available(chunk):
                    data = datanode.read(chunk.chunk_id, at=self.fs.clock)
                    self.fs.metrics.record_transfer(
                        chunk.node_id,
                        self.CLIENT,
                        float(data.nbytes),
                        at=self.fs.clock,
                        tag="degraded_read",
                    )
                    available[idx] = data
                    if len(available) >= stripe.k:
                        break
            try:
                recovered = code.decode(available, missing)
            except DecodeError as exc:
                raise ReadError(
                    f"{meta.name}: stripe {stripe.stripe_index} unrecoverable"
                ) from exc
            self.fs.charge_client_decode(
                code, meta.chunk_size * len(missing), width=stripe.k
            )
            return recovered

    def _degraded_read(self, meta: FileMeta, stripe: ECStripeMeta, local: int) -> np.ndarray:
        """Decode a missing data chunk from k surviving stripe chunks."""
        with self.fs.obs.span(
            "degraded_read", file=meta.name, stripe=stripe.stripe_index
        ):
            return self._degraded_read_impl(meta, stripe, local)

    def _degraded_read_impl(
        self, meta: FileMeta, stripe: ECStripeMeta, local: int
    ) -> np.ndarray:
        code = self.fs.codec_for_stripe(meta, stripe)
        chunks = stripe.all_chunks()

        def try_fetch(idx: int, available: Dict[int, np.ndarray]) -> bool:
            chunk = chunks[idx]
            datanode = self.fs.datanodes[chunk.node_id]
            if self._chunk_available(chunk):
                data = datanode.read(chunk.chunk_id, at=self.fs.clock)
                self.fs.metrics.record_transfer(
                    chunk.node_id,
                    self.CLIENT,
                    float(data.nbytes),
                    at=self.fs.clock,
                    tag="degraded_read",
                )
                available[idx] = data
                return True
            return False

        available: Dict[int, np.ndarray] = {}
        # LRC-family codes: try the cheap local-repair set first (k/l reads).
        if hasattr(code, "group_members"):
            peers = [m for m in code.group_members(code.group_of(local)) if m != local]
            if all(try_fetch(m, available) for m in peers):
                recovered = code.decode(available, [local])
                self.fs.charge_client_decode(code, meta.chunk_size, width=len(peers))
                return recovered[local]
        scan = sorted(
            range(len(chunks)),
            key=lambda i: (self._is_straggler(chunks[i].node_id), i),
        )
        for idx in scan:
            if idx == local or idx in available:
                continue
            if try_fetch(idx, available):
                if len(available) >= stripe.k:
                    break
        try:
            recovered = code.decode(available, [local])
        except DecodeError as exc:
            raise ReadError(
                f"{meta.name}: stripe {stripe.stripe_index} unrecoverable"
            ) from exc
        self.fs.charge_client_decode(code, meta.chunk_size, width=stripe.k)
        return recovered[local]
