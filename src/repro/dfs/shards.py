"""ShardedNamenode: hash-partitioned namespace behind the Namenode API.

One in-memory :class:`~repro.dfs.namenode.Namenode` is the scaling wall
for a million-file namespace.  This facade partitions the namespace
across N shards by ``crc32(file_name) % N`` — deterministic across
processes (never builtin ``hash``, which is salted per process), which
matters because each shard owns its own journal and a recovered system
must route every name to the shard whose journal holds its records.
Chunk-id mints route by ``crc32(prefix)``: the prefix is embedded in the
minted id, so per-shard sequences can overlap without ever colliding.

The facade exposes the existing Namenode surface, so ``filesystem.py``,
``recovery.py``, ``transcoder.py``, ``heartbeat.py`` and ``appends.py``
work unchanged:

* name-routed ops (register/lookup/rename/transcode lifecycle) go to
  one shard; a cross-shard rename registers under the new name first,
  then unregisters the old one, so a crash between the two journals
  leaves a duplicate, never a loss;
* fan-out ops merge deterministically: ``chunks_on_node`` and
  ``poll_work`` concatenate per-shard results in shard order (shard
  order is itself deterministic because routing is);
* ``files`` and ``utm`` are read-only mapping views (lookups route,
  iteration chains shards in order), and ``_file_order`` yields
  globally comparable ``(shard_local_seq, shard_index)`` keys so
  recovery's order-preserving re-sort keeps working.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple
from zlib import crc32

from repro.dfs.blocks import ChunkMeta, FileMeta
from repro.dfs.journal import Journal, JournaledNamenode
from repro.dfs.namenode import ConversionGroup, Namenode, TranscodeJob


class _NameRoutedView(Mapping):
    """Read-only mapping over a dict attribute of every shard.

    ``view[name]`` routes to the owning shard; iteration chains shards
    in shard order (deterministic).  Mapping supplies ``get``, ``in``,
    ``keys/values/items`` on top.
    """

    __slots__ = ("_owner", "_attr")

    def __init__(self, owner: "ShardedNamenode", attr: str):
        self._owner = owner
        self._attr = attr

    def __getitem__(self, name: str):
        owner = self._owner
        shard = owner.shards[crc32(name.encode()) % owner.n_shards]
        return getattr(shard, self._attr)[name]

    def __iter__(self) -> Iterator[str]:
        for shard in self._owner.shards:
            yield from getattr(shard, self._attr)

    def __len__(self) -> int:
        return sum(len(getattr(s, self._attr)) for s in self._owner.shards)


class _ShardedOrderView:
    """Registration-order keys that compare across shards.

    Each entry is ``(shard_local_seq, shard_index)`` — unique, and
    consistent with every shard's own registration order.  Consumers
    (``recovery.lost_chunks``) only use it as a sort key.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "ShardedNamenode"):
        self._owner = owner

    def __getitem__(self, name: str) -> Tuple[int, int]:
        owner = self._owner
        idx = crc32(name.encode()) % owner.n_shards
        return (owner.shards[idx]._file_order[name], idx)

    def get(self, name: str, default=None):
        owner = self._owner
        idx = crc32(name.encode()) % owner.n_shards
        seq = owner.shards[idx]._file_order.get(name)
        return default if seq is None else (seq, idx)

    def __contains__(self, name: str) -> bool:
        owner = self._owner
        return name in owner.shards[crc32(name.encode()) % owner.n_shards]._file_order

    def __len__(self) -> int:
        return sum(len(s._file_order) for s in self._owner.shards)


class ShardedNamenode:
    """Hash-partitioned namespace over N Namenode shards."""

    def __init__(self, n_shards: int = 4, shards: Optional[Iterable[Namenode]] = None,
                 shard_factory=None):
        if shards is not None:
            self.shards: List[Namenode] = list(shards)
        else:
            factory = shard_factory or (lambda i: Namenode())
            self.shards = [factory(i) for i in range(n_shards)]
        if not self.shards:
            raise ValueError("need at least one shard")
        self.n_shards = len(self.shards)
        self.files = _NameRoutedView(self, "files")
        self.utm = _NameRoutedView(self, "utm")
        self._file_order = _ShardedOrderView(self)

    @classmethod
    def journaled(cls, n_shards: int = 4, journals: Optional[List[Journal]] = None,
                  compact_every: int = 0) -> "ShardedNamenode":
        """N shards, each a JournaledNamenode with its own journal."""
        if journals is None:
            journals = [Journal() for _ in range(n_shards)]
        return cls(shards=[
            JournaledNamenode(journal=j, compact_every=compact_every)
            for j in journals
        ])

    @classmethod
    def recover(cls, journals: List[Journal],
                compact_every: int = 0) -> "ShardedNamenode":
        """Rebuild every shard from its journal (post-crash)."""
        return cls(shards=[
            JournaledNamenode.recover(j, compact_every=compact_every)
            for j in journals
        ])

    # -- routing --------------------------------------------------------------
    def shard_index(self, name: str) -> int:
        return crc32(name.encode()) % self.n_shards

    def shard_for(self, name: str) -> Namenode:
        return self.shards[crc32(name.encode()) % self.n_shards]

    # -- namespace ------------------------------------------------------------
    def register_file(self, meta: FileMeta) -> None:
        self.shards[crc32(meta.name.encode()) % self.n_shards].register_file(meta)

    def register_files(self, metas: Iterable[FileMeta]) -> None:
        buckets: List[List[FileMeta]] = [[] for _ in range(self.n_shards)]
        n = self.n_shards
        for meta in metas:
            buckets[crc32(meta.name.encode()) % n].append(meta)
        for shard, bucket in zip(self.shards, buckets):
            if bucket:
                shard.register_files(bucket)

    def lookup(self, name: str) -> FileMeta:
        return self.shards[crc32(name.encode()) % self.n_shards].lookup(name)

    def unregister_file(self, name: str) -> FileMeta:
        return self.shards[crc32(name.encode()) % self.n_shards].unregister_file(name)

    def rename(self, old: str, new: str) -> None:
        src_i = crc32(old.encode()) % self.n_shards
        dst_i = crc32(new.encode()) % self.n_shards
        if src_i == dst_i:
            self.shards[src_i].rename(old, new)
            return
        src, dst = self.shards[src_i], self.shards[dst_i]
        meta = src.files[old]
        # Register under the new name before dropping the old one: a
        # crash between the two shard journals leaves a (self-healing)
        # duplicate entry rather than losing the file.
        meta.name = new
        try:
            dst.register_file(meta)
        except Exception:
            meta.name = old
            raise
        src.unregister_file(old)

    def next_chunk_id(self, prefix: str) -> str:
        return self.shards[crc32(prefix.encode()) % self.n_shards].next_chunk_id(prefix)

    def next_chunk_ids(self, prefix: str, count: int) -> List[str]:
        return self.shards[crc32(prefix.encode()) % self.n_shards].next_chunk_ids(
            prefix, count
        )

    # -- per-node chunk index --------------------------------------------------
    def note_chunk(self, node_id: str, file_name: str) -> None:
        self.shards[crc32(file_name.encode()) % self.n_shards].note_chunk(
            node_id, file_name
        )

    def note_file(self, meta: FileMeta) -> None:
        self.shards[crc32(meta.name.encode()) % self.n_shards].note_file(meta)

    def chunks_on_node(self, node_id: str) -> List[Tuple[FileMeta, ChunkMeta]]:
        """Fan out to every shard; concatenate in shard order (the
        deterministic merge rule — consumers that need a global file
        order re-sort via ``_file_order`` keys, as recovery does)."""
        out: List[Tuple[FileMeta, ChunkMeta]] = []
        for shard in self.shards:
            found = shard.chunks_on_node(node_id)
            if found:
                out.extend(found)
        return out

    # -- transcode lifecycle ---------------------------------------------------
    @property
    def atq(self) -> List[ConversionGroup]:
        """Combined awaiting-transcoding queue (read-only snapshot)."""
        out: List[ConversionGroup] = []
        for shard in self.shards:
            out.extend(shard.atq)
        return out

    def enqueue_transcode(self, name: str, target_scheme, groups,
                          parities_per_final_stripe,
                          deadline: Optional[float] = None) -> TranscodeJob:
        return self.shard_for(name).enqueue_transcode(
            name, target_scheme, groups, parities_per_final_stripe, deadline
        )

    def poll_work(self, max_items: int = 8) -> List[ConversionGroup]:
        out: List[ConversionGroup] = []
        for shard in self.shards:
            if len(out) >= max_items:
                break
            out.extend(shard.poll_work(max_items - len(out)))
        return out

    def poll_work_for(self, name: str, max_items: int = 8) -> List[ConversionGroup]:
        return self.shard_for(name).poll_work_for(name, max_items)

    def complete_parity(self, name, group_index, final_idx, parity_j,
                        parities_per_final_stripe) -> None:
        self.shard_for(name).complete_parity(
            name, group_index, final_idx, parity_j, parities_per_final_stripe
        )

    def record_new_stripe(self, name, group_index, final_idx, stripe) -> None:
        self.shard_for(name).record_new_stripe(name, group_index, final_idx, stripe)

    def try_finalize(self, name: str) -> Optional[List[ChunkMeta]]:
        return self.shard_for(name).try_finalize(name)

    def abort_transcode(self, name: str) -> None:
        self.shard_for(name).abort_transcode(name)

    # -- persistence ------------------------------------------------------------
    def snapshot(self, include_transcode: bool = False) -> dict:
        return {
            "n_shards": self.n_shards,
            "shards": [s.snapshot(include_transcode) for s in self.shards],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "ShardedNamenode":
        return cls(shards=[Namenode.restore(sub) for sub in snapshot["shards"]])

    def compact(self) -> None:
        for shard in self.shards:
            compact = getattr(shard, "compact", None)
            if compact is not None:
                compact()

    # -- stats ------------------------------------------------------------------
    def metadata_stats(self) -> Dict[str, Any]:
        shards = [s.metadata_stats() for s in self.shards]
        total: Dict[str, Any] = {"files": 0, "chunks": 0, "atq": 0, "utm": 0}
        base_keys = tuple(total)
        for s in shards:
            for key in base_keys:
                total[key] += s[key]
            for key in ("journal_records", "journal_bytes", "journal_snapshots",
                        "journal_since_snapshot", "replayed"):
                if key in s:
                    total[key] = total.get(key, 0) + s[key]
        total["shards"] = shards
        return total
