"""A functional, byte-accurate distributed file system simulator.

Two personalities share this substrate:

* :class:`BaselineDFS` — today's HDFS: 3-way-replicated ingest, RS codes,
  and client-driven read-re-encode-write (RRW) transcode.
* :class:`MorphFS` — the paper's system: hybrid-redundancy ingest (§4),
  Convertible/LRCC codes, k*-aware placement (§5.3) and transcode as a
  native, crash-consistent DFS operation (§6.2).

Chunks hold real bytes (numpy uint8) moved through real codecs, so every
IO number a benchmark reports was actually performed, and every transcode
result is byte-verifiable against a from-scratch re-encode.
"""

from repro.dfs.blocks import (
    ChunkKind,
    ChunkMeta,
    ECStripeMeta,
    FileMeta,
    FileState,
    HybridBlockMeta,
    ReplicaBlockMeta,
)
from repro.dfs.datanode import Datanode
from repro.dfs.namenode import Namenode
from repro.dfs.journal import Journal, JournaledNamenode
from repro.dfs.shards import ShardedNamenode
from repro.dfs.filesystem import BaselineDFS, MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.dfs.integrity import ChecksumRegistry, Scrubber
from repro.dfs.recovery import RecoveryManager

__all__ = [
    "ChunkKind",
    "ChunkMeta",
    "ECStripeMeta",
    "ReplicaBlockMeta",
    "HybridBlockMeta",
    "FileMeta",
    "FileState",
    "Datanode",
    "Namenode",
    "Journal",
    "JournaledNamenode",
    "ShardedNamenode",
    "BaselineDFS",
    "MorphFS",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "ChecksumRegistry",
    "Scrubber",
    "RecoveryManager",
]
