"""Failure detection and chunk reconstruction (§4.4, §6.1).

The Namenode notices dead Datanodes via heartbeats; every chunk homed on
a dead node is re-materialised on a live one following the priority order
the paper gives:

* **replica chunk lost** — copy another replica if one exists, else
  rebuild the span from the EC stripe's data chunks;
* **EC data chunk lost** — read the covering replica range if the file is
  hybrid, else decode from k surviving stripe chunks;
* **parity chunk lost** — recompute from a replica (one sequential read)
  or from the data chunks.

Every reconstruction is metered: reads at the sources, one network
transfer per chunk to the rebuilding node, a disk write for the new copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codes.base import DecodeError
from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta


class RecoveryError(RuntimeError):
    """A chunk could not be reconstructed from surviving copies."""


class RecoveryManager:
    """Rebuilds chunks lost to node failures."""

    def __init__(self, fs):
        self.fs = fs

    # -- detection -------------------------------------------------------------
    def lost_chunks(self) -> List[Tuple[FileMeta, ChunkMeta]]:
        """All (file, chunk) pairs homed on dead nodes."""
        out = []
        for meta in self.fs.namenode.files.values():
            for chunk in meta.all_chunks():
                if not self.fs.datanodes[chunk.node_id].is_alive:
                    out.append((meta, chunk))
        return out

    def recover_all(self) -> int:
        """Reconstruct every lost chunk; returns how many were rebuilt."""
        count = 0
        for meta, chunk in self.lost_chunks():
            self.recover_chunk(meta, chunk)
            count += 1
        return count

    # -- reconstruction ------------------------------------------------------------
    def recover_chunk(self, meta: FileMeta, chunk: ChunkMeta) -> str:
        """Rebuild one chunk on a fresh node; returns the new node id."""
        with self.fs.obs.span("repair", file=meta.name, kind=chunk.kind.name):
            return self._recover_chunk_impl(meta, chunk)

    def _recover_chunk_impl(self, meta: FileMeta, chunk: ChunkMeta) -> str:
        target = self._pick_target(meta, chunk)
        if chunk.kind is ChunkKind.REPLICA:
            data = self._rebuild_replica(meta, chunk, target)
        elif chunk.kind is ChunkKind.DATA:
            data = self._rebuild_data_chunk(meta, chunk, target)
        else:
            data = self._rebuild_parity(meta, chunk, target)
        new_id = self.fs.namenode.next_chunk_id(f"{meta.name}/recovered")
        self.fs.datanodes[target].store_local(new_id, data, at=self.fs.clock)
        self.fs.checksums.forget(chunk.chunk_id)
        self.fs.checksums.record(new_id, data)
        chunk.chunk_id = new_id
        chunk.node_id = target
        return target

    def _pick_target(self, meta: FileMeta, chunk: ChunkMeta) -> str:
        occupied = {c.node_id for c in meta.all_chunks() if c is not chunk}
        for node in self.fs.cluster.alive_nodes():
            if node.node_id not in occupied:
                return node.node_id
        # Degenerate small clusters: allow reuse of a live node.
        alive = self.fs.cluster.alive_nodes()
        if not alive:
            raise RecoveryError("no live nodes to rebuild onto")
        return alive[0].node_id

    def _fetch(self, src: ChunkMeta, target: str) -> Optional[np.ndarray]:
        datanode = self.fs.datanodes[src.node_id]
        if not datanode.is_alive or not datanode.has_chunk(src.chunk_id):
            return None
        data = datanode.read(src.chunk_id, at=self.fs.clock)
        self.fs.metrics.record_transfer(
            src.node_id, target, float(data.nbytes), at=self.fs.clock, tag="repair"
        )
        return data

    def _stripe_and_block(self, meta: FileMeta, chunk: ChunkMeta):
        for stripe in meta.stripes:
            if chunk in stripe.all_chunks():
                return stripe
        return None

    def _rebuild_replica(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        block = next(
            b for b in meta.replica_blocks if chunk in b.copies
        )
        for copy in block.copies:
            if copy is chunk:
                continue
            data = self._fetch(copy, target)
            if data is not None:
                return data
        # No surviving replica: rebuild the span from the stripe's data.
        pieces = []
        for idx in range(block.first_chunk, block.first_chunk + block.n_chunks):
            pieces.append(self._read_or_decode_data(meta, idx, target))
        return np.concatenate(pieces)[: chunk.size]

    def _rebuild_data_chunk(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        stripe = self._stripe_and_block(meta, chunk)
        local = stripe.data.index(chunk)
        # Hybrid fast path: one sequential replica-range read (§4.4).
        global_index = self._global_data_index(meta, stripe, local)
        if meta.replica_blocks:
            data = self._replica_range(meta, global_index, target)
            if data is not None:
                return data
        return self._decode_from_stripe(meta, stripe, stripe.k + 0, local, target)

    def _rebuild_parity(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        stripe = self._stripe_and_block(meta, chunk)
        parity_j = stripe.parities.index(chunk)
        code = self.fs.codec_for_stripe(meta, stripe)
        # Re-encoding a parity needs the whole data span — from replicas if
        # hybrid (sequential read), else from the data chunks.
        data_chunks = []
        for local in range(stripe.k):
            global_index = self._global_data_index(meta, stripe, local)
            piece = None
            if meta.replica_blocks:
                piece = self._replica_range(meta, global_index, target)
            if piece is None:
                piece = self._read_or_decode_data_in_stripe(meta, stripe, local, target)
            data_chunks.append(piece)
        self.fs.charge_node_encode(target, stripe.k, 1, meta.chunk_size)
        return code.encode(data_chunks)[parity_j]

    # -- shared helpers -----------------------------------------------------------
    def _global_data_index(self, meta: FileMeta, stripe: ECStripeMeta, local: int) -> int:
        passed = 0
        for s in meta.stripes:
            if s is stripe:
                return passed + local
            passed += s.k
        raise RecoveryError("stripe not in file")

    def _replica_range(self, meta: FileMeta, chunk_index: int, target: str) -> Optional[np.ndarray]:
        for block in meta.replica_blocks:
            if block.first_chunk <= chunk_index < block.first_chunk + block.n_chunks:
                start = (chunk_index - block.first_chunk) * meta.chunk_size
                for copy in block.copies:
                    datanode = self.fs.datanodes[copy.node_id]
                    if datanode.is_alive and datanode.has_chunk(copy.chunk_id):
                        data = datanode.read_range(
                            copy.chunk_id, start, meta.chunk_size, at=self.fs.clock
                        )
                        self.fs.metrics.record_transfer(
                            copy.node_id,
                            target,
                            float(meta.chunk_size),
                            at=self.fs.clock,
                            tag="repair",
                        )
                        out = np.zeros(meta.chunk_size, dtype=np.uint8)
                        out[: len(data)] = data
                        return out
        return None

    def _read_or_decode_data(self, meta: FileMeta, chunk_index: int, target: str) -> np.ndarray:
        passed = 0
        for stripe in meta.stripes:
            if chunk_index < passed + stripe.k:
                return self._read_or_decode_data_in_stripe(
                    meta, stripe, chunk_index - passed, target
                )
            passed += stripe.k
        raise RecoveryError(f"chunk index {chunk_index} beyond stripes")

    def _read_or_decode_data_in_stripe(
        self, meta: FileMeta, stripe: ECStripeMeta, local: int, target: str
    ) -> np.ndarray:
        chunk = stripe.data[local]
        data = self._fetch(chunk, target)
        if data is not None:
            return data
        return self._decode_from_stripe(meta, stripe, stripe.k, local, target)

    def _decode_from_stripe(
        self, meta: FileMeta, stripe: ECStripeMeta, _unused: int, local: int, target: str
    ) -> np.ndarray:
        code = self.fs.codec_for_stripe(meta, stripe)
        available: Dict[int, np.ndarray] = {}
        chunks = stripe.all_chunks()
        # Local repair first for LRC-family codes: k/l reads, not k.
        if hasattr(code, "group_members") and local < stripe.k + code.l:
            peers = [m for m in code.group_members(code.group_of(local)) if m != local]
            fetched = {}
            for m in peers:
                data = self._fetch(chunks[m], target)
                if data is None:
                    break
                fetched[m] = data
            if len(fetched) == len(peers):
                recovered = code.decode(fetched, [local])
                self.fs.charge_node_encode(target, len(peers), 1, meta.chunk_size)
                return recovered[local]
            available.update(fetched)
        for idx in range(len(chunks)):
            if idx == local or idx in available:
                continue
            data = self._fetch(chunks[idx], target)
            if data is not None:
                available[idx] = data
                if len(available) >= stripe.k:
                    break
        try:
            recovered = code.decode(available, [local])
        except DecodeError as exc:
            raise RecoveryError(
                f"{meta.name}: stripe {stripe.stripe_index} beyond repair"
            ) from exc
        self.fs.charge_node_encode(target, len(available), 1, meta.chunk_size)
        return recovered[local]
