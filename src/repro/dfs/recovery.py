"""Failure detection and chunk reconstruction (§4.4, §6.1).

The Namenode notices dead Datanodes via heartbeats; every chunk homed on
a dead node is re-materialised on a live one following the priority order
the paper gives:

* **replica chunk lost** — copy another replica if one exists, else
  rebuild the span from the EC stripe's data chunks;
* **EC data chunk lost** — read the covering replica range if the file is
  hybrid, else decode from k surviving stripe chunks;
* **parity chunk lost** — recompute from a replica (one sequential read)
  or from the data chunks.

Every reconstruction is metered: reads at the sources, one network
transfer per chunk to the rebuilding node, a disk write for the new copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codes.base import DecodeError
from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta


class RecoveryError(RuntimeError):
    """A chunk could not be reconstructed from surviving copies."""


class RecoveryManager:
    """Rebuilds chunks lost to node failures."""

    def __init__(self, fs):
        self.fs = fs

    # -- detection -------------------------------------------------------------
    def lost_chunks(
        self, declared_dead: Optional[set] = None
    ) -> List[Tuple[FileMeta, ChunkMeta]]:
        """All (file, chunk) pairs homed on dead nodes.

        ``declared_dead`` extends the physical view with the namenode's
        verdict: a node the heartbeat monitor declared dead counts as
        lost even when its process is technically alive — which is how a
        partitioned island's chunks get re-homed on the reachable side.

        Node-major via the namenode's per-node chunk index: cost scales
        with the dead nodes' populations, not the whole namespace.  The
        output keeps the historical file-major order (registration order,
        chunks within a file in layout order) so repair scheduling is
        unchanged from the full-scan implementation.
        """
        namenode = self.fs.namenode
        dead = {
            node_id
            for node_id, datanode in self.fs.datanodes.items()
            if not datanode.is_alive
        }
        if declared_dead:
            dead |= set(declared_dead)
        if not dead:
            return []
        candidates: Dict[str, None] = {}
        for node_id in sorted(dead):
            for meta, _chunk in namenode.chunks_on_node(node_id):
                candidates[meta.name] = None
        order = namenode._file_order
        out: List[Tuple[FileMeta, ChunkMeta]] = []
        for name in sorted(candidates, key=lambda n: order.get(n, 0)):
            meta = namenode.files[name]
            for chunk in meta.all_chunks():
                if chunk.node_id in dead:
                    out.append((meta, chunk))
        return out

    def recover_all(self) -> int:
        """Reconstruct every lost chunk; returns how many were rebuilt."""
        return self.recover_chunks(self.lost_chunks())

    def recover_chunks(self, pairs: List[Tuple[FileMeta, ChunkMeta]]) -> int:
        """Rebuild many (file, chunk) pairs, batching stripe decodes.

        Chunks with a cheaper dedicated path — replica copies, hybrid
        replica-range reads, LRC local repair, non-generator (vector)
        codes — keep the per-chunk pipeline. The rest group per stripe,
        so a failure burst does ONE k-survivor fetch per stripe and one
        batched kernel invocation per shared failure pattern instead of
        a k-fetch-plus-decode per lost chunk.
        """
        singles: List[Tuple[FileMeta, ChunkMeta]] = []
        stripe_jobs: Dict[int, Tuple[FileMeta, ECStripeMeta, List[ChunkMeta]]] = {}
        for meta, chunk in pairs:
            stripe = None
            if chunk.kind is not ChunkKind.REPLICA and not meta.replica_blocks:
                stripe = self._stripe_and_block(meta, chunk)
            if stripe is None:
                singles.append((meta, chunk))
                continue
            code = self.fs.codec_for_stripe(meta, stripe)
            if hasattr(code, "group_members") or not getattr(
                code, "generator_encoded", True
            ):
                singles.append((meta, chunk))
                continue
            job = stripe_jobs.setdefault(id(stripe), (meta, stripe, []))
            job[2].append(chunk)
        count = 0
        for meta, chunk in singles:
            self.recover_chunk(meta, chunk)
            count += 1
        count += self._recover_stripes_batched(list(stripe_jobs.values()))
        return count

    # -- reconstruction ------------------------------------------------------------
    def recover_chunk(self, meta: FileMeta, chunk: ChunkMeta) -> str:
        """Rebuild one chunk on a fresh node; returns the new node id."""
        with self.fs.obs.span("repair", file=meta.name, kind=chunk.kind.name):
            return self._recover_chunk_impl(meta, chunk)

    def _recover_chunk_impl(self, meta: FileMeta, chunk: ChunkMeta) -> str:
        target = self._pick_target(meta, chunk)
        if chunk.kind is ChunkKind.REPLICA:
            data = self._rebuild_replica(meta, chunk, target)
        elif chunk.kind is ChunkKind.DATA:
            data = self._rebuild_data_chunk(meta, chunk, target)
        else:
            data = self._rebuild_parity(meta, chunk, target)
        new_id = self.fs.namenode.next_chunk_id(f"{meta.name}/recovered")
        self.fs.datanodes[target].store_local(new_id, data, at=self.fs.clock)
        self.fs.checksums.forget(chunk.chunk_id)
        self.fs.checksums.record(new_id, data)
        chunk.chunk_id = new_id
        chunk.node_id = target
        self.fs.namenode.note_chunk(target, meta.name)
        return target

    def _pick_target(
        self,
        meta: FileMeta,
        chunk: ChunkMeta,
        extra_occupied: Optional[set] = None,
    ) -> str:
        occupied = {c.node_id for c in meta.all_chunks() if c is not chunk}
        if extra_occupied:
            occupied |= extra_occupied
        # Only namenode-reachable nodes accept rebuilt chunks: a node on
        # the minority side of a partition can't be commanded anyway.
        alive = [
            node
            for node in self.fs.cluster.alive_nodes()
            if self.fs.partition.reachable(node.node_id, "namenode")
        ]
        for node in alive:
            if node.node_id not in occupied:
                return node.node_id
        # Degenerate small clusters: allow reuse of a live node.
        if not alive:
            raise RecoveryError("no live nodes to rebuild onto")
        return alive[0].node_id

    # -- batched stripe reconstruction ---------------------------------------
    def _recover_stripes_batched(
        self, jobs: List[Tuple[FileMeta, ECStripeMeta, List[ChunkMeta]]]
    ) -> int:
        """Rebuild stripe-homed chunks with batched decodes.

        Per stripe: pick one target per lost chunk (mutually distinct),
        fetch k survivors once to the first target (the *rebuilder*),
        then decode every stripe sharing a code object with a single
        :meth:`~repro.codes.base.ErasureCode.decode_batch` call, which
        stacks same-failure-pattern stripes into one kernel invocation.
        """
        if not jobs:
            return 0
        plans = []
        for meta, stripe, lost in jobs:
            with self.fs.obs.span(
                "repair", file=meta.name, kind="STRIPE_BATCH", lost=len(lost)
            ):
                plans.append(self._plan_stripe_repair(meta, stripe, lost))
        by_code: Dict[int, List[dict]] = {}
        for plan in plans:
            by_code.setdefault(id(plan["code"]), []).append(plan)
        for group in by_code.values():
            code = group[0]["code"]
            try:
                batches = code.decode_batch(
                    [p["available"] for p in group],
                    [p["erased"] for p in group],
                )
            except DecodeError as exc:
                names = ", ".join(sorted({p["meta"].name for p in group}))
                raise RecoveryError(f"{names}: stripe batch beyond repair") from exc
            for plan, recovered in zip(group, batches):
                plan["recovered"] = recovered
        return sum(self._store_stripe_repairs(plan) for plan in plans)

    def _plan_stripe_repair(
        self, meta: FileMeta, stripe: ECStripeMeta, lost: List[ChunkMeta]
    ) -> dict:
        chunks = stripe.all_chunks()
        erased = sorted(chunks.index(c) for c in lost)
        targets: Dict[int, str] = {}
        taken: set = set()
        for idx in erased:
            target = self._pick_target(meta, chunks[idx], extra_occupied=taken)
            targets[idx] = target
            taken.add(target)
        rebuilder = targets[erased[0]]
        erased_set = set(erased)
        available: Dict[int, np.ndarray] = {}
        for idx in range(len(chunks)):
            if idx in erased_set:
                continue
            data = self._fetch(chunks[idx], rebuilder)
            if data is not None:
                available[idx] = data
                if len(available) >= stripe.k:
                    break
        return {
            "meta": meta,
            "stripe": stripe,
            "code": self.fs.codec_for_stripe(meta, stripe),
            "erased": erased,
            "targets": targets,
            "rebuilder": rebuilder,
            "available": available,
            "recovered": None,
        }

    def _store_stripe_repairs(self, plan: dict) -> int:
        """Store decoded chunks and swap in the new metadata.

        The rebuilder writes its own chunks locally; every other target
        receives its chunks over the network in one batched transfer.
        Decode CPU is charged at the rebuilder per recovered chunk,
        matching the per-chunk pipeline's accounting.
        """
        meta = plan["meta"]
        chunks = plan["stripe"].all_chunks()
        rebuilder = plan["rebuilder"]
        stores: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        updates: List[Tuple[ChunkMeta, str, str, np.ndarray]] = []
        for idx in plan["erased"]:
            chunk = chunks[idx]
            data = plan["recovered"][idx]
            new_id = self.fs.namenode.next_chunk_id(f"{meta.name}/recovered")
            target = plan["targets"][idx]
            stores.setdefault(target, []).append((new_id, data))
            updates.append((chunk, new_id, target, data))
            self.fs.charge_node_encode(
                rebuilder, len(plan["available"]), 1, meta.chunk_size
            )
        for target, items in stores.items():
            node = self.fs.datanodes[target]
            if target == rebuilder:
                node.store_local_many(items, at=self.fs.clock)
            else:
                node.receive_many_to_disk(items, src=rebuilder, at=self.fs.clock)
        for chunk, new_id, target, data in updates:
            self.fs.checksums.forget(chunk.chunk_id)
            self.fs.checksums.record(new_id, data)
            chunk.chunk_id = new_id
            chunk.node_id = target
            self.fs.namenode.note_chunk(target, meta.name)
        return len(updates)

    def _fetch(self, src: ChunkMeta, target: str) -> Optional[np.ndarray]:
        datanode = self.fs.datanodes[src.node_id]
        if not datanode.is_alive or not datanode.has_chunk(src.chunk_id):
            return None
        # Reconstruction never sources bytes across a partition cut: the
        # source must reach the rebuilding node.
        if not self.fs.partition.reachable(src.node_id, target):
            return None
        data = datanode.read(src.chunk_id, at=self.fs.clock)
        self.fs.metrics.record_transfer(
            src.node_id, target, float(data.nbytes), at=self.fs.clock, tag="repair"
        )
        return data

    def _stripe_and_block(self, meta: FileMeta, chunk: ChunkMeta):
        for stripe in meta.stripes:
            if chunk in stripe.all_chunks():
                return stripe
        return None

    def _rebuild_replica(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        block = next(
            b for b in meta.replica_blocks if chunk in b.copies
        )
        for copy in block.copies:
            if copy is chunk:
                continue
            data = self._fetch(copy, target)
            if data is not None:
                return data
        # No surviving replica: rebuild the span from the stripe's data.
        pieces = []
        for idx in range(block.first_chunk, block.first_chunk + block.n_chunks):
            pieces.append(self._read_or_decode_data(meta, idx, target))
        return np.concatenate(pieces)[: chunk.size]

    def _rebuild_data_chunk(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        stripe = self._stripe_and_block(meta, chunk)
        local = stripe.data.index(chunk)
        # Hybrid fast path: one sequential replica-range read (§4.4).
        global_index = self._global_data_index(meta, stripe, local)
        if meta.replica_blocks:
            data = self._replica_range(meta, global_index, target)
            if data is not None:
                return data
        return self._decode_from_stripe(meta, stripe, stripe.k + 0, local, target)

    def _rebuild_parity(self, meta: FileMeta, chunk: ChunkMeta, target: str) -> np.ndarray:
        stripe = self._stripe_and_block(meta, chunk)
        parity_j = stripe.parities.index(chunk)
        code = self.fs.codec_for_stripe(meta, stripe)
        # Re-encoding a parity needs the whole data span — from replicas if
        # hybrid (sequential read), else from the data chunks.
        data_chunks = []
        for local in range(stripe.k):
            global_index = self._global_data_index(meta, stripe, local)
            piece = None
            if meta.replica_blocks:
                piece = self._replica_range(meta, global_index, target)
            if piece is None:
                piece = self._read_or_decode_data_in_stripe(meta, stripe, local, target)
            data_chunks.append(piece)
        self.fs.charge_node_encode(target, stripe.k, 1, meta.chunk_size)
        return code.encode(data_chunks)[parity_j]

    # -- shared helpers -----------------------------------------------------------
    def _global_data_index(self, meta: FileMeta, stripe: ECStripeMeta, local: int) -> int:
        passed = 0
        for s in meta.stripes:
            if s is stripe:
                return passed + local
            passed += s.k
        raise RecoveryError("stripe not in file")

    def _replica_range(self, meta: FileMeta, chunk_index: int, target: str) -> Optional[np.ndarray]:
        for block in meta.replica_blocks:
            if block.first_chunk <= chunk_index < block.first_chunk + block.n_chunks:
                start = (chunk_index - block.first_chunk) * meta.chunk_size
                for copy in block.copies:
                    datanode = self.fs.datanodes[copy.node_id]
                    if (
                        datanode.is_alive
                        and datanode.has_chunk(copy.chunk_id)
                        and self.fs.partition.reachable(copy.node_id, target)
                    ):
                        data = datanode.read_range(
                            copy.chunk_id, start, meta.chunk_size, at=self.fs.clock
                        )
                        self.fs.metrics.record_transfer(
                            copy.node_id,
                            target,
                            float(meta.chunk_size),
                            at=self.fs.clock,
                            tag="repair",
                        )
                        out = np.zeros(meta.chunk_size, dtype=np.uint8)
                        out[: len(data)] = data
                        return out
        return None

    def _read_or_decode_data(self, meta: FileMeta, chunk_index: int, target: str) -> np.ndarray:
        passed = 0
        for stripe in meta.stripes:
            if chunk_index < passed + stripe.k:
                return self._read_or_decode_data_in_stripe(
                    meta, stripe, chunk_index - passed, target
                )
            passed += stripe.k
        raise RecoveryError(f"chunk index {chunk_index} beyond stripes")

    def _read_or_decode_data_in_stripe(
        self, meta: FileMeta, stripe: ECStripeMeta, local: int, target: str
    ) -> np.ndarray:
        chunk = stripe.data[local]
        data = self._fetch(chunk, target)
        if data is not None:
            return data
        return self._decode_from_stripe(meta, stripe, stripe.k, local, target)

    def _decode_from_stripe(
        self, meta: FileMeta, stripe: ECStripeMeta, _unused: int, local: int, target: str
    ) -> np.ndarray:
        code = self.fs.codec_for_stripe(meta, stripe)
        available: Dict[int, np.ndarray] = {}
        chunks = stripe.all_chunks()
        # Local repair first for LRC-family codes: k/l reads, not k.
        if hasattr(code, "group_members") and local < stripe.k + code.l:
            peers = [m for m in code.group_members(code.group_of(local)) if m != local]
            fetched = {}
            for m in peers:
                data = self._fetch(chunks[m], target)
                if data is None:
                    break
                fetched[m] = data
            if len(fetched) == len(peers):
                recovered = code.decode(fetched, [local])
                self.fs.charge_node_encode(target, len(peers), 1, meta.chunk_size)
                return recovered[local]
            available.update(fetched)
        for idx in range(len(chunks)):
            if idx == local or idx in available:
                continue
            data = self._fetch(chunks[idx], target)
            if data is not None:
                available[idx] = data
                if len(available) >= stripe.k:
                    break
        try:
            recovered = code.decode(available, [local])
        except DecodeError as exc:
            raise RecoveryError(
                f"{meta.name}: stripe {stripe.stripe_index} beyond repair"
            ) from exc
        self.fs.charge_node_encode(target, len(available), 1, meta.chunk_size)
        return recovered[local]
