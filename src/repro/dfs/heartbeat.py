"""Heartbeat-driven failure detection and background maintenance (§6.1/§6.2).

The Namenode learns about Datanode health from periodic heartbeats; a
node that misses enough consecutive beats is declared dead. From there
the heartbeat loop no longer executes maintenance itself — it *submits*
typed work into the filesystem's
:class:`~repro.sched.scheduler.MaintenanceScheduler` and drives one
scheduler tick per heartbeat:

* chunks homed on declared-dead nodes become
  :class:`~repro.sched.tasks.ChunkRepairTask`s, classified critical when
  the chunk's redundancy group has no spare redundancy left;
* the file's ATQ is polled (bounded per heartbeat, §6.2) and each
  conversion group becomes a deadline-carrying
  :class:`~repro.sched.tasks.ConversionGroupTask`, plus one metadata-only
  finalize task per transcoding file;
* on scrub ticks a :class:`~repro.sched.tasks.ScrubTask` is queued.

The scheduler then applies priorities, per-node byte budgets, retries
and dead-lettering uniformly across all of it. With the default
(unlimited) budgets the observable behavior matches the classic loop:
everything submitted in a tick runs in that same tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sched.scheduler import SchedulerTickReport
from repro.sched.tasks import (
    ChunkRepairTask,
    ConversionGroupTask,
    ScrubTask,
    TranscodeFinalizeTask,
)


@dataclass
class HeartbeatConfig:
    interval_s: float = 3.0
    #: consecutive missed beats before a node is declared dead (HDFS
    #: defaults to ~10 minutes; scaled down for simulation)
    dead_after_missed: int = 3
    #: run the scrubber every this many ticks (0 = never)
    scrub_every_ticks: int = 0
    #: ATQ groups polled into the scheduler per heartbeat (§6.2)
    max_transcode_groups_per_tick: int = 8


@dataclass
class TickReport:
    """What one heartbeat round observed and did."""

    tick: int
    newly_dead: List[str] = field(default_factory=list)
    newly_alive: List[str] = field(default_factory=list)
    chunks_recovered: int = 0
    transcode_groups_run: int = 0
    chunks_scrubbed: int = 0
    corruptions_repaired: int = 0
    #: the underlying scheduler tick (admissions, deferrals, dead letters)
    scheduler: Optional[SchedulerTickReport] = None


class HeartbeatMonitor:
    """Periodic cluster maintenance loop for a DFS instance."""

    def __init__(self, fs, config: HeartbeatConfig = None):
        self.fs = fs
        self.config = config or HeartbeatConfig()
        self.tick_count = 0
        self._missed: Dict[str, int] = {n: 0 for n in fs.datanodes}
        self._declared_dead: Set[str] = set()

    # -- health bookkeeping ----------------------------------------------------
    def _collect_beats(self) -> Set[str]:
        """Nodes that respond this round (alive datanodes beat)."""
        return {
            node_id for node_id, dn in self.fs.datanodes.items() if dn.is_alive
        }

    def declared_dead(self) -> Set[str]:
        return set(self._declared_dead)

    # -- work intake -----------------------------------------------------------
    def _submit_repairs(self) -> int:
        """Queue a repair task per lost chunk on a declared-dead node."""
        from repro.dfs.recovery import RecoveryManager
        from repro.sched.policies import classify_repair

        scheduler = self.fs.scheduler
        submitted = 0
        for meta, chunk in RecoveryManager(self.fs).lost_chunks():
            if chunk.node_id not in self._declared_dead:
                continue  # transient blips never trigger IO storms
            pending = scheduler.queue.find(
                lambda t: isinstance(t, ChunkRepairTask) and t.chunk is chunk
            )
            if pending is not None:
                continue
            scheduler.submit(
                ChunkRepairTask(meta, chunk, klass=classify_repair(self.fs, meta, chunk))
            )
            submitted += 1
        return submitted

    def _submit_transcode_work(self) -> None:
        """Poll the ATQ (bounded) and keep a finalize task per UTM file."""
        namenode = self.fs.namenode
        scheduler = self.fs.scheduler
        for name in list(namenode.utm):
            job = namenode.utm[name]
            for group in namenode.poll_work_for(
                name, self.config.max_transcode_groups_per_tick
            ):
                scheduler.submit(ConversionGroupTask(group, deadline=job.deadline))
            pending_finalize = scheduler.queue.find(
                lambda t: isinstance(t, TranscodeFinalizeTask) and t.name == name
            )
            if pending_finalize is None:
                scheduler.submit(TranscodeFinalizeTask(name))

    # -- the tick ----------------------------------------------------------------
    def tick(self, recover: bool = True) -> TickReport:
        """One heartbeat round: update health, submit work, run the
        scheduler for one tick."""
        self.tick_count += 1
        self.fs.clock += self.config.interval_s
        report = TickReport(tick=self.tick_count)
        beats = self._collect_beats()
        for node_id in self.fs.datanodes:
            if node_id in beats:
                if node_id in self._declared_dead:
                    self._declared_dead.discard(node_id)
                    report.newly_alive.append(node_id)
                self._missed[node_id] = 0
            else:
                self._missed[node_id] += 1
                if (
                    self._missed[node_id] >= self.config.dead_after_missed
                    and node_id not in self._declared_dead
                ):
                    self._declared_dead.add(node_id)
                    report.newly_dead.append(node_id)
        # Reconstruction only starts once the Namenode *declares* a node
        # dead — and goes through the scheduler's priority/budget gate.
        if recover and report.newly_dead:
            self._submit_repairs()
        # ATQ draining: bounded intake per heartbeat (§6.2). Only Morph
        # has a native transcoder; the baseline transcodes client-side.
        if hasattr(self.fs, "transcoder"):
            self._submit_transcode_work()
        # Periodic scrub.
        if (
            self.config.scrub_every_ticks
            and self.tick_count % self.config.scrub_every_ticks == 0
        ):
            self.fs.scheduler.submit(ScrubTask())
        sched_report = self.fs.scheduler.run_tick()
        report.scheduler = sched_report
        for task in sched_report.executed:
            if isinstance(task, ChunkRepairTask) and task.result == "repaired":
                report.chunks_recovered += 1
            elif isinstance(task, ConversionGroupTask):
                report.transcode_groups_run += 1
            elif isinstance(task, ScrubTask):
                report.chunks_scrubbed += task.result.chunks_scanned
                report.corruptions_repaired += task.result.repaired
        return report

    def run_ticks(self, count: int) -> List[TickReport]:
        return [self.tick() for _ in range(count)]
