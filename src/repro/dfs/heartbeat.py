"""Heartbeat-driven failure detection and background maintenance (§6.1/§6.2).

The Namenode learns about Datanode health from periodic heartbeats; a
node that misses enough consecutive beats is declared dead and its chunks
are queued for reconstruction. The same tick drives the transcode work
loop (the paper polls the ATQ on each heartbeat) and, at a lower cadence,
the integrity scrubber.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class HeartbeatConfig:
    interval_s: float = 3.0
    #: consecutive missed beats before a node is declared dead (HDFS
    #: defaults to ~10 minutes; scaled down for simulation)
    dead_after_missed: int = 3
    #: run the scrubber every this many ticks (0 = never)
    scrub_every_ticks: int = 0


@dataclass
class TickReport:
    """What one heartbeat round observed and did."""

    tick: int
    newly_dead: List[str] = field(default_factory=list)
    newly_alive: List[str] = field(default_factory=list)
    chunks_recovered: int = 0
    transcode_groups_run: int = 0
    chunks_scrubbed: int = 0
    corruptions_repaired: int = 0


class HeartbeatMonitor:
    """Periodic cluster maintenance loop for a DFS instance."""

    def __init__(self, fs, config: HeartbeatConfig = None):
        self.fs = fs
        self.config = config or HeartbeatConfig()
        self.tick_count = 0
        self._missed: Dict[str, int] = {n: 0 for n in fs.datanodes}
        self._declared_dead: Set[str] = set()

    # -- health bookkeeping ----------------------------------------------------
    def _collect_beats(self) -> Set[str]:
        """Nodes that respond this round (alive datanodes beat)."""
        return {
            node_id for node_id, dn in self.fs.datanodes.items() if dn.is_alive
        }

    def declared_dead(self) -> Set[str]:
        return set(self._declared_dead)

    def tick(self, recover: bool = True) -> TickReport:
        """One heartbeat round: update health, drive recovery + upkeep."""
        self.tick_count += 1
        self.fs.clock += self.config.interval_s
        report = TickReport(tick=self.tick_count)
        beats = self._collect_beats()
        for node_id in self.fs.datanodes:
            if node_id in beats:
                if node_id in self._declared_dead:
                    self._declared_dead.discard(node_id)
                    report.newly_alive.append(node_id)
                self._missed[node_id] = 0
            else:
                self._missed[node_id] += 1
                if (
                    self._missed[node_id] >= self.config.dead_after_missed
                    and node_id not in self._declared_dead
                ):
                    self._declared_dead.add(node_id)
                    report.newly_dead.append(node_id)
        # Reconstruction only starts once the Namenode *declares* a node
        # dead — transient blips never trigger IO storms.
        if recover and report.newly_dead:
            from repro.dfs.recovery import RecoveryManager

            manager = RecoveryManager(self.fs)
            for meta, chunk in manager.lost_chunks():
                if chunk.node_id in self._declared_dead:
                    manager.recover_chunk(meta, chunk)
                    report.chunks_recovered += 1
        # ATQ draining: bounded work per heartbeat (§6.2). Only Morph has
        # a native transcoder; the baseline transcodes client-side.
        transcoding_files = (
            list(self.fs.namenode.utm) if hasattr(self.fs, "transcoder") else []
        )
        for name in transcoding_files:
            groups = [
                g for g in self.fs.namenode.poll_work(8) if g.file_name == name
            ]
            for group in groups:
                self.fs.transcoder.execute_group(group)
                report.transcode_groups_run += 1
            old = self.fs.namenode.try_finalize(name)
            if old is not None:
                for chunk in old:
                    self.fs.datanodes[chunk.node_id].delete(chunk.chunk_id)
                    self.fs.checksums.forget(chunk.chunk_id)
        # Periodic scrub.
        if (
            self.config.scrub_every_ticks
            and self.tick_count % self.config.scrub_every_ticks == 0
        ):
            from repro.dfs.integrity import Scrubber

            scrub = Scrubber(self.fs).scan_and_repair()
            report.chunks_scrubbed = scrub.chunks_scanned
            report.corruptions_repaired = scrub.repaired
        return report

    def run_ticks(self, count: int) -> List[TickReport]:
        return [self.tick() for _ in range(count)]
