"""Heartbeat-driven failure detection and background maintenance (§6.1/§6.2).

The Namenode learns about Datanode health from periodic heartbeats; a
node that misses enough consecutive beats is declared dead. From there
the heartbeat loop no longer executes maintenance itself — it *submits*
typed work into the filesystem's
:class:`~repro.sched.scheduler.MaintenanceScheduler` and drives one
scheduler tick per heartbeat:

* chunks homed on declared-dead nodes become
  :class:`~repro.sched.tasks.ChunkRepairTask`s, classified critical when
  the chunk's redundancy group has no spare redundancy left;
* the file's ATQ is polled (bounded per heartbeat, §6.2) and each
  conversion group becomes a deadline-carrying
  :class:`~repro.sched.tasks.ConversionGroupTask`, plus one metadata-only
  finalize task per transcoding file;
* on scrub ticks a :class:`~repro.sched.tasks.ScrubTask` is queued.

The scheduler then applies priorities, per-node byte budgets, retries
and dead-lettering uniformly across all of it. With the default
(unlimited) budgets the observable behavior matches the classic loop:
everything submitted in a tick runs in that same tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sched.scheduler import SchedulerTickReport
from repro.sched.tasks import (
    ChunkRepairTask,
    ConversionGroupTask,
    ScrubTask,
    TranscodeFinalizeTask,
)


@dataclass
class HeartbeatConfig:
    interval_s: float = 3.0
    #: consecutive missed beats before a node is declared dead (HDFS
    #: defaults to ~10 minutes; scaled down for simulation)
    dead_after_missed: int = 3
    #: run the scrubber every this many ticks (0 = never)
    scrub_every_ticks: int = 0
    #: ATQ groups polled into the scheduler per heartbeat (§6.2)
    max_transcode_groups_per_tick: int = 8
    #: re-enumerate lost chunks on declared-dead nodes every this many
    #: ticks even without a new death (0 = only on ``newly_dead``).
    #: This is what requeues a repair that dead-lettered: the buried
    #: task is out of the pending queue, so the periodic sweep submits a
    #: fresh one with a clean retry budget — a lost chunk is never
    #: abandoned while its node stays dead.
    repair_resubmit_every_ticks: int = 4


@dataclass
class TickReport:
    """What one heartbeat round observed and did."""

    tick: int
    newly_dead: List[str] = field(default_factory=list)
    newly_alive: List[str] = field(default_factory=list)
    #: queued repairs cancelled because their node returned intact
    repairs_cancelled: int = 0
    chunks_recovered: int = 0
    transcode_groups_run: int = 0
    chunks_scrubbed: int = 0
    corruptions_repaired: int = 0
    #: the underlying scheduler tick (admissions, deferrals, dead letters)
    scheduler: Optional[SchedulerTickReport] = None


class HeartbeatMonitor:
    """Periodic cluster maintenance loop for a DFS instance."""

    def __init__(self, fs, config: HeartbeatConfig = None):
        self.fs = fs
        self.config = config or HeartbeatConfig()
        self.tick_count = 0
        #: consecutive missed beats per node — seeded with the datanodes
        #: known now, but ``tick`` tolerates later registrations (the map
        #: is not a construction-time snapshot)
        self._missed: Dict[str, int] = {n: 0 for n in fs.datanodes}
        self._declared_dead: Set[str] = set()

    # -- health bookkeeping ----------------------------------------------------
    def _collect_beats(self) -> Set[str]:
        """Nodes that respond this round.

        A beat needs a live datanode *and* a network path to the
        namenode — a node on the wrong side of a partition is
        indistinguishable from a dead one, which is exactly how real
        namenodes experience partitions.
        """
        partition = getattr(self.fs, "partition", None)
        return {
            node_id
            for node_id, dn in self.fs.datanodes.items()
            if dn.is_alive
            and (partition is None or partition.reachable(node_id, "namenode"))
        }

    def declared_dead(self) -> Set[str]:
        return set(self._declared_dead)

    # -- work intake -----------------------------------------------------------
    def _submit_repairs(self) -> int:
        """Queue a repair task per lost chunk on a declared-dead node."""
        from repro.dfs.recovery import RecoveryManager
        from repro.sched.policies import classify_repair

        scheduler = self.fs.scheduler
        submitted = 0
        for meta, chunk in RecoveryManager(self.fs).lost_chunks(self._declared_dead):
            if chunk.node_id not in self._declared_dead:
                continue  # transient blips never trigger IO storms
            pending = scheduler.queue.find(
                lambda t: isinstance(t, ChunkRepairTask) and t.chunk is chunk
            )
            if pending is not None:
                continue
            scheduler.submit(
                ChunkRepairTask(meta, chunk, klass=classify_repair(self.fs, meta, chunk))
            )
            submitted += 1
        return submitted

    def _cancel_stale_repairs(self, returned: List[str]) -> int:
        """Drop queued repairs for chunks a returning node still holds.

        Only tasks whose chunk is physically present on the returned node
        are cancelled; a chunk that was re-homed while the node was away
        keeps its pending repair.
        """
        returned_set = set(returned)
        queue = self.fs.scheduler.queue
        cancelled = 0
        for task in queue.backlog():
            if not isinstance(task, ChunkRepairTask):
                continue
            node_id = task.chunk.node_id
            if node_id not in returned_set:
                continue
            datanode = self.fs.datanodes.get(node_id)
            if (
                datanode is not None
                and datanode.is_alive
                and datanode.has_chunk(task.chunk.chunk_id)
            ):
                queue.remove(task)
                task.result = "cancelled"
                cancelled += 1
        return cancelled

    def _submit_transcode_work(self) -> None:
        """Poll the ATQ (bounded) and keep a finalize task per UTM file."""
        namenode = self.fs.namenode
        scheduler = self.fs.scheduler
        for name in list(namenode.utm):
            job = namenode.utm[name]
            for group in namenode.poll_work_for(
                name, self.config.max_transcode_groups_per_tick
            ):
                scheduler.submit(ConversionGroupTask(group, deadline=job.deadline))
            pending_finalize = scheduler.queue.find(
                lambda t: isinstance(t, TranscodeFinalizeTask) and t.name == name
            )
            if pending_finalize is None:
                scheduler.submit(TranscodeFinalizeTask(name))

    # -- the tick ----------------------------------------------------------------
    def tick(self, recover: bool = True) -> TickReport:
        """One heartbeat round: update health, submit work, run the
        scheduler for one tick."""
        self.tick_count += 1
        self.fs.clock += self.config.interval_s
        report = TickReport(tick=self.tick_count)
        beats = self._collect_beats()
        for node_id in self.fs.datanodes:
            # ``.get`` covers datanodes registered after the monitor was
            # constructed — the miss map is not a construction-time
            # snapshot of the cluster.
            if node_id in beats:
                if node_id in self._declared_dead:
                    self._declared_dead.discard(node_id)
                    report.newly_alive.append(node_id)
                self._missed[node_id] = 0
            else:
                missed = self._missed.get(node_id, 0) + 1
                self._missed[node_id] = missed
                if (
                    missed >= self.config.dead_after_missed
                    and node_id not in self._declared_dead
                ):
                    self._declared_dead.add(node_id)
                    report.newly_dead.append(node_id)
        # A returning node makes queued repairs for its still-present
        # chunks stale; drop them before they waste budget.
        if report.newly_alive:
            report.repairs_cancelled = self._cancel_stale_repairs(
                report.newly_alive
            )
        # Reconstruction only starts once the Namenode *declares* a node
        # dead — and goes through the scheduler's priority/budget gate.
        # The periodic resweep keeps dead-lettered repairs from orphaning
        # their chunks: still-lost chunks are resubmitted as fresh tasks.
        resubmit = self.config.repair_resubmit_every_ticks and (
            self._declared_dead
            and self.tick_count % self.config.repair_resubmit_every_ticks == 0
        )
        if recover and (report.newly_dead or resubmit):
            self._submit_repairs()
        # ATQ draining: bounded intake per heartbeat (§6.2). Only Morph
        # has a native transcoder; the baseline transcodes client-side.
        if hasattr(self.fs, "transcoder"):
            self._submit_transcode_work()
        # Periodic scrub.
        if (
            self.config.scrub_every_ticks
            and self.tick_count % self.config.scrub_every_ticks == 0
        ):
            self.fs.scheduler.submit(ScrubTask())
        sched_report = self.fs.scheduler.run_tick()
        report.scheduler = sched_report
        for task in sched_report.executed:
            if isinstance(task, ChunkRepairTask) and task.result == "repaired":
                report.chunks_recovered += 1
            elif isinstance(task, ConversionGroupTask):
                report.transcode_groups_run += 1
            elif isinstance(task, ScrubTask):
                report.chunks_scrubbed += task.result.chunks_scanned
                report.corruptions_repaired += task.result.repaired
        return report

    def run_ticks(self, count: int) -> List[TickReport]:
        return [self.tick() for _ in range(count)]
