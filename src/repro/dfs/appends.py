"""Append support for MorphFS (paper §4.2, appendability).

Replicated files can append freely; EC files cannot without parity
read-modify-write. Morph's hybrid scheme restores appendability by
deferring parity computation until a stripe is *complete*.
"""

from __future__ import annotations

import numpy as np

from repro.core.schemes import HybridScheme
from repro.dfs.blocks import ChunkKind, ChunkMeta, FileMeta

class AppendSupport:
    """Mixin providing append_file / close_file on MorphFS.

    An open (tail) stripe is durable purely through replicas — ``c + 1`` copies
    stay persisted until its parities land, matching the paper's "if a
    file is closed before parities get persisted, both replicas are
    persisted even for Hy(1, ...)".
    """

    def append_file(self, name: str, data) -> FileMeta:
        """Append bytes to a hybrid file; parities only for full stripes."""
        meta = self.namenode.lookup(name)
        if not isinstance(meta.scheme, HybridScheme):
            raise ValueError(f"append requires a hybrid file, {name} is {meta.scheme}")
        data = np.asarray(data, dtype=np.uint8).reshape(-1)
        ec = meta.scheme.ec
        span = ec.k * self.chunk_size
        open_start = (meta.size // span) * span
        tail_len = meta.size - open_start
        existing = (
            self.read_file(name, offset=open_start, length=tail_len)
            if tail_len
            else np.zeros(0, dtype=np.uint8)
        )
        region = np.concatenate([existing, data])
        self._drop_open_region(meta, open_start, ec)
        # The drop rewrote placement metadata; note it before the rewrite
        # below mints fresh chunk ids, so a journaled namenode stays
        # consistent at every record boundary.
        self.namenode.note_file(meta)
        self._write_hybrid_region(meta, open_start // span, region, meta.scheme)
        meta.size = open_start + len(region)
        # Final placement note after the size update so a journaled
        # namenode's last record for this append carries the final state.
        self.namenode.note_file(meta)
        return meta

    def close_file(self, name: str) -> FileMeta:
        """Seal an open tail stripe: encode its parities, drop the extra
        replica. Short tails get a narrower stripe of the same family."""
        meta = self.namenode.lookup(name)
        if not isinstance(meta.scheme, HybridScheme):
            return meta
        if not meta.stripes or meta.stripes[-1].parities:
            return meta  # nothing open
        ec = meta.scheme.ec
        stripe = meta.stripes[-1]
        striper = self._pick_striper(
            [c.node_id for c in reversed(meta.replica_blocks[-1].copies)]
        )
        chunks = self._read_stripe_data_degraded(meta, stripe, striper)
        code = self.cc_codec(stripe.k, stripe.k + ec.r)
        parities = code.encode(chunks)
        self.charge_node_encode(striper, stripe.k, ec.r, self.chunk_size)
        placement = self._placement_for(meta.name, ec)
        first_chunk = sum(s.k for s in meta.stripes[:-1])
        occupied = [c.node_id for c in stripe.all_chunks()]
        parity_nodes = []
        for j in range(ec.r):
            node = self._alive_or_substitute(
                placement.parity_node(meta.name, first_chunk, j), occupied
            )
            occupied.append(node)
            parity_nodes.append(node)
        kinds = [ChunkKind.PARITY] * ec.r
        for j, parity in enumerate(parities):
            chunk_id = self.namenode.next_chunk_id(
                f"{meta.name}/s{stripe.stripe_index}p{j}"
            )
            self.datanodes[parity_nodes[j]].receive_to_disk(
                chunk_id, parity, src=striper, at=self.clock
            )
            self.checksums.record(chunk_id, parity)
            stripe.parities.append(
                ChunkMeta(chunk_id, parity_nodes[j], kinds[j], parity.nbytes)
            )
            self.namenode.note_chunk(parity_nodes[j], meta.name)
        stripe.n = stripe.k + ec.r
        self._trim_extra_replica(meta, meta.replica_blocks[-1], meta.scheme.copies)
        # Final note after the width update + replica trim (see append_file).
        self.namenode.note_file(meta)
        return meta

    # -- internals -------------------------------------------------------------
    def _drop_open_region(self, meta: FileMeta, open_start: int, ec) -> None:
        """Remove the open stripe (and its replica block) before rewrite."""
        span_chunks = ec.k
        open_stripe_idx = open_start // (span_chunks * self.chunk_size)
        for stripe in meta.stripes[open_stripe_idx:]:
            for chunk in stripe.all_chunks():
                self.datanodes[chunk.node_id].delete(chunk.chunk_id)
                self.checksums.forget(chunk.chunk_id)
        meta.stripes = meta.stripes[:open_stripe_idx]
        first_open_chunk = open_stripe_idx * span_chunks
        keep, drop = [], []
        for block in meta.replica_blocks:
            (drop if block.first_chunk >= first_open_chunk else keep).append(block)
        for block in drop:
            for copy in block.copies:
                self.datanodes[copy.node_id].delete(copy.chunk_id)
                self.checksums.forget(copy.chunk_id)
        meta.replica_blocks = keep

    def _write_hybrid_region(
        self, meta: FileMeta, first_stripe: int, region: np.ndarray, hy: HybridScheme
    ) -> None:
        """Write a byte region as hybrid stripes; a partial tail stripe
        stays *open*: data chunks + c+1 persisted replicas, no parities."""
        ec = hy.ec
        placement = self._placement_for(meta.name, ec)
        code = self.codec_for(ec)
        n_chunks = -(-len(region) // self.chunk_size) if len(region) else 0
        chunks = []
        for i in range(n_chunks):
            piece = region[i * self.chunk_size : (i + 1) * self.chunk_size]
            if len(piece) < self.chunk_size:
                padded = np.zeros(self.chunk_size, dtype=np.uint8)
                padded[: len(piece)] = piece
                piece = padded
            chunks.append(np.asarray(piece, dtype=np.uint8))
        for s in range(0, len(chunks), ec.k):
            stripe_index = first_stripe + s // ec.k
            stripe_chunks = chunks[s : s + ec.k]
            is_open = len(stripe_chunks) < ec.k
            block_bytes = np.concatenate(stripe_chunks)
            spots = placement.place_stripe(meta.name, stripe_index, ec.k, ec.n - ec.k)
            ec_nodes = spots["data"] + spots["parity"]
            # Open stripes persist one extra replica for durability (§4.2).
            persist = hy.copies + (1 if is_open else 0)
            n_targets = max(persist, 2)
            replica_nodes = placement.place_replicas(
                meta.name, stripe_index, n_targets, exclude=ec_nodes
            )
            self._write_replica_pipeline(
                meta,
                stripe_index,
                first_chunk=first_stripe * ec.k + s,
                n_chunks=len(stripe_chunks),
                block_bytes=block_bytes,
                nodes=replica_nodes,
                persist_count=persist,
                to_memory=True,
            )
            striper = replica_nodes[-1]
            if is_open:
                stripe_meta = self._store_stripe(
                    meta, stripe_index, stripe_chunks, [],
                    spots["data"][: len(stripe_chunks)], [], ec, src=striper,
                )
                stripe_meta.n = stripe_meta.k  # no parities yet
            else:
                parities = code.encode(stripe_chunks)
                self.charge_node_encode(striper, ec.k, ec.n - ec.k, self.chunk_size)
                self._store_stripe(
                    meta, stripe_index, stripe_chunks, parities,
                    spots["data"], spots["parity"], ec, src=striper,
                )
            for i, node_id in enumerate(replica_nodes):
                if i >= persist:
                    self._drop_temp_replica(node_id, f"{meta.name}/r{stripe_index}c{i}")

    def _trim_extra_replica(self, meta: FileMeta, block, copies: int) -> None:
        """Drop the extra open-stripe replica once parities are durable."""
        while len(block.copies) > copies:
            extra = block.copies.pop()
            self.datanodes[extra.node_id].delete(extra.chunk_id)
            self.checksums.forget(extra.chunk_id)
