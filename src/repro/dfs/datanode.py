"""Datanode: chunk storage with a battery-backed buffer cache.

A chunk received into memory is durable (battery-backed RAM, §4.2) but
costs no disk IO until persisted. Morph's hybrid write protocol exploits
exactly this: temporary replicas live in memory and are deleted once the
stripe's parities persist, so in the common case they never touch disk.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.cluster.metrics import IOMetrics


class ChunkNotFoundError(KeyError):
    """Requested chunk is on neither disk nor memory of this node."""


class BufferCacheFullError(RuntimeError):
    """The battery-backed buffer cache cannot absorb another chunk."""


class Datanode:
    """One storage server: disk map + bounded buffer cache + counters."""

    def __init__(
        self,
        node_id: str,
        metrics: IOMetrics,
        buffer_cache_bytes: float = 512 * 1024 * 1024,
    ):
        self.node_id = node_id
        self.metrics = metrics
        self.buffer_cache_bytes = buffer_cache_bytes
        self._disk: Dict[str, np.ndarray] = {}
        self._memory: Dict[str, np.ndarray] = {}
        self.is_alive = True

    # -- ingest ---------------------------------------------------------------
    def receive_to_memory(
        self, chunk_id: str, data: np.ndarray, src: str, at: float = 0.0
    ) -> None:
        """Absorb a chunk into the buffer cache (durable, no disk IO)."""
        data = np.asarray(data, dtype=np.uint8)
        in_use = self.metrics.node(self.node_id).memory_in_use_bytes
        if in_use + data.nbytes > self.buffer_cache_bytes:
            raise BufferCacheFullError(
                f"{self.node_id}: buffer cache full ({in_use} + {data.nbytes})"
            )
        self.metrics.record_transfer(src, self.node_id, data.nbytes, at=at)
        self.metrics.node(self.node_id).use_memory(data.nbytes)
        self._memory[chunk_id] = data.copy()

    def receive_to_disk(self, chunk_id: str, data: np.ndarray, src: str, at: float = 0.0) -> None:
        """Receive and write through to disk (one network + one disk write)."""
        data = np.asarray(data, dtype=np.uint8)
        self.metrics.record_transfer(src, self.node_id, data.nbytes, at=at)
        self.metrics.record_disk_write(self.node_id, data.nbytes, at=at)
        self._disk[chunk_id] = data.copy()

    def receive_many_to_disk(
        self,
        items: Iterable[Tuple[str, np.ndarray]],
        src: str,
        at: float = 0.0,
    ) -> None:
        """Receive a batch of chunks from one sender in a single call.

        Metering is per chunk (one network transfer + one disk write
        each), identical to calling :meth:`receive_to_disk` in a loop.
        """
        for chunk_id, data in items:
            self.receive_to_disk(chunk_id, data, src, at=at)

    def persist(self, chunk_id: str, at: float = 0.0) -> None:
        """Flush a buffered chunk to disk (frees the cache slot)."""
        if chunk_id not in self._memory:
            if chunk_id in self._disk:
                return  # already persisted
            raise ChunkNotFoundError(chunk_id)
        data = self._memory.pop(chunk_id)
        self.metrics.node(self.node_id).free_memory(data.nbytes)
        self.metrics.record_disk_write(self.node_id, data.nbytes, at=at)
        self._disk[chunk_id] = data

    def drop_from_memory(self, chunk_id: str) -> None:
        """Discard a buffered chunk without any disk IO (temp replicas)."""
        data = self._memory.pop(chunk_id, None)
        if data is not None:
            self.metrics.node(self.node_id).free_memory(data.nbytes)

    # -- reads ----------------------------------------------------------------
    def read(self, chunk_id: str, at: float = 0.0) -> np.ndarray:
        """Read a chunk; disk reads are metered, memory hits are free."""
        if not self.is_alive:
            raise ChunkNotFoundError(f"{self.node_id} is down")
        if chunk_id in self._memory:
            return self._memory[chunk_id]
        if chunk_id in self._disk:
            data = self._disk[chunk_id]
            self.metrics.record_disk_read(self.node_id, data.nbytes, at=at)
            return data
        raise ChunkNotFoundError(chunk_id)

    def read_range(self, chunk_id: str, start: int, length: int, at: float = 0.0) -> np.ndarray:
        """Partial chunk read (metered at the requested length)."""
        if not self.is_alive:
            raise ChunkNotFoundError(f"{self.node_id} is down")
        if chunk_id in self._memory:
            return self._memory[chunk_id][start : start + length]
        if chunk_id in self._disk:
            self.metrics.record_disk_read(self.node_id, float(length), at=at)
            return self._disk[chunk_id][start : start + length]
        raise ChunkNotFoundError(chunk_id)

    def has_chunk(self, chunk_id: str) -> bool:
        return chunk_id in self._disk or chunk_id in self._memory

    def chunk_on_disk(self, chunk_id: str) -> bool:
        return chunk_id in self._disk

    # -- local compute ----------------------------------------------------------
    def store_local(self, chunk_id: str, data: np.ndarray, at: float = 0.0) -> None:
        """Write a locally computed chunk to disk (no network)."""
        data = np.asarray(data, dtype=np.uint8)
        self.metrics.record_disk_write(self.node_id, data.nbytes, at=at)
        self._disk[chunk_id] = data.copy()

    def store_local_many(
        self, items: Iterable[Tuple[str, np.ndarray]], at: float = 0.0
    ) -> None:
        """Write a batch of locally computed chunks (per-chunk metering)."""
        for chunk_id, data in items:
            self.store_local(chunk_id, data, at=at)

    def charge_cpu(self, seconds: float) -> None:
        self.metrics.record_cpu(self.node_id, seconds)

    # -- deletion / capacity ------------------------------------------------------
    def delete(self, chunk_id: str, at: float = 0.0) -> None:
        data = self._disk.pop(chunk_id, None)
        if data is not None:
            self.metrics.record_disk_delete(self.node_id, data.nbytes, at=at)
        self.drop_from_memory(chunk_id)

    def bytes_at_rest(self) -> float:
        return float(sum(c.nbytes for c in self._disk.values()))

    def memory_bytes(self) -> float:
        return float(sum(c.nbytes for c in self._memory.values()))

    def disk_chunk_ids(self):
        return list(self._disk)

    def fail(self) -> None:
        """Crash the node: disk survives but is unreachable; memory is lost
        only conceptually (battery-backed) — we keep it for restart."""
        self.is_alive = False

    def recover(self) -> None:
        self.is_alive = True
