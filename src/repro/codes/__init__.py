"""Erasure codes used by Morph and its baselines.

* :class:`ReedSolomon` — systematic Cauchy-based RS(k, n), the baseline
  code used by today's DFSs (HDFS-EC style).
* :class:`ConvertibleCode` — access-optimal Convertible Codes: RS-equivalent
  fault tolerance, but transcode (merge/split/general regime) reads far less
  data (Maturana & Rashmi; Morph §5).
* :class:`BandwidthOptimalCC` — vector-code (piggybacked) Convertible Codes
  for conversions that *add* parities (Morph Appendix A, case 2a).
* :class:`LocalReconstructionCode` — LRC(k, l, r) with local groups.
* :class:`LocallyRecoverableConvertibleCode` — LRCC: LRCs whose local and
  global parities are CC-mergeable (Morph §5.1).
* :mod:`repro.codes.stripemerge` — StripeMerge baseline (related work).
* :mod:`repro.codes.costmodel` — closed-form transcode IO accounting for
  every strategy; drives the trace analyses and Figs 17/18.
"""

from repro.codes.base import (
    DecodeError,
    ErasureCode,
    Stripe,
    chunks_equal,
    join_chunks,
    split_into_chunks,
)
from repro.codes.rs import ReedSolomon
from repro.codes.convertible import ConvertibleCode, ConversionPlan
from repro.codes.bandwidth import BandwidthOptimalCC
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.codes.costmodel import (
    TranscodeCost,
    Strategy,
    transcode_cost,
    rrw_cost,
    native_rs_cost,
    convertible_cost,
    stripemerge_cost,
)

__all__ = [
    "ErasureCode",
    "Stripe",
    "DecodeError",
    "split_into_chunks",
    "join_chunks",
    "chunks_equal",
    "ReedSolomon",
    "ConvertibleCode",
    "ConversionPlan",
    "BandwidthOptimalCC",
    "LocalReconstructionCode",
    "LocallyRecoverableConvertibleCode",
    "TranscodeCost",
    "Strategy",
    "transcode_cost",
    "rrw_cost",
    "native_rs_cost",
    "convertible_cost",
    "stripemerge_cost",
]
