"""StripeMerge baseline (Yao et al., ICDCS 2021) — related-work comparator.

StripeMerge supports exactly one transition: merging **two** narrow
stripes of a carefully designed k-of-n code into one 2k-of-n' stripe with
the *same* number of parities. Unlike Morph it is not file-oriented: it
searches the whole cluster for stripe pairs whose chunks happen to live on
disjoint servers, and pairs that conflict must move chunks first.

For the Fig 18 comparison we model it as:

* applicable only when ``k_F == 2 * k_I`` and ``r_F == r_I``;
* when applicable, parity merge reads the 2 r parities (like CC merge)
  plus moves a (configurable) expected number of conflicting data chunks,
  since placement was not planned around the merge;
* anywhere else its cost is the RS/RRW cost (no support).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StripeMergeModel:
    """Cost model for StripeMerge in chunk-equivalents per final stripe.

    ``conflict_rate`` is the expected fraction of data chunks that must be
    relocated because the two merged stripes overlapped on a server. The
    paper's placement-aware Morph needs none; StripeMerge's cluster-wide
    pairing typically leaves a small residue even with a good matching.
    """

    conflict_rate: float = 0.05

    def supports(self, k_initial: int, r_initial: int, k_final: int, r_final: int) -> bool:
        return k_final == 2 * k_initial and r_final == r_initial

    def read_chunks(self, k_initial: int, r_initial: int, k_final: int, r_final: int) -> float:
        """Chunks read to produce one final stripe."""
        if not self.supports(k_initial, r_initial, k_final, r_final):
            # Falls back to read-re-encode-write over all data.
            return float(k_final)
        moved = self.conflict_rate * k_final
        return 2 * r_initial + moved

    def write_chunks(self, k_initial: int, r_initial: int, k_final: int, r_final: int) -> float:
        """Chunks written to produce one final stripe (parities + moves)."""
        if not self.supports(k_initial, r_initial, k_final, r_final):
            return float(k_final + r_final)
        moved = self.conflict_rate * k_final
        return r_final + moved
