"""Access-optimal Convertible Codes (CC).

A CC *family* is fixed by ``r`` verified evaluation points (see
:mod:`repro.codes.pointsearch`). A member code of width ``k`` has parity
``p_j = sum_t d_t * alpha_j**t`` — i.e. a polynomial evaluation where the
coefficient of a data symbol depends only on its *position*. Shifting a
block of symbols by ``o`` positions multiplies its contribution to parity
``j`` by ``alpha_j**o``, which is the algebraic fact every conversion
below exploits:

* **Merge** (``k_F = lam * k_I``): final parity j is
  ``sum_i alpha_j**(i*k_I) * p_j^(i)`` — computed from *parities only*
  (paper Fig 7: 6 parity reads instead of 12 data reads).
* **Split** (``k_I = lam * k_F``): the first ``lam - 1`` final stripes are
  re-encoded from their (read) data; the last one's parities are derived
  by subtracting those contributions from the initial parities
  (paper Fig 16: 10 reads instead of 12).
* **General** (any ``k_I -> k_F`` with the same points): initial stripes
  fully contained in a final stripe contribute via their parities;
  straddling stripes are read; one fully-contained final stripe per
  initial stripe is derived by subtraction (paper: EC(6,9)->EC(15,18)
  reads 40% less).

Conversions that *increase* the parity count need vector codes — see
:class:`repro.codes.bandwidth.BandwidthOptimalCC`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codes.base import DecodeError, ErasureCode, Stripe
from repro.codes.pointsearch import find_family_points, vandermonde_parity
from repro.gf.field import gf_pow
from repro.gf.kernels import gf_scale_xor
from repro.gf.matrix import gf_identity

#: Default maximum stripe width a family is verified for (r <= 3). Wide
#: enough for every functional parameter the paper's system evaluation
#: uses; wider sweeps are analytical (repro.codes.costmodel).
DEFAULT_FAMILY_WIDTH = 40


def default_family_width(r: int, k: int) -> int:
    """Widest default family for this parity count over GF(256)."""
    from repro.codes.pointsearch import MAX_FEASIBLE_WIDTH

    feasible = MAX_FEASIBLE_WIDTH.get(r, 0)
    return max(k, min(DEFAULT_FAMILY_WIDTH, feasible))


class ConvertibleCode(ErasureCode):
    """CC(k, n): RS-equivalent fault tolerance, IO-efficient transcode.

    Codes constructed with the same ``r`` and ``family_width`` share
    evaluation points and are mutually convertible.
    """

    def __init__(self, k: int, n: int, family_width: Optional[int] = None):
        super().__init__(k, n)
        if family_width is None:
            family_width = default_family_width(self.r, k)
        if k > family_width:
            family_width = k
        self.family_width = family_width
        self.points = find_family_points(self.r, family_width)
        parity = vandermonde_parity(self.points, k)  # (k, r)
        self._generator = np.concatenate(
            [gf_identity(k), parity.T.astype(np.uint8)], axis=0
        )

    @property
    def generator(self) -> np.ndarray:
        return self._generator

    def shift_coefficient(self, j: int, offset: int) -> int:
        """Coefficient scaling parity j of a block shifted by ``offset``."""
        return gf_pow(self.points[j], offset)

    def compatible_with(self, other: "ConvertibleCode") -> bool:
        """True if ``other`` shares this code's evaluation-point prefix."""
        shared = min(self.r, other.r)
        return self.points[:shared] == other.points[:shared]


@dataclass
class ConversionIO:
    """Byte-granularity IO performed by a conversion."""

    data_chunks_read: int = 0
    parity_chunks_read: int = 0
    parity_chunks_written: int = 0
    data_chunks_moved: int = 0
    #: fraction of each counted data-chunk read actually transferred
    #: (1.0 for scalar codes; (r_F-r_I)/r_F for vector-code conversions).
    data_read_fraction: float = 1.0

    @property
    def chunks_read(self) -> float:
        return self.data_chunks_read * self.data_read_fraction + self.parity_chunks_read

    def read_bytes(self, chunk_size: int) -> float:
        return self.chunks_read * chunk_size

    def write_bytes(self, chunk_size: int) -> float:
        return (self.parity_chunks_written + self.data_chunks_moved) * chunk_size


@dataclass
class ConversionPlan:
    """Which chunks a conversion must touch, before any byte moves.

    ``data_reads`` holds *global* data-chunk indices (position in the file
    region being converted); ``parity_reads`` holds ``(stripe, j)`` pairs.
    ``derived_finals`` maps a final-stripe index to the initial stripe
    whose parities will be used to derive it by subtraction.
    """

    k_initial: int
    r_initial: int
    k_final: int
    r_final: int
    n_initial_stripes: int
    n_final_stripes: int
    data_reads: Set[int] = field(default_factory=set)
    parity_reads: Set[Tuple[int, int]] = field(default_factory=set)
    derived_finals: Dict[int, int] = field(default_factory=dict)

    def io(self) -> ConversionIO:
        return ConversionIO(
            data_chunks_read=len(self.data_reads),
            parity_chunks_read=len(self.parity_reads),
            parity_chunks_written=self.n_final_stripes * self.r_final,
        )


def plan_conversion(
    initial: ConvertibleCode, final: ConvertibleCode, n_stripes: int
) -> ConversionPlan:
    """Plan an access-optimal conversion of ``n_stripes`` initial stripes.

    Requires ``final.r <= initial.r`` (otherwise vector codes are needed)
    and total data divisible by the final width.
    """
    if final.r > initial.r:
        raise ValueError(
            "access-optimal CC cannot add parities; use BandwidthOptimalCC"
        )
    if not initial.compatible_with(final):
        raise ValueError("codes are from different CC families")
    k_i, k_f = initial.k, final.k
    total = n_stripes * k_i
    if total % k_f != 0:
        raise ValueError(
            f"{n_stripes} stripes of width {k_i} do not tile stripes of width {k_f}"
        )
    plan = ConversionPlan(
        k_initial=k_i,
        r_initial=initial.r,
        k_final=k_f,
        r_final=final.r,
        n_initial_stripes=n_stripes,
        n_final_stripes=total // k_f,
    )
    for i in range(n_stripes):
        i_lo, i_hi = i * k_i, (i + 1) * k_i
        # Case (a): initial stripe contained in one final stripe. Using
        # its parities costs r_F reads; reading its data costs k_I — take
        # the cheaper (parities win except for very narrow stripes).
        if i_lo // k_f == (i_hi - 1) // k_f:
            if final.r < k_i:
                for j in range(final.r):
                    plan.parity_reads.add((i, j))
            else:
                plan.data_reads.update(range(i_lo, i_hi))
            continue
        # Finals fully contained in this initial stripe are candidates for
        # derivation-by-subtraction; at most one can be derived, and only
        # when skipping its k_F data reads beats the r_F parity reads.
        contained = [
            m
            for m in range(i_lo // k_f, (i_hi - 1) // k_f + 1)
            if i_lo <= m * k_f and (m + 1) * k_f <= i_hi
        ]
        derived: Optional[int] = (
            contained[-1] if contained and final.r < k_f else None
        )
        if derived is not None:
            plan.derived_finals[derived] = i
            for j in range(final.r):
                plan.parity_reads.add((i, j))
        for t in range(i_lo, i_hi):
            if derived is not None and derived * k_f <= t < (derived + 1) * k_f:
                continue
            plan.data_reads.add(t)
    return plan


def convert(
    initial: ConvertibleCode,
    final: ConvertibleCode,
    stripes: Sequence[Stripe],
    plan: Optional[ConversionPlan] = None,
) -> Tuple[List[Stripe], ConversionIO]:
    """Execute an access-optimal conversion, touching only planned chunks.

    Returns the final stripes (byte-identical to re-encoding from scratch
    with ``final``) and the IO actually performed. Chunks the plan does
    not read are never accessed — erase them first to prove it.
    """
    if plan is None:
        plan = plan_conversion(initial, final, len(stripes))
    k_i, k_f, r_f = initial.k, final.k, final.r
    chunk_size = stripes[0].chunk_size()

    def data_chunk(t: int) -> np.ndarray:
        chunk = stripes[t // k_i].chunks[t % k_i]
        if chunk is None:
            raise DecodeError(f"plan requires data chunk {t} but it is erased")
        return chunk

    def parity_chunk(i: int, j: int) -> np.ndarray:
        chunk = stripes[i].chunks[k_i + j]
        if chunk is None:
            raise DecodeError(f"plan requires parity ({i},{j}) but it is erased")
        return chunk

    io = ConversionIO(
        data_chunks_read=len(plan.data_reads),
        parity_chunks_read=len(plan.parity_reads),
        parity_chunks_written=plan.n_final_stripes * r_f,
    )

    # Accumulate each final parity; derived finals are filled by subtraction.
    parities = np.zeros((plan.n_final_stripes, r_f, chunk_size), dtype=np.uint8)
    for i in range(plan.n_initial_stripes):
        i_lo, i_hi = i * k_i, (i + 1) * k_i
        contained_in = i_lo // k_f if i_lo // k_f == (i_hi - 1) // k_f else None
        if contained_in is not None and (i, 0) in plan.parity_reads:
            # Whole stripe contributes via its parities, shifted into place.
            offset = i_lo - contained_in * k_f
            for j in range(r_f):
                coeff = final.shift_coefficient(j, offset)
                gf_scale_xor(parities[contained_in, j], coeff, parity_chunk(i, j))
            continue
        if contained_in is not None:
            # Narrow stripe: its data was cheaper to read than parities.
            for t in range(i_lo, i_hi):
                local = t - contained_in * k_f
                chunk = data_chunk(t)
                for j in range(r_f):
                    coeff = final.shift_coefficient(j, local)
                    gf_scale_xor(parities[contained_in, j], coeff, chunk)
            continue
        derived = next(
            (m for m, src in plan.derived_finals.items() if src == i), None
        )
        for t in range(i_lo, i_hi):
            m = t // k_f
            if derived is not None and m == derived:
                continue
            local = t - m * k_f
            chunk = data_chunk(t)
            for j in range(r_f):
                coeff = final.shift_coefficient(j, local)
                gf_scale_xor(parities[m, j], coeff, chunk)
        if derived is not None:
            # initial parity = sum over the stripe's span with *initial-local*
            # exponents; re-expressed per final stripe that gives, for each j:
            #   p_init_j = sum_R alpha_j**(R_start - i_lo) * contrib_R
            # where contrib_R is region R's final-local parity contribution.
            # Every region except the derived final is known from data reads.
            for j in range(r_f):
                acc = parity_chunk(i, j).copy()
                for t in range(i_lo, i_hi):
                    m = t // k_f
                    if m == derived:
                        continue
                    coeff = final.shift_coefficient(j, t - i_lo)
                    gf_scale_xor(acc, coeff, data_chunk(t))
                # acc == alpha_j**(derived_start - i_lo) * missing contribution
                inv = final.shift_coefficient(j, i_lo - derived * k_f)
                gf_scale_xor(parities[derived, j], inv, acc)

    out: List[Stripe] = []
    for m in range(plan.n_final_stripes):
        chunks: List[Optional[np.ndarray]] = []
        for t in range(m * k_f, (m + 1) * k_f):
            chunks.append(stripes[t // k_i].chunks[t % k_i])
        chunks.extend(parities[m, j] for j in range(r_f))
        out.append(Stripe(k_f, final.n, chunks))
    return out, io
