"""Locally Recoverable Codes — LRC(k, l, r).

``k`` data chunks are organised into ``l`` local groups, each protected by
one local parity; ``r`` global parities protect all data. Chunk layout of
a stripe: ``k`` data, then ``l`` local parities, then ``r`` globals
(``n = k + l + r``). A single failure inside a group repairs by reading
only the ``k/l`` other group members — the reason wide late-life codes are
LRCs (paper §2).

This is the *non-convertible* baseline; its convertible counterpart is
:class:`repro.codes.lrcc.LocallyRecoverableConvertibleCode`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.codes.base import DecodeError, ErasureCode
from repro.obs.codec import record_codec
from repro.gf.matrix import (
    SingularMatrixError,
    cauchy_matrix,
    gf_identity,
    gf_matinv,
    gf_matmul_reference,
    gf_rank,
)


class LocalReconstructionCode(ErasureCode):
    """LRC(k, l, r): l local groups, one local parity each, r globals."""

    def __init__(self, k: int, l: int, r_global: int):
        if l < 1 or k % l != 0:
            raise ValueError(f"k={k} must be divisible by l={l}")
        if r_global < 0:
            raise ValueError("r_global must be >= 0")
        super().__init__(k, k + l + r_global)
        self.l = l
        self.r_global = r_global
        self.group_size = k // l
        self._generator = self._build_generator()

    @property
    def generator(self) -> np.ndarray:
        return self._generator

    def _build_generator(self) -> np.ndarray:
        rows = [gf_identity(self.k)]
        local = np.zeros((self.l, self.k), dtype=np.uint8)
        for g in range(self.l):
            local[g, g * self.group_size : (g + 1) * self.group_size] = 1
        rows.append(local)
        if self.r_global:
            xs = list(range(self.k, self.k + self.r_global))
            rows.append(cauchy_matrix(xs, list(range(self.k))))
        return np.concatenate(rows, axis=0)

    # -- indices -------------------------------------------------------------
    def group_of(self, index: int) -> int:
        """Local group of a data or local-parity chunk index."""
        if index < self.k:
            return index // self.group_size
        if index < self.k + self.l:
            return index - self.k
        raise ValueError(f"chunk {index} is a global parity; it has no group")

    def group_members(self, group: int) -> List[int]:
        """Data chunk indices of a group plus its local-parity index."""
        data = list(range(group * self.group_size, (group + 1) * self.group_size))
        return data + [self.k + group]

    def local_parity_index(self, group: int) -> int:
        return self.k + group

    # -- repair ---------------------------------------------------------------
    def local_repair(
        self, failed: int, available: Dict[int, np.ndarray]
    ) -> np.ndarray:
        """Repair one failed group member from the rest of its group.

        Reads exactly ``k/l`` chunks (group peers + local parity, XOR).

        Raises:
            DecodeError: if any other group member is also unavailable.
        """
        group = self.group_of(failed)
        members = self.group_members(group)
        peers = [m for m in members if m != failed]
        missing = [m for m in peers if m not in available]
        if missing:
            raise DecodeError(
                f"local repair of {failed} needs group chunks {missing}"
            )
        acc = np.zeros_like(np.asarray(available[peers[0]], dtype=np.uint8))
        for m in peers:
            acc = acc ^ np.asarray(available[m], dtype=np.uint8)
        return acc

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks, preferring local repair.

        Single in-group failures use local repair; anything else falls
        back to solving the full linear system over the available rows
        (LRCs are not MDS — some patterns beyond l + r failures, and some
        unlucky smaller ones, are unrecoverable and raise).
        """
        erased = list(erased)
        if not erased:
            return {}
        first = next(iter(available.values()), None)
        chunk_len = 0 if first is None else len(first)
        with record_codec("decode", len(erased) * chunk_len):
            return self._decode_impl(available, erased)

    def _decode_impl(
        self, available: Dict[int, np.ndarray], erased: List[int]
    ) -> Dict[int, np.ndarray]:
        out: Dict[int, np.ndarray] = {}
        remaining = []
        for idx in erased:
            if idx < self.k + self.l:
                group = self.group_of(idx)
                peers = [m for m in self.group_members(group) if m != idx]
                if all(m in available for m in peers):
                    out[idx] = self.local_repair(idx, available)
                    continue
            remaining.append(idx)
        if not remaining:
            return out
        avail = dict(available)
        avail.update(out)
        rows = sorted(avail)
        # Fused path: the row selection, inverse, and gen_rows @ inv
        # composition depend only on the survivor/erasure pattern, so the
        # composed (e, k) recovery matrix is cached per pattern and each
        # repeat decode is a single chunk-domain product.
        key = ("rows", tuple(rows), tuple(remaining))
        fused = self._pattern_cache.get(key)
        if fused is None:
            if gf_rank(self.generator[rows, :]) < self.k:
                raise DecodeError(
                    f"erasure pattern {sorted(erased)} is unrecoverable for {self!r}"
                )
            # Select k independent rows, invert, compose the re-encode.
            chosen: List[int] = []
            for row_idx in rows:
                trial = chosen + [row_idx]
                if gf_rank(self.generator[trial, :]) == len(trial):
                    chosen.append(row_idx)
                if len(chosen) == self.k:
                    break
            try:
                inv = gf_matinv(self.generator[chosen, :])
            except SingularMatrixError as exc:
                raise DecodeError("internal: chosen rows not invertible") from exc
            from repro.gf.kernels import FusedDecode8

            recovery = gf_matmul_reference(self.generator[remaining, :], inv)
            fused = FusedDecode8(recovery, chosen, remaining)
            self._pattern_cache.put(key, fused)
        stacked = np.stack([np.asarray(avail[i], dtype=np.uint8) for i in fused.use])
        recovered = fused.apply(stacked)
        for j, idx in enumerate(remaining):
            out[idx] = recovered[j]
        return out

    def __repr__(self) -> str:
        return f"LRC({self.k},{self.l},{self.r_global})"
