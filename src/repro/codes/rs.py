"""Systematic Reed-Solomon codes over GF(256).

The parity block is a Cauchy matrix, so every square submatrix is
nonsingular and ``[I | C]`` is MDS for any k + r <= 256. This is the
baseline code of the paper: today's DFSs (HDFS-EC et al.) store mid-life
data in RS(k, n) and transcode by reading *all* data chunks.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import ErasureCode
from repro.gf.matrix import cauchy_matrix, gf_identity


class ReedSolomon(ErasureCode):
    """RS(k, n): tolerates any n - k erasures; transcode reads all data."""

    def __init__(self, k: int, n: int):
        super().__init__(k, n)
        if n > 256:
            raise ValueError("RS over GF(256) supports stripes up to n=256")
        self._generator = self._build_generator()

    def _build_generator(self) -> np.ndarray:
        # xs index parities, ys index data symbols; disjoint by construction.
        xs = list(range(self.k, self.k + self.r))
        ys = list(range(self.k))
        parity = cauchy_matrix(xs, ys)  # (r, k)
        return np.concatenate([gf_identity(self.k), parity], axis=0)

    @property
    def generator(self) -> np.ndarray:
        return self._generator
