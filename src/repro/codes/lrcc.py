"""Locally Recoverable Convertible Codes — LRCC(k, l, r).

An LRC whose parities are CC-mergeable (paper §5.1 and Appendix A):

* The **local parity** of a group is the *first* (point-0) CC parity over
  the group's data, with group-local position exponents. When a group is
  formed by merging an integral number of CC stripes (or smaller LRCC
  groups), the new local parity is a point-0 CC merge of the old first
  parities / local parities — no data reads.
* The **global parities** use points 1..r of the same family with
  stripe-global position exponents, so they merge exactly like plain CC
  parities.

Consequences the paper relies on:

* ``CC(k_I, n_I) -> LRCC(K, L, R)`` with each group an integral number of
  initial stripes and ``R <= r_I - 1`` reads only ``R + 1`` parities per
  initial stripe ("the first parity of each initial stripe remains
  unchanged and is used as the corresponding local parity").
* ``LRCC -> LRCC`` merges (cool -> frigid) read only local + global
  parities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import DecodeError, ErasureCode, Stripe
from repro.codes.convertible import ConversionIO, ConvertibleCode
from repro.codes.pointsearch import find_family_points
from repro.gf.field import gf_pow
from repro.gf.kernels import gf_scale, gf_scale_xor
from repro.obs.codec import record_codec
from repro.gf.matrix import (
    SingularMatrixError,
    gf_identity,
    gf_matinv,
    gf_matmul_reference,
    gf_rank,
)


class LocallyRecoverableConvertibleCode(ErasureCode):
    """LRCC(k, l, r): CC-mergeable LRC. Layout: k data, l locals, r globals."""

    def __init__(self, k: int, l: int, r_global: int, family_width: Optional[int] = None):
        if l < 1 or k % l != 0:
            raise ValueError(f"k={k} must be divisible by l={l}")
        if r_global < 0:
            raise ValueError("r_global must be >= 0")
        super().__init__(k, k + l + r_global)
        self.l = l
        self.r_global = r_global
        self.group_size = k // l
        if family_width is None:
            from repro.codes.convertible import default_family_width

            family_width = default_family_width(r_global + 1, k)
        self.family_width = max(family_width, k)
        # Point 0 -> local parities; points 1..r_global -> globals. The
        # family is shared with CC codes of r >= r_global + 1.
        self.points = find_family_points(r_global + 1, self.family_width)
        self._generator = self._build_generator()

    @property
    def generator(self) -> np.ndarray:
        return self._generator

    def _build_generator(self) -> np.ndarray:
        rows = [gf_identity(self.k)]
        local = np.zeros((self.l, self.k), dtype=np.uint8)
        alpha0 = self.points[0]
        for g in range(self.l):
            for u in range(self.group_size):
                local[g, g * self.group_size + u] = gf_pow(alpha0, u)
        rows.append(local)
        if self.r_global:
            glob = np.zeros((self.r_global, self.k), dtype=np.uint8)
            for j in range(self.r_global):
                alpha = self.points[j + 1]
                for t in range(self.k):
                    glob[j, t] = gf_pow(alpha, t)
            rows.append(glob)
        return np.concatenate(rows, axis=0)

    # -- indices ---------------------------------------------------------
    def group_of(self, index: int) -> int:
        if index < self.k:
            return index // self.group_size
        if index < self.k + self.l:
            return index - self.k
        raise ValueError(f"chunk {index} is a global parity; it has no group")

    def group_members(self, group: int) -> List[int]:
        data = list(range(group * self.group_size, (group + 1) * self.group_size))
        return data + [self.k + group]

    def local_parity_index(self, group: int) -> int:
        return self.k + group

    # -- repair ------------------------------------------------------------
    def local_repair(self, failed: int, available: Dict[int, np.ndarray]) -> np.ndarray:
        """Repair one group member reading only its k/l group peers."""
        group = self.group_of(failed)
        members = self.group_members(group)
        peers = [m for m in members if m != failed]
        missing = [m for m in peers if m not in available]
        if missing:
            raise DecodeError(f"local repair of {failed} needs chunks {missing}")
        # Solve the single-unknown group equation:
        #   local_parity = sum_u alpha0^u * d_u
        base = group * self.group_size
        parity_idx = self.local_parity_index(group)
        if failed == parity_idx:
            acc = np.zeros_like(np.asarray(available[base], dtype=np.uint8))
            for u in range(self.group_size):
                gf_scale_xor(
                    acc,
                    self.generator[parity_idx, base + u],
                    np.asarray(available[base + u], dtype=np.uint8),
                )
            return acc
        acc = np.asarray(available[parity_idx], dtype=np.uint8).copy()
        for u in range(self.group_size):
            idx = base + u
            if idx == failed:
                continue
            gf_scale_xor(
                acc,
                self.generator[parity_idx, idx],
                np.asarray(available[idx], dtype=np.uint8),
            )
        coeff = int(self.generator[parity_idx, failed])
        return gf_scale(gf_pow(coeff, -1), acc)

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks, preferring local repair (as in LRC)."""
        erased = list(erased)
        if not erased:
            return {}
        first = next(iter(available.values()), None)
        chunk_len = 0 if first is None else len(first)
        with record_codec("decode", len(erased) * chunk_len):
            return self._decode_impl(available, erased)

    def _decode_impl(
        self, available: Dict[int, np.ndarray], erased: List[int]
    ) -> Dict[int, np.ndarray]:
        out: Dict[int, np.ndarray] = {}
        remaining = []
        for idx in erased:
            if idx < self.k + self.l:
                peers = [m for m in self.group_members(self.group_of(idx)) if m != idx]
                if all(m in available for m in peers):
                    out[idx] = self.local_repair(idx, available)
                    continue
            remaining.append(idx)
        if not remaining:
            return out
        avail = dict(available)
        avail.update(out)
        rows = sorted(avail)
        # Same fused per-pattern recovery as LRC: compose gen_rows @ inv
        # once, cache it, decode with a single (e, k) chunk product.
        key = ("rows", tuple(rows), tuple(remaining))
        fused = self._pattern_cache.get(key)
        if fused is None:
            if gf_rank(self.generator[rows, :]) < self.k:
                raise DecodeError(
                    f"erasure pattern {sorted(erased)} unrecoverable for {self!r}"
                )
            chosen: List[int] = []
            for row_idx in rows:
                if gf_rank(self.generator[chosen + [row_idx], :]) == len(chosen) + 1:
                    chosen.append(row_idx)
                if len(chosen) == self.k:
                    break
            try:
                inv = gf_matinv(self.generator[chosen, :])
            except SingularMatrixError as exc:
                raise DecodeError("internal: chosen rows not invertible") from exc
            from repro.gf.kernels import FusedDecode8

            recovery = gf_matmul_reference(self.generator[remaining, :], inv)
            fused = FusedDecode8(recovery, chosen, remaining)
            self._pattern_cache.put(key, fused)
        stacked = np.stack([np.asarray(avail[i], dtype=np.uint8) for i in fused.use])
        recovered = fused.apply(stacked)
        for j, idx in enumerate(remaining):
            out[idx] = recovered[j]
        return out

    def __repr__(self) -> str:
        return f"LRCC({self.k},{self.l},{self.r_global})"


def convert_cc_to_lrcc(
    initial: ConvertibleCode,
    final: LocallyRecoverableConvertibleCode,
    stripes: Sequence[Stripe],
) -> Tuple[Stripe, ConversionIO]:
    """Merge CC stripes into one LRCC stripe, reading parities only.

    Requires: ``final.k == len(stripes) * initial.k``, each LRCC group an
    integral number of initial stripes, ``final.r_global <= initial.r - 1``,
    and both codes drawn from the same point family.
    """
    lam = len(stripes)
    k_i = initial.k
    if final.k != lam * k_i:
        raise ValueError(f"need {final.k // k_i} stripes, got {lam}")
    if final.group_size % k_i != 0:
        raise ValueError(
            f"LRCC group size {final.group_size} is not a multiple of k_I={k_i}"
        )
    if final.r_global > initial.r - 1:
        raise ValueError(
            "LRCC needs r_global <= r_I - 1 (one initial parity becomes local)"
        )
    if initial.points[: final.r_global + 1] != final.points[: final.r_global + 1]:
        raise ValueError("codes are from different CC families")
    chunk_size = stripes[0].chunk_size()
    stripes_per_group = final.group_size // k_i

    def parity(i: int, j: int) -> np.ndarray:
        chunk = stripes[i].chunks[k_i + j]
        if chunk is None:
            raise DecodeError(f"conversion requires erased parity ({i},{j})")
        return chunk

    # Local parity of group g: point-0 merge of constituent first parities.
    locals_out: List[np.ndarray] = []
    for g in range(final.l):
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for s in range(stripes_per_group):
            i = g * stripes_per_group + s
            coeff = gf_pow(final.points[0], s * k_i)  # group-local offset
            gf_scale_xor(acc, coeff, parity(i, 0))
        locals_out.append(acc)
    # Global parity j: point-(j+1) merge of initial parities j+1.
    globals_out: List[np.ndarray] = []
    for j in range(final.r_global):
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for i in range(lam):
            coeff = gf_pow(final.points[j + 1], i * k_i)  # stripe-global offset
            gf_scale_xor(acc, coeff, parity(i, j + 1))
        globals_out.append(acc)

    chunks: List[np.ndarray] = []
    for i in range(lam):
        chunks.extend(stripes[i].chunks[:k_i])
    chunks.extend(locals_out)
    chunks.extend(globals_out)
    io = ConversionIO(
        data_chunks_read=0,
        parity_chunks_read=lam * (final.r_global + 1),
        parity_chunks_written=final.l + final.r_global,
    )
    return Stripe(final.k, final.n, chunks), io


def convert_lrcc_to_lrcc(
    initial: LocallyRecoverableConvertibleCode,
    final: LocallyRecoverableConvertibleCode,
    stripes: Sequence[Stripe],
) -> Tuple[Stripe, ConversionIO]:
    """Merge LRCC stripes into a wider LRCC stripe (cool -> frigid).

    Local parities of the final groups are point-0 merges of constituent
    initial local parities; global parities are point-(j+1) merges of the
    initial globals. Requires final groups to be integral numbers of
    initial groups and ``final.r_global <= initial.r_global``.
    """
    lam = len(stripes)
    k_i = initial.k
    if final.k != lam * k_i:
        raise ValueError(f"need {final.k // k_i} stripes, got {lam}")
    if final.group_size % initial.group_size != 0:
        raise ValueError("final groups must be integral numbers of initial groups")
    if final.r_global > initial.r_global:
        raise ValueError("LRCC merge cannot add global parities")
    if initial.points[: final.r_global + 1] != final.points[: final.r_global + 1]:
        raise ValueError("codes are from different CC families")
    chunk_size = stripes[0].chunk_size()
    groups_per_final = final.group_size // initial.group_size

    def chunk_at(i: int, idx: int) -> np.ndarray:
        chunk = stripes[i].chunks[idx]
        if chunk is None:
            raise DecodeError(f"conversion requires erased chunk ({i},{idx})")
        return chunk

    locals_out: List[np.ndarray] = []
    for g in range(final.l):
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for s in range(groups_per_final):
            global_group = g * groups_per_final + s
            i = global_group * initial.group_size // k_i
            local_group_in_stripe = global_group - i * initial.l
            src = chunk_at(i, initial.local_parity_index(local_group_in_stripe))
            coeff = gf_pow(final.points[0], s * initial.group_size)
            gf_scale_xor(acc, coeff, src)
        locals_out.append(acc)
    globals_out: List[np.ndarray] = []
    for j in range(final.r_global):
        acc = np.zeros(chunk_size, dtype=np.uint8)
        for i in range(lam):
            src = chunk_at(i, initial.k + initial.l + j)
            coeff = gf_pow(final.points[j + 1], i * k_i)
            gf_scale_xor(acc, coeff, src)
        globals_out.append(acc)

    chunks: List[np.ndarray] = []
    for i in range(lam):
        chunks.extend(stripes[i].chunks[:k_i])
    chunks.extend(locals_out)
    chunks.extend(globals_out)
    io = ConversionIO(
        data_chunks_read=0,
        parity_chunks_read=lam * initial.l
        if final.r_global == 0
        else lam * (initial.l + final.r_global),
        parity_chunks_written=final.l + final.r_global,
    )
    return Stripe(final.k, final.n, chunks), io
