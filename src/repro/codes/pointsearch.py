"""Search for MDS-safe evaluation points for Convertible Codes.

A Convertible-Code family over GF(256) is defined by ``r`` evaluation
points ``alpha_0 .. alpha_{r-1}``. A code of width ``w`` in the family has
parity block ``P[t, j] = alpha_j ** t`` (t = 0..w-1). The family supports
conversion among all its widths because a data symbol's parity coefficient
factors through its position: shifting a stripe by ``o`` positions scales
its parity contribution by ``alpha_j ** o``.

``[I | P]`` is MDS iff every square submatrix of ``P`` is nonsingular
(superregularity). Generalized Vandermonde matrices over a small field are
*not* automatically superregular, so this module searches for point sets
and **verifies** superregularity up to the requested width with vectorised
batch determinants. Verified families are cached per ``(r, width)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gf.field import _EXP, _LOG, _MUL_TABLE, FIELD_ORDER, GF256

#: Above this many submatrix determinants, fall back to sampled checking.
EXHAUSTIVE_DET_LIMIT = 3_000_000

#: How many submatrices to sample per size when exhaustive is too costly.
SAMPLE_COUNT = 200_000

#: Curated generator-exponent tuples, pre-searched offline and re-verified
#: at construction time. Tried before the generic candidate stream.
#:
#: The tuples are *nested prefixes* of one chain (0, 13, 71, 197, 46):
#: a code with r parities uses the first r points, so codes of different
#: parity counts share point prefixes and are mutually convertible
#: (e.g. a CC(6,9) -> CC(12,14) merge that drops a parity).
CURATED_EXPONENTS: Dict[int, List[Tuple[int, ...]]] = {
    2: [(0, 13)],
    3: [(0, 13, 71)],
    4: [(0, 13, 71, 197)],
    5: [(0, 13, 71, 197, 46)],
}

#: Maximum verified-feasible family width per parity count over GF(256).
#: Superregular generalized-Vandermonde matrices need larger fields as r
#: and width grow (the CC papers' field-size bounds); over GF(2^8) these
#: are the practical ceilings found by exhaustive search. Wider codes
#: with r >= 4 are handled analytically by repro.codes.costmodel (as in
#: the paper, whose *system* evaluation also stays at moderate widths).
MAX_FEASIBLE_WIDTH: Dict[int, int] = {1: 255, 2: 255, 3: 128, 4: 24, 5: 12}

_FAMILY_CACHE: Dict[Tuple[int, int], List[int]] = {}


class FamilyWidthError(ValueError):
    """Requested (r, width) exceeds what GF(256) can support."""


def batch_det(mats: np.ndarray) -> np.ndarray:
    """Determinants of a batch of small square GF(256) matrices.

    Args:
        mats: uint8 array of shape (N, s, s), s <= 6.

    Returns:
        uint8 array of shape (N,) with each determinant.
    """
    mats = np.asarray(mats, dtype=np.uint8)
    n, s, s2 = mats.shape
    if s != s2:
        raise ValueError("matrices must be square")
    if s == 1:
        return mats[:, 0, 0]
    if s == 2:
        return _MUL_TABLE[mats[:, 0, 0], mats[:, 1, 1]] ^ _MUL_TABLE[
            mats[:, 0, 1], mats[:, 1, 0]
        ]
    # Laplace expansion along the first row (char 2: no signs).
    out = np.zeros(n, dtype=np.uint8)
    cols = np.arange(s)
    for j in range(s):
        minor_cols = cols[cols != j]
        minor = mats[:, 1:, :][:, :, minor_cols]
        out ^= _MUL_TABLE[mats[:, 0, j], batch_det(minor)]
    return out


def vandermonde_parity(points: List[int], width: int) -> np.ndarray:
    """Parity block P[t, j] = points[j] ** t, shape (width, r).

    Same orientation as :func:`repro.gf.matrix.vandermonde` but without
    the distinctness check — superregularity tests probe deliberately
    degenerate point sets. Vectorized: one log-space outer product and
    one exp gather replace the width * r scalar ``gf_pow`` loop.
    """
    arr = np.asarray([int(p) for p in points], dtype=np.int64)
    if width == 0 or arr.size == 0:
        return np.zeros((width, arr.size), dtype=np.uint8)
    exponents = (
        np.arange(width, dtype=np.int64)[:, None] * _LOG[arr][None, :]
    ) % FIELD_ORDER
    out = _EXP[exponents].astype(np.uint8)
    zero_cols = arr == 0
    if zero_cols.any():
        out[:, zero_cols] = 0
        out[0, zero_cols] = 1  # 0**0 == 1, matching gf_pow
    return out


def _submatrix_count(width: int, r: int) -> int:
    from math import comb

    return sum(comb(width, s) * comb(r, s) for s in range(1, r + 1))


def _check_size(parity: np.ndarray, size: int, rng: Optional[np.random.Generator]) -> bool:
    """Check all (or a sample of) size x size submatrices are nonsingular."""
    from math import comb

    width, r = parity.shape
    col_sets = list(combinations(range(r), size))
    n_row_sets = comb(width, size)
    if rng is None or n_row_sets * len(col_sets) <= SAMPLE_COUNT:
        row_sets = np.array(list(combinations(range(width), size)), dtype=np.intp)
    else:
        per_colset = max(1, SAMPLE_COUNT // len(col_sets))
        row_sets = np.stack(
            [
                np.sort(rng.choice(width, size=size, replace=False))
                for _ in range(per_colset)
            ]
        )
    for cols in col_sets:
        sub = parity[row_sets][:, :, list(cols)]  # (N, size, size)
        if np.any(batch_det(sub) == 0):
            return False
    return True


def is_superregular_parity(parity: np.ndarray, exhaustive: Optional[bool] = None) -> bool:
    """True if every square submatrix of ``parity`` is nonsingular.

    Falls back to seeded sampling when the exhaustive determinant count
    exceeds :data:`EXHAUSTIVE_DET_LIMIT` (unless ``exhaustive`` forces it).
    """
    width, r = parity.shape
    if exhaustive is None:
        exhaustive = _submatrix_count(width, r) <= EXHAUSTIVE_DET_LIMIT
    rng = None if exhaustive else np.random.default_rng(0xC0DE)
    for size in range(1, min(width, r) + 1):
        if not _check_size(parity, size, rng):
            return False
    return True


def _candidate_exponent_tuples(r: int):
    """Deterministic stream of candidate exponent tuples for the points.

    Points are powers of the field generator g: alpha_j = g ** a_j. The
    2x2 superregularity condition requires (a_j - a_l) * (t - s) != 0
    mod 255 for all used row gaps, so exponent *differences* coprime to
    255 are strongly preferred; we enumerate those first.
    """
    units = [d for d in range(1, 255) if np.gcd(d, 255) == 1]
    # Arithmetic progressions with unit step.
    for step in units[:64]:
        yield tuple((j * step) % 255 for j in range(r))
    # Then general combinations with unit pairwise differences.
    seen = 0
    for combo in combinations(units[:40], r - 1):
        exps = (0,) + combo
        diffs = {(b - a) % 255 for a in exps for b in exps if a != b}
        if all(np.gcd(d, 255) == 1 for d in diffs):
            yield exps
            seen += 1
            if seen > 500:
                return


def find_family_points(r: int, width: int) -> List[int]:
    """Find (and verify) r evaluation points superregular up to ``width``.

    Results are cached; a cached family for a wider width satisfies any
    narrower request for the same r.

    Raises:
        RuntimeError: if no verified point set is found.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    max_width = MAX_FEASIBLE_WIDTH.get(r)
    if max_width is None:
        raise FamilyWidthError(
            f"no convertible-code families with r={r} over GF(256); "
            "use repro.codes.costmodel for analytical results"
        )
    if width > max_width:
        raise FamilyWidthError(
            f"r={r} convertible-code families over GF(256) are verified "
            f"only up to width {max_width} (requested {width}); use "
            "repro.codes.costmodel for wider analytical results"
        )
    for (cr, cw), pts in _FAMILY_CACHE.items():
        if cr == r and cw >= width:
            return pts
    if r == 1:
        # Any nonzero point works: 1x1 submatrices are powers, all nonzero.
        pts = [GF256.element(1)]
        _FAMILY_CACHE[(r, 255)] = pts
        return pts
    for exps in list(CURATED_EXPONENTS.get(r, [])) + list(
        _candidate_exponent_tuples(r)
    ):
        points = [GF256.element(e) for e in exps]
        if len(set(points)) != r:
            continue
        parity = vandermonde_parity(points, width)
        if is_superregular_parity(parity):
            _FAMILY_CACHE[(r, width)] = points
            return points
    raise RuntimeError(
        f"no verified convertible-code points found for r={r}, width={width}"
    )
