"""Closed-form transcode IO accounting.

Every trace-driven result in the paper (Figs 1, 12) and the appendix
sweeps (Figs 17, 18) are IO arithmetic: how many chunk-reads and
chunk-writes does moving a file from scheme A to scheme B cost under each
strategy? This module provides that arithmetic, normalised per *logical
data chunk* so callers can scale by bytes.

Strategies:

* ``RRW`` — application-level read-re-encode-write (today's DFSs): read
  all data, write all data in the new layout plus new parities.
* ``NATIVE_RS`` — DFS-native transcode with traditional codes: read all
  data, write only the new parities (data chunks stay in place because
  the DFS forms stripes over sequential chunks, §5.3).
* ``CONVERTIBLE`` — access-optimal CC when ``r_F <= r_I``; bandwidth-
  optimal vector CC when ``r_F > r_I``. The access-optimal arithmetic is
  the same containment logic :func:`repro.codes.convertible.plan_conversion`
  executes on real stripes; the two are cross-checked by tests.
* ``STRIPEMERGE`` — the related-work baseline (one supported transition).

The ``lrcc_*`` helpers cover the LRC-targeted transitions (mid -> late and
late -> later life).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from math import gcd


class Strategy(enum.Enum):
    RRW = "rrw"
    NATIVE_RS = "native_rs"
    CONVERTIBLE = "convertible"
    STRIPEMERGE = "stripemerge"


@dataclass(frozen=True)
class TranscodeCost:
    """Per-logical-chunk IO multipliers for one transcode step.

    ``read`` and ``write`` are in units of "chunk-reads per data chunk of
    the file": multiply by file bytes to get byte IO. ``disk_io`` is their
    sum (the paper's Figs 1/12/17 metric); ``network`` counts chunk
    transfers that cross servers (parity-local merges are free, §5.3).
    """

    read: float
    write: float
    network: float

    @property
    def disk_io(self) -> float:
        return self.read + self.write

    def scaled(self, data_bytes: float) -> "TranscodeCost":
        return TranscodeCost(
            self.read * data_bytes, self.write * data_bytes, self.network * data_bytes
        )


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


def access_optimal_read_chunks(k_i: int, r_i: int, k_f: int, r_f: int) -> float:
    """Chunks read per lcm-span for an access-optimal CC conversion.

    Mirrors :func:`repro.codes.convertible.plan_conversion` arithmetic:
    contained initial stripes contribute parities; straddling stripes are
    read except that one fully-contained final stripe per initial stripe
    is derived by subtraction. Requires ``r_f <= r_i``.
    """
    if r_f > r_i:
        raise ValueError("access-optimal CC cannot add parities")
    span = _lcm(k_i, k_f)
    n_i = span // k_i
    reads = 0.0
    for i in range(n_i):
        i_lo, i_hi = i * k_i, (i + 1) * k_i
        if i_lo // k_f == (i_hi - 1) // k_f:
            reads += min(r_f, k_i)  # contained: parities, unless data wins
            continue
        contained = [
            m
            for m in range(i_lo // k_f, (i_hi - 1) // k_f + 1)
            if i_lo <= m * k_f and (m + 1) * k_f <= i_hi
        ]
        if contained and r_f < k_f:
            reads += r_f + (k_i - k_f)  # derive one final by subtraction
        else:
            reads += k_i
    return reads


def bandwidth_optimal_read_chunks(k_i: int, r_i: int, k_f: int, r_f: int) -> float:
    """Chunks read per lcm-span for BWO-CC when parities increase.

    Merge regime is exact (matches :class:`BandwidthOptimalCC`); split and
    general regimes use the read-parities-plus-data-fraction bound from
    the bandwidth-conversion literature (documented approximation).
    """
    if r_f <= r_i:
        raise ValueError("use access_optimal_read_chunks when r does not grow")
    frac = (r_f - r_i) / r_f
    span = _lcm(k_i, k_f)
    n_i = span // k_i
    if k_f % k_i == 0:
        # Merge: per initial stripe, r_I parities + data-tail fraction.
        return n_i * (r_i + k_i * frac)
    if k_i % k_f == 0:
        # Split: parities + fraction of all data (piggyback pre-computation).
        return r_i + k_i * frac
    # General: contained stripes behave like merge members; straddlers read.
    reads = 0.0
    for i in range(n_i):
        i_lo, i_hi = i * k_i, (i + 1) * k_i
        if i_lo // k_f == (i_hi - 1) // k_f:
            reads += r_i + k_i * frac
        else:
            reads += k_i
    return reads


def convertible_cost(k_i: int, r_i: int, k_f: int, r_f: int) -> TranscodeCost:
    """Per-data-chunk cost of a CC transcode from (k_i, r_i) to (k_f, r_f)."""
    span = _lcm(k_i, k_f)
    if r_f <= r_i:
        reads = access_optimal_read_chunks(k_i, r_i, k_f, r_f)
    else:
        reads = bandwidth_optimal_read_chunks(k_i, r_i, k_f, r_f)
    writes = (span // k_f) * r_f
    # Parity co-location (§5.3) makes same-r merges server-local: the only
    # network transfers are reads that cross to the computing server. With
    # placement planned, parity merges move no data; data reads do.
    if r_f <= r_i and k_f % k_i == 0:
        network = 0.0
    else:
        network = reads
    return TranscodeCost(reads / span, writes / span, network / span)


def rrw_cost(k_i: int, r_i: int, k_f: int, r_f: int) -> TranscodeCost:
    """Application-level read-re-encode-write (baseline DFSs)."""
    read = 1.0
    write = 1.0 + r_f / k_f
    return TranscodeCost(read, write, read + write)


def native_rs_cost(k_i: int, r_i: int, k_f: int, r_f: int) -> TranscodeCost:
    """DFS-native transcode with RS: read all data, write new parities."""
    read = 1.0
    write = r_f / k_f
    return TranscodeCost(read, write, read + write)


def stripemerge_cost(
    k_i: int, r_i: int, k_f: int, r_f: int, conflict_rate: float = 0.05
) -> TranscodeCost:
    """StripeMerge baseline; outside its one scenario it degrades to RRW."""
    from repro.codes.stripemerge import StripeMergeModel

    model = StripeMergeModel(conflict_rate=conflict_rate)
    if not model.supports(k_i, r_i, k_f, r_f):
        return rrw_cost(k_i, r_i, k_f, r_f)
    read = model.read_chunks(k_i, r_i, k_f, r_f) / k_f
    write = model.write_chunks(k_i, r_i, k_f, r_f) / k_f
    return TranscodeCost(read, write, read + write)


def lrcc_from_cc_cost(k_i: int, r_i: int, big_k: int, l: int, r_global: int) -> TranscodeCost:
    """CC(k_i, k_i + r_i) -> LRCC(big_k, l, r_global), parities only.

    Requires groups to be integral numbers of initial stripes and
    ``r_global <= r_i - 1``.
    """
    if big_k % k_i != 0:
        raise ValueError("LRCC width must be a multiple of the initial width")
    if (big_k // l) % k_i != 0:
        raise ValueError("LRCC groups must be integral numbers of initial stripes")
    if r_global > r_i - 1:
        raise ValueError("LRCC needs r_global <= r_I - 1")
    lam = big_k // k_i
    reads = lam * (r_global + 1)
    writes = l + r_global
    return TranscodeCost(reads / big_k, writes / big_k, 0.0)


def lrcc_merge_cost(
    k_i: int, l_i: int, rg_i: int, k_f: int, l_f: int, rg_f: int
) -> TranscodeCost:
    """LRCC(k_i, l_i, rg_i) -> LRCC(k_f, l_f, rg_f) merge, parities only."""
    if k_f % k_i != 0:
        raise ValueError("LRCC merge needs integral width ratio")
    if rg_f > rg_i:
        raise ValueError("LRCC merge cannot add global parities")
    lam = k_f // k_i
    reads = lam * (l_i + rg_f)
    writes = l_f + rg_f
    return TranscodeCost(reads / k_f, writes / k_f, 0.0)


def lrc_rrw_cost(k_i: int, k_f: int, l_f: int, rg_f: int) -> TranscodeCost:
    """Baseline RRW into an LRC target (what Services A/B do today)."""
    read = 1.0
    write = 1.0 + (l_f + rg_f) / k_f
    return TranscodeCost(read, write, read + write)


def transcode_cost(
    strategy: Strategy, k_i: int, r_i: int, k_f: int, r_f: int
) -> TranscodeCost:
    """Dispatch on strategy for plain (non-LRC) EC-to-EC transitions."""
    if strategy is Strategy.RRW:
        return rrw_cost(k_i, r_i, k_f, r_f)
    if strategy is Strategy.NATIVE_RS:
        return native_rs_cost(k_i, r_i, k_f, r_f)
    if strategy is Strategy.CONVERTIBLE:
        return convertible_cost(k_i, r_i, k_f, r_f)
    if strategy is Strategy.STRIPEMERGE:
        return stripemerge_cost(k_i, r_i, k_f, r_f)
    raise ValueError(f"unknown strategy {strategy}")


def ingest_disk_multiplier_replication(copies: int = 3) -> float:
    """Disk bytes written per logical byte for c-way replication."""
    return float(copies)


def ingest_disk_multiplier_hybrid(copies: int, k: int, n: int) -> float:
    """Disk bytes at rest per logical byte for Hy(copies, EC(k, n)).

    Temporary replicas are normally deleted from buffer cache before ever
    reaching disk (§4.2), so steady-state ingest disk IO equals the
    resting footprint.
    """
    return copies + n / k


def ingest_disk_multiplier_ec(k: int, n: int) -> float:
    """Disk bytes written per logical byte for direct EC(k, n) ingest."""
    return n / k
