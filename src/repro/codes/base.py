"""Shared abstractions for erasure codes.

A *chunk* is a 1-D ``numpy.uint8`` array. A *stripe* is the ordered set of
``n`` equal-length chunks (``k`` data followed by ``n - k`` parity) that a
code couples together. Codes are linear over GF(256) and systematic: the
first ``k`` chunks of a stripe are the raw data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.codec import record_codec

#: Decode-pattern inverses cached per code (LRU); degraded reads and
#: repairs hit the same few erasure patterns over and over.
_DECODE_CACHE_MAX = 16


class DecodeError(Exception):
    """Raised when the available chunks cannot recover the erased ones."""


def split_into_chunks(data: np.ndarray, k: int) -> List[np.ndarray]:
    """Split a byte buffer into k equal chunks, zero-padding the tail.

    >>> [c.tolist() for c in split_into_chunks(np.arange(5, dtype=np.uint8), 2)]
    [[0, 1, 2], [3, 4, 0]]
    """
    data = np.asarray(data, dtype=np.uint8).reshape(-1)
    chunk_len = (len(data) + k - 1) // k
    if chunk_len == 0:
        chunk_len = 1
    padded = np.zeros(chunk_len * k, dtype=np.uint8)
    padded[: len(data)] = data
    return [padded[i * chunk_len : (i + 1) * chunk_len] for i in range(k)]


def join_chunks(chunks: Sequence[np.ndarray], length: Optional[int] = None) -> np.ndarray:
    """Inverse of :func:`split_into_chunks`; optionally trim padding."""
    joined = np.concatenate([np.asarray(c, dtype=np.uint8) for c in chunks])
    if length is not None:
        joined = joined[:length]
    return joined


def chunks_equal(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> bool:
    """True if two chunk lists are element-wise identical."""
    if len(a) != len(b):
        return False
    return all(np.array_equal(x, y) for x, y in zip(a, b))


@dataclass
class Stripe:
    """One erasure-coded stripe: k data chunks + r parity chunks.

    ``chunks[i]`` may be ``None`` to represent an erased/unavailable chunk.
    """

    k: int
    n: int
    chunks: List[Optional[np.ndarray]] = field(default_factory=list)

    @property
    def r(self) -> int:
        return self.n - self.k

    @property
    def data_chunks(self) -> List[Optional[np.ndarray]]:
        return self.chunks[: self.k]

    @property
    def parity_chunks(self) -> List[Optional[np.ndarray]]:
        return self.chunks[self.k :]

    def available_indices(self) -> List[int]:
        return [i for i, c in enumerate(self.chunks) if c is not None]

    def erased_indices(self) -> List[int]:
        return [i for i, c in enumerate(self.chunks) if c is None]

    def erase(self, *indices: int) -> "Stripe":
        """Return a copy of the stripe with the given chunks erased."""
        new_chunks: List[Optional[np.ndarray]] = list(self.chunks)
        for i in indices:
            new_chunks[i] = None
        return Stripe(self.k, self.n, new_chunks)

    def chunk_size(self) -> int:
        for c in self.chunks:
            if c is not None:
                return len(c)
        raise ValueError("stripe has no available chunks")


class ErasureCode:
    """Base interface for systematic linear erasure codes over GF(256).

    Subclasses define :attr:`generator`, an ``(n, k)`` uint8 matrix whose
    top ``k`` rows are the identity; chunk ``i`` of a stripe equals row
    ``i`` of the generator applied to the k data chunks.
    """

    def __init__(self, k: int, n: int):
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got k={k} n={n}")
        self.k = k
        self.n = n
        # Multiply plan over the parity rows, shared by every stripe of
        # this code. Built lazily on first encode because subclasses
        # construct the generator after this __init__ returns; pinned
        # here so the global plan LRU can never evict a live code's plan.
        self._encode_plan = None
        self._decode_cache: "OrderedDict[Tuple[int, ...], Tuple[np.ndarray, List[int]]]" = (
            OrderedDict()
        )

    @property
    def r(self) -> int:
        return self.n - self.k

    # -- to be provided by subclasses ------------------------------------
    @property
    def generator(self) -> np.ndarray:
        """(n, k) generator matrix; rows 0..k-1 are the identity."""
        raise NotImplementedError

    # -- generic machinery ------------------------------------------------
    def encode_plan(self):
        """The cached multiply plan over this code's parity rows."""
        if self._encode_plan is None:
            from repro.gf.kernels import plan_for_matrix

            self._encode_plan = plan_for_matrix(self.generator[self.k :])
        return self._encode_plan

    def encode(self, data_chunks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the r parity chunks for k equal-length data chunks."""
        if len(data_chunks) != self.k:
            raise ValueError(f"expected {self.k} data chunks, got {len(data_chunks)}")
        data = np.stack([np.asarray(c, dtype=np.uint8) for c in data_chunks])
        from repro.gf.kernels import KERNEL_MIN_BYTES
        from repro.gf.matrix import gf_matmul_reference

        with record_codec("encode", data.nbytes):
            if data.shape[1] >= KERNEL_MIN_BYTES:
                parities = self.encode_plan().apply(data)
            else:
                parities = gf_matmul_reference(self.generator[self.k :], data)
        return [parities[i] for i in range(self.r)]

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> Stripe:
        """Encode and package data + parities into a :class:`Stripe`."""
        parities = self.encode(data_chunks)
        chunks = [np.asarray(c, dtype=np.uint8) for c in data_chunks] + parities
        return Stripe(self.k, self.n, chunks)

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks from any sufficient set of available ones.

        Args:
            available: map chunk-index -> chunk bytes.
            erased: indices to reconstruct.

        Returns:
            map erased-index -> recovered chunk.

        Raises:
            DecodeError: if the available chunks are insufficient.
        """
        from repro.gf.matrix import gf_matmul

        erased = list(erased)
        if not erased:
            return {}
        if len(available) < self.k:
            raise DecodeError(
                f"need {self.k} chunks to decode, only {len(available)} available"
            )
        inv, use = self._decode_inverse(available)
        stacked = np.stack([np.asarray(available[i], dtype=np.uint8) for i in use])
        with record_codec("decode", len(erased) * stacked.shape[1]):
            data = gf_matmul(inv, stacked)
            # One stacked generator-row product reconstructs every erased
            # chunk at once (the data matrix is already in place).
            recovered = gf_matmul(self.generator[erased, :], data)
        return {idx: recovered[j] for j, idx in enumerate(erased)}

    def _decode_inverse(self, available: Dict[int, np.ndarray]):
        """(inverse, rows used) for this availability pattern, cached.

        The inverse depends only on *which* chunks survive, not their
        bytes, and failure scenarios revisit the same few patterns — so
        a small per-code LRU skips the Gauss-Jordan solve on repeats.
        """
        from repro.gf.matrix import SingularMatrixError, gf_matinv

        # Key on the full availability pattern: the singular-subset
        # fallback may pick rows beyond the first k survivors.
        key = tuple(sorted(available))
        use = list(key[: self.k])
        hit = self._decode_cache.get(key)
        if hit is not None:
            self._decode_cache.move_to_end(key)
            return hit
        try:
            inv = gf_matinv(self.generator[use, :])
        except SingularMatrixError:
            # A non-MDS code (or unlucky subset): retry with a different
            # k-subset before giving up.
            found = self._find_invertible_subset(available)
            if found is None:
                raise DecodeError("no invertible k-subset of available chunks")
            inv, use = found
        self._decode_cache[key] = (inv, use)
        while len(self._decode_cache) > _DECODE_CACHE_MAX:
            self._decode_cache.popitem(last=False)
        return inv, use

    def _find_invertible_subset(self, available: Dict[int, np.ndarray]):
        from itertools import combinations

        from repro.gf.matrix import SingularMatrixError, gf_matinv

        for use in combinations(sorted(available), self.k):
            try:
                return gf_matinv(self.generator[list(use), :]), list(use)
            except SingularMatrixError:
                continue
        return None

    def decode_stripe(self, stripe: Stripe) -> Stripe:
        """Fill in every erased chunk of a stripe, returning a full copy."""
        available = {i: c for i, c in enumerate(stripe.chunks) if c is not None}
        recovered = self.decode(available, stripe.erased_indices())
        chunks = [
            stripe.chunks[i] if stripe.chunks[i] is not None else recovered[i]
            for i in range(stripe.n)
        ]
        return Stripe(stripe.k, stripe.n, chunks)

    # -- verification ------------------------------------------------------
    def is_mds(self, max_patterns: Optional[int] = None) -> bool:
        """Check the MDS property by enumerating r-erasure patterns.

        An (n, k) code is MDS iff every k columns of the generator span
        the data, i.e. every pattern of exactly r erasures is decodable.
        ``max_patterns`` caps the enumeration (deterministic prefix) for
        wide codes; None means exhaustive.
        """
        from itertools import combinations

        from repro.gf.matrix import gf_rank

        count = 0
        for erased in combinations(range(self.n), self.r):
            survivors = [i for i in range(self.n) if i not in erased]
            if gf_rank(self.generator[survivors, :]) < self.k:
                return False
            count += 1
            if max_patterns is not None and count >= max_patterns:
                break
        return True

    def storage_overhead(self) -> float:
        """Ratio of raw bytes stored to logical bytes (n / k)."""
        return self.n / self.k

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.k},{self.n})"
