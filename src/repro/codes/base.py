"""Shared abstractions for erasure codes.

A *chunk* is a 1-D ``numpy.uint8`` array. A *stripe* is the ordered set of
``n`` equal-length chunks (``k`` data followed by ``n - k`` parity) that a
code couples together. Codes are linear over GF(256) and systematic: the
first ``k`` chunks of a stripe are the raw data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.codec import record_codec

#: Decode-pattern inverses cached per code (LRU); degraded reads and
#: repairs hit the same few erasure patterns over and over.
_DECODE_CACHE_MAX = 16


class DecodeError(Exception):
    """Raised when the available chunks cannot recover the erased ones."""


def split_into_chunks(data: np.ndarray, k: int) -> List[np.ndarray]:
    """Split a byte buffer into k equal chunks, zero-padding the tail.

    >>> [c.tolist() for c in split_into_chunks(np.arange(5, dtype=np.uint8), 2)]
    [[0, 1, 2], [3, 4, 0]]
    """
    data = np.asarray(data, dtype=np.uint8).reshape(-1)
    chunk_len = (len(data) + k - 1) // k
    if chunk_len == 0:
        chunk_len = 1
    padded = np.zeros(chunk_len * k, dtype=np.uint8)
    padded[: len(data)] = data
    return [padded[i * chunk_len : (i + 1) * chunk_len] for i in range(k)]


def join_chunks(chunks: Sequence[np.ndarray], length: Optional[int] = None) -> np.ndarray:
    """Inverse of :func:`split_into_chunks`; optionally trim padding."""
    joined = np.concatenate([np.asarray(c, dtype=np.uint8) for c in chunks])
    if length is not None:
        joined = joined[:length]
    return joined


def chunks_equal(a: Sequence[np.ndarray], b: Sequence[np.ndarray]) -> bool:
    """True if two chunk lists are element-wise identical."""
    if len(a) != len(b):
        return False
    return all(np.array_equal(x, y) for x, y in zip(a, b))


@dataclass
class Stripe:
    """One erasure-coded stripe: k data chunks + r parity chunks.

    ``chunks[i]`` may be ``None`` to represent an erased/unavailable chunk.
    """

    k: int
    n: int
    chunks: List[Optional[np.ndarray]] = field(default_factory=list)

    @property
    def r(self) -> int:
        return self.n - self.k

    @property
    def data_chunks(self) -> List[Optional[np.ndarray]]:
        return self.chunks[: self.k]

    @property
    def parity_chunks(self) -> List[Optional[np.ndarray]]:
        return self.chunks[self.k :]

    def available_indices(self) -> List[int]:
        return [i for i, c in enumerate(self.chunks) if c is not None]

    def erased_indices(self) -> List[int]:
        return [i for i, c in enumerate(self.chunks) if c is None]

    def erase(self, *indices: int) -> "Stripe":
        """Return a copy of the stripe with the given chunks erased."""
        new_chunks: List[Optional[np.ndarray]] = list(self.chunks)
        for i in indices:
            new_chunks[i] = None
        return Stripe(self.k, self.n, new_chunks)

    def chunk_size(self) -> int:
        for c in self.chunks:
            if c is not None:
                return len(c)
        raise ValueError("stripe has no available chunks")


class ErasureCode:
    """Base interface for systematic linear erasure codes over GF(256).

    Subclasses define :attr:`generator`, an ``(n, k)`` uint8 matrix whose
    top ``k`` rows are the identity; chunk ``i`` of a stripe equals row
    ``i`` of the generator applied to the k data chunks.
    """

    #: True when every stored chunk is exactly a generator-row product of
    #: the data — the invariant the generic batched/fused paths rely on.
    #: Codes with extra structure folded into their chunks (e.g. the BWO
    #: piggybacked parities) set this False, and encode_batch /
    #: decode_batch then defer to their per-stripe encode / decode.
    generator_encoded = True

    def __init__(self, k: int, n: int):
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got k={k} n={n}")
        self.k = k
        self.n = n
        # Multiply plan over the parity rows, shared by every stripe of
        # this code. Built lazily on first encode because subclasses
        # construct the generator after this __init__ returns; pinned
        # here so the global plan LRU can never evict a live code's plan.
        self._encode_plan = None
        self._decode_cache: "OrderedDict[Tuple[int, ...], Tuple[np.ndarray, List[int]]]" = (
            OrderedDict()
        )
        # Composed (e, k) recovery transforms keyed by failure pattern
        # (available-set, erased-set); see ErasureCode._recovery.
        from repro.gf.kernels import PatternCache

        self._pattern_cache = PatternCache()

    @property
    def r(self) -> int:
        return self.n - self.k

    # -- to be provided by subclasses ------------------------------------
    @property
    def generator(self) -> np.ndarray:
        """(n, k) generator matrix; rows 0..k-1 are the identity."""
        raise NotImplementedError

    # -- generic machinery ------------------------------------------------
    def encode_plan(self):
        """The cached multiply plan over this code's parity rows."""
        if self._encode_plan is None:
            from repro.gf.kernels import plan_for_matrix

            self._encode_plan = plan_for_matrix(self.generator[self.k :])
        return self._encode_plan

    def encode(self, data_chunks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the r parity chunks for k equal-length data chunks."""
        if len(data_chunks) != self.k:
            raise ValueError(f"expected {self.k} data chunks, got {len(data_chunks)}")
        data = np.stack([np.asarray(c, dtype=np.uint8) for c in data_chunks])
        from repro.gf.kernels import KERNEL_MIN_BYTES
        from repro.gf.matrix import gf_matmul_reference

        with record_codec("encode", data.nbytes):
            if data.shape[1] >= KERNEL_MIN_BYTES:
                parities = self.encode_plan().apply(data)
            else:
                parities = gf_matmul_reference(self.generator[self.k :], data)
        return [parities[i] for i in range(self.r)]

    def encode_stripe(self, data_chunks: Sequence[np.ndarray]) -> Stripe:
        """Encode and package data + parities into a :class:`Stripe`."""
        parities = self.encode(data_chunks)
        chunks = [np.asarray(c, dtype=np.uint8) for c in data_chunks] + parities
        return Stripe(self.k, self.n, chunks)

    def encode_batch(
        self, stripes: Sequence[Sequence[np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Parity chunks for many stripes in one kernel invocation each.

        Stacks same-length stripes along the chunk axis into a single
        ``(k, S*L)`` multiply per length group (a ragged final stripe
        lands in its own group), amortising plan lookup, ``np.take``
        dispatch, and per-call overhead across the batch. Bit-identical
        to calling :meth:`encode` once per stripe.
        """
        if not self.generator_encoded:
            return [self.encode(chunks) for chunks in stripes]
        arrays = [
            [np.asarray(c, dtype=np.uint8) for c in chunks] for chunks in stripes
        ]
        for chunks in arrays:
            if len(chunks) != self.k:
                raise ValueError(
                    f"expected {self.k} data chunks per stripe, got {len(chunks)}"
                )
        from repro.gf.kernels import KERNEL_MIN_BYTES
        from repro.gf.matrix import gf_matmul_reference

        results: List[Optional[List[np.ndarray]]] = [None] * len(arrays)
        groups: Dict[int, List[int]] = {}
        for s, chunks in enumerate(arrays):
            groups.setdefault(len(chunks[0]), []).append(s)
        for length, members in groups.items():
            batch = np.empty((self.k, length * len(members)), dtype=np.uint8)
            for j, s in enumerate(members):
                for t, c in enumerate(arrays[s]):
                    batch[t, j * length : (j + 1) * length] = c
            with record_codec("encode", batch.nbytes):
                if batch.shape[1] >= KERNEL_MIN_BYTES:
                    parities = self.encode_plan().apply(batch)
                else:
                    parities = gf_matmul_reference(self.generator[self.k :], batch)
            for j, s in enumerate(members):
                sl = slice(j * length, (j + 1) * length)
                results[s] = [
                    np.ascontiguousarray(parities[i, sl]) for i in range(self.r)
                ]
        return results  # type: ignore[return-value]

    def decode_batch(
        self,
        availables: Sequence[Dict[int, np.ndarray]],
        eraseds: Sequence[Sequence[int]],
    ) -> List[Dict[int, np.ndarray]]:
        """Recover erased chunks for many stripes at once.

        Stripes sharing the same (available-set, erased-set, chunk
        length) failure pattern — the shape of a node-failure burst —
        are stacked along the chunk axis and recovered with a single
        application of the fused pattern transform. Everything else
        (short availability, unique patterns, subclass-specific repair
        such as LRC local reconstruction) falls back to per-stripe
        :meth:`decode`, so results are always bit-identical to the
        per-stripe loop.
        """
        if len(availables) != len(eraseds):
            raise ValueError("availables and eraseds must have equal length")
        if not self.generator_encoded:
            return [
                self.decode(a, list(e)) for a, e in zip(availables, eraseds)
            ]
        results: List[Optional[Dict[int, np.ndarray]]] = [None] * len(availables)
        groups: Dict[Tuple, List[int]] = {}
        fallback: List[int] = []
        for s, (available, erased) in enumerate(zip(availables, eraseds)):
            erased = list(erased)
            if not erased:
                results[s] = {}
                continue
            if len(available) < self.k:
                fallback.append(s)
                continue
            length = len(next(iter(available.values())))
            key = (tuple(sorted(available)), tuple(erased), length)
            groups.setdefault(key, []).append(s)
        for key, members in groups.items():
            avail_key, erased_key, length = key
            fused = None
            if len(members) > 1:
                try:
                    fused = self._recovery(availables[members[0]], list(erased_key))
                except DecodeError:
                    fused = None
            if fused is None:
                # Single-member groups and patterns the generic fused
                # path cannot serve go through the subclass decode.
                fallback.extend(members)
                continue
            batch = np.empty((self.k, length * len(members)), dtype=np.uint8)
            for j, s in enumerate(members):
                avail = availables[s]
                for t, idx in enumerate(fused.use):
                    batch[t, j * length : (j + 1) * length] = np.asarray(
                        avail[idx], dtype=np.uint8
                    )
            with record_codec("decode", len(erased_key) * batch.shape[1]):
                recovered = fused.apply(batch)
            for j, s in enumerate(members):
                sl = slice(j * length, (j + 1) * length)
                results[s] = {
                    idx: np.ascontiguousarray(recovered[i, sl])
                    for i, idx in enumerate(erased_key)
                }
        for s in fallback:
            results[s] = self.decode(availables[s], list(eraseds[s]))
        return results  # type: ignore[return-value]

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks from any sufficient set of available ones.

        Args:
            available: map chunk-index -> chunk bytes.
            erased: indices to reconstruct.

        Returns:
            map erased-index -> recovered chunk.

        Raises:
            DecodeError: if the available chunks are insufficient.
        """
        erased = list(erased)
        if not erased:
            return {}
        if len(available) < self.k:
            raise DecodeError(
                f"need {self.k} chunks to decode, only {len(available)} available"
            )
        fused = self._recovery(available, erased)
        stacked = np.stack(
            [np.asarray(available[i], dtype=np.uint8) for i in fused.use]
        )
        with record_codec("decode", len(erased) * stacked.shape[1]):
            recovered = fused.apply(stacked)
        return {idx: recovered[j] for j, idx in enumerate(erased)}

    def _recovery(self, available: Dict[int, np.ndarray], erased: Sequence[int]):
        """The fused recovery transform for this failure pattern, cached.

        Composes ``generator[erased] @ inv`` once in the symbol domain —
        an (e, k) by (k, k) product over single field elements — so the
        chunk-domain work per decode is one (e, k) product instead of a
        (k, k) data-recovery matmul chained into an (e, k) re-encode.
        """
        from repro.gf.kernels import FusedDecode8
        from repro.gf.matrix import gf_matmul_reference

        key = ("mds", tuple(sorted(available)), tuple(erased))
        fused = self._pattern_cache.get(key)
        if fused is None:
            inv, use = self._decode_inverse(available)
            recovery = gf_matmul_reference(self.generator[list(erased), :], inv)
            fused = FusedDecode8(recovery, use, erased)
            self._pattern_cache.put(key, fused)
        return fused

    def _decode_inverse(self, available: Dict[int, np.ndarray]):
        """(inverse, rows used) for this availability pattern, cached.

        The inverse depends only on *which* chunks survive, not their
        bytes, and failure scenarios revisit the same few patterns — so
        a small per-code LRU skips the Gauss-Jordan solve on repeats.
        """
        from repro.gf.matrix import SingularMatrixError, gf_matinv

        # Key on the full availability pattern: the singular-subset
        # fallback may pick rows beyond the first k survivors.
        key = tuple(sorted(available))
        use = list(key[: self.k])
        hit = self._decode_cache.get(key)
        if hit is not None:
            self._decode_cache.move_to_end(key)
            return hit
        try:
            inv = gf_matinv(self.generator[use, :])
        except SingularMatrixError:
            # A non-MDS code (or unlucky subset): retry with a different
            # k-subset before giving up.
            found = self._find_invertible_subset(available)
            if found is None:
                raise DecodeError("no invertible k-subset of available chunks")
            inv, use = found
        self._decode_cache[key] = (inv, use)
        while len(self._decode_cache) > _DECODE_CACHE_MAX:
            self._decode_cache.popitem(last=False)
        return inv, use

    def _find_invertible_subset(self, available: Dict[int, np.ndarray]):
        from itertools import combinations

        from repro.gf.matrix import SingularMatrixError, gf_matinv

        for use in combinations(sorted(available), self.k):
            try:
                return gf_matinv(self.generator[list(use), :]), list(use)
            except SingularMatrixError:
                continue
        return None

    def decode_stripe(self, stripe: Stripe) -> Stripe:
        """Fill in every erased chunk of a stripe, returning a full copy."""
        available = {i: c for i, c in enumerate(stripe.chunks) if c is not None}
        recovered = self.decode(available, stripe.erased_indices())
        chunks = [
            stripe.chunks[i] if stripe.chunks[i] is not None else recovered[i]
            for i in range(stripe.n)
        ]
        return Stripe(stripe.k, stripe.n, chunks)

    # -- verification ------------------------------------------------------
    def is_mds(self, max_patterns: Optional[int] = None) -> bool:
        """Check the MDS property by enumerating r-erasure patterns.

        An (n, k) code is MDS iff every k columns of the generator span
        the data, i.e. every pattern of exactly r erasures is decodable.
        ``max_patterns`` caps the enumeration (deterministic prefix) for
        wide codes; None means exhaustive.
        """
        from itertools import combinations

        from repro.gf.matrix import gf_rank

        count = 0
        for erased in combinations(range(self.n), self.r):
            survivors = [i for i in range(self.n) if i not in erased]
            if gf_rank(self.generator[survivors, :]) < self.k:
                return False
            count += 1
            if max_patterns is not None and count >= max_patterns:
                break
        return True

    def storage_overhead(self) -> float:
        """Ratio of raw bytes stored to logical bytes (n / k)."""
        return self.n / self.k

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.k},{self.n})"
