"""Bandwidth-optimal Convertible Codes (vector codes with piggybacking).

Access-optimal CC cannot help when a conversion *adds* parities: the
information for the new parities simply is not present in the old ones.
BWO-CC (paper Appendix A, case 2a) solves this with a vector code:

* Each chunk is (logically) divided into ``r_F`` substripes.
* At encode time, for each of the first ``r_I`` substripes *all* ``r_F``
  parities are computed. The ``r_F - r_I`` "extra" parities are XORed
  (piggybacked) into the stored parities of the later substripes.
* At conversion time only the parities plus the **last** ``r_F - r_I``
  substripes of each data chunk are read — laid out contiguously on disk,
  which is the paper's hop-and-couple optimization (one 4 MB sequential
  read instead of 8 scattered half-MB reads in their example).

Per merged stripe the read cost is ``r_I + k * (r_F - r_I) / r_F`` chunks
versus ``k`` for RS: Fig 8's CC(4,5)->CC(8,10) reads 6 chunk-equivalents
instead of 8 (25% less).

The stored code tolerates any ``r_I`` chunk erasures (same as RS(k, k+r_I));
conversion emits stripes byte-identical to a scalar
:class:`~repro.codes.convertible.ConvertibleCode` of the final parameters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import DecodeError, ErasureCode, Stripe
from repro.codes.convertible import ConversionIO, ConvertibleCode
from repro.codes.pointsearch import find_family_points, vandermonde_parity
from repro.gf.kernels import gf_scale_xor
from repro.gf.matrix import SingularMatrixError, gf_identity, gf_matinv, gf_matmul


class BandwidthOptimalCC(ErasureCode):
    #: Parities carry piggybacked substripe sums, not plain generator-row
    #: products — the generic batched/fused codec paths must defer to the
    #: per-stripe encode/decode here.
    generator_encoded = False
    """BWO-CC(k, r_I -> r_F): stores r_I parities, converts into r_F.

    ``n = k + r_I`` chunks are stored; the code is built over the
    ``r_F``-point family so that a future merge into a wider stripe with
    ``r_F`` parities reads only parities plus a ``(r_F - r_I)/r_F``
    fraction of each data chunk.
    """

    def __init__(
        self, k: int, r_initial: int, r_final: int, family_width: Optional[int] = None
    ):
        if not 0 < r_initial < r_final:
            raise ValueError("BWO-CC requires 0 < r_I < r_F")
        super().__init__(k, k + r_initial)
        self.r_initial = r_initial
        self.r_final = r_final
        if family_width is None:
            from repro.codes.convertible import default_family_width

            family_width = default_family_width(r_final, k)
        self.family_width = max(family_width, k)
        self.points = find_family_points(r_final, self.family_width)
        # (k, r_F) parity coefficients shared by every substripe.
        self._parity_coeffs = vandermonde_parity(self.points, k)

    @property
    def generator(self) -> np.ndarray:
        # Scalar-view generator (data rows + the r_I *clean* parity rows).
        # Only meaningful per-substripe; provided for interface completeness.
        parity = self._parity_coeffs[:, : self.r_initial].T
        return np.concatenate([gf_identity(self.k), parity], axis=0)

    # -- substripe helpers -------------------------------------------------
    def _substripe_len(self, chunk_size: int) -> int:
        if chunk_size % self.r_final != 0:
            raise ValueError(
                f"chunk size {chunk_size} must be divisible by r_F={self.r_final}"
            )
        return chunk_size // self.r_final

    def _sub(self, chunk: np.ndarray, s: int) -> np.ndarray:
        sublen = self._substripe_len(len(chunk))
        return chunk[s * sublen : (s + 1) * sublen]

    def _substripe_parity(
        self, data_chunks: Sequence[np.ndarray], s: int, j: int
    ) -> np.ndarray:
        """Parity j of substripe s over the given data chunks."""
        sublen = self._substripe_len(len(data_chunks[0]))
        acc = np.zeros(sublen, dtype=np.uint8)
        for t, chunk in enumerate(data_chunks):
            gf_scale_xor(acc, int(self._parity_coeffs[t, j]), self._sub(chunk, s))
        return acc

    # -- encode ------------------------------------------------------------
    def encode(self, data_chunks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Compute the r_I stored (piggybacked) parity chunks."""
        if len(data_chunks) != self.k:
            raise ValueError(f"expected {self.k} data chunks")
        data = [np.asarray(c, dtype=np.uint8) for c in data_chunks]
        chunk_size = len(data[0])
        sublen = self._substripe_len(chunk_size)
        r_i, r_f = self.r_initial, self.r_final
        parities = [np.zeros(chunk_size, dtype=np.uint8) for _ in range(r_i)]
        for j in range(r_i):
            for s in range(r_f):
                piece = self._substripe_parity(data, s, j)
                if s >= r_i:
                    # Piggyback: extra parity s of substripe j rides here.
                    piece = piece ^ self._substripe_parity(data, j, s)
                parities[j][s * sublen : (s + 1) * sublen] = piece
        return parities

    # -- decode ------------------------------------------------------------
    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks; tolerates any r_I chunk erasures.

        Substripes 0..r_I-1 carry clean parities and decode directly;
        their recovery lets the piggybacks be computed and stripped from
        the later substripes, which then decode the same way.
        """
        erased = list(erased)
        if not erased:
            return {}
        if len(available) < self.k:
            raise DecodeError(
                f"need {self.k} chunks, only {len(available)} available"
            )
        chunk_size = len(next(iter(available.values())))
        sublen = self._substripe_len(chunk_size)
        r_i, r_f = self.r_initial, self.r_final
        use = sorted(available)[: self.k]
        # Per-substripe generator rows: data row t -> e_t, parity row j ->
        # coefficient column j of the substripe code.
        rows = []
        for idx in use:
            if idx < self.k:
                row = np.zeros(self.k, dtype=np.uint8)
                row[idx] = 1
            else:
                row = self._parity_coeffs[:, idx - self.k].copy()
            rows.append(row)
        mat = np.stack(rows)
        try:
            inv = gf_matinv(mat)
        except SingularMatrixError as exc:  # family is verified; defensive
            raise DecodeError("available chunks are not decodable") from exc

        recovered_data = np.zeros((self.k, chunk_size), dtype=np.uint8)
        # Pass 1: clean substripes.
        for s in range(r_i):
            stacked = np.stack(
                [self._sub(available[idx], s) for idx in use]
            )
            recovered_data[:, s * sublen : (s + 1) * sublen] = gf_matmul(inv, stacked)
        # Pass 2: strip piggybacks (computable now) then decode.
        early = [recovered_data[t] for t in range(self.k)]
        for s in range(r_i, r_f):
            stacked_rows = []
            for idx in use:
                piece = self._sub(available[idx], s)
                if idx >= self.k:
                    j = idx - self.k
                    piece = piece ^ self._substripe_parity(early, j, s)
                stacked_rows.append(piece)
            recovered_data[:, s * sublen : (s + 1) * sublen] = gf_matmul(
                inv, np.stack(stacked_rows)
            )
        out: Dict[int, np.ndarray] = {}
        full_data = [recovered_data[t] for t in range(self.k)]
        for idx in erased:
            if idx < self.k:
                out[idx] = recovered_data[idx].copy()
            else:
                out[idx] = self.encode(full_data)[idx - self.k]
        return out

    # -- conversion ----------------------------------------------------------
    def conversion_read_chunks(self, n_stripes: int) -> float:
        """Chunk-equivalents read to merge ``n_stripes`` stripes."""
        frac = (self.r_final - self.r_initial) / self.r_final
        return n_stripes * (self.r_initial + self.k * frac)

    def convert_merge(
        self, stripes: Sequence[Stripe], final: ConvertibleCode
    ) -> Tuple[Stripe, ConversionIO]:
        """Merge stripes into one scalar CC stripe with r_F parities.

        Reads all stored parities plus the last ``r_F - r_I`` substripes
        of every data chunk (a single contiguous tail range per chunk —
        hop-and-couple). The output is byte-identical to encoding the
        concatenated data with ``final`` directly.
        """
        lam = len(stripes)
        k_i, r_i, r_f = self.k, self.r_initial, self.r_final
        if final.k != lam * k_i or final.r != r_f:
            raise ValueError(
                f"final code must be CC({lam * k_i},{lam * k_i + r_f})"
            )
        if final.points[:r_f] != self.points[:r_f]:
            raise ValueError("final code is from a different point family")
        chunk_size = stripes[0].chunk_size()
        sublen = self._substripe_len(chunk_size)

        final_parities = np.zeros((r_f, chunk_size), dtype=np.uint8)
        for i in range(lam):
            offset = i * k_i
            # Extra parities of the early substripes, extracted from the
            # piggyback slots using the (read) tail data.
            if any(stripes[i].chunks[t] is None for t in range(k_i)):
                raise DecodeError("conversion requires an erased data chunk")
            tail_data = [
                stripes[i].chunks[t][r_i * sublen :] for t in range(k_i)
            ]
            for j in range(r_i):
                parity = stripes[i].chunks[k_i + j]
                if parity is None:
                    raise DecodeError("conversion requires an erased parity")
                for s in range(r_f):
                    piece = parity[s * sublen : (s + 1) * sublen]
                    if s >= r_i:
                        # Remove the direct parity of this tail substripe to
                        # expose the piggyback p_{j, s}; recompute it from the
                        # tail data (which is read anyway).
                        direct = np.zeros(sublen, dtype=np.uint8)
                        for t in range(k_i):
                            sub = tail_data[t][(s - r_i) * sublen : (s - r_i + 1) * sublen]
                            gf_scale_xor(direct, int(self._parity_coeffs[t, j]), sub)
                        extracted = piece ^ direct  # == p_{substripe j, parity s}
                        coeff = final.shift_coefficient(s, offset)
                        gf_scale_xor(
                            final_parities[s, j * sublen : (j + 1) * sublen],
                            coeff,
                            extracted,
                        )
                    else:
                        coeff = final.shift_coefficient(j, offset)
                        gf_scale_xor(
                            final_parities[j, s * sublen : (s + 1) * sublen],
                            coeff,
                            piece,
                        )
            # Tail substripes of the final parities: direct from read data.
            for s in range(r_i, r_f):
                for j in range(r_f):
                    acc = final_parities[j, s * sublen : (s + 1) * sublen]
                    for t in range(k_i):
                        coeff = int(final._generator[final.k + j, offset + t])
                        sub = tail_data[t][(s - r_i) * sublen : (s - r_i + 1) * sublen]
                        gf_scale_xor(acc, coeff, sub)

        chunks: List[np.ndarray] = []
        for i in range(lam):
            chunks.extend(stripes[i].chunks[:k_i])
        chunks.extend(final_parities[j] for j in range(r_f))
        io = ConversionIO(
            data_chunks_read=lam * k_i,
            parity_chunks_read=lam * r_i,
            parity_chunks_written=r_f,
            data_read_fraction=(r_f - r_i) / r_f,
        )
        return Stripe(final.k, final.n, chunks), io
