"""Wide Convertible Codes over GF(2^16).

Same construction as :class:`repro.codes.convertible.ConvertibleCode` —
systematic code with parity ``p_j = sum_t d_t * alpha_j**t`` — but over
GF(2^16), where superregular point families exist at the stripe widths
GF(2^8) cannot support (r = 4..5 at widths 34+, e.g. the paper's
EC(17,20) -> EC(34,37) merge or wide late-life stripes).

Verification scope: families are re-verified at construction with
exhaustive submatrix checks for sizes <= 3 and large seeded samples for
sizes 4-5 (an exhaustive width-80 r=5 check is ~24M determinants; the
sampling is documented and deterministic). Erasure-decode tests cover the
MDS behaviour independently.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import DecodeError
from repro.gf.field16 import (
    _EXP16,
    _LOG16,
    FIELD_ORDER_16,
    bytes_to_symbols,
    gf16_batch_det,
    gf16_element,
    gf16_matinv,
    gf16_matmul,
    gf16_mul,
    gf16_pow,
    symbols_to_bytes,
)
from repro.obs.codec import record_codec

#: Curated nested exponent chain for GF(2^16) families (searched offline,
#: re-verified on first use). Prefix property: code with r parities uses
#: the first r exponents, so different-r codes stay convertible.
CURATED_EXPONENTS_16: Tuple[int, ...] = (0, 1, 2, 3, 153)

#: Verified-width ceilings per r over GF(2^16) for the curated chain.
MAX_WIDTH_16: Dict[int, int] = {1: 256, 2: 256, 3: 128, 4: 96, 5: 80}

_VERIFIED: Dict[Tuple[int, int], bool] = {}

EXHAUSTIVE_LIMIT_16 = 400_000
SAMPLE_COUNT_16 = 120_000


def vandermonde_parity_16(points: Sequence[int], width: int) -> np.ndarray:
    """(width, len(points)) matrix with entry [t, j] = points[j] ** t.

    Vectorized as an outer product in log space; zero points (which the
    curated families never contain, but the definition allows) follow the
    ``gf16_pow`` convention ``0 ** 0 == 1``.
    """
    arr = np.asarray(list(points), dtype=np.uint16)
    if width == 0 or arr.size == 0:
        return np.zeros((width, arr.size), dtype=np.uint16)
    exponents = (
        np.arange(width, dtype=np.int64)[:, None] * _LOG16[arr][None, :].astype(np.int64)
    ) % FIELD_ORDER_16
    out = _EXP16[exponents].astype(np.uint16)
    zero_cols = arr == 0
    if zero_cols.any():
        out[:, zero_cols] = 0
        out[0, zero_cols] = 1
    return out


def is_superregular_parity_16(
    parity: np.ndarray, rng_seed: int = 0xC0DE16
) -> bool:
    """Submatrix nonsingularity check: exhaustive where cheap, sampled
    deterministically where not."""
    width, r = parity.shape
    rng = np.random.default_rng(rng_seed)
    for size in range(1, min(width, r) + 1):
        col_sets = list(combinations(range(r), size))
        n_rows = comb(width, size)
        if n_rows * len(col_sets) <= EXHAUSTIVE_LIMIT_16:
            row_sets = np.array(list(combinations(range(width), size)), dtype=np.intp)
        else:
            per = max(1, SAMPLE_COUNT_16 // len(col_sets))
            row_sets = np.stack(
                [np.sort(rng.choice(width, size=size, replace=False)) for _ in range(per)]
            )
        for cols in col_sets:
            sub = parity[row_sets][:, :, list(cols)]
            if np.any(gf16_batch_det(sub) == 0):
                return False
    return True


def wide_family_points(r: int, width: int) -> List[int]:
    """The curated GF(2^16) family, verified for (r, width)."""
    if r < 1 or r > len(CURATED_EXPONENTS_16):
        raise ValueError(f"r={r} outside the curated GF(2^16) chain")
    ceiling = MAX_WIDTH_16[r]
    if width > ceiling:
        raise ValueError(
            f"GF(2^16) family for r={r} verified up to width {ceiling}, "
            f"requested {width}"
        )
    key = (r, width)
    for (vr, vw), ok in _VERIFIED.items():
        if vr == r and vw >= width and ok:
            return [gf16_element(e) for e in CURATED_EXPONENTS_16[:r]]
    points = [gf16_element(e) for e in CURATED_EXPONENTS_16[:r]]
    parity = vandermonde_parity_16(points, width)
    if not is_superregular_parity_16(parity):
        raise RuntimeError(
            f"curated GF(2^16) points failed verification at r={r}, width={width}"
        )
    _VERIFIED[key] = True
    return points


class WideConvertibleCode:
    """CC(k, n) over GF(2^16): wide stripes, same conversion algebra.

    Chunks are uint8 arrays of even length (packed into uint16 symbols
    internally). API mirrors the byte-oriented codes: ``encode``,
    ``decode``, ``encode_stripe``-free (stripes are plain chunk lists).
    """

    def __init__(self, k: int, n: int, family_width: Optional[int] = None):
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got k={k} n={n}")
        self.k = k
        self.n = n
        self.family_width = family_width or max(k, 40)
        self.points = wide_family_points(self.r, max(self.family_width, k))
        self._parity_coeffs = vandermonde_parity_16(self.points, k)  # (k, r)
        # Pinned multiply plan over the parity rows (built lazily, shared
        # by every stripe; see ErasureCode.encode_plan for the rationale).
        self._encode_plan = None

    @property
    def r(self) -> int:
        return self.n - self.k

    def shift_coefficient(self, j: int, offset: int) -> int:
        return gf16_pow(int(self.points[j]), offset)

    # -- encode/decode -----------------------------------------------------
    def encode_plan(self):
        """The cached GF(2^16) multiply plan over this code's parity rows."""
        if self._encode_plan is None:
            from repro.gf.kernels import plan_for_matrix16

            self._encode_plan = plan_for_matrix16(
                np.ascontiguousarray(self._parity_coeffs.T)
            )
        return self._encode_plan

    def encode(self, data_chunks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Parity chunks (uint8) for k equal-length uint8 data chunks."""
        if len(data_chunks) != self.k:
            raise ValueError(f"expected {self.k} chunks")
        from repro.gf.kernels import KERNEL_MIN_BYTES

        length = len(data_chunks[0])
        symbols = np.stack([bytes_to_symbols(c) for c in data_chunks])
        with record_codec("encode", self.k * length):
            if 2 * symbols.shape[1] >= KERNEL_MIN_BYTES:
                parities = self.encode_plan().apply(symbols)
            else:
                parities = gf16_matmul(self._parity_coeffs.T, symbols)
        return [symbols_to_bytes(parities[j], length) for j in range(self.r)]

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks from any k available ones."""
        erased = list(erased)
        if not erased:
            return {}
        if len(available) < self.k:
            raise DecodeError(f"need {self.k} chunks, have {len(available)}")
        use = sorted(available)[: self.k]
        rows = []
        for idx in use:
            if idx < self.k:
                row = np.zeros(self.k, dtype=np.uint16)
                row[idx] = 1
            else:
                row = self._parity_coeffs[:, idx - self.k].copy()
            rows.append(row)
        inv = gf16_matinv(np.stack(rows))
        length = len(next(iter(available.values())))
        stacked = np.stack([bytes_to_symbols(available[i]) for i in use])
        with record_codec("decode", len(erased) * length):
            data = gf16_matmul(inv, stacked)
            # One stacked generator-row product reconstructs every erased
            # chunk (data and parity alike) at once.
            gen_rows = np.zeros((len(erased), self.k), dtype=np.uint16)
            for j, idx in enumerate(erased):
                if idx < self.k:
                    gen_rows[j, idx] = 1
                else:
                    gen_rows[j] = self._parity_coeffs[:, idx - self.k]
            recovered = gf16_matmul(gen_rows, data)
        return {
            idx: symbols_to_bytes(recovered[j], length)
            for j, idx in enumerate(erased)
        }

    # -- conversion ----------------------------------------------------------
    def merge_parities(
        self,
        final: "WideConvertibleCode",
        stripe_parities: Sequence[Sequence[np.ndarray]],
    ) -> List[np.ndarray]:
        """Merge-regime conversion: final parities from initial parities.

        ``stripe_parities[i][j]`` is parity j of initial stripe i. Only
        parities are consumed — the wide-stripe analogue of Fig 7.
        """
        lam = len(stripe_parities)
        if final.k != lam * self.k or final.r > self.r:
            raise ValueError("final code must merge lam stripes, r_F <= r_I")
        if final.points[: final.r] != self.points[: final.r]:
            raise ValueError("codes are from different GF(2^16) families")
        length = len(stripe_parities[0][0])
        out = []
        with record_codec("transcode", final.r * length):
            for j in range(final.r):
                acc = np.zeros(
                    len(bytes_to_symbols(stripe_parities[0][j])), dtype=np.uint16
                )
                for i in range(lam):
                    coeff = final.shift_coefficient(j, i * self.k)
                    acc ^= gf16_mul(
                        np.uint16(coeff), bytes_to_symbols(stripe_parities[i][j])
                    )
                out.append(symbols_to_bytes(acc, length))
        return out

    def __repr__(self) -> str:
        return f"WideConvertibleCode({self.k},{self.n})"
