"""Wide Convertible Codes over GF(2^16).

Same construction as :class:`repro.codes.convertible.ConvertibleCode` —
systematic code with parity ``p_j = sum_t d_t * alpha_j**t`` — but over
GF(2^16), where superregular point families exist at the stripe widths
GF(2^8) cannot support (r = 4..5 at widths 34+, e.g. the paper's
EC(17,20) -> EC(34,37) merge or wide late-life stripes).

Verification scope: families are re-verified at construction with
exhaustive submatrix checks for sizes <= 3 and large seeded samples for
sizes 4-5 (an exhaustive width-80 r=5 check is ~24M determinants; the
sampling is documented and deterministic). Erasure-decode tests cover the
MDS behaviour independently.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.base import DecodeError
from repro.gf.field16 import (
    _EXP16,
    _LOG16,
    FIELD_ORDER_16,
    bytes_to_symbols,
    gf16_batch_det,
    gf16_element,
    gf16_matinv,
    gf16_matmul,
    gf16_matmul_reference,
    gf16_pow,
    symbols_to_bytes,
)
from repro.gf.kernels import FusedDecode16, PatternCache, gf16_scale_xor
from repro.obs.codec import record_codec

#: Curated nested exponent chain for GF(2^16) families (searched offline,
#: re-verified on first use). Prefix property: code with r parities uses
#: the first r exponents, so different-r codes stay convertible.
CURATED_EXPONENTS_16: Tuple[int, ...] = (0, 1, 2, 3, 153)

#: Verified-width ceilings per r over GF(2^16) for the curated chain.
MAX_WIDTH_16: Dict[int, int] = {1: 256, 2: 256, 3: 128, 4: 96, 5: 80}

_VERIFIED: Dict[Tuple[int, int], bool] = {}

EXHAUSTIVE_LIMIT_16 = 400_000
SAMPLE_COUNT_16 = 120_000


def vandermonde_parity_16(points: Sequence[int], width: int) -> np.ndarray:
    """(width, len(points)) matrix with entry [t, j] = points[j] ** t.

    Vectorized as an outer product in log space; zero points (which the
    curated families never contain, but the definition allows) follow the
    ``gf16_pow`` convention ``0 ** 0 == 1``.
    """
    arr = np.asarray(list(points), dtype=np.uint16)
    if width == 0 or arr.size == 0:
        return np.zeros((width, arr.size), dtype=np.uint16)
    exponents = (
        np.arange(width, dtype=np.int64)[:, None] * _LOG16[arr][None, :].astype(np.int64)
    ) % FIELD_ORDER_16
    out = _EXP16[exponents].astype(np.uint16)
    zero_cols = arr == 0
    if zero_cols.any():
        out[:, zero_cols] = 0
        out[0, zero_cols] = 1
    return out


def is_superregular_parity_16(
    parity: np.ndarray, rng_seed: int = 0xC0DE16
) -> bool:
    """Submatrix nonsingularity check: exhaustive where cheap, sampled
    deterministically where not."""
    width, r = parity.shape
    rng = np.random.default_rng(rng_seed)
    for size in range(1, min(width, r) + 1):
        col_sets = list(combinations(range(r), size))
        n_rows = comb(width, size)
        if n_rows * len(col_sets) <= EXHAUSTIVE_LIMIT_16:
            row_sets = np.array(list(combinations(range(width), size)), dtype=np.intp)
        else:
            per = max(1, SAMPLE_COUNT_16 // len(col_sets))
            row_sets = np.stack(
                [np.sort(rng.choice(width, size=size, replace=False)) for _ in range(per)]
            )
        for cols in col_sets:
            sub = parity[row_sets][:, :, list(cols)]
            if np.any(gf16_batch_det(sub) == 0):
                return False
    return True


def wide_family_points(r: int, width: int) -> List[int]:
    """The curated GF(2^16) family, verified for (r, width)."""
    if r < 1 or r > len(CURATED_EXPONENTS_16):
        raise ValueError(f"r={r} outside the curated GF(2^16) chain")
    ceiling = MAX_WIDTH_16[r]
    if width > ceiling:
        raise ValueError(
            f"GF(2^16) family for r={r} verified up to width {ceiling}, "
            f"requested {width}"
        )
    key = (r, width)
    for (vr, vw), ok in _VERIFIED.items():
        if vr == r and vw >= width and ok:
            return [gf16_element(e) for e in CURATED_EXPONENTS_16[:r]]
    points = [gf16_element(e) for e in CURATED_EXPONENTS_16[:r]]
    parity = vandermonde_parity_16(points, width)
    if not is_superregular_parity_16(parity):
        raise RuntimeError(
            f"curated GF(2^16) points failed verification at r={r}, width={width}"
        )
    _VERIFIED[key] = True
    return points


class WideConvertibleCode:
    """CC(k, n) over GF(2^16): wide stripes, same conversion algebra.

    Chunks are uint8 arrays of even length (packed into uint16 symbols
    internally). API mirrors the byte-oriented codes: ``encode``,
    ``decode``, ``encode_stripe``-free (stripes are plain chunk lists).
    """

    def __init__(self, k: int, n: int, family_width: Optional[int] = None):
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got k={k} n={n}")
        self.k = k
        self.n = n
        self.family_width = family_width or max(k, 40)
        self.points = wide_family_points(self.r, max(self.family_width, k))
        self._parity_coeffs = vandermonde_parity_16(self.points, k)  # (k, r)
        # Pinned multiply plan over the parity rows (built lazily, shared
        # by every stripe; see ErasureCode.encode_plan for the rationale).
        self._encode_plan = None
        # Composed (e, k) recovery transforms keyed by failure pattern.
        self._pattern_cache = PatternCache()

    @property
    def r(self) -> int:
        return self.n - self.k

    def shift_coefficient(self, j: int, offset: int) -> int:
        return gf16_pow(int(self.points[j]), offset)

    # -- encode/decode -----------------------------------------------------
    def encode_plan(self):
        """The cached GF(2^16) multiply plan over this code's parity rows."""
        if self._encode_plan is None:
            from repro.gf.kernels import plan_for_matrix16

            self._encode_plan = plan_for_matrix16(
                np.ascontiguousarray(self._parity_coeffs.T)
            )
        return self._encode_plan

    def encode(self, data_chunks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Parity chunks (uint8) for k equal-length uint8 data chunks."""
        if len(data_chunks) != self.k:
            raise ValueError(f"expected {self.k} chunks")
        from repro.gf.kernels import KERNEL_MIN_BYTES

        length = len(data_chunks[0])
        rows = [bytes_to_symbols(c, copy=False) for c in data_chunks]
        with record_codec("encode", self.k * length):
            if 2 * len(rows[0]) >= KERNEL_MIN_BYTES:
                parities = self.encode_plan().apply_rows(rows)
            else:
                parities = gf16_matmul(self._parity_coeffs.T, np.stack(rows))
        return [symbols_to_bytes(parities[j], length) for j in range(self.r)]

    def _generator_row(self, idx: int) -> np.ndarray:
        """Row ``idx`` of the implicit (n, k) generator over GF(2^16)."""
        if idx < self.k:
            row = np.zeros(self.k, dtype=np.uint16)
            row[idx] = 1
            return row
        return self._parity_coeffs[:, idx - self.k].copy()

    def _recovery(self, use: Sequence[int], erased: Sequence[int]) -> FusedDecode16:
        """The fused recovery transform for this failure pattern, cached.

        Composes ``gen_rows @ inv`` once in the (cheap) symbol domain into
        a single (e, k) recovery matrix — so each decode is one (e, k)
        chunk product over the k survivors in ``use`` instead of a
        fresh Gauss-Jordan inverse plus a (k, k) product chained into an
        (e, k) re-encode.
        """
        key = (tuple(use), tuple(erased))
        fused = self._pattern_cache.get(key)
        if fused is None:
            inv = gf16_matinv(np.stack([self._generator_row(i) for i in use]))
            gen_rows = np.stack([self._generator_row(i) for i in erased])
            recovery = gf16_matmul_reference(gen_rows, inv)
            fused = FusedDecode16(recovery, use, erased)
            self._pattern_cache.put(key, fused)
        return fused

    def decode(
        self, available: Dict[int, np.ndarray], erased: Sequence[int]
    ) -> Dict[int, np.ndarray]:
        """Recover erased chunks from any k available ones."""
        erased = list(erased)
        if not erased:
            return {}
        if len(available) < self.k:
            raise DecodeError(f"need {self.k} chunks, have {len(available)}")
        use = sorted(available)[: self.k]
        fused = self._recovery(use, erased)
        length = len(next(iter(available.values())))
        rows = [bytes_to_symbols(available[i], copy=False) for i in use]
        with record_codec("decode", len(erased) * length):
            recovered = fused.apply_rows(rows)
        return {
            idx: symbols_to_bytes(recovered[j], length)
            for j, idx in enumerate(erased)
        }

    # -- multi-stripe batching ----------------------------------------------
    def encode_batch(
        self, stripes: Sequence[Sequence[np.ndarray]]
    ) -> List[List[np.ndarray]]:
        """Parity chunks for many stripes in one kernel invocation each.

        GF(2^16) sibling of :meth:`repro.codes.base.ErasureCode.encode_batch`:
        same-length stripes are packed into one ``(k, S*L)`` symbol batch
        per length group. Bit-identical to per-stripe :meth:`encode`.
        """
        from repro.gf.kernels import KERNEL_MIN_BYTES

        arrays = [
            [np.asarray(c, dtype=np.uint8) for c in chunks] for chunks in stripes
        ]
        for chunks in arrays:
            if len(chunks) != self.k:
                raise ValueError(f"expected {self.k} chunks")
        results: List[Optional[List[np.ndarray]]] = [None] * len(arrays)
        groups: Dict[int, List[int]] = {}
        for s, chunks in enumerate(arrays):
            groups.setdefault(len(chunks[0]), []).append(s)
        for length, members in groups.items():
            width = (length + 1) // 2  # symbols per chunk
            batch = np.empty((self.k, width * len(members)), dtype=np.uint16)
            for j, s in enumerate(members):
                for t, c in enumerate(arrays[s]):
                    batch[t, j * width : (j + 1) * width] = bytes_to_symbols(c)
            with record_codec("encode", self.k * length * len(members)):
                if 2 * batch.shape[1] >= KERNEL_MIN_BYTES:
                    parities = self.encode_plan().apply(batch)
                else:
                    parities = gf16_matmul(self._parity_coeffs.T, batch)
            for j, s in enumerate(members):
                sl = slice(j * width, (j + 1) * width)
                results[s] = [
                    symbols_to_bytes(np.ascontiguousarray(parities[i, sl]), length)
                    for i in range(self.r)
                ]
        return results  # type: ignore[return-value]

    def decode_batch(
        self,
        availables: Sequence[Dict[int, np.ndarray]],
        eraseds: Sequence[Sequence[int]],
    ) -> List[Dict[int, np.ndarray]]:
        """Recover erased chunks for many stripes at once.

        Stripes sharing one (available-set, erased-set, chunk length)
        pattern are stacked along the symbol axis and recovered with a
        single fused transform; unique patterns fall back to per-stripe
        :meth:`decode`. Bit-identical to the per-stripe loop.
        """
        if len(availables) != len(eraseds):
            raise ValueError("availables and eraseds must have equal length")
        results: List[Optional[Dict[int, np.ndarray]]] = [None] * len(availables)
        groups: Dict[Tuple, List[int]] = {}
        fallback: List[int] = []
        for s, (available, erased) in enumerate(zip(availables, eraseds)):
            erased = list(erased)
            if not erased:
                results[s] = {}
                continue
            if len(available) < self.k:
                fallback.append(s)
                continue
            length = len(next(iter(available.values())))
            key = (tuple(sorted(available)), tuple(erased), length)
            groups.setdefault(key, []).append(s)
        for key, members in groups.items():
            avail_key, erased_key, length = key
            if len(members) == 1:
                fallback.append(members[0])
                continue
            use = list(avail_key[: self.k])
            fused = self._recovery(use, list(erased_key))
            width = (length + 1) // 2
            batch = np.empty((self.k, width * len(members)), dtype=np.uint16)
            for j, s in enumerate(members):
                avail = availables[s]
                for t, idx in enumerate(use):
                    batch[t, j * width : (j + 1) * width] = bytes_to_symbols(
                        avail[idx]
                    )
            with record_codec("decode", len(erased_key) * length * len(members)):
                recovered = fused.apply(batch)
            for j, s in enumerate(members):
                sl = slice(j * width, (j + 1) * width)
                results[s] = {
                    idx: symbols_to_bytes(
                        np.ascontiguousarray(recovered[i, sl]), length
                    )
                    for i, idx in enumerate(erased_key)
                }
        for s in fallback:
            results[s] = self.decode(availables[s], list(eraseds[s]))
        return results  # type: ignore[return-value]

    # -- conversion ----------------------------------------------------------
    def merge_parities(
        self,
        final: "WideConvertibleCode",
        stripe_parities: Sequence[Sequence[np.ndarray]],
    ) -> List[np.ndarray]:
        """Merge-regime conversion: final parities from initial parities.

        ``stripe_parities[i][j]`` is parity j of initial stripe i. Only
        parities are consumed — the wide-stripe analogue of Fig 7.
        """
        lam = len(stripe_parities)
        if final.k != lam * self.k or final.r > self.r:
            raise ValueError("final code must merge lam stripes, r_F <= r_I")
        if final.points[: final.r] != self.points[: final.r]:
            raise ValueError("codes are from different GF(2^16) families")
        length = len(stripe_parities[0][0])
        out = []
        with record_codec("transcode", final.r * length):
            for j in range(final.r):
                acc = np.zeros(
                    len(bytes_to_symbols(stripe_parities[0][j])), dtype=np.uint16
                )
                for i in range(lam):
                    # Blocked scale-and-accumulate through the cached
                    # full-symbol table, like the CC/LRCC merge loops.
                    gf16_scale_xor(
                        acc,
                        final.shift_coefficient(j, i * self.k),
                        bytes_to_symbols(stripe_parities[i][j]),
                    )
                out.append(symbols_to_bytes(acc, length))
        return out

    def __repr__(self) -> str:
        return f"WideConvertibleCode({self.k},{self.n})"
