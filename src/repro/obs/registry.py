"""The metrics registry: named counters, gauges and histograms.

One registry holds every metric a component exposes. Metrics are keyed
by ``(name, sorted label pairs)`` so the same name can carry several
label series (``op_latency_seconds{op="ingest"}`` vs ``{op="repair"}``),
exactly like Prometheus. Besides statically registered metrics, a
*collector* — a callable returning ``(name, kind, labels, value)``
samples — can be attached to surface live values from an existing ledger
(e.g. :class:`~repro.cluster.metrics.IOMetrics`) without copying them:
the registry then *is* a view over the ledger, so exported telemetry and
benchmark numbers can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs.histogram import LogLinearHistogram

LabelPairs = Tuple[Tuple[str, str], ...]

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _label_key(labels: Dict[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A settable value, or a live view through a callback."""

    __slots__ = ("_value", "fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None):
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError("callback gauges cannot be set")
        self._value = float(value)

    def add(self, amount: float) -> None:
        if self.fn is not None:
            raise ValueError("callback gauges cannot be set")
        self._value += amount

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value


@dataclass
class Sample:
    """One collected metric series, ready for an exporter."""

    name: str
    kind: str
    labels: LabelPairs = ()
    value: Optional[float] = None
    hist: Optional[LogLinearHistogram] = None

    @property
    def key(self) -> Tuple[str, LabelPairs]:
        return (self.name, self.labels)


@dataclass
class MetricsRegistry:
    """Holds every named metric; the single source of reported numbers."""

    _metrics: Dict[Tuple[str, LabelPairs], object] = field(default_factory=dict)
    _kinds: Dict[str, str] = field(default_factory=dict)
    _collectors: List[Callable[[], Iterable[Tuple[str, str, Dict, float]]]] = field(
        default_factory=list
    )

    # -- registration -------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, labels: Dict, factory):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} already registered as {known}")
        self._kinds[name] = kind
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(name, COUNTER, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, GAUGE, labels, Gauge)

    def callback_gauge(self, name: str, fn: Callable[[], float], **labels) -> Gauge:
        gauge = self._get_or_create(name, GAUGE, labels, lambda: Gauge(fn))
        gauge.fn = fn
        return gauge

    def histogram(
        self, name: str, subbuckets_per_octave: int = 128, **labels
    ) -> LogLinearHistogram:
        return self._get_or_create(
            name,
            HISTOGRAM,
            labels,
            lambda: LogLinearHistogram(subbuckets_per_octave),
        )

    def add_collector(
        self, fn: Callable[[], Iterable[Tuple[str, str, Dict, float]]]
    ) -> None:
        """Attach a live sampler: yields (name, kind, labels, value)."""
        self._collectors.append(fn)

    # -- reading ------------------------------------------------------------
    def collect(self) -> List[Sample]:
        """Every current series, deterministically ordered."""
        out: List[Sample] = []
        for (name, labels), metric in self._metrics.items():
            if isinstance(metric, LogLinearHistogram):
                out.append(Sample(name, HISTOGRAM, labels, hist=metric))
            else:
                out.append(Sample(name, self._kinds[name], labels, value=metric.value))
        for collector in self._collectors:
            for name, kind, labels, value in collector():
                out.append(Sample(name, kind, _label_key(labels), value=float(value)))
        out.sort(key=lambda s: s.key)
        return out

    def value(self, name: str, **labels) -> float:
        """Current scalar value of one series (counter or gauge)."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None and not isinstance(metric, LogLinearHistogram):
            return metric.value
        for sample in self.collect():
            if sample.key == key and sample.value is not None:
                return sample.value
        raise KeyError(f"no scalar metric {name!r} with labels {labels}")

    def histogram_series(self, name: str) -> List[Tuple[LabelPairs, LogLinearHistogram]]:
        """All label series of one histogram name, sorted by labels."""
        out = [
            (labels, metric)
            for (metric_name, labels), metric in self._metrics.items()
            if metric_name == name and isinstance(metric, LogLinearHistogram)
        ]
        out.sort(key=lambda pair: pair[0])
        return out
