"""Span tracing keyed on simulated time.

A span brackets one logical operation (``with trace.span("repair",
file=name):``). Spans nest: entering a span while another is open makes
it a child, so a transcode request shows the conversion-group executions
and any degraded reads it triggered underneath it. Time comes from an
injectable clock — the event engine's ``env.now`` in simulations, a
cost-model clock over the IO ledger in the functional DFS — never the
wall clock, so traces stay deterministic.

Every finished span lands in ``tracer.finished`` (bounded) and its
duration is recorded into the registry histogram
``op_latency_seconds{op=<name>}``, which is where the report CLI reads
per-operation p50/p95/p99 from.

The default tracer on every filesystem is :data:`NOOP_TRACER`: one
shared span object, no clock reads, no allocation, no samples — tracing
costs nothing unless explicitly enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.registry import MetricsRegistry

OP_LATENCY_METRIC = "op_latency_seconds"


@dataclass
class Span:
    """One traced operation; usable as a context manager."""

    tracer: "Tracer"
    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    attrs: Dict[str, object] = field(default_factory=dict)
    end: Optional[float] = None
    error: bool = False

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.error = exc_type is not None
        self.tracer._finish(self)
        return False


class Tracer:
    """Records nested spans against an injectable simulated clock."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        max_finished: int = 100_000,
    ):
        self.clock = clock or (lambda: 0.0)
        self.registry = registry
        self.max_finished = max_finished
        self.finished: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 0
        #: op name -> latency histogram, so _finish resolves the
        #: (metric, labels) registry lookup once per op, not per span.
        self._op_hists: dict = {}

    def span(self, name: str, **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start=float(self.clock()),
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = float(self.clock())
        # Close abandoned children too (exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if len(self.finished) < self.max_finished:
            self.finished.append(span)
        else:
            self.dropped += 1
        if self.registry is not None:
            hist = self._op_hists.get(span.name)
            if hist is None:
                hist = self.registry.histogram(OP_LATENCY_METRIC, op=span.name)
                self._op_hists[span.name] = hist
            hist.record(span.duration)

    # -- views ---------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]


class _NoopSpan:
    """Shared do-nothing span; the cost of disabled tracing."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every span is the same inert object."""

    enabled = False
    finished: List[Span] = []
    dropped = 0

    def span(self, name: str, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []


NOOP_TRACER = NoopTracer()
