"""Process-global codec throughput counters.

Every encode/decode in :mod:`repro.codes` (and the wide GF(2^16) code)
records the bytes it processed and the wall seconds it took into
:data:`CODEC_STATS`. The counters are process-global — codecs are
library calls with no observability handle of their own — and an
:class:`~repro.obs.core.Observability` exposes them as registry series
via ``attach_codec()``, so ``python -m repro report`` can show codec
MB/s next to cluster health and the bench harness reads the same cells
it commits to ``BENCH_codec.json``.

Accounting convention: ``encode`` bytes are the data bytes encoded
(``k * chunk_len`` per stripe); ``decode`` bytes are the bytes
reconstructed (``len(erased) * chunk_len``). Wall seconds come from
``time.perf_counter`` — two calls per codec operation, negligible next
to any real chunk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple


@dataclass
class CodecStats:
    """Byte and wall-second odometers per codec operation kind."""

    bytes: Dict[str, float] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)
    ops: Dict[str, float] = field(default_factory=dict)

    def record(self, op: str, nbytes: float, seconds: float) -> None:
        self.bytes[op] = self.bytes.get(op, 0.0) + nbytes
        self.seconds[op] = self.seconds.get(op, 0.0) + seconds
        self.ops[op] = self.ops.get(op, 0.0) + 1

    def rate_mb_s(self, op: str) -> float:
        """Lifetime mean throughput of one op kind, MB/s (0 if unused)."""
        secs = self.seconds.get(op, 0.0)
        if secs <= 0:
            return 0.0
        return self.bytes.get(op, 0.0) / secs / 1e6

    def reset(self) -> None:
        self.bytes.clear()
        self.seconds.clear()
        self.ops.clear()


#: The process-global ledger every codec records into.
CODEC_STATS = CodecStats()


class record_codec:
    """Context manager: time one codec operation into a stats ledger.

    >>> with record_codec("encode", nbytes=6 * 1024):
    ...     pass  # the actual matmul
    """

    __slots__ = ("op", "nbytes", "stats", "_t0")

    def __init__(self, op: str, nbytes: float, stats: CodecStats = CODEC_STATS):
        self.op = op
        self.nbytes = nbytes
        self.stats = stats

    def __enter__(self) -> "record_codec":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.stats.record(self.op, self.nbytes, time.perf_counter() - self._t0)


def codec_samples(
    stats: CodecStats = CODEC_STATS,
) -> Iterable[Tuple[str, str, Dict, float]]:
    """Registry-collector samples over a codec stats ledger."""
    for op in sorted(stats.bytes):
        yield "codec_bytes", "counter", {"op": op}, stats.bytes[op]
        yield "codec_seconds", "counter", {"op": op}, stats.seconds[op]
        yield "codec_ops", "counter", {"op": op}, stats.ops[op]
