"""repro.obs — the cluster observability layer.

Spans (:mod:`repro.obs.tracer`), a metrics registry with counters,
gauges and log-linear histograms (:mod:`repro.obs.registry`,
:mod:`repro.obs.histogram`), Prometheus/JSON exporters
(:mod:`repro.obs.exporters`) and the ``python -m repro report`` cluster
health summary (:mod:`repro.obs.report`).

Entry point: pass an :class:`Observability` to a DFS —

    obs = Observability()
    fs = MorphFS(obs=obs)
    ...
    print(to_prometheus(obs.registry))

The default everywhere is :data:`NOOP_OBS`; tracing and registry work
cost nothing unless a caller opts in.
"""

from repro.obs.core import (
    NOOP_OBS,
    CostModelClock,
    NoopObservability,
    Observability,
)
from repro.obs.exporters import (
    from_json,
    parse_prometheus,
    round_trip_ok,
    to_json,
    to_prometheus,
)
from repro.obs.histogram import LogLinearHistogram, exact_percentile
from repro.obs.registry import Counter, Gauge, MetricsRegistry, Sample
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "NOOP_OBS",
    "NOOP_TRACER",
    "CostModelClock",
    "Counter",
    "Gauge",
    "LogLinearHistogram",
    "MetricsRegistry",
    "NoopObservability",
    "NoopTracer",
    "Observability",
    "Sample",
    "Span",
    "Tracer",
    "exact_percentile",
    "from_json",
    "parse_prometheus",
    "round_trip_ok",
    "to_json",
    "to_prometheus",
]
