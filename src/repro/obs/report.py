"""The ``python -m repro report`` cluster health summary.

Drives a small MorphFS cluster through a failure burst with
observability enabled — hybrid ingest, reads, a native transcode, two
node failures with degraded reads, scheduler-driven repairs, a corrupted
chunk swept up by a scrub — then renders what the registry and tracer
saw: per-operation latency percentiles, a per-node IO hot-spot table and
the maintenance-class breakdown.

``--selftest`` runs the same scenario and checks the invariants CI cares
about: the exporters round-trip, every instrumented operation produced
latency samples, and the capacity ledger agrees with the datanode disks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.core import Observability
from repro.obs.exporters import round_trip_ok, to_json, to_prometheus
from repro.obs.tracer import OP_LATENCY_METRIC

KB = 1024

#: operations the failure-burst scenario is expected to exercise
EXPECTED_OPS = (
    "ingest",
    "read",
    "degraded_read",
    "repair",
    "transcode",
    "scrub",
)


def run_failure_burst_demo(
    seed: int = 0,
    n_files: int = 6,
    file_kb: int = 96,
    chunk_kb: int = 4,
    n_failures: int = 2,
    namenode=None,
):
    """A deterministic failure-burst run on an instrumented MorphFS.

    The control plane defaults to a sharded, journaled namenode so the
    report shows the metadata plane the paper's cluster would run with;
    pass ``namenode=Namenode()`` for the bare in-memory one.
    """
    from repro.core.schemes import CodeKind, ECScheme, HybridScheme
    from repro.dfs import MorphFS, ShardedNamenode
    from repro.dfs.integrity import corrupt_chunk
    from repro.sched.tasks import ChunkRepairTask, ScrubTask

    if namenode is None:
        namenode = ShardedNamenode.journaled(n_shards=4, compact_every=256)
    cc69 = ECScheme(CodeKind.CC, 6, 9)
    cc1215 = ECScheme(CodeKind.CC, 12, 15)
    obs = Observability()
    # Snapshot the process-global codec ledger so the report reflects
    # only this scenario's encode/decode work.
    from repro.obs.codec import CODEC_STATS

    CODEC_STATS.reset()
    obs.attach_codec()
    fs = MorphFS(
        chunk_size=chunk_kb * KB, future_widths=[6, 12], seed=seed, obs=obs,
        namenode=namenode,
    )
    rng = np.random.default_rng(seed)

    # Phase 1 — ingest + foreground reads.
    datasets: Dict[str, np.ndarray] = {}
    for i in range(n_files):
        name = f"f{i:02d}"
        data = rng.integers(0, 256, file_kb * KB, dtype=np.uint8)
        fs.write_file(name, data, HybridScheme(1, cc69))
        datasets[name] = data
    for name in datasets:
        fs.read_file(name, 0, 16 * KB)

    # Phase 2 — one file ages through its lifetime (native transcode).
    fs.transcode("f00", cc69)
    fs.transcode("f00", cc1215)

    # Phase 3 — the failure burst: kill nodes, take the degraded reads.
    chunk_homes = {
        c.node_id
        for meta in fs.namenode.files.values()
        for c in meta.all_chunks()
    }
    victims = sorted(chunk_homes)[:n_failures]
    for victim in victims:
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
    for name in datasets:
        fs.read_file(name, 0, 16 * KB)

    # Phase 4 — repairs drain through the maintenance scheduler.
    from repro.dfs.recovery import RecoveryManager

    for meta, chunk in RecoveryManager(fs).lost_chunks():
        fs.scheduler.submit(ChunkRepairTask(meta, chunk))
    fs.scheduler.run_until_drained()

    # Phase 5 — silent corruption caught by the scrub sweep.
    meta = fs.namenode.lookup("f01")
    corrupt_chunk(fs, meta.stripes[0].data[0])
    fs.scheduler.submit(ScrubTask())
    fs.scheduler.run_until_drained()

    # Everything must still read back intact.
    for name, data in datasets.items():
        assert np.array_equal(fs.read_file(name), data), f"{name} corrupted"
    return fs


# -- rendering ---------------------------------------------------------------

def _fmt_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  " + "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  " + "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  " + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return lines


def _op_latency_rows(registry) -> List[List[str]]:
    rows = []
    for labels, hist in registry.histogram_series(OP_LATENCY_METRIC):
        op = dict(labels).get("op", "?")
        if not hist.count:
            continue
        rows.append(
            [
                op,
                str(hist.count),
                f"{hist.percentile(50) * 1e3:.2f}",
                f"{hist.percentile(95) * 1e3:.2f}",
                f"{hist.percentile(99) * 1e3:.2f}",
                f"{hist.max * 1e3:.2f}",
            ]
        )
    rows.sort(key=lambda r: r[0])
    return rows


def _node_rows(registry, top: int = 10) -> List[List[str]]:
    per_node: Dict[str, Dict[str, float]] = {}
    for sample in registry.collect():
        if not sample.name.startswith("dfs_node_") or sample.value is None:
            continue
        node = dict(sample.labels).get("node", "?")
        per_node.setdefault(node, {})[sample.name] = sample.value
    ranked: List[Tuple[float, str, Dict[str, float]]] = []
    for node, series in per_node.items():
        total = sum(series.values())
        ranked.append((total, node, series))
    ranked.sort(key=lambda t: (-t[0], t[1]))
    rows = []
    for total, node, series in ranked[:top]:
        rows.append(
            [
                node,
                f"{series.get('dfs_node_disk_read_bytes', 0.0) / KB:.0f}",
                f"{series.get('dfs_node_disk_write_bytes', 0.0) / KB:.0f}",
                f"{series.get('dfs_node_net_in_bytes', 0.0) / KB:.0f}",
                f"{series.get('dfs_node_net_out_bytes', 0.0) / KB:.0f}",
                f"{total / KB:.0f}",
            ]
        )
    return rows


def _maintenance_rows(registry) -> List[List[str]]:
    per_class: Dict[str, Dict[str, float]] = {}
    for sample in registry.collect():
        if not sample.name.startswith("dfs_maintenance_") or sample.value is None:
            continue
        klass = dict(sample.labels).get("klass", "?")
        per_class.setdefault(klass, {})[sample.name] = sample.value
    rows = []
    for klass in sorted(per_class):
        s = per_class[klass]
        rows.append(
            [
                klass,
                f"{s.get('dfs_maintenance_tasks_completed', 0.0):.0f}",
                f"{s.get('dfs_maintenance_tasks_failed', 0.0):.0f}",
                f"{s.get('dfs_maintenance_tasks_dead_lettered', 0.0):.0f}",
                f"{s.get('dfs_maintenance_disk_bytes', 0.0) / KB:.0f}",
                f"{s.get('dfs_maintenance_net_bytes', 0.0) / KB:.0f}",
            ]
        )
    return rows


def _codec_rows(registry) -> List[List[str]]:
    per_op: Dict[str, Dict[str, float]] = {}
    for sample in registry.collect():
        if not sample.name.startswith("codec_") or sample.value is None:
            continue
        op = dict(sample.labels).get("op", "?")
        per_op.setdefault(op, {})[sample.name] = sample.value
    rows = []
    for op in sorted(per_op):
        s = per_op[op]
        secs = s.get("codec_seconds", 0.0)
        mb = s.get("codec_bytes", 0.0) / 1e6
        rows.append(
            [
                op,
                f"{s.get('codec_ops', 0.0):.0f}",
                f"{mb:.1f}",
                f"{mb / secs:.0f}" if secs > 0 else "-",
            ]
        )
    return rows


def _metadata_rows(fs) -> List[List[str]]:
    stats_fn = getattr(fs.namenode, "metadata_stats", None)
    if stats_fn is None:
        return []
    stats = stats_fn()
    per_shard = stats.pop("shards", None)

    def row(label: str, s: dict) -> List[str]:
        cells = [label, f"{s['files']}", f"{s['chunks']}",
                 f"{s['atq'] + s['utm']}"]
        if "journal_records" in s:
            cells += [
                f"{s['journal_records']}",
                f"{s['journal_bytes'] / KB:.1f}",
                f"{s.get('journal_since_snapshot', s['journal_records'])}",
                f"{s['replayed']}",
            ]
        else:
            cells += ["-"] * 4
        return cells

    rows = [row(f"shard{i}", s) for i, s in enumerate(per_shard or [])]
    rows.append(row("total", stats))
    return rows


def _kernel_cache_rows(stats: Dict[str, int]) -> List[List[str]]:
    entries = {
        "plan": stats.get("plans8", 0) + stats.get("plans16", 0),
        "table": stats.get("coeff_tables8", 0) + stats.get("coeff_tables16", 0),
        "pattern": stats.get("pattern_entries", 0),
    }
    resident = {
        "plan": stats.get("plan8_bytes", 0) + stats.get("plan16_bytes", 0),
        "table": stats.get("coeff_table_bytes", 0),
        "pattern": stats.get("pattern_bytes", 0),
    }
    rows = []
    for kind in ("plan", "table", "pattern"):
        hits = stats.get(f"{kind}_hits", 0)
        misses = stats.get(f"{kind}_misses", 0)
        total = hits + misses
        rows.append(
            [
                kind,
                f"{entries[kind]}",
                f"{hits}",
                f"{misses}",
                f"{stats.get(f'{kind}_evictions', 0)}",
                f"{hits / total * 100:.0f}%" if total else "-",
                f"{resident[kind] / 1e6:.1f}",
            ]
        )
    return rows


def render_report(fs) -> str:
    """Cluster health summary from a filesystem's live registry."""
    registry = fs.obs.registry
    lines = ["Cluster health report", "=" * 21, ""]

    lines.append("Operation latency (modeled ms)")
    op_rows = _op_latency_rows(registry)
    lines += _fmt_table(
        ["op", "count", "p50", "p95", "p99", "max"],
        op_rows or [["(none)", "0", "-", "-", "-", "-"]],
    )
    lines.append("")

    lines.append("Per-node IO hot spots (KB, busiest first)")
    lines += _fmt_table(
        ["node", "disk rd", "disk wr", "net in", "net out", "total"],
        _node_rows(registry) or [["(none)"] + ["-"] * 5],
    )
    lines.append("")

    maint_rows = _maintenance_rows(registry)
    if maint_rows:
        lines.append("Maintenance by task class")
        lines += _fmt_table(
            ["class", "done", "failed", "dead", "disk KB", "net KB"], maint_rows
        )
        lines.append("")

    meta_rows = _metadata_rows(fs)
    if meta_rows:
        lines.append("Metadata plane (namenode)")
        lines += _fmt_table(
            ["shard", "files", "chunks", "queued",
             "jrnl recs", "jrnl KB", "since snap", "replayed"],
            meta_rows,
        )
        lines.append("")

    codec_rows = _codec_rows(registry)
    if codec_rows:
        lines.append("Codec throughput (wall clock, process-wide)")
        lines += _fmt_table(
            ["op", "ops", "MB", "MB/s"], codec_rows
        )
        lines.append("")

    from repro.gf.kernels import cache_stats

    kernel_stats = cache_stats()
    lines.append("GF kernel caches (process-wide)")
    lines += _fmt_table(
        ["cache", "entries", "hits", "misses", "evict", "hit%", "MB"],
        _kernel_cache_rows(kernel_stats),
    )
    lines.append(
        f"Kernel tables resident: {kernel_stats['resident_bytes'] / 1e6:.1f} MB "
        f"across {kernel_stats['pattern_caches']} pattern caches"
    )
    lines.append("")

    cap = registry.value("dfs_capacity_bytes")
    lines.append(
        "Cluster totals: "
        f"disk read {registry.value('dfs_disk_read_bytes') / KB:.0f} KB, "
        f"disk write {registry.value('dfs_disk_write_bytes') / KB:.0f} KB, "
        f"net {registry.value('dfs_net_bytes') / KB:.0f} KB, "
        f"cpu {registry.value('dfs_cpu_seconds'):.3f} s, "
        f"capacity {cap / KB:.0f} KB"
    )
    try:
        hedged = registry.value("dfs_hedged_reads_total")
    except KeyError:
        hedged = 0.0
    if hedged:
        lines.append(
            f"Hedged reads: {hedged:.0f} served from an alternative source "
            "(slow-disk avoidance)"
        )
    spans = fs.obs.tracer.finished
    lines.append(f"Spans recorded: {len(spans)} (dropped {fs.obs.tracer.dropped})")
    return "\n".join(lines)


# -- entry points -------------------------------------------------------------

def report_command(
    seed: int = 0, fmt: str = "table", selftest: bool = False
) -> int:
    """Implements ``python -m repro report [--selftest] [--format ...]``."""
    if selftest:
        return run_selftest(seed=seed)
    fs = run_failure_burst_demo(seed=seed)
    if fmt == "prometheus":
        print(to_prometheus(fs.obs.registry))
    elif fmt == "json":
        print(to_json(fs.obs.registry))
    else:
        print(render_report(fs))
    return 0


def run_selftest(seed: int = 0) -> int:
    """Run the demo scenario and verify the observability invariants."""
    failures: List[str] = []
    fs = run_failure_burst_demo(seed=seed)
    registry = fs.obs.registry

    ops_seen = {
        dict(labels).get("op")
        for labels, hist in registry.histogram_series(OP_LATENCY_METRIC)
        if hist.count
    }
    missing = [op for op in EXPECTED_OPS if op not in ops_seen]
    if missing:
        failures.append(f"operations without latency samples: {missing}")

    if not round_trip_ok(registry):
        failures.append("Prometheus/JSON exporters do not round-trip")

    for name in ("dfs_disk_read_bytes", "dfs_capacity_bytes", "dfs_net_bytes"):
        try:
            registry.value(name)
        except KeyError:
            failures.append(f"missing registry series {name}")

    codec_ops = {
        dict(sample.labels).get("op")
        for sample in registry.collect()
        if sample.name == "codec_bytes"
    }
    if "encode" not in codec_ops:
        failures.append("codec ledger recorded no encode samples")

    report = render_report(fs)
    if "Operation latency" not in report or "hot spots" not in report:
        failures.append("report rendering incomplete")
    if "Metadata plane" not in report:
        failures.append("report lacks the metadata-plane table")

    # Metadata plane: the default control plane is sharded + journaled;
    # its counters must be in the registry and its journals must replay
    # back to the live state.
    stats = fs.namenode.metadata_stats()
    shards = stats.get("shards")
    if shards is None:
        failures.append("demo namenode is not sharded")
    else:
        if sum(s["files"] for s in shards) != stats["files"]:
            failures.append("per-shard file counts do not sum to the total")
        if stats.get("journal_records", 0) <= 0:
            failures.append("namenode journals recorded nothing")
        try:
            if registry.value("dfs_meta_files", shard="all") != stats["files"]:
                failures.append("dfs_meta_files gauge disagrees with stats")
        except KeyError:
            failures.append("missing registry series dfs_meta_files")
        from repro.dfs.journal import JournaledNamenode, state_digest

        for si, shard in enumerate(fs.namenode.shards):
            recovered = JournaledNamenode.recover(shard.journal)
            if state_digest(recovered) != state_digest(shard):
                failures.append(f"shard {si} journal replay diverges from live")

    if not fs.obs.tracer.finished:
        failures.append("tracer recorded no spans")

    if failures:
        print("report selftest FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(
        f"report selftest OK: {len(fs.obs.tracer.finished)} spans, "
        f"{len(ops_seen)} instrumented operations, exporters round-trip"
    )
    return 0


def parse_args(argv: Optional[List[str]] = None) -> Tuple[int, str, bool]:
    """Tiny arg parser for the report subcommand."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Cluster health report from a simulated failure burst.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("table", "prometheus", "json"),
        default="table",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the scenario and verify observability invariants",
    )
    args = parser.parse_args(argv)
    return args.seed, args.fmt, args.selftest


def main(argv: Optional[List[str]] = None) -> int:
    seed, fmt, selftest = parse_args(argv)
    try:
        return report_command(seed=seed, fmt=fmt, selftest=selftest)
    except BrokenPipeError:
        # Output piped into head/grep that exited early — not an error.
        return 0
