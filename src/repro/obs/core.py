"""The observability handle a filesystem (or simulation) carries.

``Observability`` bundles one :class:`MetricsRegistry` and one
:class:`Tracer` behind a single object the instrumented code can hold.
The default on every DFS is :data:`NOOP_OBS` — a disabled singleton
whose ``span()`` returns a shared inert context manager — so
instrumentation costs nothing unless a caller opts in by passing a real
``Observability`` instance.

``attach_filesystem`` turns the registry into a *view* over the DFS's
:class:`~repro.cluster.metrics.IOMetrics` ledger: cluster-wide and
per-node IO counters, maintenance-class accounting and capacity are
exposed as collector-backed series that read the live counters at
collect time. Benchmarks that report through the registry therefore
cannot drift from the telemetry — both read the same cells.

When no explicit clock is given the filesystem attach installs a
:class:`CostModelClock`: modeled elapsed seconds derived from the IO
ledger and the hardware bandwidth models, monotone because the counters
only grow. Span durations then measure the modeled cost of exactly the
bytes and CPU the operation moved.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.obs.registry import COUNTER, GAUGE, MetricsRegistry
from repro.obs.tracer import NOOP_TRACER, Span, Tracer

MB = 1024 * 1024

#: (attribute on NodeMetrics aggregate, exported metric name)
_CLUSTER_SERIES = (
    ("disk_bytes_read", "dfs_disk_read_bytes"),
    ("disk_bytes_written", "dfs_disk_write_bytes"),
    ("disk_bytes_deleted", "dfs_disk_deleted_bytes"),
    ("net_bytes_total", "dfs_net_bytes"),
    ("cpu_seconds_total", "dfs_cpu_seconds"),
)

_NODE_SERIES = (
    ("disk_bytes_read", "dfs_node_disk_read_bytes"),
    ("disk_bytes_written", "dfs_node_disk_write_bytes"),
    ("net_bytes_in", "dfs_node_net_in_bytes"),
    ("net_bytes_out", "dfs_node_net_out_bytes"),
)

_MAINTENANCE_SERIES = (
    ("disk_bytes", "dfs_maintenance_disk_bytes"),
    ("net_bytes", "dfs_maintenance_net_bytes"),
    ("cpu_seconds", "dfs_maintenance_cpu_seconds"),
    ("tasks_completed", "dfs_maintenance_tasks_completed"),
    ("tasks_failed", "dfs_maintenance_tasks_failed"),
    ("tasks_dead_lettered", "dfs_maintenance_tasks_dead_lettered"),
)


class CostModelClock:
    """Modeled cluster-seconds read off the IO ledger.

    Elapsed time is the serial cost of everything metered so far: disk
    bytes at disk bandwidth, network bytes at NIC bandwidth, plus CPU
    seconds. It is not wall time and not a critical-path estimate — it
    is a deterministic, strictly non-decreasing cost odometer, which is
    exactly what span durations need: the delta across an operation is
    the modeled cost of what that operation moved.
    """

    def __init__(
        self,
        metrics,
        disk_mb_s: float = 120.0,
        net_mb_s: float = 4500.0,
    ):
        self.metrics = metrics
        self.disk_bytes_per_s = disk_mb_s * MB
        self.net_bytes_per_s = net_mb_s * MB

    def __call__(self) -> float:
        m = self.metrics
        return (
            m.disk_bytes_total / self.disk_bytes_per_s
            + m.net_bytes_total / self.net_bytes_per_s
            + m.cpu_seconds_total
        )


class Observability:
    """Enabled observability: a live registry plus a recording tracer."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = Tracer(clock, self.registry)
        self._clock_explicit = clock is not None

    # -- tracing -------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.tracer.clock = clock
        self._clock_explicit = True

    # -- wiring --------------------------------------------------------------
    def attach_filesystem(self, fs) -> "Observability":
        """Expose a DFS's IOMetrics ledger through the registry."""
        if not self._clock_explicit:
            disk_mb_s = getattr(
                getattr(fs.cluster.spec, "disk", None), "bandwidth_mb_s", 120.0
            )
            net_mb_s = getattr(
                getattr(fs.cluster.spec, "network", None), "bandwidth_mb_s", 4500.0
            )
            self.set_clock(CostModelClock(fs.metrics, disk_mb_s, net_mb_s))
        self.attach_metrics(fs.metrics, capacity_fn=fs.capacity_used)
        if hasattr(fs.namenode, "metadata_stats"):
            self.attach_namenode(fs.namenode)
        return self

    def attach_namenode(self, namenode) -> "Observability":
        """Metadata-plane gauges: namespace size plus, when the control
        plane is journaled/sharded, journal depth and recovery counters.
        Per-shard series carry a ``shard`` label; the totals row uses
        ``shard="all"`` so single-node and sharded reports line up."""

        def collect() -> Iterable[Tuple[str, str, dict, float]]:
            stats = namenode.metadata_stats()
            per_shard = stats.pop("shards", None)
            rows = [("all", stats)]
            if per_shard is not None:
                rows += [(str(i), s) for i, s in enumerate(per_shard)]
            for shard, s in rows:
                labels = {"shard": shard}
                yield "dfs_meta_files", GAUGE, labels, s["files"]
                yield "dfs_meta_chunks", GAUGE, labels, s["chunks"]
                yield "dfs_meta_transcode_queued", GAUGE, labels, s["atq"]
                yield "dfs_meta_transcode_inflight", GAUGE, labels, s["utm"]
                if "journal_records" in s:
                    yield "dfs_journal_records", GAUGE, labels, s["journal_records"]
                    yield "dfs_journal_bytes", GAUGE, labels, s["journal_bytes"]
                    yield (
                        "dfs_journal_snapshots", GAUGE, labels,
                        s["journal_snapshots"],
                    )
                    yield "dfs_journal_replayed", GAUGE, labels, s["replayed"]

        self.registry.add_collector(collect)
        return self

    def attach_metrics(self, metrics, capacity_fn=None) -> "Observability":
        """Collector-backed series over an IOMetrics ledger."""
        capacity = capacity_fn or metrics.capacity_used

        def collect() -> Iterable[Tuple[str, str, dict, float]]:
            for attr, name in _CLUSTER_SERIES:
                yield name, COUNTER, {}, getattr(metrics, attr)
            yield "dfs_capacity_bytes", GAUGE, {}, capacity()
            for node_id in sorted(metrics.nodes):
                node = metrics.nodes[node_id]
                for attr, name in _NODE_SERIES:
                    yield name, COUNTER, {"node": node_id}, getattr(node, attr)
            for klass in sorted(metrics.maintenance):
                m = metrics.maintenance[klass]
                for attr, name in _MAINTENANCE_SERIES:
                    yield name, COUNTER, {"klass": klass}, getattr(m, attr)

        self.registry.add_collector(collect)
        return self

    def attach_codec(self, stats=None) -> "Observability":
        """Expose the codec throughput ledger as registry series.

        Defaults to the process-global
        :data:`~repro.obs.codec.CODEC_STATS` that every
        encode/decode in :mod:`repro.codes` records into.
        """
        from repro.obs.codec import CODEC_STATS, codec_samples

        ledger = stats if stats is not None else CODEC_STATS
        self.registry.add_collector(lambda: codec_samples(ledger))
        return self


class NoopObservability:
    """Disabled observability: shared, inert, allocation-free."""

    enabled = False
    registry = None
    tracer = NOOP_TRACER

    def span(self, name: str, **attrs):
        return NOOP_TRACER.span(name)

    def attach_filesystem(self, fs) -> "NoopObservability":
        return self

    def attach_metrics(self, metrics, capacity_fn=None) -> "NoopObservability":
        return self

    def attach_namenode(self, namenode) -> "NoopObservability":
        return self

    def attach_codec(self, stats=None) -> "NoopObservability":
        return self


NOOP_OBS = NoopObservability()
