"""Log-linear histograms: percentiles without storing every sample.

The cluster runs millions of operations; keeping every latency sample to
sort at report time does not scale. A :class:`LogLinearHistogram` keeps
one counter per logarithmic bucket (HdrHistogram / DDSketch style): the
value axis is split into octaves and each octave into
``subbuckets_per_octave`` linear sub-buckets, so every recorded value
lands in a bucket whose width is a fixed *relative* fraction of the
value. With the default 128 sub-buckets per octave the bucket width is
``2**(1/128) - 1`` (~0.54%), so any reported percentile is within ~0.3%
of the exact answer — far inside the 1% tolerance the benchmarks hold
the old sorted-list math to.

``exact_percentile`` is the sorted-list linear-interpolation formula the
scheduler simulation used inline; it lives here so tests can compare the
two paths and callers with small sample sets can stay exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def exact_percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile over a full sample list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class LogLinearHistogram:
    """Fixed-relative-error histogram over positive floats.

    Values ``<= 0`` land in a dedicated zero bucket (reported as 0.0).
    Recorded min/max are kept exactly, so the tail percentiles clamp to
    real observations instead of bucket edges.
    """

    def __init__(self, subbuckets_per_octave: int = 128):
        if subbuckets_per_octave < 1:
            raise ValueError("subbuckets_per_octave must be >= 1")
        self.subbuckets = subbuckets_per_octave
        self._counts: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ----------------------------------------------------------
    def _index(self, value: float) -> int:
        return math.floor(math.log2(value) * self.subbuckets)

    def record(self, value: float, count: int = 1) -> None:
        value = float(value)
        self.count += count
        self.sum += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value <= 0.0:
            self.zero_count += count
            return
        idx = self._index(value)
        self._counts[idx] = self._counts.get(idx, 0) + count

    def record_many(self, values: Iterable[float]) -> None:
        """Bulk record: one call for a whole batch of samples.

        Equivalent to ``record(v)`` per value but resolves the instance
        attributes once, so hot loops can buffer samples in a plain list
        and flush them here at a fraction of the per-call cost.
        """
        counts = self._counts
        get = counts.get
        floor = math.floor
        log2 = math.log2
        sub = self.subbuckets
        n = 0
        total = 0.0
        lo = self.min
        hi = self.max
        zeros = 0
        for value in values:
            value = float(value)
            n += 1
            total += value
            if value < lo:
                lo = value
            if value > hi:
                hi = value
            if value <= 0.0:
                zeros += 1
                continue
            idx = floor(log2(value) * sub)
            counts[idx] = get(idx, 0) + 1
        self.count += n
        self.sum += total
        self.min = lo
        self.max = hi
        self.zero_count += zeros

    def merge(self, other: "LogLinearHistogram") -> None:
        if other.subbuckets != self.subbuckets:
            raise ValueError("cannot merge histograms with different resolutions")
        for idx, c in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + c
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # -- reading ------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_value(self, idx: int) -> float:
        # Geometric midpoint of [2^(i/S), 2^((i+1)/S)).
        return 2.0 ** ((idx + 0.5) / self.subbuckets)

    def _value_at(self, i: int) -> float:
        """Approximate value of the ``i``-th order statistic."""
        if i <= 0:
            return 0.0 if self.zero_count else self.min
        if i >= self.count - 1:
            return self.max
        if i < self.zero_count:
            return 0.0
        seen = self.zero_count
        for idx in sorted(self._counts):
            seen += self._counts[idx]
            if i < seen:
                return min(max(self._bucket_value(idx), self.min), self.max)
        return self.max

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), within the bucket error.

        Mirrors :func:`exact_percentile`: the rank interpolates linearly
        between adjacent order statistics, each approximated by its
        bucket's geometric midpoint (exact at the min/max endpoints), so
        the two paths agree to the bucket's relative width.
        """
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * (self.count - 1)
        lo = int(rank)
        frac = rank - lo
        v_lo = self._value_at(lo)
        if frac == 0.0:
            return v_lo
        v_hi = self._value_at(min(lo + 1, self.count - 1))
        return v_lo * (1.0 - frac) + v_hi * frac

    def percentiles(self, ps: Iterable[float]) -> List[float]:
        return [self.percentile(p) for p in ps]

    def bucket_bounds(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) per non-empty bucket, ascending."""
        out: List[Tuple[float, int]] = []
        if self.zero_count:
            out.append((0.0, self.zero_count))
        for idx in sorted(self._counts):
            out.append((2.0 ** ((idx + 1) / self.subbuckets), self._counts[idx]))
        return out

    # -- (de)serialisation for the exporters --------------------------------
    def to_dict(self) -> Dict:
        return {
            "subbuckets": self.subbuckets,
            "counts": {str(k): v for k, v in sorted(self._counts.items())},
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LogLinearHistogram":
        hist = cls(subbuckets_per_octave=int(payload["subbuckets"]))
        hist._counts = {int(k): int(v) for k, v in payload["counts"].items()}
        hist.zero_count = int(payload["zero_count"])
        hist.count = int(payload["count"])
        hist.sum = float(payload["sum"])
        hist.min = math.inf if payload["min"] is None else float(payload["min"])
        hist.max = -math.inf if payload["max"] is None else float(payload["max"])
        return hist

    def __repr__(self) -> str:
        if not self.count:
            return "<LogLinearHistogram empty>"
        return (
            f"<LogLinearHistogram n={self.count} p50={self.percentile(50):.3g} "
            f"p99={self.percentile(99):.3g}>"
        )
