"""Exporters: Prometheus text format and JSON, with round-trip loading.

``to_prometheus`` renders the registry in the Prometheus exposition
format (counters/gauges as single samples, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``). ``to_json``
serialises the full registry — including the histogram bucket maps, so
percentiles survive — and ``from_json`` reconstructs a registry from it.
``parse_prometheus`` reads scalar samples back out of the text format.
The selftest in ``python -m repro report --selftest`` round-trips a live
registry through both formats and asserts the values agree.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.obs.histogram import LogLinearHistogram
from repro.obs.registry import COUNTER, GAUGE, HISTOGRAM, MetricsRegistry


def _fmt_labels(labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(value: float) -> str:
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format."""
    lines = []
    seen_type: Dict[str, bool] = {}
    for sample in registry.collect():
        if sample.name not in seen_type:
            seen_type[sample.name] = True
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == HISTOGRAM:
            hist = sample.hist
            cumulative = 0
            for upper, count in hist.bucket_bounds():
                cumulative += count
                le = 'le="%s"' % _fmt_value(upper)
                labelled = _fmt_labels(sample.labels, le)
                lines.append(f"{sample.name}_bucket{labelled} {cumulative}")
            inf_labels = _fmt_labels(sample.labels, 'le="+Inf"')
            lines.append(f"{sample.name}_bucket{inf_labels} {hist.count}")
            lines.append(
                f"{sample.name}_sum{_fmt_labels(sample.labels)} {_fmt_value(hist.sum)}"
            )
            lines.append(
                f"{sample.name}_count{_fmt_labels(sample.labels)} {hist.count}"
            )
        else:
            lines.append(
                f"{sample.name}{_fmt_labels(sample.labels)} {_fmt_value(sample.value)}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Scalar samples from the text format: ``name{labels}`` -> value."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        out[series] = float(value)
    return out


def to_json(registry: MetricsRegistry) -> str:
    """Serialise the registry, histograms included, as stable JSON."""
    metrics = []
    for sample in registry.collect():
        entry = {
            "name": sample.name,
            "kind": sample.kind,
            "labels": dict(sample.labels),
        }
        if sample.kind == HISTOGRAM:
            entry["histogram"] = sample.hist.to_dict()
        else:
            entry["value"] = sample.value
        metrics.append(entry)
    return json.dumps({"metrics": metrics}, indent=2, sort_keys=True)


def from_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from ``to_json`` output.

    Collector-backed gauges come back as plain gauges frozen at their
    exported value — the export is a snapshot, not a live view.
    """
    payload = json.loads(text)
    registry = MetricsRegistry()
    for entry in payload["metrics"]:
        name, labels = entry["name"], entry["labels"]
        if entry["kind"] == HISTOGRAM:
            hist = LogLinearHistogram.from_dict(entry["histogram"])
            key = registry.histogram(
                name, subbuckets_per_octave=hist.subbuckets, **labels
            )
            key.merge(hist)
        elif entry["kind"] == COUNTER:
            registry.counter(name, **labels).inc(entry["value"])
        elif entry["kind"] == GAUGE:
            registry.gauge(name, **labels).set(entry["value"])
        else:
            raise ValueError(f"unknown metric kind {entry['kind']!r}")
    return registry


def _scalar_samples(registry: MetricsRegistry) -> Dict:
    out = {}
    for sample in registry.collect():
        if sample.kind == HISTOGRAM:
            out[(sample.name, sample.labels, "count")] = sample.hist.count
            out[(sample.name, sample.labels, "sum")] = sample.hist.sum
            for p in (50.0, 95.0, 99.0):
                out[(sample.name, sample.labels, p)] = sample.hist.percentile(p)
        else:
            out[(sample.name, sample.labels, "value")] = sample.value
    return out


def round_trip_ok(registry: MetricsRegistry) -> bool:
    """True when JSON and Prometheus exports carry identical values."""
    reloaded = from_json(to_json(registry))
    if _scalar_samples(registry) != _scalar_samples(reloaded):
        return False
    return parse_prometheus(to_prometheus(registry)) == parse_prometheus(
        to_prometheus(reloaded)
    )
