"""Typed maintenance work items.

Every kind of background work the cluster performs — chunk
reconstruction, transcode conversion groups, transcode finalization,
free (metadata-only) redundancy transitions, integrity scrubs — is a
:class:`MaintenanceTask`. Tasks carry a class (which fixes their base
priority band), an optional deadline (which can boost transcodes), a
conservative worst-case cost estimate (what budget admission checks),
and an ``execute`` hook the scheduler calls.

``estimated_cost`` is deliberately an *upper bound*: admission charges
the full estimate against every node the task might touch, so the
per-node per-tick byte cap is a hard invariant, not a soft target (the
actual bytes, metered by the DFS, are always <= the estimate).

The module never imports ``repro.dfs`` at module level — the scheduler
is also used standalone by the event-driven interference simulation
(`repro.sched.simulate`), where tasks are :class:`CallbackTask`s with
pre-computed per-node charges and there is no filesystem at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional


class TaskClass(enum.Enum):
    """Priority class of a maintenance task (paper §6.1/§6.2 work types)."""

    #: reconstruction of a chunk whose stripe/block has no spare redundancy
    #: left — one more loss means data loss
    CRITICAL_REPAIR = "critical_repair"
    #: ordinary reconstruction of a chunk homed on a dead node
    REPAIR = "repair"
    #: transcode work: conversion groups, finalize, free transitions
    TRANSCODE = "transcode"
    #: background integrity scrubbing
    SCRUB = "scrub"

    def __str__(self) -> str:  # metrics ledger keys read nicely
        return self.value


class TaskState(enum.Enum):
    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"  # retrying with backoff
    DEAD = "dead"  # exhausted retries; in the dead-letter list


@dataclass(frozen=True)
class TaskCost:
    """Bytes a task may move, for budget admission and accounting."""

    disk_bytes: float = 0.0
    net_bytes: float = 0.0

    def __add__(self, other: "TaskCost") -> "TaskCost":
        return TaskCost(
            self.disk_bytes + other.disk_bytes, self.net_bytes + other.net_bytes
        )


class MaintenanceTask:
    """Base class: scheduling state + the hooks subclasses implement."""

    def __init__(
        self,
        klass: TaskClass,
        deadline: Optional[float] = None,
        metadata_only: bool = False,
        max_attempts: Optional[int] = None,
    ):
        self.klass = klass
        #: absolute DFS-clock time by which this task should have run
        #: (used to boost transcodes whose lifetime transition is near)
        self.deadline = deadline
        #: metadata-only tasks move no bytes and bypass budget admission
        self.metadata_only = metadata_only
        #: per-task override of the policy's retry cap (None = policy's)
        self.max_attempts = max_attempts
        # -- scheduler-managed state --
        self.task_id: int = -1
        self.state: TaskState = TaskState.PENDING
        self.attempts: int = 0
        self.submitted_tick: int = -1
        self.not_before_tick: int = 0
        self.last_error: Optional[BaseException] = None
        self.result: Any = None

    # -- hooks ---------------------------------------------------------------
    def estimated_cost(self, fs) -> TaskCost:
        """Worst-case bytes this task may move (aggregate, upper bound)."""
        return TaskCost()

    def node_charges(self, fs) -> Optional[Dict[str, TaskCost]]:
        """Exact per-node cost when known ahead of time, else None.

        When None the scheduler admits conservatively (the aggregate
        estimate must fit every node it might touch) and charges actual
        per-node bytes from the metrics deltas after execution.
        """
        return None

    def execute(self, fs) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.klass}#{self.task_id}"

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.describe()} state={self.state.value} "
            f"attempts={self.attempts}>"
        )


class ChunkRepairTask(MaintenanceTask):
    """Rebuild one chunk lost to a node failure (§4.4, §6.1)."""

    def __init__(self, meta, chunk, klass: TaskClass = TaskClass.REPAIR, **kw):
        super().__init__(klass, **kw)
        self.meta = meta
        self.chunk = chunk

    def estimated_cost(self, fs) -> TaskCost:
        # Worst case is a full-stripe decode: k source reads, one write,
        # k transfers to the rebuilding node.
        k = max((s.k for s in self.meta.stripes), default=1)
        size = float(self.chunk.size or self.meta.chunk_size)
        return TaskCost(disk_bytes=(k + 1) * size, net_bytes=k * size)

    def execute(self, fs):
        datanode = fs.datanodes.get(self.chunk.node_id)
        partition = getattr(fs, "partition", None)
        if (
            datanode is not None
            and datanode.is_alive
            and datanode.has_chunk(self.chunk.chunk_id)
            and (partition is None or partition.reachable(self.chunk.node_id, "namenode"))
        ):
            return "skipped"  # node returned (or another task repaired it)
        if fs.namenode.files.get(self.meta.name) is not self.meta:
            return "skipped"  # file deleted or replaced since submission
        if self.chunk not in self.meta.all_chunks():
            return "skipped"  # chunk dropped by a finalize since submission
        from repro.dfs.recovery import RecoveryManager

        RecoveryManager(fs).recover_chunk(self.meta, self.chunk)
        return "repaired"

    def describe(self) -> str:
        return f"repair {self.meta.name}:{self.chunk.chunk_id}"


class ConversionGroupTask(MaintenanceTask):
    """Execute one queued transcode conversion group (ATQ work, §6.2)."""

    def __init__(self, group, deadline: Optional[float] = None, **kw):
        super().__init__(TaskClass.TRANSCODE, deadline=deadline, **kw)
        self.group = group

    def estimated_cost(self, fs) -> TaskCost:
        meta = None
        if fs is not None:
            meta = fs.namenode.files.get(self.group.file_name)
        if meta is None:
            return TaskCost()
        chunk = float(meta.chunk_size)
        stripes = [
            meta.stripes[i]
            for i in self.group.initial_stripe_indices
            if i < len(meta.stripes)
        ]
        total_chunks = sum(s.n for s in stripes)
        total_data = sum(s.k for s in stripes)
        target = self.group.target_scheme
        ec = target.ec if hasattr(target, "ec") else target
        # For LRC-family schemes n - k == local_groups + r_global already.
        parities = max(getattr(ec, "n", 0) - getattr(ec, "k", 0), 1)
        writes = self.group.n_final_stripes * parities + total_data  # + relocations
        return TaskCost(
            disk_bytes=(total_chunks + writes) * chunk,
            net_bytes=(total_chunks * max(parities, 1) + total_data) * chunk,
        )

    def execute(self, fs):
        fs.transcoder.execute_group(self.group)
        return "converted"

    def describe(self) -> str:
        return f"transcode {self.group.file_name}/g{self.group.group_index}"


class TranscodeFinalizeTask(MaintenanceTask):
    """Attempt the atomic metadata switch for a transcoding file.

    Metadata-only: the switch is one reference assignment plus garbage
    deletion of the old parities, so it must never wait on IO budgets.
    """

    def __init__(self, name: str, **kw):
        kw.setdefault("metadata_only", True)
        super().__init__(TaskClass.TRANSCODE, **kw)
        self.name = name

    def execute(self, fs):
        old = fs.namenode.try_finalize(self.name)
        if old is None:
            return "pending"
        for chunk in old:
            fs.datanodes[chunk.node_id].delete(chunk.chunk_id)
            fs.checksums.forget(chunk.chunk_id)
        return "finalized"

    def describe(self) -> str:
        return f"finalize {self.name}"


class FreeTransitionTask(MaintenanceTask):
    """Hybrid -> EC transition (§4.5): drop replicas, flip metadata.

    Zero IO when every stripe already has its parities — in that case the
    task is metadata-only and completes within one scheduler tick however
    exhausted the budgets are. When some stripes still need sealing
    (``parity_mode="none"`` or an open appended tail) the caller marks it
    budgeted instead.
    """

    def __init__(self, name: str, target, metadata_only: bool = True, **kw):
        super().__init__(
            TaskClass.TRANSCODE, metadata_only=metadata_only, **kw
        )
        self.name = name
        self.target = target

    def estimated_cost(self, fs) -> TaskCost:
        if self.metadata_only or fs is None:
            return TaskCost()
        meta = fs.namenode.files.get(self.name)
        if meta is None:
            return TaskCost()
        # Sealing reads each unsealed stripe's data and writes r parities.
        ec = self.target.ec if hasattr(self.target, "ec") else self.target
        r = max(getattr(ec, "n", 0) - getattr(ec, "k", 0), 1)
        chunk = float(meta.chunk_size)
        unsealed = [s for s in meta.stripes if len(s.parities) < r]
        bytes_moved = sum((s.k + r) * chunk for s in unsealed)
        return TaskCost(disk_bytes=bytes_moved, net_bytes=bytes_moved)

    def execute(self, fs):
        meta = fs.namenode.files.get(self.name)
        if meta is None:
            return "skipped"
        fs._free_transition(meta, self.target)
        return "transitioned"

    def describe(self) -> str:
        return f"free-transition {self.name}"


class ScrubTask(MaintenanceTask):
    """One integrity sweep over every on-disk chunk (§6.1)."""

    def __init__(self, **kw):
        super().__init__(TaskClass.SCRUB, **kw)

    def estimated_cost(self, fs) -> TaskCost:
        if fs is None:
            return TaskCost()
        at_rest = float(fs.capacity_used())
        # Scanning reads everything once; repairs of what it finds can
        # roughly double that in the worst case.
        return TaskCost(disk_bytes=2.0 * at_rest, net_bytes=at_rest)

    def execute(self, fs):
        from repro.dfs.integrity import Scrubber

        return Scrubber(fs).scan_and_repair()

    def describe(self) -> str:
        return "scrub"


class CallbackTask(MaintenanceTask):
    """A task defined by a plain callable — for simulations and tests.

    ``charges`` (node id -> :class:`TaskCost`) makes admission exact:
    each listed node must have budget for its own share, and exactly that
    share is charged on execution.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        klass: TaskClass = TaskClass.REPAIR,
        cost: TaskCost = TaskCost(),
        charges: Optional[Dict[str, TaskCost]] = None,
        label: str = "",
        **kw,
    ):
        super().__init__(klass, **kw)
        import inspect

        self.fn = fn
        self.cost = cost
        self.charges = charges
        self.label = label or getattr(fn, "__name__", "callback")
        try:
            self._wants_fs = len(inspect.signature(fn).parameters) >= 1
        except (TypeError, ValueError):
            self._wants_fs = False

    def estimated_cost(self, fs) -> TaskCost:
        return self.cost

    def node_charges(self, fs) -> Optional[Dict[str, TaskCost]]:
        return self.charges

    def execute(self, fs):
        return self.fn(fs) if self._wants_fs else self.fn()

    def describe(self) -> str:
        return self.label
