"""Per-node maintenance byte budgets: token buckets refilled per tick.

Each node gets a disk bucket and a network bucket. Admission is
conservative: a task runs only when every node it might touch has budget
for the task's full worst-case bytes, which makes "no node moves more
maintenance bytes in a tick than its budget" a hard invariant rather
than a soft target (when exact per-node charges are known — the
simulation path — admission checks exactly those instead).

One escape hatch preserves liveness: a task whose estimate exceeds the
bucket *capacity* could otherwise never run. Such a task is admitted
when the bucket is full, overdrafting it — the debt is paid down by
subsequent refills before anything else is admitted on that node. With
budgets sized at or above the largest single task (the sane
configuration) the overdraft never triggers and the per-tick cap is
exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.sched.tasks import TaskCost


class TokenBucket:
    """Byte tokens refilled per tick, capped at ``capacity``."""

    def __init__(self, rate_per_tick: float, capacity: Optional[float] = None):
        if rate_per_tick <= 0:
            raise ValueError("rate_per_tick must be positive")
        self.rate = float(rate_per_tick)
        self.capacity = float(capacity if capacity is not None else rate_per_tick)
        self.tokens = self.capacity  # start full: first tick gets a budget

    def refill(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.rate)

    def can(self, nbytes: float) -> bool:
        if nbytes <= 0:
            return True
        if nbytes <= self.tokens:
            return True
        # Liveness overdraft: a task bigger than the bucket itself is
        # admitted only against a full bucket.
        return nbytes > self.capacity and self.tokens >= self.capacity

    def take(self, nbytes: float) -> None:
        """Charge bytes (may overdraft below zero; refills pay it down)."""
        self.tokens -= nbytes


class NodeBudget:
    """One node's disk and network buckets (either may be unlimited)."""

    def __init__(
        self,
        disk: Optional[TokenBucket] = None,
        net: Optional[TokenBucket] = None,
    ):
        self.disk = disk
        self.net = net

    def refill(self) -> None:
        if self.disk:
            self.disk.refill()
        if self.net:
            self.net.refill()

    def can(self, cost: TaskCost) -> bool:
        if self.disk and not self.disk.can(cost.disk_bytes):
            return False
        if self.net and not self.net.can(cost.net_bytes):
            return False
        return True

    def charge(self, disk_bytes: float = 0.0, net_bytes: float = 0.0) -> None:
        if self.disk and disk_bytes:
            self.disk.take(disk_bytes)
        if self.net and net_bytes:
            self.net.take(net_bytes)


class BudgetManager:
    """Lazily materialised per-node budgets from one policy's rates."""

    def __init__(
        self,
        disk_bytes_per_tick: Optional[float] = None,
        net_bytes_per_tick: Optional[float] = None,
        burst_ticks: float = 1.0,
    ):
        self.disk_rate = disk_bytes_per_tick
        self.net_rate = net_bytes_per_tick
        self.burst_ticks = max(1.0, float(burst_ticks))
        self._nodes: Dict[str, NodeBudget] = {}

    @property
    def unlimited(self) -> bool:
        return self.disk_rate is None and self.net_rate is None

    def node(self, node_id: str) -> NodeBudget:
        if node_id not in self._nodes:
            self._nodes[node_id] = NodeBudget(
                disk=(
                    TokenBucket(self.disk_rate, self.disk_rate * self.burst_ticks)
                    if self.disk_rate
                    else None
                ),
                net=(
                    TokenBucket(self.net_rate, self.net_rate * self.burst_ticks)
                    if self.net_rate
                    else None
                ),
            )
        return self._nodes[node_id]

    def refill_all(self) -> None:
        for budget in self._nodes.values():
            budget.refill()

    def admits(self, charges: Dict[str, TaskCost]) -> bool:
        """True when every listed node can absorb its listed cost."""
        if self.unlimited:
            return True
        return all(self.node(n).can(c) for n, c in charges.items())

    def admits_everywhere(self, node_ids: Iterable[str], cost: TaskCost) -> bool:
        """Conservative admission: the full cost must fit on every node
        the task might touch (used when per-node charges are unknown)."""
        if self.unlimited:
            return True
        return all(self.node(n).can(cost) for n in node_ids)

    def charge(self, node_id: str, disk_bytes: float = 0.0, net_bytes: float = 0.0) -> None:
        if self.unlimited:
            return
        self.node(node_id).charge(disk_bytes, net_bytes)
