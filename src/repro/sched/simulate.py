"""Failure-burst interference simulation: budgets vs. free-for-all.

An event-driven model of the one scenario budgets exist for: a node
failure burst drops a backlog of chunk repairs onto a cluster that is
also serving foreground reads. Every repair is a
:class:`~repro.sched.tasks.CallbackTask` with exact per-node charges, a
ticker process drives :meth:`MaintenanceScheduler.run_tick` at the
heartbeat cadence, and admitted repairs occupy the same per-node disk
resources the foreground reads use.

Run twice — once with per-node byte budgets, once unthrottled — and the
difference shows up exactly where the paper says it should: foreground
tail latency during the burst, with the repair backlog still draining to
zero in both runs.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.engine import Environment, Resource
from repro.obs import LogLinearHistogram, MetricsRegistry, exact_percentile
from repro.sched.policies import SchedulerPolicy
from repro.sched.scheduler import MaintenanceScheduler
from repro.sched.tasks import CallbackTask, TaskClass, TaskCost


@dataclass
class SimConfig:
    """Shape of the failure-burst experiment."""

    n_nodes: int = 12
    disk_bw_bytes_per_s: float = 100e6
    #: foreground read stream: size and mean exponential interarrival
    read_bytes: float = 4e6
    read_interarrival_s: float = 0.04
    #: the burst: how many chunk repairs land, and when
    n_repairs: int = 96
    burst_at_s: float = 2.0
    #: each repair reads one chunk from ``repair_sources`` nodes and
    #: writes one chunk on a target node
    chunk_bytes: float = 8e6
    repair_sources: int = 4
    #: scheduler cadence and the per-node disk budget under test
    tick_s: float = 0.5
    budget_disk_bytes_per_tick: float = 16e6
    duration_s: float = 30.0
    seed: int = 0
    #: per-node disk service-time multipliers (node id -> factor); nodes
    #: not listed run at 1.0. A straggler disk has a factor >> 1.
    node_disk_multipliers: Dict[str, float] = field(default_factory=dict)
    #: hedged foreground reads: when a read's primary lands on a node
    #: with multiplier > 1 and hasn't completed after this many seconds,
    #: a backup read races it on a fast node (None = hedging off). The
    #: loser still occupies its disk — hedges consume real resources.
    hedge_after_s: Optional[float] = None

    def disk_multiplier(self, node_id: str) -> float:
        return self.node_disk_multipliers.get(node_id, 1.0)


@dataclass
class SimResult:
    """One run's outcome (see :func:`run_failure_burst`)."""

    label: str
    budget_disk_bytes_per_tick: Optional[float]
    foreground_latencies: List[float]
    repairs_completed: int
    n_repairs: int
    ticks: int
    #: backup reads launched by the hedging policy
    hedged_reads: int = 0
    #: admitted maintenance disk bytes per (node, tick) — the budget
    #: invariant is ``max(values) <= budget``
    node_tick_disk_bytes: Dict[Tuple[str, int], float] = field(default_factory=dict)
    #: foreground latencies again, as the shared log-linear histogram all
    #: reported percentiles come from (±0.3% at 128 subbuckets/octave)
    latency_hist: Optional[LogLinearHistogram] = None
    #: the run's metrics registry (latency + per-disk wait histograms)
    registry: Optional[MetricsRegistry] = None

    @property
    def max_node_tick_disk_bytes(self) -> float:
        return max(self.node_tick_disk_bytes.values(), default=0.0)

    def latency_percentile(self, p: float) -> float:
        if self.latency_hist is not None:
            return self.latency_hist.percentile(p)
        return percentile(self.foreground_latencies, p)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        lat = self.foreground_latencies
        return sum(lat) / len(lat) if lat else 0.0


def percentile(values: List[float], p: float) -> float:
    """Exact percentile over raw samples (kept for spot checks against
    the histogram numbers; delegates to the shared implementation)."""
    return exact_percentile(values, p)


def run_failure_burst(
    budget_disk_bytes_per_tick: Optional[float],
    config: Optional[SimConfig] = None,
    label: str = "",
) -> SimResult:
    """Simulate the burst under one budget setting (None = unthrottled)."""
    cfg = config or SimConfig()
    rng = random.Random(cfg.seed)
    env = Environment()
    registry = MetricsRegistry()
    latency_hist = registry.histogram("foreground_read_latency_seconds")
    node_ids = [f"sim{i:02d}" for i in range(cfg.n_nodes)]
    disks = {n: Resource(env, name=n, registry=registry) for n in node_ids}

    policy = SchedulerPolicy(disk_bytes_per_tick=budget_disk_bytes_per_tick)
    sched = MaintenanceScheduler(fs=None, policy=policy)

    latencies: List[float] = []
    repairs_done = {"n": 0}
    hedges = {"n": 0}
    node_tick_bytes: Dict[Tuple[str, int], float] = defaultdict(float)

    def service_s(node_id: str, nbytes: float) -> float:
        return nbytes / cfg.disk_bw_bytes_per_s * cfg.disk_multiplier(node_id)

    def occupy_disk(node_id: str, nbytes: float, on_done=None):
        req = disks[node_id].request()
        yield req
        yield env.timeout(service_s(node_id, nbytes))
        disks[node_id].release(req)
        if on_done is not None:
            on_done()

    def one_read():
        start = env.now
        primary = rng.choice(node_ids)
        state = {"done": False}

        def leg(node_id):
            req = disks[node_id].request()
            yield req
            yield env.timeout(service_s(node_id, cfg.read_bytes))
            disks[node_id].release(req)
            if not state["done"]:
                state["done"] = True
                latencies.append(env.now - start)

        env.process(leg(primary))
        if cfg.hedge_after_s is not None and cfg.disk_multiplier(primary) > 1.0:
            # Straggler primary: give it a grace period, then race a
            # backup replica read on a fast node. First leg to finish
            # records the latency; the loser still drains its disk.
            yield env.timeout(cfg.hedge_after_s)
            if not state["done"]:
                fast = [n for n in node_ids if cfg.disk_multiplier(n) <= 1.0]
                backup = rng.choice(fast or node_ids)
                hedges["n"] += 1
                env.process(leg(backup))

    def foreground():
        while True:
            yield env.timeout(rng.expovariate(1.0 / cfg.read_interarrival_s))
            env.process(one_read())

    def make_repair(index: int) -> CallbackTask:
        involved = rng.sample(node_ids, cfg.repair_sources + 1)
        sources, target = involved[:-1], involved[-1]
        charges = {
            s: TaskCost(disk_bytes=cfg.chunk_bytes, net_bytes=cfg.chunk_bytes)
            for s in sources
        }
        charges[target] = TaskCost(
            disk_bytes=cfg.chunk_bytes,
            net_bytes=cfg.repair_sources * cfg.chunk_bytes,
        )
        pending = {"n": len(involved)}

        def one_leg_done():
            pending["n"] -= 1
            if pending["n"] == 0:
                repairs_done["n"] += 1

        def fire():
            # Admitted: account the charges against this tick and put the
            # IO on the same disks the foreground reads contend for.
            for node_id, cost in charges.items():
                node_tick_bytes[(node_id, sched.tick_count)] += cost.disk_bytes
            for node_id in involved:
                env.process(occupy_disk(node_id, cfg.chunk_bytes, one_leg_done))

        return CallbackTask(
            fire, klass=TaskClass.REPAIR, charges=charges, label=f"repair-{index}"
        )

    def burst():
        yield env.timeout(cfg.burst_at_s)
        for i in range(cfg.n_repairs):
            sched.submit(make_repair(i))

    def ticker():
        while env.now < cfg.duration_s:
            yield env.timeout(cfg.tick_s)
            sched.run_tick()

    env.process(foreground())
    env.process(burst())
    env.process(ticker())
    env.run(until=cfg.duration_s)
    # One bulk flush instead of a histogram call per foreground read —
    # the event loop stays free of per-sample metric bookkeeping.
    latency_hist.record_many(latencies)

    return SimResult(
        label=label
        or ("throttled" if budget_disk_bytes_per_tick else "unthrottled"),
        budget_disk_bytes_per_tick=budget_disk_bytes_per_tick,
        foreground_latencies=latencies,
        repairs_completed=repairs_done["n"],
        n_repairs=cfg.n_repairs,
        ticks=sched.tick_count,
        hedged_reads=hedges["n"],
        node_tick_disk_bytes=dict(node_tick_bytes),
        latency_hist=latency_hist,
        registry=registry,
    )


def compare_budgets(config: Optional[SimConfig] = None) -> Dict[str, SimResult]:
    """The headline experiment: same burst, with and without budgets."""
    cfg = config or SimConfig()
    return {
        "unthrottled": run_failure_burst(None, cfg, label="unthrottled"),
        "throttled": run_failure_burst(
            cfg.budget_disk_bytes_per_tick, cfg, label="throttled"
        ),
    }


def format_report(results: Dict[str, SimResult], cfg: Optional[SimConfig] = None) -> str:
    """Human-readable comparison table for the CLI."""
    cfg = cfg or SimConfig()
    lines = [
        "Failure-burst maintenance simulation",
        f"  nodes={cfg.n_nodes}  repairs={cfg.n_repairs} x {cfg.chunk_bytes / 1e6:.0f} MB"
        f"  burst at t={cfg.burst_at_s:.1f}s  tick={cfg.tick_s}s",
        f"  budget under test: {cfg.budget_disk_bytes_per_tick / 1e6:.0f} MB/node/tick",
        "",
        f"  {'run':<12} {'fg reads':>8} {'p50 (ms)':>9} {'p99 (ms)':>9}"
        f" {'repairs':>8} {'max node-tick MB':>17}",
    ]
    for name in ("unthrottled", "throttled"):
        r = results[name]
        lines.append(
            f"  {r.label:<12} {len(r.foreground_latencies):>8}"
            f" {r.latency_percentile(50) * 1e3:>9.1f}"
            f" {r.p99_latency_s * 1e3:>9.1f}"
            f" {r.repairs_completed:>3}/{r.n_repairs:<3}"
            f" {r.max_node_tick_disk_bytes / 1e6:>17.1f}"
        )
    un, th = results["unthrottled"], results["throttled"]
    if th.p99_latency_s > 0:
        lines.append(
            f"\n  foreground p99 improvement: "
            f"{un.p99_latency_s / th.p99_latency_s:.1f}x "
            f"({un.p99_latency_s * 1e3:.0f} ms -> {th.p99_latency_s * 1e3:.0f} ms)"
        )
    return "\n".join(lines)
