"""Priority queue with aging, backoff holds, and a dead-letter list.

Effective priorities change every tick (aging, deadline boosts crossing
their window), so the queue re-ranks its ready set per tick instead of
maintaining a static heap — maintenance backlogs are thousands of tasks
at most, and one sort per heartbeat is cheap next to the IO the tasks
themselves move.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sched.policies import SchedulerPolicy, effective_priority
from repro.sched.tasks import MaintenanceTask, TaskState


class PriorityTaskQueue:
    """Pending maintenance tasks + the dead-letter list."""

    def __init__(self):
        self._pending: List[MaintenanceTask] = []
        self._seq = 0
        #: tasks that exhausted their retries, oldest first — surfaced,
        #: never silently dropped
        self.dead_letter: List[MaintenanceTask] = []

    # -- intake ---------------------------------------------------------------
    def push(self, task: MaintenanceTask) -> MaintenanceTask:
        if task.task_id < 0:
            task.task_id = self._seq
            self._seq += 1
        self._pending.append(task)
        return task

    # -- views ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def backlog(self) -> List[MaintenanceTask]:
        return list(self._pending)

    def find(
        self, predicate: Callable[[MaintenanceTask], bool]
    ) -> Optional[MaintenanceTask]:
        for task in self._pending:
            if predicate(task):
                return task
        return None

    def ready(
        self, policy: SchedulerPolicy, tick: int, clock: float
    ) -> List[MaintenanceTask]:
        """Runnable tasks this tick, most urgent first.

        Tasks inside a backoff hold (``not_before_tick`` in the future)
        are excluded. FIFO within equal effective priority.
        """
        runnable = [t for t in self._pending if t.not_before_tick <= tick]
        runnable.sort(
            key=lambda t: (effective_priority(t, policy, tick, clock), t.task_id)
        )
        return runnable

    # -- transitions ----------------------------------------------------------
    def remove(self, task: MaintenanceTask) -> None:
        self._pending.remove(task)

    def bury(self, task: MaintenanceTask) -> None:
        """Move a task to the dead-letter list (retries exhausted)."""
        task.state = TaskState.DEAD
        if task in self._pending:
            self._pending.remove(task)
        self.dead_letter.append(task)
