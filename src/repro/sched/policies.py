"""Scheduling policy: priority bands, deadline boosts, aging, retries.

The priority order the paper's regime implies (and "XORing Elephants"
measured the cost of getting wrong):

    critical repair  >  repair  >  deadline-boosted transcode
                     >  transcode  >  scrub

*Critical repair* is reconstruction of a chunk whose stripe or replica
block has no spare redundancy left — one more loss is data loss.
Transcodes whose lifetime-policy transition date is inside the boost
window move up a band (still below repair: durability first). Waiting
tasks age toward higher priority so a steady repair stream can never
starve scrubs forever, but aging floors just below the critical band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sched.tasks import MaintenanceTask, TaskClass


def _default_bands() -> Dict[TaskClass, float]:
    return {
        TaskClass.CRITICAL_REPAIR: 0.0,
        TaskClass.REPAIR: 10.0,
        TaskClass.TRANSCODE: 20.0,
        TaskClass.SCRUB: 30.0,
    }


@dataclass
class SchedulerPolicy:
    """All the knobs of the maintenance control plane in one place."""

    #: base priority per task class; smaller runs first
    priority_bands: Dict[TaskClass, float] = field(default_factory=_default_bands)
    #: priority a deadline-boosted transcode is promoted to (between the
    #: repair and transcode bands)
    boosted_transcode_priority: float = 15.0
    #: a transcode is boosted when ``clock >= deadline - window``
    deadline_boost_window_s: float = 600.0
    #: how much a waiting task's effective priority improves per tick
    aging_per_tick: float = 0.5
    #: aging floor — aged tasks never outrank the critical-repair band
    aged_priority_floor: float = 1.0

    # -- retries -------------------------------------------------------------
    #: attempts before a task is dead-lettered (task-level override wins)
    max_attempts: int = 4
    #: backoff after the i-th failure is ``base * factor**(i-1)`` ticks
    backoff_base_ticks: int = 1
    backoff_factor: float = 2.0
    max_backoff_ticks: int = 64

    # -- budgets -------------------------------------------------------------
    #: per-node maintenance byte budgets refilled each tick; None = unlimited
    disk_bytes_per_tick: Optional[float] = None
    net_bytes_per_tick: Optional[float] = None
    #: bucket capacity in ticks of refill — >1 lets idle ticks bank budget
    budget_burst_ticks: float = 1.0
    #: when the highest-priority IO task does not fit the budget, stop
    #: admitting lower-priority IO work this tick so the bucket can fill
    #: for it (prevents small tasks starving a large urgent one);
    #: metadata-only tasks still run
    block_on_head: bool = True
    #: cap on tasks executed per tick (None = unbounded)
    max_tasks_per_tick: Optional[int] = None

    def attempts_allowed(self, task: MaintenanceTask) -> int:
        return task.max_attempts if task.max_attempts is not None else self.max_attempts


def effective_priority(
    task: MaintenanceTask, policy: SchedulerPolicy, tick: int, clock: float
) -> float:
    """The priority a task competes with *now* (smaller = sooner)."""
    base = policy.priority_bands.get(task.klass, 20.0)
    if (
        task.klass is TaskClass.TRANSCODE
        and task.deadline is not None
        and clock >= task.deadline - policy.deadline_boost_window_s
    ):
        base = min(base, policy.boosted_transcode_priority)
    if base <= policy.aged_priority_floor:
        return base
    waited = max(0, tick - task.submitted_tick)
    return max(policy.aged_priority_floor, base - policy.aging_per_tick * waited)


def backoff_ticks(policy: SchedulerPolicy, attempts: int) -> int:
    """Ticks to wait before retrying after the ``attempts``-th failure."""
    raw = policy.backoff_base_ticks * policy.backoff_factor ** max(0, attempts - 1)
    return int(min(policy.max_backoff_ticks, max(1, raw)))


def classify_repair(fs, meta, chunk) -> TaskClass:
    """CRITICAL_REPAIR when the chunk's redundancy group is at its
    tolerance limit (losing one more source loses data), else REPAIR.

    Heuristic, erring toward REPAIR: replica ranges covering an EC span
    count as redundancy, so a hybrid file's EC chunk is never critical
    while its replicas survive.
    """

    def available(c) -> bool:
        dn = fs.datanodes.get(c.node_id)
        return dn is not None and dn.is_alive and dn.has_chunk(c.chunk_id)

    def replicas_cover(first: int, count: int) -> bool:
        """Every data-chunk index in [first, first+count) has a live copy."""
        for idx in range(first, first + count):
            hit = False
            for block in meta.replica_blocks:
                if block.first_chunk <= idx < block.first_chunk + block.n_chunks:
                    hit = any(available(c) for c in block.copies)
                    if hit:
                        break
            if not hit:
                return False
        return count > 0

    passed = 0
    for stripe in meta.stripes:
        chunks = stripe.all_chunks()
        if chunk in chunks:
            unavailable = sum(1 for c in chunks if not available(c))
            if unavailable < stripe.n - stripe.k:
                return TaskClass.REPAIR
            # Stripe at (or past) its tolerance limit: replicas covering
            # the stripe's data span are the remaining safety margin.
            return (
                TaskClass.REPAIR
                if replicas_cover(passed, stripe.k)
                else TaskClass.CRITICAL_REPAIR
            )
        passed += stripe.k

    # Replica chunk: other copies of its block, else a decodable stripe.
    for block in meta.replica_blocks:
        if chunk in block.copies:
            others = [c for c in block.copies if c is not chunk]
            if any(available(c) for c in others):
                return TaskClass.REPAIR
            span_start = 0
            for stripe in meta.stripes:
                span_end = span_start + stripe.k
                overlaps = (
                    block.first_chunk < span_end
                    and block.first_chunk + block.n_chunks > span_start
                )
                if overlaps:
                    chunks = stripe.all_chunks()
                    unavailable = sum(1 for c in chunks if not available(c))
                    if unavailable > stripe.n - stripe.k:
                        return TaskClass.CRITICAL_REPAIR
                span_start = span_end
            if not meta.stripes:
                return TaskClass.CRITICAL_REPAIR
            return TaskClass.REPAIR
    return TaskClass.REPAIR
