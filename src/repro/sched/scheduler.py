"""The maintenance scheduler: one tick = one bounded slice of work.

Each tick the scheduler refills the per-node budgets, ranks the ready
queue by effective priority (bands + deadline boosts + aging), and
admits tasks in order:

* metadata-only tasks always run — a zero-IO hybrid -> EC transition or
  a transcode finalize is never delayed by budget exhaustion;
* IO tasks run only when their worst-case bytes fit the budgets; when
  the most urgent IO task does not fit, lower-priority IO work is held
  back too (``block_on_head``) so the bucket can fill for it;
* a task that raises is retried with exponential backoff, and after
  ``max_attempts`` failures lands in the dead-letter list — never
  silently dropped.

Actual bytes and CPU are metered from the filesystem's
:class:`~repro.cluster.metrics.IOMetrics` deltas around each execution
and recorded per task class into the same metrics object, so benchmarks
can read "repair moved X bytes, scrub moved Y" directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import NOOP_OBS
from repro.sched.budget import BudgetManager
from repro.sched.policies import SchedulerPolicy, backoff_ticks
from repro.sched.queue import PriorityTaskQueue
from repro.sched.tasks import MaintenanceTask, TaskClass, TaskState


@dataclass
class SchedulerTickReport:
    """What one scheduler tick admitted, finished, deferred and buried."""

    tick: int
    executed: List[MaintenanceTask] = field(default_factory=list)
    failed: List[MaintenanceTask] = field(default_factory=list)
    dead_lettered: List[MaintenanceTask] = field(default_factory=list)
    deferred_budget: int = 0
    deferred_backoff: int = 0
    disk_bytes: float = 0.0
    net_bytes: float = 0.0

    def completed(self, klass: Optional[TaskClass] = None) -> List[MaintenanceTask]:
        if klass is None:
            return list(self.executed)
        return [t for t in self.executed if t.klass is klass]


class MaintenanceScheduler:
    """Owns the queue, the budgets, and the execution loop."""

    def __init__(self, fs=None, policy: Optional[SchedulerPolicy] = None):
        self.fs = fs
        self.policy = policy or SchedulerPolicy()
        self.queue = PriorityTaskQueue()
        self.budgets = BudgetManager(
            disk_bytes_per_tick=self.policy.disk_bytes_per_tick,
            net_bytes_per_tick=self.policy.net_bytes_per_tick,
            burst_ticks=self.policy.budget_burst_ticks,
        )
        self.tick_count = 0
        #: cached (registry -> metric handle) tuple for run_tick, so the
        #: per-tick accounting skips the (name, labels) registry lookups.
        self._tick_handles = None

    # -- intake ---------------------------------------------------------------
    def submit(self, task: MaintenanceTask) -> MaintenanceTask:
        task.submitted_tick = self.tick_count
        task.not_before_tick = max(task.not_before_tick, self.tick_count)
        return self.queue.push(task)

    # -- views ----------------------------------------------------------------
    @property
    def dead_letter(self) -> List[MaintenanceTask]:
        return self.queue.dead_letter

    def has_pending(self) -> bool:
        return len(self.queue) > 0

    def clock(self) -> float:
        return getattr(self.fs, "clock", float(self.tick_count))

    def _metrics(self):
        return getattr(self.fs, "metrics", None)

    def _obs(self):
        return getattr(self.fs, "obs", None) or NOOP_OBS

    # -- the tick -------------------------------------------------------------
    def run_tick(self) -> SchedulerTickReport:
        obs = self._obs()
        with obs.span("sched_tick", tick=self.tick_count + 1):
            report = self._run_tick_impl()
        if obs.enabled and obs.registry is not None:
            reg = obs.registry
            handles = self._tick_handles
            if handles is None or handles[0] is not reg:
                handles = (
                    reg,
                    reg.counter("sched_ticks_total"),
                    reg.gauge("sched_queue_depth"),
                    reg.counter("sched_tasks_executed_total"),
                    reg.counter("sched_tasks_failed_total"),
                    reg.counter("sched_tasks_dead_lettered_total"),
                    reg.counter("sched_tasks_deferred_budget_total"),
                )
                self._tick_handles = handles
            _, ticks, depth, executed, failed, dead, deferred = handles
            ticks.inc()
            depth.set(len(self.queue))
            if report.executed:
                executed.inc(len(report.executed))
            if report.failed:
                failed.inc(len(report.failed))
            if report.dead_lettered:
                dead.inc(len(report.dead_lettered))
            if report.deferred_budget:
                deferred.inc(report.deferred_budget)
        return report

    def _run_tick_impl(self) -> SchedulerTickReport:
        self.tick_count += 1
        self.budgets.refill_all()
        report = SchedulerTickReport(tick=self.tick_count)
        ready = self.queue.ready(self.policy, self.tick_count, self.clock())
        report.deferred_backoff = len(self.queue) - len(ready)
        head_blocked = False
        executed = 0
        cap = self.policy.max_tasks_per_tick
        for task in ready:
            if cap is not None and executed >= cap:
                break
            if not task.metadata_only:
                if head_blocked:
                    report.deferred_budget += 1
                    continue
                if not self._admit(task):
                    report.deferred_budget += 1
                    if self.policy.block_on_head:
                        head_blocked = True
                    continue
            self.queue.remove(task)
            self._execute(task, report)
            executed += 1
        return report

    def run_until_drained(self, max_ticks: int = 10_000) -> List[SchedulerTickReport]:
        """Tick until the queue empties (backoff holds included)."""
        reports = []
        for _ in range(max_ticks):
            if not self.has_pending():
                break
            reports.append(self.run_tick())
        return reports

    # -- admission ------------------------------------------------------------
    def _admit(self, task: MaintenanceTask) -> bool:
        if self.budgets.unlimited:
            return True
        charges = task.node_charges(self.fs)
        if charges is not None:
            return self.budgets.admits(charges)
        cost = task.estimated_cost(self.fs)
        return self.budgets.admits_everywhere(self._charge_domain(), cost)

    def _charge_domain(self) -> List[str]:
        """Nodes a cost-unattributed task might touch: every live node."""
        if self.fs is None:
            return []
        cluster = getattr(self.fs, "cluster", None)
        if cluster is None:
            return []
        return [n.node_id for n in cluster.alive_nodes()]

    # -- execution ------------------------------------------------------------
    def _snapshot(self) -> Dict[str, Tuple[float, float, float]]:
        metrics = self._metrics()
        if metrics is None:
            return {}
        return {
            node_id: (
                m.disk_bytes_read + m.disk_bytes_written,
                m.net_bytes_in + m.net_bytes_out,
                m.cpu_seconds,
            )
            for node_id, m in metrics.nodes.items()
        }

    def _settle(
        self,
        task: MaintenanceTask,
        before: Dict[str, Tuple[float, float, float]],
        report: SchedulerTickReport,
        completed: bool,
    ) -> None:
        """Charge budgets with what the task actually moved and record
        per-class accounting into the metrics ledger."""
        disk_total = net_total = cpu_total = 0.0
        charges = task.node_charges(self.fs)
        if charges is not None:
            for node_id, cost in charges.items():
                self.budgets.charge(node_id, cost.disk_bytes, cost.net_bytes)
                disk_total += cost.disk_bytes
                net_total += cost.net_bytes
        else:
            metrics = self._metrics()
            if metrics is not None:
                after = self._snapshot()
                for node_id, (disk, net, cpu) in after.items():
                    b_disk, b_net, b_cpu = before.get(node_id, (0.0, 0.0, 0.0))
                    d_disk, d_net = disk - b_disk, net - b_net
                    if d_disk or d_net:
                        self.budgets.charge(node_id, d_disk, d_net)
                    disk_total += d_disk
                    net_total += d_net
                    cpu_total += cpu - b_cpu
        report.disk_bytes += disk_total
        report.net_bytes += net_total
        metrics = self._metrics()
        if metrics is not None and hasattr(metrics, "record_maintenance"):
            metrics.record_maintenance(
                str(task.klass),
                disk_bytes=disk_total,
                net_bytes=net_total,
                cpu_seconds=cpu_total,
                completed=1 if completed else 0,
                failed=0 if completed else 1,
            )

    def _execute(self, task: MaintenanceTask, report: SchedulerTickReport) -> None:
        before = self._snapshot()
        try:
            with self._obs().span("maintenance_task", klass=str(task.klass)):
                task.result = task.execute(self.fs)
        except Exception as exc:  # noqa: BLE001 — any task failure retries
            task.attempts += 1
            task.last_error = exc
            task.state = TaskState.FAILED
            self._settle(task, before, report, completed=False)
            report.failed.append(task)
            if task.attempts >= self.policy.attempts_allowed(task):
                self.queue.bury(task)
                report.dead_lettered.append(task)
                metrics = self._metrics()
                if metrics is not None and hasattr(metrics, "record_maintenance"):
                    metrics.record_maintenance(str(task.klass), dead_lettered=1)
            else:
                task.not_before_tick = self.tick_count + backoff_ticks(
                    self.policy, task.attempts
                )
                self.queue.push(task)
        else:
            task.state = TaskState.DONE
            self._settle(task, before, report, completed=True)
            report.executed.append(task)
