"""`repro.sched` — the maintenance control plane.

A unified background-task scheduler that owns all cluster maintenance
work: chunk reconstruction, transcode conversion groups, and integrity
scrubs become typed :class:`~repro.sched.tasks.MaintenanceTask`s with

* **priorities** — repair of a last-surviving copy outranks ordinary
  repair, which outranks deadline-driven transcodes, which outrank
  scrubs (`repro.sched.policies`);
* **budgets** — per-node disk/network byte token buckets refilled each
  scheduler tick bound how much background IO can be admitted, keeping
  maintenance off foreground tail latencies (`repro.sched.budget`);
* **failure handling** — failed tasks retry with exponential backoff
  and land in a dead-letter list instead of vanishing
  (`repro.sched.queue`);
* **starvation avoidance** — waiting tasks age toward higher priority.

Metadata-only work (the zero-IO hybrid -> EC transition, the atomic
transcode finalize) bypasses budgets entirely: it always completes in
the tick it is admitted, however saturated the IO budgets are.
"""

from repro.sched.budget import BudgetManager, NodeBudget, TokenBucket
from repro.sched.policies import (
    SchedulerPolicy,
    backoff_ticks,
    classify_repair,
    effective_priority,
)
from repro.sched.queue import PriorityTaskQueue
from repro.sched.scheduler import MaintenanceScheduler, SchedulerTickReport
from repro.sched.tasks import (
    CallbackTask,
    ChunkRepairTask,
    ConversionGroupTask,
    FreeTransitionTask,
    MaintenanceTask,
    ScrubTask,
    TaskClass,
    TaskCost,
    TaskState,
    TranscodeFinalizeTask,
)

__all__ = [
    "BudgetManager",
    "CallbackTask",
    "ChunkRepairTask",
    "ConversionGroupTask",
    "FreeTransitionTask",
    "MaintenanceScheduler",
    "MaintenanceTask",
    "NodeBudget",
    "PriorityTaskQueue",
    "SchedulerPolicy",
    "SchedulerTickReport",
    "ScrubTask",
    "TaskClass",
    "TaskCost",
    "TaskState",
    "TokenBucket",
    "TranscodeFinalizeTask",
    "backoff_ticks",
    "classify_repair",
    "effective_priority",
]
