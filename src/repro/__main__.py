"""Command-line entry point: regenerate any experiment from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig01                # one experiment
    python -m repro fig12 fig17 fig18    # several
    python -m repro all                  # everything (takes a while)
    python -m repro report               # cluster health report (obs demo)
    python -m repro report --selftest    # verify observability invariants
    python -m repro bench                # codec perf -> BENCH_codec.json
    python -m repro bench --quick --check  # CI schema smoke, no overwrite
    python -m repro profile              # cProfile the failure-burst sim
    python -m repro scenarios            # adversarial scenario suite
    python -m repro scenarios --quick --check  # CI scenario smoke
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

import numpy as np


def _fig01() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import series_plot

    r = E.fig01_service_week()
    print("Fig 1 — Service A, one week (PB/h):")
    print(series_plot("baseline total", r["baseline_total"]))
    print(series_plot("morph total", r["morph_total"]))
    print(series_plot("baseline transcode", r["baseline_transcode"]))
    print(series_plot("morph transcode", r["morph_transcode"]))
    print(f"total -{r['total_reduction']:.0%}  transcode -{r['transcode_reduction']:.0%}"
          f"  ingest -{r['ingest_reduction']:.0%}  (paper: -42%, -96%, -20%)")


def _fig03() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import cdf_plot

    r = E.fig03_write_baseline()
    print("Fig 3 — 8 MB create latency CDF:")
    print(cdf_plot({name: v["cdf"] for name, v in r.items()}))
    for name, v in r.items():
        print(f"  {name}: p50 {v['p50_ms']:.0f} ms, p90 {v['p90_ms']:.0f} ms, "
              f"tput {v['throughput_mb_s']:.0f} MB/s")


def _fig04() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import series_plot

    r = E.fig04_transitions()
    print("Fig 4 — transitions per hour (millions), four clusters:")
    for i, series in enumerate(r["clusters"]):
        print(series_plot(f"cluster {i}", series))


def _fig05() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import bar_chart

    r = E.fig05_hdd_trend()
    print("Fig 5 — HDD MB/s per TB by model year:")
    rows = list(zip(map(str, r["years"].tolist()), r["measured_mb_s_per_tb"].tolist()))
    rows += [
        (f"{y} (HAMR)", v)
        for y, v in zip(r["speculated_years"].tolist(), r["speculated_mb_s_per_tb"].tolist())
    ]
    print(bar_chart(rows, unit=" MB/s/TB"))
    print(f"fitted decay: {r['fitted_decay']:.1%}/yr (paper: ~8.5%)")


def _fig11() -> None:
    from repro.bench import experiments as E

    micro = E.fig11_micro()
    print(f"Fig 11 micro — disk -{micro['disk_reduction']:.0%}, "
          f"network -{micro['network_reduction']:.0%}, amplification "
          f"{micro['baseline_amplification']:.1f}x -> {micro['morph_amplification']:.1f}x")
    macro = E.fig11_macro()
    print(f"Fig 11 macro — disk -{macro['disk_reduction']:.0%}, capacity overhead "
          f"-{macro['capacity_overhead_reduction']:.0%}, speedup {macro['speedup']:.2f}x")


def _fig12() -> None:
    from repro.bench import experiments as E

    r = E.fig12_production()
    print("Fig 12 — month-long services:")
    for name, v in r.items():
        print(f"  {name}: total -{v['total_reduction']:.0%}, "
              f"transcode -{v['transcode_reduction']:.0%}, "
              f"ingest -{v['ingest_reduction']:.0%}")


def _fig13() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import cdf_plot, histogram

    lat = E.fig13_write_latency()
    print("Fig 13a — 8 MB write latency CDF:")
    print(cdf_plot({name: v["cdf"] for name, v in lat.items()}))
    tput = E.fig13_write_tput()
    for t, by_scheme in tput.items():
        row = "  ".join(f"{k}={v:.0f}" for k, v in by_scheme.items())
        print(f"Fig 13b (t={t}): {row} MB/s")
    persist = E.fig13_parity_persist()
    print(f"Fig 13c — parity persist: {persist['fraction_under_500ms']:.0%} < 500 ms")
    print(histogram(np.asarray(persist["samples"]) * 1e3, bins=12))


def _fig14() -> None:
    from repro.bench import experiments as E

    lat = E.fig14_read_latency()
    for t, by_scheme in lat.items():
        row = "  ".join(f"{k}={v['p90_ms']:.0f}" for k, v in by_scheme.items())
        print(f"Fig 14 (t={t}) p90 ms: {row}")
    deg = E.fig14_degraded()
    row = "  ".join(f"{k}={v['p90_ms']:.0f}" for k, v in deg.items())
    print(f"Fig 14d (10% down) p90 ms: {row}")
    tput = E.fig14_read_tput()
    for t, v in tput.items():
        print(f"Fig 14e (t={t}): replica {v['replica_mb_s']:.0f} -> "
              f"striped {v['striped_mb_s']:.0f} MB/s ({v['improvement']:+.0%})")


def _fig15() -> None:
    from repro.bench import experiments as E

    r = E.fig15_transcode()
    print("Fig 15 — transcode latency (p50 ms):")
    for label, res in r.items():
        print(f"  {label}: read RS {res['rs']['read_p50_ms']:.0f} / CC "
              f"{res['cc']['read_p50_ms']:.0f}; compute RS "
              f"{res['rs']['compute_p50_ms']:.0f} / CC {res['cc']['compute_p50_ms']:.0f}")


def _fig17() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import bar_chart

    r = E.fig17_regimes()
    print("Fig 17 — disk IO to transcode 1 GB (MB):")
    for row in r["rows"]:
        print(f"  {row['case']}: RRW {row['rrw_mb']:.0f}, RS {row['rs_mb']:.0f}, "
              f"CC {row['cc_mb']:.0f} ({row['cc_vs_rs']:.0%} less than RS)")


def _fig18() -> None:
    from repro.bench import experiments as E
    from repro.bench.ascii_plots import sparkline

    r = E.fig18_general_sweep()
    same = [row["cc_norm"] for row in r["same_r"]]
    plus = [row["cc_norm"] for row in r["plus_one"]]
    print("Fig 18 — normalised IO, 6-of-9 -> k in 7..30:")
    print(f"  same r : |{sparkline(same, 48)}| mean saving {r['same_r_mean_saving']:.0%}")
    print(f"  +1 par : |{sparkline(plus, 48)}| mean saving {r['plus_one_mean_saving']:.0%}")


def _appendix_b() -> None:
    from repro.bench import experiments as E

    r = E.appendix_b()
    print(f"Appendix B — P(degraded read): analytic {r['analytic']:.2e}, "
          f"monte-carlo {r['monte_carlo']:.2e} (paper: ~9e-5)")


def _maintenance() -> None:
    from repro.sched.simulate import SimConfig, compare_budgets, format_report

    cfg = SimConfig()
    print(format_report(compare_budgets(cfg), cfg))


COMMANDS: Dict[str, Callable[[], None]] = {
    "maintenance": _maintenance,
    "fig01": _fig01,
    "fig03": _fig03,
    "fig04": _fig04,
    "fig05": _fig05,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig17": _fig17,
    "fig18": _fig18,
    "appendix_b": _appendix_b,
}


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("experiments:", " ".join(COMMANDS), "report")
        return 0
    if args[0] == "report":
        # Subcommands that take their own flags.
        from repro.obs.report import main as report_main

        return report_main(args[1:])
    if args[0] == "bench":
        from repro.bench.micro import main as bench_main

        return bench_main(args[1:])
    if args[0] == "profile":
        from repro.bench.profile import main as profile_main

        return profile_main(args[1:])
    if args[0] == "scenarios":
        from repro.cluster.scenarios import main as scenarios_main

        return scenarios_main(args[1:])
    targets = list(COMMANDS) if args == ["all"] else args
    unknown = [t for t in targets if t not in COMMANDS]
    if unknown:
        print(f"unknown experiment(s): {' '.join(unknown)}", file=sys.stderr)
        print("available:", " ".join(COMMANDS), file=sys.stderr)
        return 2
    for i, target in enumerate(targets):
        if i:
            print()
        COMMANDS[target]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
