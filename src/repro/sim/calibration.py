"""Calibration constants for the performance simulation.

Fit to the paper's measured anchors on a 23-Datanode HDD cluster:

* 8 MB 3-r write: p90 ~ 191 ms (Fig 3 / Fig 13a)
* 8 MB RS(6,9) write: p90 ~ 732 ms (~4x 3-r; ~6x at the median under load)
* 8 MB read: 3-r p90 ~ 265 ms; RS(6,9) p90 ~ 402 ms degraded ~ +52% (Fig 14)
* 95% of async hybrid parities persist within 500 ms (Fig 13c)

The constants are per-operation software+device service times; protocol
structure (pipeline depth, fan-out width, what sits on the critical
path) does the differentiating work.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024


@dataclass
class SimCalibration:
    """Service-time parameters, all in seconds."""

    # Per-node software overhead of absorbing a replicated/streamed block
    # into the buffer cache (HDFS pipeline stage).
    replica_absorb_median_s: float = 0.062
    replica_absorb_sigma: float = 0.55
    #: effective per-node pipeline ingest bandwidth (HDFS receive path is
    #: far below wire speed: checksumming, packet handling, copying).
    pipeline_mb_s: float = 800.0

    # Per-node overhead of an EC chunk write: synchronous cell handling,
    # smaller writes, more seeks. Applied per chunk on the stripe path.
    ec_write_median_s: float = 0.075
    ec_write_sigma: float = 0.32

    # Disk service: positioning + transfer.
    disk_seek_median_s: float = 0.0085
    disk_seek_sigma: float = 0.45
    disk_bandwidth_mb_s: float = 120.0

    # Read-side software overhead per chunk request.
    read_overhead_median_s: float = 0.024
    read_overhead_sigma: float = 0.55

    # Striped (EC) reads pay more per chunk: k remote block opens, cell
    # reassembly, no hedging alternative. Applied per stripe chunk.
    ec_read_overhead_median_s: float = 0.050
    ec_read_overhead_sigma: float = 0.60

    # Degraded-mode decode rate (Java HDFS codec, per unit matrix width).
    decode_mb_s: float = 60.0

    # Client / Datanode GF(256) coding rate per unit generator width.
    encode_mb_s: float = 1400.0

    # Network (40 GbE).
    net_rtt_s: float = 0.0002
    net_bandwidth_mb_s: float = 4500.0

    # Hedged read trigger: issue a second request at this deadline.
    hedge_deadline_s: float = 0.220

    # Background parity persistence delay knobs (Fig 13c).
    striper_poll_s: float = 0.050

    def disk_time(self, rng, size_bytes: float) -> float:
        import numpy as np

        seek = rng.lognormal(np.log(self.disk_seek_median_s), self.disk_seek_sigma)
        return seek + size_bytes / (self.disk_bandwidth_mb_s * MB)

    def absorb_time(self, rng, size_bytes: float) -> float:
        import numpy as np

        base = rng.lognormal(
            np.log(self.replica_absorb_median_s), self.replica_absorb_sigma
        )
        return base + size_bytes / (self.pipeline_mb_s * MB)

    def ec_write_time(self, rng, size_bytes: float) -> float:
        import numpy as np

        base = rng.lognormal(np.log(self.ec_write_median_s), self.ec_write_sigma)
        return base + size_bytes / (self.disk_bandwidth_mb_s * MB)

    def read_overhead(self, rng) -> float:
        import numpy as np

        return rng.lognormal(
            np.log(self.read_overhead_median_s), self.read_overhead_sigma
        )

    def net_time(self, size_bytes: float) -> float:
        return self.net_rtt_s + size_bytes / (self.net_bandwidth_mb_s * MB)

    def encode_time(self, width: int, parities: int, size_bytes: float) -> float:
        return width * parities * size_bytes / (self.encode_mb_s * MB)

    def decode_time(self, width: int, missing: int, size_bytes: float) -> float:
        return width * missing * size_bytes / (self.decode_mb_s * MB)

    def ec_read_overhead(self, rng) -> float:
        import numpy as np

        return rng.lognormal(
            np.log(self.ec_read_overhead_median_s), self.ec_read_overhead_sigma
        )
