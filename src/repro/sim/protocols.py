"""Client protocol processes (latency semantics of §4 and §6).

Each function is a generator suitable for ``SimCluster.env.process``; it
finishes when the client-visible operation completes and returns the
operation latency implicitly through the workload driver's clock.

Protocol structure (what waits on what) is taken straight from the paper:

* ``write_replicated`` — pipeline to c nodes; durable at slowest-of-c
  in-memory absorb; disk flush is background.
* ``write_hybrid`` — identical client path to 3-r (slowest-of-3 absorb);
  striping + parity persist run as background processes (their latency is
  what Fig 13c measures).
* ``write_rs`` — client-side encode, then *synchronous* chunk writes to
  all n nodes: slowest-of-n with disks on the critical path.
* ``read_replica_hedged`` — race a second copy (or the stripe) after the
  hedge deadline.
* ``read_striped`` — slowest-of-k parallel chunk reads.
* ``transcode_*`` — the read/compute phases of Fig 15.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.engine import AllOf, AnyOf
from repro.sim.cluster import SimCluster, SimNode

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# writes
# ---------------------------------------------------------------------------

def write_replicated(sim: SimCluster, size_bytes: float, copies: int = 3):
    """c-way replicated write: pipeline transfer + slowest-of-c absorb."""
    nodes = sim.pick_nodes(copies)
    # First-byte latency of the pipeline: one hop per stage.
    yield sim.env.timeout(sim.cal.net_time(size_bytes) + (copies - 1) * sim.cal.net_rtt_s)
    absorbs = [sim.replica_absorb(node, size_bytes) for node in nodes]
    yield AllOf(sim.env, absorbs)
    # Background flush to disk (not on the client path).
    for node in nodes:
        sim.background_flush(node, size_bytes)


def write_hybrid(
    sim: SimCluster,
    size_bytes: float,
    k: int,
    n: int,
    copies: int = 1,
    parity_persist_log: Optional[List[float]] = None,
):
    """Hybrid write: client sees the 3-r path; striping is asynchronous.

    ``parity_persist_log`` (if given) records the time from client ack to
    parity persistence — the Fig 13c distribution that bounds how long
    temporary replicas occupy buffer cache.
    """
    nodes = sim.pick_nodes(3)
    yield sim.env.timeout(sim.cal.net_time(size_bytes) + 2 * sim.cal.net_rtt_s)
    absorbs = [sim.replica_absorb(node, size_bytes) for node in nodes]
    yield AllOf(sim.env, absorbs)
    # Client is done; the striper works in the background.
    ack_time = sim.env.now
    sim.env.process(
        _background_stripe(sim, size_bytes, k, n, copies, ack_time, parity_persist_log)
    )


def _background_stripe(
    sim: SimCluster,
    size_bytes: float,
    k: int,
    n: int,
    copies: int,
    ack_time: float,
    parity_persist_log: Optional[List[float]],
):
    """Striper: distribute data chunks, encode, persist parities."""
    chunk = size_bytes / k
    stripe_nodes = sim.pick_nodes(n)
    yield sim.env.timeout(sim.cal.striper_poll_s)
    data_writes = [sim.background_chunk_write(node, chunk) for node in stripe_nodes[:k]]
    yield AllOf(sim.env, data_writes)
    yield sim.env.timeout(sim.cal.encode_time(k, n - k, chunk))
    parity_writes = [sim.background_chunk_write(node, chunk) for node in stripe_nodes[k:]]
    yield AllOf(sim.env, parity_writes)
    if parity_persist_log is not None:
        parity_persist_log.append(sim.env.now - ack_time)


def write_rs(sim: SimCluster, size_bytes: float, k: int, n: int):
    """Direct RS write of a small file: encode + slowest-of-n persist.

    For small (sub-stripe-buffer) writes the client buffers the whole
    stripe, computes parities on its critical path and waits for all n
    chunk writes — the Fig 3 / Fig 13a regime.
    """
    chunk = size_bytes / k
    yield sim.env.timeout(sim.cal.net_time(size_bytes))
    yield sim.env.timeout(sim.cal.encode_time(k, n - k, chunk))
    nodes = sim.pick_nodes(n)
    writes = [sim.ec_chunk_write(node, chunk) for node in nodes]
    yield AllOf(sim.env, writes)


def write_rs_streaming(sim: SimCluster, size_bytes: float, k: int, n: int):
    """Direct RS write of a large streaming file (Fig 13b regime).

    Cells stream to the n stripe nodes concurrently, with encode largely
    overlapped; the residual costs vs replication are the parity cell
    traffic, per-cell handling, and the tail of the final stripe flush.
    """
    cell = size_bytes / k
    yield sim.env.timeout(sim.cal.net_time(size_bytes))
    nodes = sim.pick_nodes(n)
    absorbs = [sim.replica_absorb(node, cell) for node in nodes]
    yield AllOf(sim.env, absorbs)
    # Non-overlapped fraction of the parity encode plus the final-stripe
    # commit handshake (cell checksums, stripe close) — disk flush itself
    # is background, as for replication.
    import numpy as np

    commit = 0.6 * sim.rng.lognormal(
        np.log(sim.cal.ec_write_median_s), sim.cal.ec_write_sigma
    )
    yield sim.env.timeout(0.25 * sim.cal.encode_time(k, n - k, cell) + commit)
    for node in nodes:
        sim.background_flush(node, cell)


def write_hybrid_sync_parity(sim: SimCluster, size_bytes: float, k: int, n: int, copies: int = 1):
    """Hybrid write, *synchronous* parity option (§6.1): the client
    buffers the stripe, encodes, and waits for parity persistence —
    faster additional durability at the cost of write latency."""
    chunk = size_bytes / k
    nodes = sim.pick_nodes(3)
    yield sim.env.timeout(sim.cal.net_time(size_bytes) + 2 * sim.cal.net_rtt_s)
    absorbs = [sim.replica_absorb(node, size_bytes) for node in nodes]
    yield AllOf(sim.env, absorbs)
    # Parity encode + persist on the critical path.
    yield sim.env.timeout(sim.cal.encode_time(k, n - k, chunk))
    parity_nodes = sim.pick_nodes(n - k)
    yield AllOf(sim.env, [sim.ec_chunk_write(node, chunk) for node in parity_nodes])


def write_hybrid_no_parity(sim: SimCluster, size_bytes: float, copies: int = 1):
    """Hybrid write, parities-disabled option (§6.1): durability comes
    solely from ``copies + 1`` replicas; maximum throughput."""
    nodes = sim.pick_nodes(copies + 1)
    yield sim.env.timeout(sim.cal.net_time(size_bytes) + copies * sim.cal.net_rtt_s)
    absorbs = [sim.replica_absorb(node, size_bytes) for node in nodes]
    yield AllOf(sim.env, absorbs)
    for node in nodes:
        sim.background_flush(node, size_bytes)


# ---------------------------------------------------------------------------
# reads
# ---------------------------------------------------------------------------

def _replica_read_once(sim: SimCluster, node: SimNode, size_bytes: float):
    return sim.disk_read(node, size_bytes)


def read_replica_hedged(
    sim: SimCluster,
    size_bytes: float,
    n_copies: int,
    stripe_k: int = 0,
    stripe_n: int = 0,
    degraded_fallback: bool = True,
):
    """Replica read with hedging (§6.1).

    Request copy 1; at the hedge deadline request copy 2 (etc.); when
    copies are exhausted, fall back to a striped (possibly degraded)
    read. ``n_copies`` counts *live* replicas of the range.
    """
    candidates = sim.pick_nodes_any(max(n_copies, 1))
    live = [node for node in candidates if node.is_alive][:n_copies]
    outstanding = []
    if live:
        outstanding.append(_replica_read_once(sim, live[0], size_bytes))
    for backup in live[1:]:
        race = list(outstanding) + [sim.env.timeout(sim.cal.hedge_deadline_s)]
        idx, _val = yield AnyOf(sim.env, race)
        if idx < len(outstanding):
            return  # a replica answered first
        outstanding.append(_replica_read_once(sim, backup, size_bytes))
    if not outstanding:
        # No live replica at all: go to the stripe immediately.
        if stripe_k and degraded_fallback:
            yield from read_striped(sim, size_bytes, stripe_k, stripe_n, degraded=True)
        return
    if stripe_k and degraded_fallback:
        race = list(outstanding) + [sim.env.timeout(sim.cal.hedge_deadline_s)]
        idx, _val = yield AnyOf(sim.env, race)
        if idx < len(outstanding):
            return
        stripe_done = sim.env.process(
            read_striped(sim, size_bytes, stripe_k, stripe_n, degraded=False)
        )
        outstanding.append(stripe_done)
    yield AnyOf(sim.env, outstanding)


def read_striped(
    sim: SimCluster,
    size_bytes: float,
    k: int,
    n: int,
    degraded: bool = False,
    unavailable_fraction: float = 0.0,
):
    """Striped read: slowest-of-k chunks; degraded adds decode + parity.

    With ``unavailable_fraction`` > 0 each chunk's home may be down, in
    which case one extra (parity) chunk is read and the client decodes.
    """
    chunk = size_bytes / k
    nodes = sim.pick_nodes_any(n)
    data_nodes = nodes[:k]
    missing = [node for node in data_nodes if not node.is_alive]
    if unavailable_fraction > 0.0:
        extra = int(sim.rng.random() < unavailable_fraction)
    else:
        extra = 0
    n_missing = len(missing) + (1 if degraded else 0) + extra
    live_data = [node for node in data_nodes if node.is_alive]
    reads = [sim.striped_chunk_read(node, chunk) for node in live_data]
    parity_pool = [node for node in nodes[k:] if node.is_alive]
    for i in range(min(n_missing, len(parity_pool))):
        reads.append(sim.striped_chunk_read(parity_pool[i], chunk))
    if reads:
        yield AllOf(sim.env, reads)
    if n_missing:
        # Decode sits on the critical path (paper §2: degraded-mode read).
        yield sim.env.timeout(sim.cal.decode_time(k, n_missing, chunk))


def read_large_scan(
    sim: SimCluster, size_bytes: float, k: int, n: int, from_stripe: bool
):
    """Throughput scan (Fig 14e): replica sequential vs parallel striped."""
    if from_stripe:
        yield from read_striped(sim, size_bytes, k, n)
    else:
        node = sim.pick_nodes(1)[0]
        yield sim.disk_read(node, size_bytes)


# ---------------------------------------------------------------------------
# transcode read / compute (Fig 15)
# ---------------------------------------------------------------------------

def transcode_read_rs(sim: SimCluster, file_bytes: float, k_final: int, k_initial: int):
    """RS transcode read: every data chunk of the merged span in parallel."""
    chunk = file_bytes / k_final
    nodes = sim.pick_nodes(k_final)
    yield AllOf(sim.env, [sim.disk_read(node, chunk) for node in nodes])


def transcode_read_cc(
    sim: SimCluster,
    file_bytes: float,
    k_final: int,
    n_parity_reads: int,
    data_fraction: float = 0.0,
    n_data_reads: int = 0,
):
    """CC transcode read: parities (and optionally data tails) in parallel."""
    chunk = file_bytes / k_final
    reads = []
    parity_nodes = sim.pick_nodes(n_parity_reads)
    reads.extend(sim.disk_read(node, chunk) for node in parity_nodes)
    if n_data_reads and data_fraction > 0:
        data_nodes = sim.pick_nodes(n_data_reads)
        # Hop-and-couple: each is one contiguous fractional read.
        reads.extend(sim.disk_read(node, chunk * data_fraction) for node in data_nodes)
    yield AllOf(sim.env, reads)


def transcode_compute(
    sim: SimCluster, file_bytes: float, k_final: int, width: int, parities: int,
    vector_overhead: float = 1.0,
):
    """Parity computation: proportional to combination-matrix width."""
    chunk = file_bytes / k_final
    yield sim.env.timeout(
        sim.cal.encode_time(width, parities, chunk) * vector_overhead
    )
