"""Simulated cluster for performance experiments.

Each Datanode owns a single-disk FIFO :class:`Resource` and a NIC
resource; client operations queue there, which is where load dependence
(t = 12 / 25 / 40 worker threads) comes from.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.engine import Environment, Resource
from repro.sim.calibration import SimCalibration


class SimNode:
    """One Datanode: a disk queue, a NIC queue, and an up/down flag."""

    def __init__(self, env: Environment, node_id: str):
        self.node_id = node_id
        self.disk = Resource(env, capacity=1)
        self.nic = Resource(env, capacity=2)
        self.is_alive = True


class SimCluster:
    """Nodes + models + helper processes used by the protocols."""

    def __init__(
        self,
        n_datanodes: int = 23,
        seed: int = 0,
        calibration: Optional[SimCalibration] = None,
    ):
        self.env = Environment()
        self.cal = calibration or SimCalibration()
        self.rng = np.random.default_rng(seed)
        self.nodes: List[SimNode] = [
            SimNode(self.env, f"dn{i:03d}") for i in range(n_datanodes)
        ]

    # -- selection ------------------------------------------------------------
    def alive_nodes(self) -> List[SimNode]:
        return [n for n in self.nodes if n.is_alive]

    def pick_nodes(self, count: int, alive_only: bool = True) -> List[SimNode]:
        pool = self.alive_nodes() if alive_only else list(self.nodes)
        idx = self.rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in idx]

    def pick_nodes_any(self, count: int) -> List[SimNode]:
        """Pick among all nodes, dead ones included (placement does not
        know about failures that happened after the file was written)."""
        return self.pick_nodes(count, alive_only=False)

    def fail_fraction(self, fraction: float) -> List[SimNode]:
        count = max(1, int(round(fraction * len(self.nodes))))
        victims = self.pick_nodes(count)
        for node in victims:
            node.is_alive = False
        return victims

    # -- primitive processes ----------------------------------------------------
    def disk_op(self, node: SimNode, service_s: float, overhead_s: float = 0.0):
        """Queue for the disk, occupy it for the *device* time, then pay
        any software overhead off-device (it does not block the queue)."""
        req = node.disk.request()
        yield req
        yield self.env.timeout(service_s)
        node.disk.release(req)
        if overhead_s:
            yield self.env.timeout(overhead_s)

    def nic_op(self, node: SimNode, service_s: float):
        """Occupy a node's NIC (memory-absorb path)."""
        req = node.nic.request()
        yield req
        yield self.env.timeout(service_s)
        node.nic.release(req)

    def delay(self, seconds: float):
        yield self.env.timeout(seconds)

    # -- composite helpers --------------------------------------------------------
    def replica_absorb(self, node: SimNode, size_bytes: float):
        """In-memory receive of a replicated block (no disk on path)."""
        service = self.cal.absorb_time(self.rng, size_bytes)
        return self.env.process(self.nic_op(node, service))

    def ec_chunk_write(self, node: SimNode, size_bytes: float):
        """Synchronous (client-path) EC chunk write: the HDFS-EC cell
        path serialises checksum/commit work with the device, so the full
        service time holds the disk — this is what makes direct-RS small
        writes slow (Fig 3)."""
        service = self.cal.ec_write_time(self.rng, size_bytes)
        return self.env.process(self.disk_op(node, service))

    def background_chunk_write(self, node: SimNode, size_bytes: float):
        """Striper/background chunk write: only device time occupies the
        disk; per-chunk software overhead proceeds concurrently."""
        device = self.cal.disk_time(self.rng, size_bytes)
        overhead = self.cal.ec_write_time(self.rng, 0.0)
        return self.env.process(self.disk_op(node, device, overhead))

    def disk_read(self, node: SimNode, size_bytes: float):
        device = self.cal.disk_time(self.rng, size_bytes)
        overhead = self.cal.read_overhead(self.rng)
        return self.env.process(self.disk_op(node, device, overhead))

    def striped_chunk_read(self, node: SimNode, size_bytes: float):
        """One chunk of a striped (EC) read: heavier per-chunk software
        path (remote block open, cell reassembly)."""
        device = self.cal.disk_time(self.rng, size_bytes)
        overhead = self.cal.ec_read_overhead(self.rng)
        return self.env.process(self.disk_op(node, device, overhead))

    def background_flush(self, node: SimNode, size_bytes: float):
        """Async buffer-cache flush: occupies the disk off the client path."""
        service = self.cal.disk_time(self.rng, size_bytes)
        return self.env.process(self.disk_op(node, service))
