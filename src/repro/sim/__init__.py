"""Event-driven performance experiments.

Where :mod:`repro.dfs` answers "how many bytes move?", this package
answers "how long do operations take under load?". Client protocols are
expressed as discrete-event processes over per-node disk/NIC resources
(:mod:`repro.cluster.engine`), so the paper's latency mechanisms emerge
structurally:

* 3-r and hybrid writes wait on the **slowest of 3** in-memory receivers;
* RS writes put parity encode and **slowest-of-n** disk persistence on
  the critical path;
* hedged reads race a second replica (or the stripe) after a deadline;
* degraded reads fan in k chunks and decode;
* transcode reads fan in parities (CC) or all data chunks (RS).

Service-time constants live in :mod:`repro.sim.calibration` and are fit
to the paper's Fig 3 anchor points.
"""

from repro.sim.cluster import SimCluster
from repro.sim.workload import ClosedLoopResult, ClosedLoopWorkload, percentile

__all__ = ["SimCluster", "ClosedLoopWorkload", "ClosedLoopResult", "percentile"]
