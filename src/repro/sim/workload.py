"""Closed-loop workload driver and latency statistics.

``t`` worker threads repeatedly issue operations (as DFS-perf does in the
paper's testbed); each records its operation latency. Thread count is the
load knob: more threads → deeper disk/NIC queues → fatter tails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.sim.cluster import SimCluster


def percentile(samples: Sequence[float], p: float) -> float:
    """p-th percentile (0-100) of a latency sample, in the input's unit."""
    if not len(samples):
        raise ValueError("no samples")
    return float(np.percentile(np.asarray(samples, dtype=float), p))


@dataclass
class ClosedLoopResult:
    """Latencies (seconds) and achieved throughput of one workload run."""

    latencies: List[float] = field(default_factory=list)
    op_bytes: float = 0.0
    duration_s: float = 0.0
    n_threads: int = 0

    def p(self, q: float) -> float:
        return percentile(self.latencies, q)

    @property
    def median_s(self) -> float:
        return self.p(50)

    @property
    def throughput_mb_s(self) -> float:
        """Aggregate goodput across all threads."""
        if self.duration_s <= 0:
            return 0.0
        total = self.op_bytes * len(self.latencies)
        return total / self.duration_s / (1024 * 1024)

    def cdf(self, points: int = 100):
        """(latency_ms, cumulative_fraction) series for CDF plots."""
        xs = np.sort(np.asarray(self.latencies)) * 1000.0
        ys = np.arange(1, len(xs) + 1) / len(xs)
        if len(xs) > points:
            idx = np.linspace(0, len(xs) - 1, points).astype(int)
            xs, ys = xs[idx], ys[idx]
        return xs.tolist(), ys.tolist()


class ClosedLoopWorkload:
    """Run ``n_threads`` loops of ``op_factory`` for ``n_ops`` each."""

    def __init__(
        self,
        sim: SimCluster,
        op_factory: Callable[[SimCluster], "object"],
        n_threads: int,
        ops_per_thread: int,
        op_bytes: float = 0.0,
        think_time_s: float = 0.0,
    ):
        self.sim = sim
        self.op_factory = op_factory
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.op_bytes = op_bytes
        self.think_time_s = think_time_s

    def _worker(self, result: ClosedLoopResult):
        sim = self.sim
        for _ in range(self.ops_per_thread):
            start = sim.env.now
            yield sim.env.process(self.op_factory(sim))
            result.latencies.append(sim.env.now - start)
            self._client_end = max(self._client_end, sim.env.now)
            if self.think_time_s:
                yield sim.env.timeout(self.think_time_s)

    def run(self) -> ClosedLoopResult:
        result = ClosedLoopResult(op_bytes=self.op_bytes, n_threads=self.n_threads)
        self._client_end = 0.0
        for _ in range(self.n_threads):
            self.sim.env.process(self._worker(result))
        self.sim.env.run()
        # Throughput is client-visible: measured to the last client ack,
        # not to the drain of background flush/striping work.
        result.duration_s = self._client_end or self.sim.env.now
        return result
