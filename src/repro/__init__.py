"""morph-repro: a reproduction of Morph (SOSP 2024).

Morph is a cluster file system that minimises the IO of establishing and
changing redundancy over file lifetimes, via hybrid redundancy
(replica + EC stripe), Convertible Codes, and transcode-aware placement.

Package map:

* :mod:`repro.gf` — GF(2^8) and GF(2^16) arithmetic.
* :mod:`repro.codes` — RS, LRC, Convertible Codes (access- and
  bandwidth-optimal), LRCC, StripeMerge, and the transcode cost model.
* :mod:`repro.core` — schemes (``Hy(c, EC(k,n))``), the §5.2 parameter
  advisor, lifetime policies, the transcode planner and manager.
* :mod:`repro.cluster` — event kernel, topology, placement, metrics.
* :mod:`repro.dfs` — the functional DFS (``MorphFS`` / ``BaselineDFS``).
* :mod:`repro.sim` — calibrated event-driven performance experiments.
* :mod:`repro.traces` — synthetic production traces and analyzers.
* :mod:`repro.bench` — experiment drivers, one per paper figure.

Quick start::

    from repro.core.schemes import CodeKind, ECScheme, HybridScheme
    from repro.dfs import MorphFS

    fs = MorphFS(future_widths=[6, 12])
    fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
    fs.transcode("f", ECScheme(CodeKind.CC, 6, 9))    # free
    fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))  # parity-only merge
"""

__version__ = "1.0.0"
