"""GF(2^8) field arithmetic with numpy-vectorised operations.

The field is GF(2^8) with the standard Rijndael-compatible primitive
polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by
ISA-L, Jerasure and the HDFS erasure codec. Multiplication and division
are table-driven: ``exp``/``log`` tables are built once at import time and
shared by every code in :mod:`repro.codes`.

Scalars are plain Python ints in [0, 255]; bulk data is ``numpy.uint8``
arrays. All public functions accept either and broadcast like numpy.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Multiplicative generator of the field.
GENERATOR = 2

FIELD_SIZE = 256
FIELD_ORDER = FIELD_SIZE - 1  # order of the multiplicative group


def _build_tables():
    """Build exp/log tables for the multiplicative group of GF(256)."""
    exp = np.zeros(2 * FIELD_ORDER, dtype=np.int32)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(FIELD_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so exp[log[a] + log[b]] never needs a modulo.
    exp[FIELD_ORDER:] = exp[:FIELD_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()

# Full 256x256 multiplication table: 64 KiB, lets bulk multiply be a
# single fancy-index instead of three table lookups and a branch.
_MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
_nz = np.arange(1, FIELD_SIZE)
_MUL_TABLE[1:, 1:] = _EXP[(_LOG[_nz][:, None] + _LOG[_nz][None, :])].astype(
    np.uint8
)

_INV_TABLE = np.zeros(FIELD_SIZE, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[FIELD_ORDER - _LOG[_nz]].astype(np.uint8)


def gf_add(a, b):
    """Add (== subtract) two field elements or arrays: XOR."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) ^ int(b)
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def gf_mul(a, b):
    """Multiply field elements; broadcasts over numpy uint8 arrays."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if a == 0 or b == 0:
            return 0
        return int(_EXP[_LOG[a] + _LOG[b]])
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return _MUL_TABLE[a, b]


def gf_inv(a):
    """Multiplicative inverse. Raises ZeroDivisionError on 0."""
    if isinstance(a, (int, np.integer)):
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_INV_TABLE[a])
    a = np.asarray(a, dtype=np.uint8)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _INV_TABLE[a]


def gf_div(a, b):
    """Divide a by b in GF(256)."""
    return gf_mul(a, gf_inv(b))


def gf_pow(a: int, e: int) -> int:
    """Raise a scalar field element to an integer power."""
    if a == 0:
        if e == 0:
            return 1
        if e < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    exponent = (_LOG[a] * e) % FIELD_ORDER
    return int(_EXP[exponent])


class GF256:
    """Namespace-style façade over the module-level field operations.

    Provided so call sites can pass the field around as an object
    (``field.mul(a, b)``), which keeps the codes generic over the field
    implementation and makes the dependency explicit in signatures.
    """

    size = FIELD_SIZE
    order = FIELD_ORDER
    generator = GENERATOR
    primitive_poly = PRIMITIVE_POLY

    add = staticmethod(gf_add)
    sub = staticmethod(gf_add)  # characteristic 2: sub == add
    mul = staticmethod(gf_mul)
    div = staticmethod(gf_div)
    inv = staticmethod(gf_inv)
    pow = staticmethod(gf_pow)

    @staticmethod
    def element(i: int) -> int:
        """i-th power of the generator (distinct for 0 <= i < 255)."""
        return int(_EXP[i % FIELD_ORDER])

    @staticmethod
    def elements():
        """All nonzero field elements, in generator-power order."""
        return [int(_EXP[i]) for i in range(FIELD_ORDER)]
