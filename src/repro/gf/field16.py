"""GF(2^16) arithmetic for wide convertible codes.

Superregular generalized-Vandermonde families over GF(2^8) top out around
width 24 for r = 4 (see :mod:`repro.codes.pointsearch`); the theory's
field-size bounds say wide stripes simply need a bigger field. This
module provides GF(2^16) with the standard primitive polynomial
x^16 + x^12 + x^3 + x + 1 (0x1100B).

A full multiplication table would be 8 GiB, so multiplication is
log/exp-table based with explicit zero handling; symbols are
``numpy.uint16``. Chunks of bytes map to symbols via
:func:`bytes_to_symbols` (little-endian pairs, zero-padded).
"""

from __future__ import annotations

import numpy as np

PRIMITIVE_POLY_16 = 0x1100B
FIELD_SIZE_16 = 1 << 16
FIELD_ORDER_16 = FIELD_SIZE_16 - 1
GENERATOR_16 = 2


def _build_tables():
    exp = np.zeros(2 * FIELD_ORDER_16, dtype=np.int64)
    log = np.zeros(FIELD_SIZE_16, dtype=np.int64)
    x = 1
    for i in range(FIELD_ORDER_16):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x10000:
            x ^= PRIMITIVE_POLY_16
    exp[FIELD_ORDER_16:] = exp[:FIELD_ORDER_16]
    return exp, log


_EXP16, _LOG16 = _build_tables()


def gf16_mul(a, b):
    """Multiply field elements; vectorised over uint16 arrays."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if a == 0 or b == 0:
            return 0
        return int(_EXP16[_LOG16[a] + _LOG16[b]])
    a = np.asarray(a, dtype=np.uint16)
    b = np.asarray(b, dtype=np.uint16)
    out = _EXP16[_LOG16[a.astype(np.int64)] + _LOG16[b.astype(np.int64)]].astype(
        np.uint16
    )
    zero = (a == 0) | (b == 0)
    if np.isscalar(zero):
        return np.uint16(0) if zero else out
    out[zero] = 0
    return out


def gf16_inv(a):
    """Multiplicative inverse (scalar or array)."""
    if isinstance(a, (int, np.integer)):
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^16)")
        return int(_EXP16[FIELD_ORDER_16 - _LOG16[a]])
    a = np.asarray(a, dtype=np.uint16)
    if np.any(a == 0):
        raise ZeroDivisionError("0 has no inverse in GF(2^16)")
    return _EXP16[FIELD_ORDER_16 - _LOG16[a.astype(np.int64)]].astype(np.uint16)


def gf16_pow(a: int, e: int) -> int:
    """Scalar power, supporting negative exponents."""
    if a == 0:
        if e == 0:
            return 1
        if e < 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^16)")
        return 0
    return int(_EXP16[(_LOG16[a] * e) % FIELD_ORDER_16])


def gf16_element(i: int) -> int:
    """i-th power of the generator."""
    return int(_EXP16[i % FIELD_ORDER_16])


# ---------------------------------------------------------------------------
# matrix algebra
# ---------------------------------------------------------------------------

def gf16_matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference matrix product over GF(2^16); shapes (m,k) @ (k,n).

    Per-column log/exp outer products with full zero masks — exact but
    with per-element table math in the hot loop. :func:`gf16_matmul`
    dispatches here for small operands; the differential tests pin the
    kernel fast path to this implementation.
    """
    a = np.asarray(a, dtype=np.uint16)
    b = np.asarray(b, dtype=np.uint16)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint16)
    # Row-by-row accumulation keeps memory bounded for wide codes.
    for t in range(a.shape[1]):
        col = a[:, t]
        row = b[t]
        out ^= gf16_mul(col[:, None], row[None, :])
    return out


def gf16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^16), dispatching on operand size.

    Coefficient-sized operands use :func:`gf16_matmul_reference`; bulk
    symbol data goes through the cached multiply plans in
    :mod:`repro.gf.kernels` (per-coefficient 64 K symbol tables, or the
    hoisted-log path for wide outputs), which are bit-identical.
    """
    from repro.gf.kernels import KERNEL_MIN_BYTES, plan_for_matrix16

    a = np.asarray(a, dtype=np.uint16)
    b = np.asarray(b, dtype=np.uint16)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    # Threshold compares bytes per row: each uint16 symbol is two bytes.
    if 2 * b.shape[1] >= KERNEL_MIN_BYTES and a.shape[0] > 0:
        return plan_for_matrix16(a).apply(b)
    return gf16_matmul_reference(a, b)


def gf16_matinv(a: np.ndarray) -> np.ndarray:
    """Gauss-Jordan inversion over GF(2^16)."""
    from repro.gf.matrix import SingularMatrixError

    a = np.asarray(a, dtype=np.uint16)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    aug = np.concatenate([a.copy(), np.eye(n, dtype=np.uint16)], axis=1)
    for col in range(n):
        pivots = np.nonzero(aug[col:, col])[0]
        if pivots.size == 0:
            raise SingularMatrixError("matrix is singular over GF(2^16)")
        pivot = col + int(pivots[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        aug[col] = gf16_mul(aug[col], gf16_inv(int(aug[col, col])))
        factors = aug[:, col].copy()
        factors[col] = 0
        rows = np.nonzero(factors)[0]
        if rows.size:
            aug[rows] ^= gf16_mul(factors[rows][:, None], aug[col][None, :])
    return aug[:, n:]


def gf16_batch_det(mats: np.ndarray) -> np.ndarray:
    """Determinants of a batch of small square matrices (Laplace)."""
    mats = np.asarray(mats, dtype=np.uint16)
    n, s, s2 = mats.shape
    if s != s2:
        raise ValueError("matrices must be square")
    if s == 1:
        return mats[:, 0, 0]
    if s == 2:
        return gf16_mul(mats[:, 0, 0], mats[:, 1, 1]) ^ gf16_mul(
            mats[:, 0, 1], mats[:, 1, 0]
        )
    out = np.zeros(n, dtype=np.uint16)
    cols = np.arange(s)
    for j in range(s):
        minor = mats[:, 1:, :][:, :, cols[cols != j]]
        out ^= gf16_mul(mats[:, 0, j], gf16_batch_det(minor))
    return out


# ---------------------------------------------------------------------------
# byte <-> symbol packing
# ---------------------------------------------------------------------------

def bytes_to_symbols(data: np.ndarray, copy: bool = True) -> np.ndarray:
    """Pack a uint8 chunk into uint16 symbols (little-endian pairs).

    ``copy=False`` returns a zero-copy view when the input is contiguous
    and even-length — safe for read-only consumers (gather kernels); the
    view aliases the caller's buffer.
    """
    data = np.asarray(data, dtype=np.uint8).reshape(-1)
    if len(data) % 2:
        data = np.concatenate([data, np.zeros(1, dtype=np.uint8)])
        return data.view("<u2")  # already a private buffer
    if not data.flags.c_contiguous:
        data = np.ascontiguousarray(data)
        return data.view("<u2")
    view = data.view("<u2")
    return view.copy() if copy else view


def symbols_to_bytes(symbols: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`bytes_to_symbols`, trimmed to ``length`` bytes."""
    out = np.asarray(symbols, dtype="<u2").view(np.uint8)
    return out[:length].copy()
