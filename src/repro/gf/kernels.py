"""Cache-blocked bulk-multiply kernels for GF(2^8) and GF(2^16).

The reference matmuls in :mod:`repro.gf.matrix` and
:mod:`repro.gf.field16` are exact but allocate a full ``(m, n, k)``
intermediate (GF(2^8)) or do per-element log/exp lookups with a fresh
zero mask per element (GF(2^16)). Production erasure codecs (ISA-L,
Jerasure) instead stream small per-coefficient multiply tables over
contiguous data. This module is the numpy rendition of that idea:

* **Pair tables** — for a coefficient ``c`` over GF(2^8), a 65536-entry
  ``uint16`` table maps a little pair of bytes ``(x0, x1)`` to
  ``(c*x0, c*x1)`` in one gather, halving the index count versus a
  256-entry byte table. Over GF(2^16) the analogous table maps a whole
  symbol ``x`` to ``c*x`` (built from two 256-entry half-symbol tables,
  never from an 8 GiB product table). Both are position-preserving
  per-byte/symbol maps, so they are endianness-independent.
* **Multiply plans** — :class:`MulPlan8` / :class:`MulPlan16` precompute,
  for a fixed coefficient matrix, one *combined* ``(65536, m)`` table per
  input row: a single ``np.take`` then yields the contribution of that
  input row to **all** ``m`` outputs. Plans are built once per generator
  (cached on the :class:`~repro.codes.base.ErasureCode` and in a global
  LRU keyed by matrix bytes) and reused across every stripe of a code.
* **Cache blocking** — ``apply`` walks the byte axis in tiles sized so
  the accumulator + gather scratch stay within :data:`TILE_BYTES`
  regardless of chunk length; no ``(m, n, k)`` intermediate is ever
  materialised, so memory is O(tile) instead of O(m*n*k).

Wide matrices (``m`` above :data:`COMBINE_MAX_ROWS`) fall back to a
row-at-a-time blocked loop over shared per-coefficient tables (GF(2^8))
or a hoisted-log loop that applies the zero mask once per coefficient
instead of once per element (GF(2^16)).

Dispatch policy lives with the callers (:func:`repro.gf.matrix.gf_matmul`
and :func:`repro.gf.field16.gf16_matmul`): below
:data:`KERNEL_MIN_BYTES` per row the reference path is faster because a
gather cannot amortise; at or above it the kernels win by ~5-10x.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gf.field import _MUL_TABLE

#: Per-row byte count at which matmuls dispatch to the kernel layer.
#: Below this the reference paths win (gathers cannot amortise).
KERNEL_MIN_BYTES = 4096

#: Bytes of accumulator + scratch a blocked tile may occupy. Large
#: enough to amortise per-call numpy dispatch over each gather, small
#: enough that scratch stays bounded (and last-level-cache resident) no
#: matter how long the chunk axis is; measured optimum on 1 MiB chunks.
TILE_BYTES = 1 << 22

#: Widest output (row count) a combined per-column table is built for.
#: Beyond this the (65536, m) tables outgrow L2 and the row-loop wins.
COMBINE_MAX_ROWS = 8

#: Widest GF(2^16) output packed into single-uint64-lane tables. Up to
#: four 16-bit products ride one (65536,) uint64 gather, so a narrow
#: matrix (fused recovery, parity rows of a wide code) costs one gather
#: per input column instead of one per (row, column).
PACK_MAX_ROWS = 4

#: LRU capacities: whole plans (global) and per-coefficient tables.
_PLAN_CACHE_MAX = 16
_COEFF_CACHE_MAX = 256

#: Failure patterns a per-code pattern LRU holds (distinct
#: (available, erased) sets; a cluster repairing one node failure sees a
#: handful — one per failed chunk position).
_PATTERN_CACHE_MAX = 32

_PAIR_IDX_LO = np.arange(1 << 16, dtype=np.uint32) & 0xFF
_PAIR_IDX_HI = np.arange(1 << 16, dtype=np.uint32) >> 8

#: Process-wide hit/miss/eviction counters across every kernel cache
#: (global plan LRUs, per-coefficient table LRUs, per-code pattern LRUs).
_COUNTERS: Dict[str, int] = {
    "plan_hits": 0,
    "plan_misses": 0,
    "plan_evictions": 0,
    "table_hits": 0,
    "table_misses": 0,
    "table_evictions": 0,
    "pattern_hits": 0,
    "pattern_misses": 0,
    "pattern_evictions": 0,
}


# ---------------------------------------------------------------------------
# per-coefficient tables
# ---------------------------------------------------------------------------

_pair8_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
_full16_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()


def _cache_get(cache: OrderedDict, key: int, build) -> np.ndarray:
    table = cache.get(key)
    if table is None:
        _COUNTERS["table_misses"] += 1
        table = build()
        cache[key] = table
        while len(cache) > _COEFF_CACHE_MAX:
            cache.popitem(last=False)
            _COUNTERS["table_evictions"] += 1
    else:
        _COUNTERS["table_hits"] += 1
        cache.move_to_end(key)
    return table


def pair_table8(c: int) -> np.ndarray:
    """(65536,) uint16 table: byte-pair ``x`` -> ``(c*x_lo, c*x_hi)``."""

    def build() -> np.ndarray:
        row = _MUL_TABLE[c].astype(np.uint16)
        return (row[_PAIR_IDX_LO] | (row[_PAIR_IDX_HI] << 8)).astype(np.uint16)

    return _cache_get(_pair8_cache, int(c), build)


def mul_table16(c: int) -> np.ndarray:
    """(65536,) uint16 table: GF(2^16) symbol ``x`` -> ``c * x``.

    Built from two 256-entry half-symbol tables via linearity:
    ``c*x = c*lo(x) ^ (c*z^8)*hi(x)`` where ``z^8`` is the field element
    0x100 — never from the infeasible 8 GiB full product table.
    """

    def build() -> np.ndarray:
        from repro.gf.field16 import gf16_mul

        half = np.arange(256, dtype=np.uint16)
        lo_tab = gf16_mul(np.uint16(c), half)
        hi_tab = gf16_mul(np.uint16(gf16_mul(int(c), 0x100)), half)
        return (lo_tab[_PAIR_IDX_LO] ^ hi_tab[_PAIR_IDX_HI]).astype(np.uint16)

    return _cache_get(_full16_cache, int(c), build)


# ---------------------------------------------------------------------------
# the blocked core (shared by both fields)
# ---------------------------------------------------------------------------

def _combined_tables(
    coeffs: np.ndarray, cols: List[int], table_fn
) -> List[np.ndarray]:
    """One (65536, m) uint16 table per nonzero input row of ``coeffs``."""
    m = coeffs.shape[0]
    out = []
    for t in cols:
        tab = np.zeros((1 << 16, m), dtype=np.uint16)
        for i in range(m):
            c = int(coeffs[i, t])
            if c:
                tab[:, i] = table_fn(c)
        out.append(np.ascontiguousarray(tab))
    return out


def _packed_tables(
    coeffs: np.ndarray, cols: List[int], table_fn
) -> List[np.ndarray]:
    """One (65536,) uint64 table per nonzero input row: the ``m <= 4``
    per-output products for a symbol packed into one 64-bit lane."""
    m = coeffs.shape[0]
    out = []
    for t in cols:
        tab = np.zeros(1 << 16, dtype=np.uint64)
        for i in range(m):
            c = int(coeffs[i, t])
            if c:
                tab |= table_fn(c).astype(np.uint64) << np.uint64(16 * i)
        out.append(tab)
    return out


def _apply_packed(
    tables: List[np.ndarray],
    cols: List[int],
    b16: np.ndarray,
    out16: np.ndarray,
) -> None:
    """out16 (m, L) rows unpacked from a single uint64 gather per column.

    One ``np.take`` per input column produces all ``m`` output rows at
    once (XOR distributes over the packed lanes), so a narrow fused
    recovery or parity matrix costs ``k`` gathers total instead of
    ``k`` per output row — the dominant win for wide GF(2^16) codes.
    """
    if not tables:
        return  # all-zero coefficients: out16 is already zeroed
    m, n16 = out16.shape
    # acc + tmp (two (w,) uint64 buffers) together fill the tile budget.
    w = max(1024, TILE_BYTES // 16)
    acc = np.empty(min(w, n16), dtype=np.uint64)
    tmp = np.empty_like(acc)
    for start in range(0, n16, w):
        stop = min(start + w, n16)
        ww = stop - start
        a = acc[:ww]
        for j, (tab, t) in enumerate(zip(tables, cols)):
            if j == 0:
                np.take(tab, b16[t][start:stop], out=a, mode="clip")
            else:
                np.take(tab, b16[t][start:stop], out=tmp[:ww], mode="clip")
                np.bitwise_xor(a, tmp[:ww], out=a)
        out16[0, start:stop] = a.astype(np.uint16)
        for i in range(1, m):
            np.right_shift(a, np.uint64(16 * i), out=tmp[:ww])
            out16[i, start:stop] = tmp[:ww].astype(np.uint16)


def _apply_combined(
    tables: List[np.ndarray],
    cols: List[int],
    b16: np.ndarray,
    out16: np.ndarray,
) -> None:
    """out16 (m, L) ^= sum_t tables[t][b16[t]], tiled along the symbol axis."""
    if not tables:
        return  # all-zero coefficients: out16 is already zeroed
    m, n16 = out16.shape
    # Tile so acc + tmp (two (w, m) uint16 buffers) fit the tile budget.
    w = max(1024, TILE_BYTES // (4 * max(m, 1)))
    acc = np.empty((min(w, n16), m), dtype=np.uint16)
    tmp = np.empty_like(acc)
    for start in range(0, n16, w):
        stop = min(start + w, n16)
        ww = stop - start
        a = acc[:ww]
        for j, (tab, t) in enumerate(zip(tables, cols)):
            # mode="clip" is a no-op for uint16 indices into a 65536-row
            # table but skips numpy's buffered bounds-checked take path.
            if j == 0:
                # First input row gathers straight into the accumulator —
                # one fewer full pass over the tile.
                np.take(tab, b16[t][start:stop], axis=0, out=a, mode="clip")
            else:
                np.take(tab, b16[t][start:stop], axis=0, out=tmp[:ww], mode="clip")
                np.bitwise_xor(a, tmp[:ww], out=a)
        out16[:, start:stop] = a.T


def _apply_rows8(
    coeffs: np.ndarray, cols: List[int], b16: np.ndarray, out16: np.ndarray
) -> None:
    """Row-at-a-time blocked loop over shared pair tables (wide outputs)."""
    m, n16 = out16.shape
    w = max(1024, TILE_BYTES // 4)
    tmp = np.empty(min(w, n16), dtype=np.uint16)
    for start in range(0, n16, w):
        stop = min(start + w, n16)
        ww = stop - start
        for i in range(m):
            acc = out16[i, start:stop]
            for t in cols:
                c = int(coeffs[i, t])
                if c == 0:
                    continue
                seg = b16[t, start:stop]
                if c == 1:
                    np.bitwise_xor(acc, seg, out=acc)
                else:
                    np.take(pair_table8(c), seg, out=tmp[:ww], mode="clip")
                    np.bitwise_xor(acc, tmp[:ww], out=acc)


def _apply_rows16(
    coeffs: np.ndarray, cols: List[int], b: np.ndarray, out: np.ndarray
) -> None:
    """GF(2^16) wide-output path: per-coefficient log/exp with the
    generator's logs hoisted out of the inner loop and the operand zero
    mask computed once per input row (not once per element)."""
    from repro.gf.field16 import _EXP16, _LOG16

    m = out.shape[0]
    log_coeffs = _LOG16[coeffs.astype(np.int64)]
    for t in cols:
        row = b[t]
        log_row = _LOG16[row.astype(np.int64)]
        zero = row == 0
        any_zero = bool(zero.any())
        for i in range(m):
            c = int(coeffs[i, t])
            if c == 0:
                continue
            prod = _EXP16[log_coeffs[i, t] + log_row].astype(np.uint16)
            if any_zero:
                prod[zero] = 0
            out[i] ^= prod


# ---------------------------------------------------------------------------
# multiply plans
# ---------------------------------------------------------------------------

class MulPlan8:
    """A reusable bulk-multiply plan for a fixed GF(2^8) matrix.

    ``apply(b)`` computes ``coeffs @ b`` over GF(256) for bulk ``b``
    without materialising an ``(m, n, k)`` intermediate. Build once per
    generator (it gathers 128 KiB of tables per coefficient column) and
    reuse across stripes; :func:`plan_for_matrix` does this caching.
    """

    def __init__(self, coeffs: np.ndarray):
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint8)
        if coeffs.ndim != 2:
            raise ValueError("MulPlan8 expects a 2-D coefficient matrix")
        self.coeffs = coeffs
        self.m, self.k = coeffs.shape
        self.cols = [t for t in range(self.k) if coeffs[:, t].any()]
        self.combined = self.m <= COMBINE_MAX_ROWS
        self.tables: List[np.ndarray] = (
            _combined_tables(coeffs, self.cols, pair_table8)
            if self.combined
            else []
        )

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    def apply(self, b: np.ndarray, check: bool = True) -> np.ndarray:
        """``coeffs @ b`` over GF(256); ``b`` is (k, n) uint8."""
        if check:
            b = np.ascontiguousarray(b, dtype=np.uint8)
            if b.ndim != 2 or b.shape[0] != self.k:
                raise ValueError(
                    f"plan shape mismatch: {self.coeffs.shape} @ {b.shape}"
                )
        n = b.shape[1]
        if n % 2:
            # Pad to an even byte count so the uint16 view is exact; the
            # padded column is zero and multiplies to zero.
            padded = np.zeros((self.k, n + 1), dtype=np.uint8)
            padded[:, :n] = b
            return np.ascontiguousarray(self.apply(padded, check=False)[:, :n])
        out = np.zeros((self.m, n), dtype=np.uint8)
        if n == 0:
            return out
        b16 = b.view(np.uint16)
        out16 = out.view(np.uint16)
        if self.combined:
            _apply_combined(self.tables, self.cols, b16, out16)
        else:
            _apply_rows8(self.coeffs, self.cols, b16, out16)
        return out


class MulPlan16:
    """A reusable bulk-multiply plan for a fixed GF(2^16) matrix.

    Same shape contract as :func:`repro.gf.field16.gf16_matmul`:
    ``apply(b)`` with ``b`` of uint16 symbols, (k, L) -> (m, L).
    """

    def __init__(self, coeffs: np.ndarray):
        coeffs = np.ascontiguousarray(coeffs, dtype=np.uint16)
        if coeffs.ndim != 2:
            raise ValueError("MulPlan16 expects a 2-D coefficient matrix")
        self.coeffs = coeffs
        self.m, self.k = coeffs.shape
        self.cols = [t for t in range(self.k) if coeffs[:, t].any()]
        self.packed = self.m <= PACK_MAX_ROWS
        self.combined = not self.packed and self.m <= COMBINE_MAX_ROWS
        if self.packed:
            self.tables: List[np.ndarray] = _packed_tables(
                coeffs, self.cols, mul_table16
            )
        elif self.combined:
            self.tables = _combined_tables(coeffs, self.cols, mul_table16)
        else:
            self.tables = []

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    def apply(self, b: np.ndarray, check: bool = True) -> np.ndarray:
        if check:
            b = np.ascontiguousarray(b, dtype=np.uint16)
            if b.ndim != 2 or b.shape[0] != self.k:
                raise ValueError(
                    f"plan shape mismatch: {self.coeffs.shape} @ {b.shape}"
                )
        out = np.zeros((self.m, b.shape[1]), dtype=np.uint16)
        if b.shape[1] == 0:
            return out
        if self.packed:
            _apply_packed(self.tables, self.cols, b, out)
        elif self.combined:
            _apply_combined(self.tables, self.cols, b, out)
        else:
            _apply_rows16(self.coeffs, self.cols, b, out)
        return out

    def apply_rows(self, rows: List[np.ndarray]) -> np.ndarray:
        """:meth:`apply` over k separate 1-D symbol arrays, unstacked.

        The gather kernels index input rows independently, so callers
        holding k equal-length chunks need not pay a (k, L) stacking
        copy — each row is gathered straight from its own buffer.
        """
        if len(rows) != self.k:
            raise ValueError(f"plan expects {self.k} rows, got {len(rows)}")
        n16 = len(rows[0])
        out = np.zeros((self.m, n16), dtype=np.uint16)
        if n16 == 0:
            return out
        if self.packed:
            _apply_packed(self.tables, self.cols, rows, out)
        elif self.combined:
            _apply_combined(self.tables, self.cols, rows, out)
        else:
            _apply_rows16(self.coeffs, self.cols, rows, out)
        return out


# ---------------------------------------------------------------------------
# global plan cache
# ---------------------------------------------------------------------------

_plan8_cache: "OrderedDict[Tuple[Tuple[int, int], bytes], MulPlan8]" = OrderedDict()
_plan16_cache: "OrderedDict[Tuple[Tuple[int, int], bytes], MulPlan16]" = OrderedDict()


def _plan_lookup(cache: OrderedDict, a: np.ndarray, cls):
    key = (a.shape, a.tobytes())
    plan = cache.get(key)
    if plan is None:
        _COUNTERS["plan_misses"] += 1
        plan = cls(a)
        cache[key] = plan
        while len(cache) > _PLAN_CACHE_MAX:
            cache.popitem(last=False)
            _COUNTERS["plan_evictions"] += 1
    else:
        _COUNTERS["plan_hits"] += 1
        cache.move_to_end(key)
    return plan


def plan_for_matrix(a: np.ndarray) -> MulPlan8:
    """The cached :class:`MulPlan8` for this coefficient matrix.

    Keyed by the matrix bytes in a small LRU, so repeated matmuls against
    the same generator / inverse (every stripe of a code, every degraded
    read of the same erasure pattern) reuse one table set.
    """
    return _plan_lookup(_plan8_cache, np.ascontiguousarray(a, dtype=np.uint8), MulPlan8)


def plan_for_matrix16(a: np.ndarray) -> MulPlan16:
    """The cached :class:`MulPlan16` for this GF(2^16) matrix."""
    return _plan_lookup(
        _plan16_cache, np.ascontiguousarray(a, dtype=np.uint16), MulPlan16
    )


def clear_plan_caches() -> None:
    """Drop every cached plan, coefficient table, and pattern entry, and
    zero the hit/miss counters (tests / memory)."""
    _plan8_cache.clear()
    _plan16_cache.clear()
    _pair8_cache.clear()
    _full16_cache.clear()
    for pc in list(_pattern_caches):
        pc.clear()
    for key in _COUNTERS:
        _COUNTERS[key] = 0


# ---------------------------------------------------------------------------
# fused decode: composed recovery matrices keyed by failure pattern
# ---------------------------------------------------------------------------

#: Every live PatternCache, so :func:`cache_stats` can report aggregate
#: pattern residency without the codes layer registering anything.
_pattern_caches: "weakref.WeakSet" = weakref.WeakSet()


class PatternCache:
    """LRU of composed decode plans keyed by failure pattern.

    One per code instance. The key is the caller's
    ``(available-tuple, erased-tuple)`` pair; the value is a
    :class:`FusedDecode8` / :class:`FusedDecode16` holding the composed
    ``gen_rows @ inv`` recovery matrix and its lazily built multiply
    plan. Capacity is small on purpose: a repair burst replays a handful
    of patterns (one per failed chunk position) thousands of times.
    """

    def __init__(self, capacity: int = _PATTERN_CACHE_MAX):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        _pattern_caches.add(self)

    def get(self, key: Tuple):
        entry = self._entries.get(key)
        if entry is None:
            _COUNTERS["pattern_misses"] += 1
            return None
        _COUNTERS["pattern_hits"] += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Tuple, value) -> None:
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            _COUNTERS["pattern_evictions"] += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return sum(int(getattr(v, "nbytes", 0)) for v in self._entries.values())


class FusedDecode8:
    """A composed GF(2^8) recovery transform for one failure pattern.

    Holds ``R = generator[erased] @ inv(generator[use])`` — an (e, k)
    matrix composed in the symbol domain — so decode is a single (e, k)
    chunk-domain product over the ``k`` survivor chunks listed in
    ``use`` instead of a (k, k) data-recovery matmul chained into an
    (e, k) re-encode. The multiply plan is built lazily on the first
    bulk apply and owned by this object (not the global plan LRU), so a
    churn of failure patterns cannot evict pinned encode plans.
    """

    __slots__ = ("matrix", "use", "erased", "_plan")

    def __init__(self, matrix: np.ndarray, use, erased):
        self.matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        self.use = tuple(int(i) for i in use)
        self.erased = tuple(int(i) for i in erased)
        self._plan: Optional[MulPlan8] = None

    @property
    def nbytes(self) -> int:
        n = self.matrix.nbytes
        if self._plan is not None:
            n += self._plan.nbytes
        return n

    def apply(self, b: np.ndarray) -> np.ndarray:
        """``R @ b``: (k, L) stacked survivor chunks -> (e, L) erased rows."""
        if b.shape[1] >= KERNEL_MIN_BYTES:
            if self._plan is None:
                self._plan = MulPlan8(self.matrix)
            return self._plan.apply(b)
        from repro.gf.matrix import gf_matmul_reference

        return gf_matmul_reference(self.matrix, b)


class FusedDecode16:
    """GF(2^16) sibling of :class:`FusedDecode8` (uint16 symbol chunks)."""

    __slots__ = ("matrix", "use", "erased", "_plan")

    def __init__(self, matrix: np.ndarray, use, erased):
        self.matrix = np.ascontiguousarray(matrix, dtype=np.uint16)
        self.use = tuple(int(i) for i in use)
        self.erased = tuple(int(i) for i in erased)
        self._plan: Optional[MulPlan16] = None

    @property
    def nbytes(self) -> int:
        n = self.matrix.nbytes
        if self._plan is not None:
            n += self._plan.nbytes
        return n

    def apply(self, b: np.ndarray) -> np.ndarray:
        if 2 * b.shape[1] >= KERNEL_MIN_BYTES:
            if self._plan is None:
                self._plan = MulPlan16(self.matrix)
            return self._plan.apply(b)
        from repro.gf.field16 import gf16_matmul_reference

        return gf16_matmul_reference(self.matrix, b)

    def apply_rows(self, rows: List[np.ndarray]) -> np.ndarray:
        """:meth:`apply` over k separate symbol arrays (no stacking copy)."""
        if rows and 2 * len(rows[0]) >= KERNEL_MIN_BYTES:
            if self._plan is None:
                self._plan = MulPlan16(self.matrix)
            return self._plan.apply_rows(rows)
        from repro.gf.field16 import gf16_matmul_reference

        return gf16_matmul_reference(self.matrix, np.stack(rows))


# ---------------------------------------------------------------------------
# scale-and-accumulate (the transcode primitive)
# ---------------------------------------------------------------------------

def gf_scale_xor(acc: np.ndarray, c: int, x: np.ndarray) -> np.ndarray:
    """``acc ^= c * x`` over GF(2^8), in place, blocked for bulk chunks.

    The inner step of every parity merge in the transcoder: one
    coefficient streamed over one contiguous chunk. Falls back to the
    byte-table gather for small or odd-length operands.
    """
    c = int(c)
    if c == 0:
        return acc
    if c == 1:
        np.bitwise_xor(acc, x, out=acc)
        return acc
    n = acc.shape[-1]
    if (
        acc.ndim != 1
        or n < KERNEL_MIN_BYTES
        or n % 2
        or not acc.flags.c_contiguous
        or not x.flags.c_contiguous
    ):
        np.bitwise_xor(acc, _MUL_TABLE[c, x], out=acc)
        return acc
    table = pair_table8(c)
    a16 = acc.view(np.uint16)
    x16 = x.view(np.uint16)
    w = max(1024, TILE_BYTES // 4)
    tmp = np.empty(min(w, a16.shape[0]), dtype=np.uint16)
    for start in range(0, a16.shape[0], w):
        stop = min(start + w, a16.shape[0])
        ww = stop - start
        np.take(table, x16[start:stop], out=tmp[:ww], mode="clip")
        np.bitwise_xor(a16[start:stop], tmp[:ww], out=a16[start:stop])
    return acc


def gf16_scale_xor(acc: np.ndarray, c: int, x: np.ndarray) -> np.ndarray:
    """``acc ^= c * x`` over GF(2^16), in place, for uint16 symbol arrays.

    The GF(2^16) sibling of :func:`gf_scale_xor`, used by the wide-stripe
    parity merge: one coefficient streamed over one contiguous symbol
    chunk through the cached full-symbol table. Falls back to
    :func:`repro.gf.field16.gf16_mul` for small or strided operands.
    """
    c = int(c)
    if c == 0:
        return acc
    if c == 1:
        np.bitwise_xor(acc, x, out=acc)
        return acc
    n = acc.shape[-1]
    if (
        acc.ndim != 1
        or 2 * n < KERNEL_MIN_BYTES
        or not acc.flags.c_contiguous
        or not x.flags.c_contiguous
    ):
        from repro.gf.field16 import gf16_mul

        np.bitwise_xor(acc, gf16_mul(np.uint16(c), x), out=acc)
        return acc
    table = mul_table16(c)
    w = max(1024, TILE_BYTES // 4)
    tmp = np.empty(min(w, n), dtype=np.uint16)
    for start in range(0, n, w):
        stop = min(start + w, n)
        ww = stop - start
        np.take(table, x[start:stop], out=tmp[:ww], mode="clip")
        np.bitwise_xor(acc[start:stop], tmp[:ww], out=acc[start:stop])
    return acc


def gf_scale(c: int, x: np.ndarray) -> np.ndarray:
    """``c * x`` over GF(2^8) for a contiguous chunk (allocating)."""
    c = int(c)
    if c == 0:
        return np.zeros_like(x)
    if c == 1:
        return x.copy()
    out = np.zeros_like(x)
    return gf_scale_xor(out, c, x)


def cache_stats() -> Dict[str, int]:
    """Introspection for tests, the bench harness, and ``repro report``.

    Entry/byte counts are point-in-time; the ``*_hits`` / ``*_misses`` /
    ``*_evictions`` counters are cumulative since process start (or the
    last :func:`clear_plan_caches`).
    """
    pattern_entries = 0
    pattern_bytes = 0
    for pc in list(_pattern_caches):
        pattern_entries += len(pc)
        pattern_bytes += pc.nbytes
    stats = {
        "plans8": len(_plan8_cache),
        "plans16": len(_plan16_cache),
        "coeff_tables8": len(_pair8_cache),
        "coeff_tables16": len(_full16_cache),
        "plan8_bytes": sum(p.nbytes for p in _plan8_cache.values()),
        "plan16_bytes": sum(p.nbytes for p in _plan16_cache.values()),
        "pattern_caches": len(_pattern_caches),
        "pattern_entries": pattern_entries,
        "pattern_bytes": pattern_bytes,
        "coeff_table_bytes": (
            sum(t.nbytes for t in _pair8_cache.values())
            + sum(t.nbytes for t in _full16_cache.values())
        ),
    }
    stats.update(_COUNTERS)
    stats["resident_bytes"] = (
        stats["plan8_bytes"]
        + stats["plan16_bytes"]
        + stats["pattern_bytes"]
        + stats["coeff_table_bytes"]
    )
    return stats
