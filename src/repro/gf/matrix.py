"""Matrix algebra over GF(2^8).

Matrices are ``numpy.uint8`` 2-D arrays. These routines back every
encoder/decoder in :mod:`repro.codes`: encoding is a matmul of the
generator against the data, decoding is a solve against the surviving
rows of the generator.
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import _EXP, _INV_TABLE, _LOG, FIELD_ORDER, _MUL_TABLE, gf_inv
from repro.gf.kernels import KERNEL_MIN_BYTES, plan_for_matrix


class SingularMatrixError(ValueError):
    """Raised when inverting / solving with a singular GF matrix."""


def gf_identity(n: int) -> np.ndarray:
    """n x n identity matrix over GF(256)."""
    return np.eye(n, dtype=np.uint8)


def gf_matmul_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference matrix product over GF(256) (exact, fully vectorised).

    Materialises the full ``(m, n, k)`` table-lookup product before the
    XOR-reduction — ideal for small matrices, quadratic-in-memory for
    bulk chunk data. :func:`gf_matmul` dispatches here below the kernel
    threshold; the differential tests pin the fast path to this one.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gf_matmul expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    # products[i, j, t] = a[i, t] * b[t, j]
    products = _MUL_TABLE[a[:, None, :], b.T[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=2)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256), dispatching on operand size.

    Shapes follow numpy matmul rules for 2-D inputs: (m, k) @ (k, n).
    Small products (coefficient algebra: inverses, rank checks, narrow
    solves) take :func:`gf_matmul_reference`; bulk chunk data dispatches
    to the cache-blocked table kernels in :mod:`repro.gf.kernels`, which
    are bit-identical but never materialise an ``(m, n, k)``
    intermediate.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gf_matmul expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    if b.shape[1] >= KERNEL_MIN_BYTES and a.shape[0] > 0:
        return plan_for_matrix(a).apply(b)
    return gf_matmul_reference(a, b)


def gf_matvec(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(256)."""
    x = np.asarray(x, dtype=np.uint8)
    return gf_matmul(a, x.reshape(-1, 1)).reshape(-1)


def gf_matinv(a: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises:
        SingularMatrixError: if the matrix is not invertible.
    """
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("gf_matinv expects a square matrix")
    n = a.shape[0]
    # Work in an augmented [A | I] matrix.
    aug = np.concatenate([a.copy(), gf_identity(n)], axis=1)
    for col in range(n):
        # Find a pivot at or below the diagonal.
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError("matrix is singular over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # Normalise the pivot row.
        inv_pivot = gf_inv(int(aug[col, col]))
        aug[col] = _MUL_TABLE[aug[col], inv_pivot]
        # Eliminate the column from every other row.
        factors = aug[:, col].copy()
        factors[col] = 0
        rows = np.nonzero(factors)[0]
        if rows.size:
            aug[rows] ^= _MUL_TABLE[factors[rows][:, None], aug[col][None, :]]
    return aug[:, n:]


def gf_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve A @ X = B over GF(256); B may be a vector or matrix."""
    b = np.asarray(b, dtype=np.uint8)
    inv = gf_matinv(a)
    if b.ndim == 1:
        return gf_matvec(inv, b)
    return gf_matmul(inv, b)


def gf_rank(a: np.ndarray) -> int:
    """Rank of a matrix over GF(256) (row-echelon elimination)."""
    a = np.asarray(a, dtype=np.uint8).copy()
    rows, cols = a.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(a[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            a[[rank, pivot]] = a[[pivot, rank]]
        inv_pivot = gf_inv(int(a[rank, col]))
        a[rank] = _MUL_TABLE[a[rank], inv_pivot]
        factors = a[:, col].copy()
        factors[rank] = 0
        nz = np.nonzero(factors)[0]
        if nz.size:
            a[nz] ^= _MUL_TABLE[factors[nz][:, None], a[rank][None, :]]
        rank += 1
    return rank


def vandermonde(points, n_rows: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = points[j] ** i over GF(256).

    Args:
        points: iterable of distinct nonzero field elements (columns).
        n_rows: number of rows (powers 0 .. n_rows-1).
    """
    pts = [int(p) for p in points]
    if len(set(pts)) != len(pts):
        raise ValueError("Vandermonde evaluation points must be distinct")
    if n_rows == 0 or not pts:
        return np.zeros((n_rows, len(pts)), dtype=np.uint8)
    # p**i == exp[(i * log[p]) % order]; one outer product + one gather
    # instead of the n_rows * len(pts) scalar gf_pow loop.
    arr = np.asarray(pts, dtype=np.int64)
    exponents = (np.arange(n_rows, dtype=np.int64)[:, None] * _LOG[arr][None, :]) % (
        FIELD_ORDER
    )
    out = _EXP[exponents].astype(np.uint8)
    zero_cols = arr == 0
    if zero_cols.any():
        out[:, zero_cols] = 0
        out[0, zero_cols] = 1  # 0**0 == 1, matching gf_pow
    return out


def cauchy_matrix(xs, ys) -> np.ndarray:
    """Cauchy matrix C[i, j] = 1 / (xs[i] + ys[j]) over GF(256).

    Every square submatrix of a Cauchy matrix is nonsingular, which makes
    ``[I | C^T]`` a systematic MDS generator — the textbook construction
    for Reed-Solomon in storage systems.

    Args:
        xs, ys: disjoint sequences of distinct field elements.
    """
    xs = [int(x) for x in xs]
    ys = [int(y) for y in ys]
    if set(xs) & set(ys):
        raise ValueError("Cauchy xs and ys must be disjoint")
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("Cauchy xs and ys must each be distinct")
    if not xs or not ys:
        return np.zeros((len(xs), len(ys)), dtype=np.uint8)
    # One XOR outer product + one inverse-table gather replaces the
    # len(xs) * len(ys) scalar loop; disjointness guarantees no zeros.
    diff = np.asarray(xs, dtype=np.int64)[:, None] ^ np.asarray(ys, dtype=np.int64)
    return _INV_TABLE[diff].astype(np.uint8)


def is_superregular(m: np.ndarray) -> bool:
    """True if every square submatrix of ``m`` is nonsingular.

    This is the property a parity block P must have for ``[I | P]`` to be
    an MDS generator. Exponential in min(m.shape); intended for the small
    parity matrices (r <= 5) used by the codes in this repo.
    """
    from itertools import combinations

    m = np.asarray(m, dtype=np.uint8)
    rows, cols = m.shape
    max_sq = min(rows, cols)
    for size in range(1, max_sq + 1):
        for rsel in combinations(range(rows), size):
            sub_rows = m[list(rsel), :]
            for csel in combinations(range(cols), size):
                sub = sub_rows[:, list(csel)]
                if gf_rank(sub) < size:
                    return False
    return True
