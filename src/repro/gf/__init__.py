"""Galois-field GF(2^8) arithmetic substrate.

All erasure codes in :mod:`repro.codes` are linear codes over GF(256).
This package provides the field itself (log/exp tables, vectorised
add/mul/div over numpy uint8 arrays) and the matrix algebra built on it
(matmul, inversion, rank, Vandermonde and Cauchy constructions).
"""

from repro.gf.field import GF256, gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.gf.kernels import (
    MulPlan8,
    MulPlan16,
    clear_plan_caches,
    gf_scale,
    gf_scale_xor,
    plan_for_matrix,
    plan_for_matrix16,
)
from repro.gf.matrix import (
    SingularMatrixError,
    cauchy_matrix,
    gf_identity,
    gf_matinv,
    gf_matmul,
    gf_matmul_reference,
    gf_matvec,
    gf_rank,
    gf_solve,
    is_superregular,
    vandermonde,
)

__all__ = [
    "GF256",
    "MulPlan8",
    "MulPlan16",
    "clear_plan_caches",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_scale",
    "gf_scale_xor",
    "gf_matmul",
    "gf_matmul_reference",
    "plan_for_matrix",
    "plan_for_matrix16",
    "gf_matvec",
    "gf_matinv",
    "gf_identity",
    "gf_solve",
    "gf_rank",
    "vandermonde",
    "cauchy_matrix",
    "is_superregular",
    "SingularMatrixError",
]
