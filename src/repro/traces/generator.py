"""Synthetic hourly ingest series.

Real cluster ingest has a strong diurnal cycle, a weekly dip, and
heavy-ish multiplicative noise. The generator is seeded and returns
plain numpy arrays in PB/hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

HOURS_PER_DAY = 24


@dataclass
class HourlySeries:
    """An hourly time series with its starting hour offset."""

    values: np.ndarray
    start_hour: int = 0

    def __len__(self) -> int:
        return len(self.values)

    def window(self, start: int, length: int) -> np.ndarray:
        return self.values[start : start + length]

    def shifted(self, hours: int) -> np.ndarray:
        """The series delayed by ``hours`` (values from ``hours`` ago).

        Requires the series to have been generated with enough warm-up
        history; indices below zero clamp to the series start.
        """
        if hours == 0:
            return self.values
        out = np.empty_like(self.values)
        out[:hours] = self.values[0]
        out[hours:] = self.values[:-hours] if hours < len(self.values) else self.values[0]
        return out


@dataclass
class IngestGenerator:
    """Generates PB/hour ingest with diurnal + weekly structure."""

    base_pb_per_hour: float = 3.0
    diurnal_amplitude: float = 0.25
    weekly_amplitude: float = 0.10
    noise_sigma: float = 0.08
    seed: int = 0

    def generate(self, hours: int, warmup_hours: int = 0) -> HourlySeries:
        """``warmup_hours`` of history precede the reported window so that
        delayed transcode flows have real ingest to look back at."""
        total = hours + warmup_hours
        rng = np.random.default_rng(self.seed)
        t = np.arange(total, dtype=float)
        diurnal = 1.0 + self.diurnal_amplitude * np.sin(
            2 * np.pi * (t % HOURS_PER_DAY) / HOURS_PER_DAY - np.pi / 2
        )
        weekly = 1.0 + self.weekly_amplitude * np.sin(
            2 * np.pi * (t % (7 * HOURS_PER_DAY)) / (7 * HOURS_PER_DAY)
        )
        noise = rng.lognormal(0.0, self.noise_sigma, size=total)
        values = self.base_pb_per_hour * diurnal * weekly * noise
        return HourlySeries(values=values, start_hour=warmup_hours)


@dataclass
class TransitionRateGenerator:
    """File transitions per hour for a cluster (Fig 4).

    Millions of transitions/hour = ingest volume / mean file size, summed
    over the transition chain length, with pending-queue burstiness.
    """

    ingest: IngestGenerator = field(default_factory=IngestGenerator)
    mean_file_mb: float = 256.0
    transitions_per_file: float = 2.2
    burstiness_sigma: float = 0.35
    seed: int = 1

    def generate(self, hours: int) -> np.ndarray:
        """Transitions per hour, in millions."""
        series = self.ingest.generate(hours)
        rng = np.random.default_rng(self.seed)
        files_per_hour = series.values * 1e9 / self.mean_file_mb  # PB -> MB
        bursts = rng.lognormal(0.0, self.burstiness_sigma, size=hours)
        return files_per_hour * self.transitions_per_file * bursts / 1e6


@dataclass
class TransitionQueueModel:
    """Pending + performed transition dynamics (Fig 4's y-axis).

    Transitions are *demanded* as data ages past its schedule, but the
    cluster only *performs* them as fast as its transcode capacity allows
    — during ingest peaks a backlog (pending) builds and drains later.
    Fig 4 plots pending + performed per hour, which is what
    :meth:`series` returns.
    """

    #: cluster transcode capacity, millions of transitions per hour
    capacity_millions: float = 8.0

    def series(self, demanded: np.ndarray) -> np.ndarray:
        """pending+performed per hour for a demanded-transitions series."""
        pending = 0.0
        out = np.zeros_like(demanded, dtype=float)
        for i, demand in enumerate(demanded):
            queue = pending + float(demand)
            performed = min(queue, self.capacity_millions)
            pending = queue - performed
            out[i] = performed + pending
        return out


def four_cluster_rates(hours: int = 24 * 7, seed: int = 7) -> List[np.ndarray]:
    """Transition series (pending+performed, millions/h) for four clusters."""
    bases = [5.2, 3.1, 1.8, 0.9]  # PB/h ingest scale per cluster
    out = []
    for i, base in enumerate(bases):
        gen = TransitionRateGenerator(
            ingest=IngestGenerator(base_pb_per_hour=base, seed=seed + i),
            seed=seed + 10 + i,
        )
        demanded = gen.generate(hours)
        queue = TransitionQueueModel(capacity_millions=1.6 * demanded.mean())
        out.append(queue.series(demanded))
    return out
