"""Models of the two production services analysed in Figs 1 and 12.

**Service A** (the largest data service, Fig 1): ingest in 3-r; files
split into two classes. One class transcodes to a narrow RS (~15-wide)
after about a day, then to a medium LRC (~40-wide) after about a month;
the other goes straight to the medium LRC. Medium-LRC data later moves to
a wide LRC (~60-80-wide).

**Service B**: ingest in 3-r, one single transcode to a very wide LRC
(~80-wide).

Morph counterparts use CC-friendly parameters (integral width multiples,
``r_global <= r - 1``) chosen per §5.2, ingest in Hy(1, <first EC>), get
the first transition free, and do subsequent transitions with CC/LRCC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, RedundancyScheme, Replication
from repro.traces.generator import IngestGenerator

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class TransitionFlow:
    """One transcode step of a file class: from -> to after a delay."""

    label: str
    source: RedundancyScheme
    target: RedundancyScheme
    delay_hours: int
    #: fraction of the service's ingested bytes that take this step
    fraction: float


@dataclass
class ServiceModel:
    """A data service: ingest process + its per-class transition chains."""

    name: str
    ingest: IngestGenerator
    #: scheme newly ingested data lands in (baseline)
    baseline_ingest_scheme: RedundancyScheme
    #: per-class Morph ingest schemes, weighted like the first transitions
    morph_ingest_schemes: List = field(default_factory=list)  # (fraction, scheme)
    baseline_flows: List[TransitionFlow] = field(default_factory=list)
    morph_flows: List[TransitionFlow] = field(default_factory=list)

    def max_delay_hours(self) -> int:
        delays = [f.delay_hours for f in self.baseline_flows + self.morph_flows]
        return max(delays) if delays else 0


# -- CC-friendly scheme constants used by both services ---------------------

NARROW_RS = ECScheme(CodeKind.RS, 12, 15)
NARROW_CC = ECScheme(CodeKind.CC, 12, 15)
MED_LRC = ECScheme(CodeKind.LRC, 36, 41, local_groups=3, r_global=2)
MED_LRCC = ECScheme(CodeKind.LRCC, 36, 41, local_groups=3, r_global=2)
WIDE_LRC = ECScheme(CodeKind.LRC, 72, 80, local_groups=6, r_global=2)
WIDE_LRCC = ECScheme(CodeKind.LRCC, 72, 80, local_groups=6, r_global=2)


def service_a(seed: int = 11, base_pb_per_hour: float = 3.2) -> ServiceModel:
    """The paper's Service A (same application as Fig 1).

    60% of bytes: 3-r -> narrow RS (1 day) -> medium LRC (30 days)
    -> wide LRC (90 days). 40% of bytes: 3-r -> medium LRC (2 days)
    -> wide LRC (90 days).
    """
    ingest = IngestGenerator(base_pb_per_hour=base_pb_per_hour, seed=seed)
    # Ingest split between the two file classes (by bytes).
    frac_rs, frac_lrc = 0.6, 0.4
    # Per-transition byte fractions (of *total* ingest): most data is
    # deleted before it ever cools enough to transcode, so each later
    # stage sees a diminishing share. Calibrated so baseline transcode IO
    # is ~25% of total (Fig 1: transcode is 20-33% of 5-13 PB/h).
    f_narrow, f_narrow_to_med, f_direct_med, f_to_wide = 0.18, 0.08, 0.08, 0.10
    baseline_flows = [
        TransitionFlow("3r->narrowRS", Replication(3), NARROW_RS, 1 * HOURS_PER_DAY, f_narrow),
        TransitionFlow("narrowRS->medLRC", NARROW_RS, MED_LRC, 30 * HOURS_PER_DAY, f_narrow_to_med),
        TransitionFlow("3r->medLRC", Replication(3), MED_LRC, 2 * HOURS_PER_DAY, f_direct_med),
        TransitionFlow("medLRC->wideLRC", MED_LRC, WIDE_LRC, 90 * HOURS_PER_DAY, f_to_wide),
    ]
    hy_narrow = HybridScheme(1, NARROW_CC)
    hy_med = HybridScheme(1, MED_LRCC)
    morph_flows = [
        TransitionFlow("Hy->narrowCC", hy_narrow, NARROW_CC, 1 * HOURS_PER_DAY, f_narrow),
        TransitionFlow("narrowCC->medLRCC", NARROW_CC, MED_LRCC, 30 * HOURS_PER_DAY, f_narrow_to_med),
        TransitionFlow("Hy->medLRCC", hy_med, MED_LRCC, 2 * HOURS_PER_DAY, f_direct_med),
        TransitionFlow("medLRCC->wideLRCC", MED_LRCC, WIDE_LRCC, 90 * HOURS_PER_DAY, f_to_wide),
    ]
    return ServiceModel(
        name="Service A",
        ingest=ingest,
        baseline_ingest_scheme=Replication(3),
        morph_ingest_schemes=[(frac_rs, hy_narrow), (frac_lrc, hy_med)],
        baseline_flows=baseline_flows,
        morph_flows=morph_flows,
    )


def service_b(seed: int = 23, base_pb_per_hour: float = 1.6) -> ServiceModel:
    """The paper's Service B: one transition, 3-r -> very wide LRC."""
    ingest = IngestGenerator(base_pb_per_hour=base_pb_per_hour, seed=seed)
    # 60% of ingested bytes survive long enough to be transcoded.
    survive = 0.6
    baseline_flows = [
        TransitionFlow("3r->wideLRC", Replication(3), WIDE_LRC, 3 * HOURS_PER_DAY, survive),
    ]
    hy_wide = HybridScheme(1, WIDE_LRCC)
    morph_flows = [
        TransitionFlow("Hy->wideLRCC", hy_wide, WIDE_LRCC, 3 * HOURS_PER_DAY, survive),
    ]
    return ServiceModel(
        name="Service B",
        ingest=ingest,
        baseline_ingest_scheme=Replication(3),
        morph_ingest_schemes=[(1.0, hy_wide)],
        baseline_flows=baseline_flows,
        morph_flows=morph_flows,
    )
