"""Production-trace models and analyzers.

The paper's headline numbers (Figs 1 and 12) are month-long, hourly
ingest+transcode IO series from Google storage clusters, re-costed under
Morph. The traces themselves are proprietary, so this package generates
synthetic hourly series calibrated to the paper's magnitudes (PB/h
ingest, diurnal swing, transcode share of total IO) and feeds them
through exactly the arithmetic the paper describes: per-hour ingested
volume x per-transition IO multipliers from
:mod:`repro.codes.costmodel`.
"""

from repro.traces.generator import HourlySeries, IngestGenerator
from repro.traces.services import (
    ServiceModel,
    TransitionFlow,
    service_a,
    service_b,
)
from repro.traces.analyzer import TraceAnalysis, analyze_service, compare_systems
from repro.traces.hdd import HddTrendModel

__all__ = [
    "HourlySeries",
    "IngestGenerator",
    "ServiceModel",
    "TransitionFlow",
    "service_a",
    "service_b",
    "TraceAnalysis",
    "analyze_service",
    "compare_systems",
    "HddTrendModel",
]
