"""HDD bandwidth-per-capacity trend model (Fig 5).

Per-HDD capacity has grown ~11.8%/year while sustained bandwidth grew
only ~5.1%/year, so bandwidth-per-TB decays ~8.5%/year (the paper fits
the userbenchmark data [4]). HAMR-class capacities (32-40 TB) with
unchanged head bandwidth push the ratio off a cliff — the motivation for
minimising IO-per-byte-stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: (year, capacity_tb, sustained_bandwidth_mb_s) anchor models per year,
#: consistent with the paper's cited growth rates.
HDD_ANCHORS: List[Tuple[int, float, float]] = [
    (2014, 4.0, 150.0),
    (2015, 5.0, 156.0),
    (2016, 6.0, 165.0),
    (2017, 8.0, 176.0),
    (2018, 10.0, 185.0),
    (2019, 12.0, 195.0),
    (2020, 14.0, 205.0),
    (2021, 16.0, 215.0),
    (2022, 18.0, 226.0),
    (2023, 20.0, 237.0),
    (2024, 24.0, 250.0),
]

#: Speculative HAMR points: big capacity jumps, near-flat bandwidth.
HAMR_SPECULATED: List[Tuple[int, float, float]] = [
    (2025, 32.0, 260.0),
    (2026, 36.0, 266.0),
    (2027, 40.0, 272.0),
]


@dataclass
class HddTrendModel:
    """Fitted exponential trends for capacity, bandwidth and their ratio."""

    capacity_growth: float = 0.118  # ~11.8 %/year
    bandwidth_growth: float = 0.051  # ~5.1 %/year

    @property
    def ratio_decay(self) -> float:
        """Bandwidth-per-TB decay per year (~8.5 %/year, paper §2)."""
        return 1.0 - (1.0 + self.bandwidth_growth) / (1.0 + self.capacity_growth)

    def bandwidth_per_tb(self, year: int, base_year: int = 2014) -> float:
        """Modelled MB/s per TB for a drive of the given model year."""
        base_cap, base_bw = 4.0, 150.0
        years = year - base_year
        cap = base_cap * (1.0 + self.capacity_growth) ** years
        bw = base_bw * (1.0 + self.bandwidth_growth) ** years
        return bw / cap

    @staticmethod
    def measured_series() -> Tuple[np.ndarray, np.ndarray]:
        """(years, MB/s-per-TB) from the anchor table."""
        years = np.array([y for y, _c, _b in HDD_ANCHORS])
        ratio = np.array([b / c for _y, c, b in HDD_ANCHORS])
        return years, ratio

    @staticmethod
    def speculated_series() -> Tuple[np.ndarray, np.ndarray]:
        years = np.array([y for y, _c, _b in HAMR_SPECULATED])
        ratio = np.array([b / c for _y, c, b in HAMR_SPECULATED])
        return years, ratio

    def fitted_decay_from_anchors(self) -> float:
        """Annual decay rate implied by the anchor table (log-linear fit)."""
        years, ratio = self.measured_series()
        slope = np.polyfit(years - years[0], np.log(ratio), 1)[0]
        return 1.0 - float(np.exp(slope))
