"""Trace-driven replay: run a service's trace through the functional DFS.

Figs 1/12 cost traces analytically; this module *executes* a scaled-down
version of the same workload against :class:`MorphFS` / `BaselineDFS`,
closing the loop between the trace layer and the system layer: every
ingest writes real files, every scheduled transition runs the real
transcode machinery, deletions reclaim real capacity, and the resulting
hourly IO ledger can be compared against the analytical prediction.

Scaling: one simulated "hour" ingests a handful of small files (width-
reduced schemes so a 23-node cluster suffices); per-byte IO *multipliers*
are scale-free, so reductions measured here should echo the analytical
Fig 1 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, RedundancyScheme, Replication
from repro.dfs import BaselineDFS, MorphFS

KB = 1024

# Width-reduced stand-ins for the production schemes (same overhead
# class, fits a 23-node cluster; see EXPERIMENTS.md substitutions).
NARROW_RS_S = ECScheme(CodeKind.RS, 6, 9)
NARROW_CC_S = ECScheme(CodeKind.CC, 6, 9)
MED_LRC_S = ECScheme(CodeKind.LRC, 12, 16, local_groups=2, r_global=2)
MED_LRCC_S = ECScheme(CodeKind.LRCC, 12, 16, local_groups=2, r_global=2)


@dataclass
class FileClass:
    """One file class: its lifetime chain and population weights."""

    name: str
    #: fraction of ingested files in this class
    ingest_fraction: float
    #: (age_hours, scheme) chain; the first entry is the ingest scheme
    chain: List[Tuple[int, RedundancyScheme]]
    #: probability a file of this class survives to each later stage
    survival: List[float]


def baseline_classes() -> List[FileClass]:
    """Service-A-like classes under the baseline system."""
    return [
        FileClass(
            name="rs-class",
            ingest_fraction=0.6,
            chain=[(0, Replication(3)), (2, NARROW_RS_S), (5, MED_LRC_S)],
            survival=[0.5, 0.4],
        ),
        FileClass(
            name="lrc-class",
            ingest_fraction=0.4,
            chain=[(0, Replication(3)), (3, MED_LRC_S)],
            survival=[0.5],
        ),
    ]


def morph_classes() -> List[FileClass]:
    """The same classes under Morph (hybrid ingest + CC/LRCC)."""
    return [
        FileClass(
            name="rs-class",
            ingest_fraction=0.6,
            chain=[(0, HybridScheme(1, NARROW_CC_S)), (2, NARROW_CC_S), (5, MED_LRCC_S)],
            survival=[0.5, 0.4],
        ),
        FileClass(
            name="lrc-class",
            ingest_fraction=0.4,
            chain=[(0, HybridScheme(1, MED_LRCC_S)), (3, MED_LRCC_S)],
            survival=[0.5],
        ),
    ]


@dataclass
class ReplayResult:
    """Hourly ledger of one replay run."""

    hours: int
    files_written: int = 0
    files_deleted: int = 0
    transitions: int = 0
    disk_io_series: List[float] = field(default_factory=list)
    capacity_series: List[float] = field(default_factory=list)
    total_disk_io: float = 0.0
    total_network_io: float = 0.0
    logical_bytes: float = 0.0


@dataclass
class TraceReplayer:
    """Drives a class-structured workload hour by hour through a DFS."""

    system: str  # "baseline" | "morph"
    hours: int = 12
    files_per_hour: int = 2
    file_kb: int = 48
    chunk_kb: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.system not in ("baseline", "morph"):
            raise ValueError("system must be 'baseline' or 'morph'")

    def run(self) -> ReplayResult:
        rng = np.random.default_rng(self.seed)
        if self.system == "baseline":
            fs = BaselineDFS(chunk_size=self.chunk_kb * KB, seed=self.seed)
            classes = baseline_classes()
        else:
            fs = MorphFS(
                chunk_size=self.chunk_kb * KB,
                future_widths=[6, 12],
                seed=self.seed,
            )
            classes = morph_classes()
        result = ReplayResult(hours=self.hours)
        weights = np.array([c.ingest_fraction for c in classes])
        weights = weights / weights.sum()
        live: Dict[str, dict] = {}
        counter = 0
        expected: Dict[str, np.ndarray] = {}
        for hour in range(self.hours):
            io_before = fs.metrics.disk_bytes_total
            # Ingest.
            for _ in range(self.files_per_hour):
                cls = classes[int(rng.choice(len(classes), p=weights))]
                name = f"f{counter:05d}"
                counter += 1
                data = rng.integers(0, 256, self.file_kb * KB, dtype=np.uint8)
                fs.write_file(name, data, cls.chain[0][1])
                live[name] = {"class": cls, "born": hour, "stage": 0}
                expected[name] = data
                result.files_written += 1
                result.logical_bytes += len(data)
            # Age-driven transitions / deletions.
            for name, state in list(live.items()):
                cls = state["class"]
                age = hour - state["born"]
                next_stage = state["stage"] + 1
                if next_stage >= len(cls.chain):
                    continue
                stage_age, scheme = cls.chain[next_stage]
                if age < stage_age:
                    continue
                survives = rng.random() < cls.survival[next_stage - 1]
                if not survives:
                    fs.delete_file(name)
                    del live[name]
                    del expected[name]
                    result.files_deleted += 1
                    continue
                fs.transcode(name, scheme)
                state["stage"] = next_stage
                result.transitions += 1
            result.disk_io_series.append(fs.metrics.disk_bytes_total - io_before)
            result.capacity_series.append(fs.capacity_used())
        # Byte-exact verification of every surviving file.
        for name, data in expected.items():
            out = fs.read_file(name)
            if not np.array_equal(out, data):
                raise AssertionError(f"replay diverged on {name}")
        result.total_disk_io = fs.metrics.disk_bytes_total
        result.total_network_io = fs.metrics.net_bytes_total
        return result


def compare_replay(hours: int = 12, files_per_hour: int = 2, seed: int = 0):
    """Run both systems over the identical workload; report reductions."""
    base = TraceReplayer("baseline", hours, files_per_hour, seed=seed).run()
    morph = TraceReplayer("morph", hours, files_per_hour, seed=seed).run()
    return {
        "baseline": base,
        "morph": morph,
        "disk_reduction": 1.0 - morph.total_disk_io / base.total_disk_io,
        "network_reduction": 1.0 - morph.total_network_io / base.total_network_io,
    }
