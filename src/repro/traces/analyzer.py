"""Per-hour IO accounting over service traces (Figs 1 and 12).

For each hour: ingest disk IO = ingested bytes x the ingest scheme's
disk multiplier; transcode disk IO = for every flow, the bytes ingested
``delay`` hours ago (times the flow's byte fraction) x the per-byte IO of
the planned transition strategy. Baseline transitions are RRW; Morph
transitions go through :class:`repro.core.planner.TranscodePlanner`
(free for hybrid -> EC, parities-only for CC/LRCC merges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.codes.costmodel import lrc_rrw_cost, rrw_cost
from repro.core.planner import TranscodePlanner
from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.traces.services import ServiceModel, TransitionFlow


@dataclass
class TraceAnalysis:
    """Hourly IO series for one service under one system."""

    service: str
    system: str  # "baseline" | "morph"
    hours: int
    ingest_io: np.ndarray = field(default=None)
    #: flow label -> hourly transcode disk IO (PB)
    transcode_io: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def transcode_total(self) -> np.ndarray:
        if not self.transcode_io:
            return np.zeros(self.hours)
        return np.sum(list(self.transcode_io.values()), axis=0)

    @property
    def total_io(self) -> np.ndarray:
        return self.ingest_io + self.transcode_total

    def mean_total(self) -> float:
        return float(np.mean(self.total_io))

    def mean_transcode(self) -> float:
        return float(np.mean(self.transcode_total))


def _baseline_transition_io(flow: TransitionFlow) -> float:
    """Per-byte disk IO of the baseline's RRW execution of a flow."""
    target = flow.target
    if isinstance(target, ECScheme) and target.kind in (CodeKind.LRC, CodeKind.LRCC):
        return lrc_rrw_cost(1, target.k, target.local_groups, target.r_global).disk_io
    if isinstance(target, ECScheme):
        return rrw_cost(1, 0, target.k, target.r).disk_io
    raise ValueError(f"baseline flow into {target}?")


def _morph_transition_io(planner: TranscodePlanner, flow: TransitionFlow) -> float:
    """Per-byte disk IO of Morph's planned execution of a flow."""
    step = planner.plan(flow.source, flow.target)
    return step.cost.disk_io


def _ingest_multiplier(scheme) -> float:
    if isinstance(scheme, Replication):
        return float(scheme.copies)
    if isinstance(scheme, HybridScheme):
        return scheme.storage_overhead
    if isinstance(scheme, ECScheme):
        return scheme.storage_overhead
    raise ValueError(f"unknown ingest scheme {scheme}")


def analyze_service(
    service: ServiceModel, system: str, hours: int = 24 * 30
) -> TraceAnalysis:
    """Hourly ingest+transcode IO for a service under one system."""
    if system not in ("baseline", "morph"):
        raise ValueError("system must be 'baseline' or 'morph'")
    warmup = service.max_delay_hours()
    series = service.ingest.generate(hours, warmup_hours=warmup)
    window = series.values[warmup:]
    analysis = TraceAnalysis(service=service.name, system=system, hours=hours)

    if system == "baseline":
        mult = _ingest_multiplier(service.baseline_ingest_scheme)
        analysis.ingest_io = window * mult
        flows = service.baseline_flows
        planner = None
    else:
        mult = sum(
            frac * _ingest_multiplier(scheme)
            for frac, scheme in service.morph_ingest_schemes
        )
        analysis.ingest_io = window * mult
        flows = service.morph_flows
        planner = TranscodePlanner()

    for flow in flows:
        delayed = series.values[warmup - flow.delay_hours : warmup - flow.delay_hours + hours]
        volume = delayed * flow.fraction
        if system == "baseline":
            per_byte = _baseline_transition_io(flow)
        else:
            per_byte = _morph_transition_io(planner, flow)
        analysis.transcode_io[flow.label] = volume * per_byte
    return analysis


@dataclass
class SystemComparison:
    """Baseline-vs-Morph reductions for one service."""

    service: str
    baseline: TraceAnalysis
    morph: TraceAnalysis

    @property
    def total_reduction(self) -> float:
        return 1.0 - self.morph.mean_total() / self.baseline.mean_total()

    @property
    def transcode_reduction(self) -> float:
        base = self.baseline.mean_transcode()
        if base == 0:
            return 0.0
        return 1.0 - self.morph.mean_transcode() / base

    @property
    def ingest_reduction(self) -> float:
        return 1.0 - float(np.mean(self.morph.ingest_io)) / float(
            np.mean(self.baseline.ingest_io)
        )


def compare_systems(service: ServiceModel, hours: int = 24 * 30) -> SystemComparison:
    """Run both systems over the same trace and report reductions."""
    baseline = analyze_service(service, "baseline", hours)
    morph = analyze_service(service, "morph", hours)
    return SystemComparison(service=service.name, baseline=baseline, morph=morph)
