"""Plain-text tables and series summaries for benchmark output."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def series_summary(name: str, values) -> Dict[str, float]:
    """Mean / min / max / p10 / p90 of an hourly series."""
    arr = np.asarray(values, dtype=float)
    return {
        "name": name,
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
    }
