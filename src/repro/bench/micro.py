"""Codec microbenchmarks — the repo's perf trajectory, one JSON per PR.

``python -m repro bench`` measures encode/decode/transcode throughput for
representative (k, n) points in both fields plus the event-engine rate,
and writes ``BENCH_codec.json`` at the repo root in a stable schema::

    {
      "schema": "repro-bench/1",
      "quick": false,
      "metrics": {
        "<name>": {"value": 123.4, "unit": "MB/s", "params": {...}},
        ...
      }
    }

The file is committed each PR so the perf trajectory lives in git history
(``git log -p BENCH_codec.json``). Values are wall-clock and therefore
machine-dependent; the trajectory is meaningful within one machine
generation, the *schema* is what CI checks.

``--quick`` shrinks chunk sizes and repeat counts (for CI); ``--check``
validates the committed file's schema against the current metric set
without overwriting it — no performance assertions, so CI never goes red
on a slow runner.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

SCHEMA = "repro-bench/1"

#: Default output path: repo root (three levels up from this file when
#: running from a checkout); falls back to the CWD for installed copies.
def default_output() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "ROADMAP.md").exists() or (parent / ".git").exists():
            return parent / "BENCH_codec.json"
    return Path.cwd() / "BENCH_codec.json"


def _best_seconds(fn: Callable[[], None], repeats: int, warmup: int = 2) -> float:
    """Best-of-N wall seconds for one call of ``fn`` (min is the most
    repeatable point statistic for a throughput benchmark).  The cyclic
    GC is paused during timed runs — same policy as ``timeit`` — so an
    unlucky collection inside one repeat doesn't pollute the sample."""
    import gc

    for _ in range(warmup):
        fn()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _metric(value: float, unit: str, **params) -> Dict:
    return {"value": round(float(value), 3), "unit": unit, "params": params}


def _chunks(k: int, chunk_bytes: int, seed: int) -> List[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=chunk_bytes, dtype=np.uint8) for _ in range(k)]


# -- individual benchmarks ---------------------------------------------------
def bench_gf256_encode(chunk_bytes: int, repeats: int) -> Dict[str, Dict]:
    from repro.codes.rs import ReedSolomon

    k, n = 6, 9
    code = ReedSolomon(k, n)
    data = _chunks(k, chunk_bytes, seed=1)
    nbytes = k * chunk_bytes

    fast = _best_seconds(lambda: code.encode(data), repeats)

    from repro.gf.matrix import gf_matmul_reference

    stacked = np.stack(data)
    parity_rows = code.generator[k:]
    ref = _best_seconds(lambda: gf_matmul_reference(parity_rows, stacked), repeats)

    params = {"k": k, "n": n, "chunk_bytes": chunk_bytes}
    return {
        "gf256_encode_mb_s": _metric(nbytes / fast / 1e6, "MB/s", **params),
        "gf256_encode_reference_mb_s": _metric(nbytes / ref / 1e6, "MB/s", **params),
    }


def bench_gf256_decode(chunk_bytes: int, repeats: int) -> Dict[str, Dict]:
    from repro.codes.rs import ReedSolomon

    k, n = 6, 9
    code = ReedSolomon(k, n)
    data = _chunks(k, chunk_bytes, seed=2)
    stripe = code.encode_stripe(data)
    erased = [0, 3, 7]  # two data chunks + one parity
    available = {
        i: c for i, c in enumerate(stripe.chunks) if i not in erased
    }
    nbytes = len(erased) * chunk_bytes
    secs = _best_seconds(lambda: code.decode(available, erased), repeats)
    # Warm-pattern fused decode: the (available, erased) pattern is in the
    # per-code LRU after the first call, so this measures the steady-state
    # single (e, k) recovery product (no per-call inverse or plan build).
    code.decode(available, erased)
    fused = _best_seconds(lambda: code.decode(available, erased), repeats)
    params = {"k": k, "n": n, "chunk_bytes": chunk_bytes, "erased": len(erased)}
    return {
        "gf256_decode_mb_s": _metric(nbytes / secs / 1e6, "MB/s", **params),
        "gf256_decode_fused_mb_s": _metric(
            nbytes / fused / 1e6, "MB/s", pattern="warm", **params
        ),
    }


def bench_gf256_encode_batch(chunk_bytes: int, repeats: int) -> Dict[str, Dict]:
    """Multi-stripe batched encode vs a per-stripe loop, RS(6,9)."""
    from repro.codes.rs import ReedSolomon

    k, n, stripes = 6, 9, 64
    code = ReedSolomon(k, n)
    rng = np.random.default_rng(4)
    batch = [
        [rng.integers(0, 256, chunk_bytes, dtype=np.uint8) for _ in range(k)]
        for _ in range(stripes)
    ]
    nbytes = k * chunk_bytes * stripes
    batched = _best_seconds(lambda: code.encode_batch(batch), repeats)
    looped = _best_seconds(
        lambda: [code.encode(chunks) for chunks in batch], repeats
    )
    return {
        "gf256_encode_batch_mb_s": _metric(
            nbytes / batched / 1e6, "MB/s",
            k=k, n=n, chunk_bytes=chunk_bytes, batch_stripes=stripes,
            per_stripe_mb_s=round(nbytes / looped / 1e6, 3),
        )
    }


def bench_gf256_transcode(chunk_bytes: int, repeats: int) -> Dict[str, Dict]:
    """Access-optimal CC merge: 2 x CC(6,9) -> CC(12,15)."""
    from repro.codes.convertible import ConvertibleCode, convert, plan_conversion

    initial = ConvertibleCode(6, 9)
    final = ConvertibleCode(12, 15)
    stripes = [
        initial.encode_stripe(_chunks(6, chunk_bytes, seed=10 + i)) for i in range(2)
    ]
    plan = plan_conversion(initial, final, len(stripes))
    # Throughput denominator: logical data governed by the conversion.
    nbytes = final.k * chunk_bytes
    secs = _best_seconds(
        lambda: convert(initial, final, stripes, plan), repeats
    )
    return {
        "gf256_transcode_mb_s": _metric(
            nbytes / secs / 1e6, "MB/s",
            initial="CC(6,9)", final="CC(12,15)", chunk_bytes=chunk_bytes,
        )
    }


def bench_gf16_wide(chunk_bytes: int, repeats: int) -> Dict[str, Dict]:
    from repro.codes.wide import WideConvertibleCode

    k, n = 17, 20
    code = WideConvertibleCode(k, n)
    data = _chunks(k, chunk_bytes, seed=3)
    nbytes = k * chunk_bytes
    enc = _best_seconds(lambda: code.encode(data), repeats)

    parities = code.encode(data)
    chunks = data + parities
    erased = [0, 9, 18]
    available = {i: c for i, c in enumerate(chunks) if i not in erased}
    dec_bytes = len(erased) * chunk_bytes
    dec = _best_seconds(lambda: code.decode(available, erased), repeats)
    # Warm-pattern fused path: recovery matrix + packed gather tables
    # cached, so this is the steady-state repair-storm throughput.
    code.decode(available, erased)
    fused = _best_seconds(lambda: code.decode(available, erased), repeats)

    params = {"k": k, "n": n, "chunk_bytes": chunk_bytes}
    return {
        "gf16_wide_encode_mb_s": _metric(nbytes / enc / 1e6, "MB/s", **params),
        "gf16_wide_decode_mb_s": _metric(
            dec_bytes / dec / 1e6, "MB/s", erased=len(erased), **params
        ),
        "gf16_wide_decode_fused_mb_s": _metric(
            dec_bytes / fused / 1e6, "MB/s",
            erased=len(erased), pattern="warm", **params
        ),
    }


def bench_event_engine(n_events: int, repeats: int) -> Dict[str, Dict]:
    from repro.cluster.engine import Environment

    def run_once() -> None:
        env = Environment()

        def ticker(env, count):
            for _ in range(count):
                yield env.timeout(1.0)

        # A handful of interleaved processes exercises the heap the way
        # the latency experiments do (not one giant timeout chain).
        per = max(1, n_events // 8)
        for _ in range(8):
            env.process(ticker(env, per))
        env.run()

    secs = _best_seconds(run_once, repeats)
    total = 8 * max(1, n_events // 8)
    return {
        "event_engine_events_per_s": _metric(
            total / secs, "events/s", events=total, processes=8
        )
    }


def bench_namenode_meta(n_files: int, repeats: int) -> Dict[str, Dict]:
    """Namenode metadata throughput on a synthetic large namespace.

    Builds ``n_files`` single-stripe files (2 data + 1 parity chunk,
    round-robin over 64 nodes), then times the metadata ops the control
    plane lives on: batched registration, lookups, batched chunk-id
    minting and node-major chunk queries.  Also reports the wall-clock
    of the metadata half of a failure burst — enumerating every chunk
    homed on two dead nodes — which exercises the per-node chunk index
    the way recovery's ``lost_chunks`` does.

    The same fixture is measured twice: a single in-memory ``Namenode``
    and an 8-way :class:`~repro.dfs.shards.ShardedNamenode`, so the
    sharding facade's routing overhead (and any win from smaller
    per-shard dicts) shows up in the perf trajectory.
    """
    import gc

    from repro.core.schemes import CodeKind, ECScheme
    from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta
    from repro.dfs.namenode import Namenode
    from repro.dfs.shards import ShardedNamenode

    n_nodes = 64
    n_shards = 8
    nodes = [f"node{i:02d}" for i in range(n_nodes)]
    scheme = ECScheme(CodeKind.RS, 2, 3)
    chunk_size = 1 << 20

    metas = []
    for i in range(n_files):
        base = (i * 3) % n_nodes
        data = [
            ChunkMeta(f"f{i}d0", nodes[base], ChunkKind.DATA, chunk_size),
            ChunkMeta(f"f{i}d1", nodes[(base + 1) % n_nodes], ChunkKind.DATA, chunk_size),
        ]
        parity = [
            ChunkMeta(f"f{i}p0", nodes[(base + 2) % n_nodes], ChunkKind.PARITY, chunk_size)
        ]
        stripe = ECStripeMeta(stripe_index=0, k=2, n=3, data=data, parities=parity)
        metas.append(
            FileMeta(
                name=f"file-{i:07d}",
                size=2 * chunk_size,
                chunk_size=chunk_size,
                scheme=scheme,
                stripes=[stripe],
            )
        )

    n_lookups = min(n_files, 200_000)
    step = max(1, n_files // n_lookups)
    names = [f"file-{i:07d}" for i in range(0, n_files, step)][:n_lookups]
    mint_batches, mint_width = 1_000, 64
    dead = nodes[:2]

    def measure(make_namenode):
        # Registration rebuilds a fresh namenode per repeat; bound the
        # repeat count at large scale (one pass is seconds long — noise
        # amortizes).
        reg_repeats = min(repeats, 2) if n_files >= 200_000 else repeats
        namenode = make_namenode()
        reg_best = float("inf")
        for _ in range(reg_repeats):
            namenode = make_namenode()
            t0 = time.perf_counter()
            namenode.register_files(metas)
            reg_best = min(reg_best, time.perf_counter() - t0)

        def do_lookups() -> None:
            lookup = namenode.lookup
            for name in names:
                lookup(name)

        def do_mint() -> None:
            next_ids = namenode.next_chunk_ids
            for _ in range(mint_batches):
                next_ids("bench", mint_width)

        def do_queries() -> None:
            query = namenode.chunks_on_node
            for node in nodes:
                query(node)

        look_secs = _best_seconds(do_lookups, repeats, warmup=1)
        mint_secs = _best_seconds(do_mint, repeats, warmup=1)
        query_secs = _best_seconds(do_queries, max(2, repeats // 2), warmup=1)

        ops = n_files + len(names) + mint_batches * mint_width + n_nodes
        secs = reg_best + look_secs + mint_secs + query_secs

        burst_best = float("inf")
        lost = 0
        for _ in range(max(2, repeats // 2)):
            t0 = time.perf_counter()
            lost = sum(len(namenode.chunks_on_node(node)) for node in dead)
            burst_best = min(burst_best, time.perf_counter() - t0)
        return ops / secs, burst_best, lost

    single_ops, single_burst, lost = measure(Namenode)
    gc.collect()  # drop the single namespace before building the shards
    sharded_ops, sharded_burst, lost_sharded = measure(
        lambda: ShardedNamenode(n_shards)
    )
    gc.collect()
    assert lost_sharded == lost

    params = dict(
        n_files=n_files,
        n_nodes=n_nodes,
        lookups=len(names),
        minted_ids=mint_batches * mint_width,
        node_queries=n_nodes,
    )
    burst_params = dict(
        n_files=n_files, n_nodes=n_nodes, dead_nodes=len(dead), lost_chunks=lost
    )
    return {
        "namenode_meta_ops_per_s": _metric(single_ops, "ops/s", **params),
        "namenode_meta_ops_per_s_sharded": _metric(
            sharded_ops, "ops/s", n_shards=n_shards, **params
        ),
        "meta_failure_burst_wall_s": _metric(single_burst, "s", **burst_params),
        "meta_failure_burst_wall_s_sharded": _metric(
            sharded_burst, "s", n_shards=n_shards, **burst_params
        ),
    }


def bench_scenarios(quick: bool) -> Dict[str, Dict]:
    """Adversarial scenario suite outcomes as bench metrics.

    Two metrics per scenario: ``scenario_<name>_durability`` is the
    fraction of workload files that read back byte-exact after the
    adversity (the suite itself raises unless every invariant holds, so
    a committed value is always 1.0 — the point of the metric is that a
    regression fails bench generation outright), and
    ``scenario_<name>_fg_p99_ms`` is the budgeted foreground p99 of the
    scenario-shaped failure burst, the latency the scheduler guarantees.
    """
    from repro.cluster.scenarios import run_scenarios

    metrics: Dict[str, Dict] = {}
    for name, result in run_scenarios(seed=0, quick=quick).items():
        metrics[f"scenario_{name}_durability"] = _metric(
            result.files_verified / max(result.files_verified, 1),
            "fraction",
            files=result.files_verified,
            lost_chunks=result.lost_chunks,
            trace=result.trace_digest[:16],
        )
        metrics[f"scenario_{name}_fg_p99_ms"] = _metric(
            result.fg_p99_ms,
            "ms",
            unthrottled_ms=round(result.fg_p99_unthrottled_ms, 3),
            seed=result.seed,
        )
    return metrics


def run_benchmarks(quick: bool = False) -> Dict[str, Dict]:
    """All benchmark metrics, in a deterministic order."""
    chunk = 256 * 1024 if quick else 1024 * 1024
    # Best-of-N wall times; generous N because shared machines are noisy.
    repeats = 3 if quick else 9
    # 200k events keeps one timed run ~60ms — long enough that scheduler
    # jitter on a shared box doesn't dominate the best-of-N sample.
    events = 2_000 if quick else 200_000
    # The namenode bench is the million-file target from the control-plane
    # work; quick mode shrinks the namespace so CI stays fast.
    files = 50_000 if quick else 1_000_000

    metrics: Dict[str, Dict] = {}
    metrics.update(bench_gf256_encode(chunk, repeats))
    metrics.update(bench_gf256_decode(chunk, repeats))
    # Batching pays where per-call overhead matters: small chunks. 64 KiB
    # (16 KiB quick) stripes at a 64-stripe batch is the DFS ingest shape.
    metrics.update(bench_gf256_encode_batch(chunk // 16, repeats))
    metrics.update(bench_gf256_transcode(chunk, repeats))
    metrics.update(bench_gf16_wide(chunk, repeats))
    metrics.update(bench_event_engine(events, repeats))
    metrics.update(bench_namenode_meta(files, repeats))
    metrics.update(bench_scenarios(quick))
    return metrics


def validate_schema(doc: Dict, expected_names) -> List[str]:
    """Schema problems with a committed BENCH_codec.json (empty = OK)."""
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return problems + ["'metrics' missing or not an object"]
    for name in expected_names:
        if name not in metrics:
            problems.append(f"missing metric {name!r}")
    for name, m in metrics.items():
        if not isinstance(m, dict):
            problems.append(f"{name}: not an object")
            continue
        if not isinstance(m.get("value"), (int, float)) or m["value"] <= 0:
            problems.append(f"{name}: value must be a positive number")
        if not isinstance(m.get("unit"), str):
            problems.append(f"{name}: unit must be a string")
        if not isinstance(m.get("params"), dict):
            problems.append(f"{name}: params must be an object")
    return problems


def print_diff(metrics: Dict[str, Dict], committed: Dict) -> None:
    """Report-only comparison against a committed BENCH_codec.json.

    Purely informational: values are machine-dependent, so no threshold
    ever fails — CI uses this to surface the perf delta in the log.
    """
    old = committed.get("metrics", {})
    if committed.get("quick"):
        print("  (committed file was written with --quick)")
    print(f"  {'metric':38s} {'current':>12s} {'committed':>12s} {'delta':>8s}")
    for name in sorted(set(metrics) | set(old)):
        cur = metrics.get(name, {}).get("value")
        prev = old.get(name, {}).get("value")
        if cur is None:
            print(f"  {name:38s} {'-':>12s} {prev:>12,.1f}   (removed)")
        elif prev is None:
            print(f"  {name:38s} {cur:>12,.1f} {'-':>12s}   (new)")
        else:
            delta = (cur - prev) / prev * 100.0
            print(f"  {name:38s} {cur:>12,.1f} {prev:>12,.1f} {delta:>+7.1f}%")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="codec microbenchmarks -> BENCH_codec.json",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller chunks / fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the committed BENCH_codec.json schema; do not overwrite",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="print current-vs-committed values (report only, never fails); "
        "do not overwrite",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: BENCH_codec.json at the repo root)",
    )
    args = parser.parse_args(argv)
    out = args.out or default_output()

    metrics = run_benchmarks(quick=args.quick)
    for name in sorted(metrics):
        m = metrics[name]
        print(f"  {name:34s} {m['value']:>12,.1f} {m['unit']}")

    if args.diff:
        if out.exists():
            print_diff(metrics, json.loads(out.read_text()))
        else:
            print(f"diff: {out} does not exist (nothing to compare)")
        if not args.check:
            return 0

    if args.check:
        if not out.exists():
            print(f"check: {out} does not exist", file=sys.stderr)
            return 1
        doc = json.loads(out.read_text())
        problems = validate_schema(doc, expected_names=sorted(metrics))
        if problems:
            for p in problems:
                print(f"check: {p}", file=sys.stderr)
            return 1
        print(f"check: {out.name} schema OK ({len(doc['metrics'])} metrics)")
        return 0

    doc = {
        "schema": SCHEMA,
        "quick": bool(args.quick),
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
