"""Experiment drivers: one function per paper figure/table.

Every function is deterministic (seeded) and returns a plain dict of
series/rows so benchmarks and examples can print or assert on them
without re-deriving anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codes.costmodel import (
    convertible_cost,
    native_rs_cost,
    rrw_cost,
    stripemerge_cost,
)
from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication, degraded_read_probability
from repro.sim import protocols as P
from repro.sim.cluster import SimCluster
from repro.sim.workload import ClosedLoopWorkload

MB = 1024 * 1024


# ---------------------------------------------------------------------------
# Figs 1 & 12 — production-trace IO
# ---------------------------------------------------------------------------

def fig01_service_week(hours: int = 24 * 7) -> Dict:
    """Fig 1: one week of Service A under baseline vs Morph."""
    from repro.traces import compare_systems, service_a

    comp = compare_systems(service_a(), hours=hours)
    return {
        "hours": hours,
        "baseline_total": comp.baseline.total_io,
        "baseline_transcode": comp.baseline.transcode_total,
        "morph_total": comp.morph.total_io,
        "morph_transcode": comp.morph.transcode_total,
        "total_reduction": comp.total_reduction,
        "transcode_reduction": comp.transcode_reduction,
        "ingest_reduction": comp.ingest_reduction,
        "baseline_by_flow": comp.baseline.transcode_io,
        "morph_by_flow": comp.morph.transcode_io,
    }


def fig12_production(hours: int = 24 * 30) -> Dict:
    """Fig 12: month-long traces of Services A and B."""
    from repro.traces import compare_systems, service_a, service_b

    out = {}
    for svc in (service_a(), service_b()):
        comp = compare_systems(svc, hours=hours)
        out[svc.name] = {
            "total_reduction": comp.total_reduction,
            "transcode_reduction": comp.transcode_reduction,
            "ingest_reduction": comp.ingest_reduction,
            "baseline_mean_total": comp.baseline.mean_total(),
            "morph_mean_total": comp.morph.mean_total(),
            "baseline_transcode_share": comp.baseline.mean_transcode()
            / comp.baseline.mean_total(),
        }
    return out


# ---------------------------------------------------------------------------
# Fig 3 / Fig 13 / Fig 14 — latency & throughput
# ---------------------------------------------------------------------------

def _run_workload(op_factory, n_threads: int, ops: int, op_bytes: float, seed: int = 42,
                  fail_fraction: float = 0.0, calibration=None):
    sim = SimCluster(seed=seed, calibration=calibration)
    if fail_fraction:
        sim.fail_fraction(fail_fraction)
    workload = ClosedLoopWorkload(
        sim, op_factory, n_threads=n_threads, ops_per_thread=ops, op_bytes=op_bytes
    )
    return workload.run()


def fig03_write_baseline(n_threads: int = 12, ops: int = 80, seed: int = 42) -> Dict:
    """Fig 3: 8 MB create latency + throughput, 3-r vs RS(6,9)."""
    size = 8 * MB
    r3 = _run_workload(lambda s: P.write_replicated(s, size, 3), n_threads, ops, size, seed)
    rs = _run_workload(lambda s: P.write_rs(s, size, 6, 9), n_threads, ops, size, seed)
    return {
        "3r": {"p50_ms": r3.p(50) * 1e3, "p90_ms": r3.p(90) * 1e3,
               "cdf": r3.cdf(), "throughput_mb_s": r3.throughput_mb_s},
        "RS(6,9)": {"p50_ms": rs.p(50) * 1e3, "p90_ms": rs.p(90) * 1e3,
                    "cdf": rs.cdf(), "throughput_mb_s": rs.throughput_mb_s},
    }


def fig13_write_latency(n_threads: int = 12, ops: int = 80, seed: int = 42) -> Dict:
    """Fig 13a: 8 MB write latency for 3-r, Hy(2), Hy(1), RS(6,9)."""
    size = 8 * MB
    runs = {
        "3-r": _run_workload(lambda s: P.write_replicated(s, size, 3), n_threads, ops, size, seed),
        "Hy(2,CC(6,9))": _run_workload(lambda s: P.write_hybrid(s, size, 6, 9, 2), n_threads, ops, size, seed),
        "Hy(1,CC(6,9))": _run_workload(lambda s: P.write_hybrid(s, size, 6, 9, 1), n_threads, ops, size, seed),
        "RS(6,9)": _run_workload(lambda s: P.write_rs(s, size, 6, 9), n_threads, ops, size, seed),
    }
    return {
        name: {"p50_ms": r.p(50) * 1e3, "p90_ms": r.p(90) * 1e3, "cdf": r.cdf()}
        for name, r in runs.items()
    }


def fig13_write_tput(threads: Sequence[int] = (12, 25), ops: int = 30, seed: int = 42) -> Dict:
    """Fig 13b: 120 MB streaming-write throughput across ingest options."""
    size = 120 * MB
    out: Dict = {}
    for t in threads:
        out[t] = {
            "3-r": _run_workload(lambda s: P.write_replicated(s, size, 3), t, ops, size, seed).throughput_mb_s,
            "Hy(2,CC(6,9))": _run_workload(lambda s: P.write_hybrid(s, size, 6, 9, 2), t, ops, size, seed).throughput_mb_s,
            "Hy(1,CC(6,9))": _run_workload(lambda s: P.write_hybrid(s, size, 6, 9, 1), t, ops, size, seed).throughput_mb_s,
            "RS(6,9)": _run_workload(lambda s: P.write_rs_streaming(s, size, 6, 9), t, ops, size, seed).throughput_mb_s,
        }
    return out


def fig13_parity_persist(n_threads: int = 12, ops: int = 80, seed: int = 42) -> Dict:
    """Fig 13c: time from client ack to async parity persistence."""
    size = 8 * MB
    log: List[float] = []
    sim = SimCluster(seed=seed)
    workload = ClosedLoopWorkload(
        sim,
        lambda s: P.write_hybrid(s, size, 6, 9, 1, parity_persist_log=log),
        n_threads=n_threads,
        ops_per_thread=ops,
        op_bytes=size,
    )
    workload.run()
    arr = np.asarray(log)
    return {
        "samples": arr,
        "p50_ms": float(np.percentile(arr, 50)) * 1e3,
        "p95_ms": float(np.percentile(arr, 95)) * 1e3,
        "fraction_under_500ms": float(np.mean(arr < 0.5)),
    }


def fig14_read_latency(loads: Sequence[int] = (12, 25, 40), ops: int = 80, seed: int = 42) -> Dict:
    """Fig 14a-c: 8 MB read latency across cluster loads."""
    size = 8 * MB
    out: Dict = {}
    for t in loads:
        out[t] = {}
        runs = {
            "3-r": _run_workload(lambda s: P.read_replica_hedged(s, size, 3), t, ops, size, seed),
            "Hy(2,CC(6,9))": _run_workload(
                lambda s: P.read_replica_hedged(s, size, 2, stripe_k=6, stripe_n=9), t, ops, size, seed),
            "Hy(1,CC(6,9))": _run_workload(
                lambda s: P.read_replica_hedged(s, size, 1, stripe_k=6, stripe_n=9), t, ops, size, seed),
            "RS(6,9)": _run_workload(lambda s: P.read_striped(s, size, 6, 9), t, ops, size, seed),
        }
        for name, r in runs.items():
            out[t][name] = {"p50_ms": r.p(50) * 1e3, "p90_ms": r.p(90) * 1e3, "cdf": r.cdf()}
    return out


def fig14_degraded(n_threads: int = 25, ops: int = 80, seed: int = 42,
                   down_fraction: float = 0.10) -> Dict:
    """Fig 14d: read latency with 10% of the cluster down."""
    size = 8 * MB
    runs = {
        "3-r": _run_workload(lambda s: P.read_replica_hedged(s, size, 3),
                             n_threads, ops, size, seed, fail_fraction=down_fraction),
        "Hy(2,CC(6,9))": _run_workload(
            lambda s: P.read_replica_hedged(s, size, 2, stripe_k=6, stripe_n=9),
            n_threads, ops, size, seed, fail_fraction=down_fraction),
        "Hy(1,CC(6,9))": _run_workload(
            lambda s: P.read_replica_hedged(s, size, 1, stripe_k=6, stripe_n=9),
            n_threads, ops, size, seed, fail_fraction=down_fraction),
        "RS(6,9)": _run_workload(
            lambda s: P.read_striped(s, size, 6, 9, unavailable_fraction=down_fraction),
            n_threads, ops, size, seed, fail_fraction=down_fraction),
    }
    return {
        name: {"p50_ms": r.p(50) * 1e3, "p90_ms": r.p(90) * 1e3}
        for name, r in runs.items()
    }


def fig14_read_tput(threads: Sequence[int] = (12, 25), ops: int = 30, seed: int = 42) -> Dict:
    """Fig 14e: 48 MB stripe-spanning scans, replica vs striped."""
    size = 48 * MB
    out: Dict = {}
    for t in threads:
        replica = _run_workload(
            lambda s: P.read_large_scan(s, size, 6, 9, from_stripe=False), t, ops, size, seed)
        striped = _run_workload(
            lambda s: P.read_large_scan(s, size, 6, 9, from_stripe=True), t, ops, size, seed)
        out[t] = {
            "replica_mb_s": replica.throughput_mb_s,
            "striped_mb_s": striped.throughput_mb_s,
            "improvement": striped.throughput_mb_s / replica.throughput_mb_s - 1.0,
        }
    return out


# ---------------------------------------------------------------------------
# Fig 15 — transcode read / compute latency
# ---------------------------------------------------------------------------

#: The paper's three scenarios: (label, reader kwargs, compute widths).
FIG15_SCENARIOS = [
    {
        "label": "EC(6,9)->EC(12,15)",
        "rs": {"k_final": 12},
        "cc": {"k_final": 12, "n_parity_reads": 6},
        "rs_width": 12, "cc_width": 6, "parities": 3, "cc_vector_overhead": 1.0,
    },
    {
        "label": "EC(6,7)->EC(12,14)",
        "rs": {"k_final": 12},
        "cc": {"k_final": 12, "n_parity_reads": 2, "data_fraction": 0.5, "n_data_reads": 12},
        "rs_width": 12, "cc_width": 14, "parities": 2, "cc_vector_overhead": 1.8,
    },
    {
        "label": "EC(6,9)->LRC(12,2,2)",
        "rs": {"k_final": 12},
        "cc": {"k_final": 12, "n_parity_reads": 6},
        "rs_width": 12, "cc_width": 6, "parities": 4, "cc_vector_overhead": 1.0,
    },
]


def fig15_transcode(n_files: int = 20, file_mb: int = 96, seed: int = 42) -> Dict:
    """Fig 15: per-file transcode read and compute latency, CC vs RS."""
    size = file_mb * MB
    out: Dict = {}
    for scen in FIG15_SCENARIOS:
        results = {}
        for codec in ("rs", "cc"):
            read_sim = SimCluster(seed=seed)
            if codec == "rs":
                def op(s):
                    return P.transcode_read_rs(s, size, scen["rs"]["k_final"], 6)
            else:
                def op(s):
                    return P.transcode_read_cc(s, size, **scen["cc"])
            wl = ClosedLoopWorkload(read_sim, op, n_threads=n_files, ops_per_thread=5, op_bytes=size)
            read_res = wl.run()
            comp_sim = SimCluster(seed=seed + 1)
            width = scen["rs_width"] if codec == "rs" else scen["cc_width"]
            overhead = 1.0 if codec == "rs" else scen["cc_vector_overhead"]
            wl2 = ClosedLoopWorkload(
                comp_sim,
                lambda s: P.transcode_compute(s, size, scen["rs"]["k_final"],
                                              width, scen["parities"], overhead),
                n_threads=n_files, ops_per_thread=5, op_bytes=size)
            comp_res = wl2.run()
            results[codec] = {
                "read_p50_ms": read_res.p(50) * 1e3,
                "compute_p50_ms": comp_res.p(50) * 1e3,
            }
        out[scen["label"]] = results
    return out


# ---------------------------------------------------------------------------
# Figs 17 & 18 — conversion cost sweeps
# ---------------------------------------------------------------------------

FIG17_CASES = [
    ("8-of-12 -> 16-of-19", 8, 4, 16, 3),
    ("8-of-12 -> 16-of-20", 8, 4, 16, 4),
    ("8-of-12 -> 24-of-27", 8, 4, 24, 3),
    ("8-of-12 -> 32-of-36", 8, 4, 32, 4),
    ("8-of-12 -> 32-of-37", 8, 4, 32, 5),
    ("32-of-36 -> 16-of-19", 32, 4, 16, 3),
    ("32-of-36 -> 16-of-20", 32, 4, 16, 4),
    ("32-of-36 -> 8-of-12", 32, 4, 8, 4),
    ("16-of-19 -> 8-of-12", 16, 3, 8, 4),
]


def fig17_regimes(file_mb: int = 1024) -> Dict:
    """Fig 17: disk IO to transcode a 1 GB file, RRW vs RS vs CC."""
    rows = []
    for label, k_i, r_i, k_f, r_f in FIG17_CASES:
        rrw = rrw_cost(k_i, r_i, k_f, r_f).disk_io * file_mb
        rs = native_rs_cost(k_i, r_i, k_f, r_f).disk_io * file_mb
        cc = convertible_cost(k_i, r_i, k_f, r_f).disk_io * file_mb
        rows.append({"case": label, "rrw_mb": rrw, "rs_mb": rs, "cc_mb": cc,
                     "cc_vs_rs": 1.0 - cc / rs})
    return {"file_mb": file_mb, "rows": rows}


def fig18_general_sweep(k_initial: int = 6, r_initial: int = 3,
                        k_range: Optional[Sequence[int]] = None) -> Dict:
    """Fig 18: 6-of-9 -> k-of-n sweep, CC vs StripeMerge, normalised to RS."""
    ks = list(k_range or range(7, 31))
    out = {"same_r": [], "plus_one": []}
    from repro.codes.stripemerge import StripeMergeModel

    sm_model = StripeMergeModel()
    for k_f in ks:
        rs_same = native_rs_cost(k_initial, r_initial, k_f, r_initial).disk_io
        cc_same = convertible_cost(k_initial, r_initial, k_f, r_initial).disk_io
        if sm_model.supports(k_initial, r_initial, k_f, r_initial):
            sm_norm = stripemerge_cost(k_initial, r_initial, k_f, r_initial).disk_io / rs_same
        else:
            sm_norm = 1.0  # StripeMerge degrades to the RS baseline
        out["same_r"].append({
            "k": k_f,
            "cc_norm": cc_same / rs_same,
            "stripemerge_norm": sm_norm,
        })
        rs_plus = native_rs_cost(k_initial, r_initial, k_f, r_initial + 1).disk_io
        cc_plus = convertible_cost(k_initial, r_initial, k_f, r_initial + 1).disk_io
        out["plus_one"].append({"k": k_f, "cc_norm": cc_plus / rs_plus, "stripemerge_norm": 1.0})
    same = [row["cc_norm"] for row in out["same_r"]]
    plus = [row["cc_norm"] for row in out["plus_one"]]
    out["same_r_mean_saving"] = 1.0 - float(np.mean(same))
    out["same_r_worst_saving"] = 1.0 - float(np.max(same))
    out["plus_one_mean_saving"] = 1.0 - float(np.mean(plus))
    out["plus_one_worst_saving"] = 1.0 - float(np.max(plus))
    return out


# ---------------------------------------------------------------------------
# Appendix B — degraded-read probability
# ---------------------------------------------------------------------------

def appendix_b(f: float = 0.01, k: int = 6, n: int = 9, copies: int = 1,
               trials: int = 400_000, seed: int = 42) -> Dict:
    """Closed form vs Monte-Carlo estimate of P(degraded stripe read)."""
    analytic = degraded_read_probability(f, k, n, copies)
    rng = np.random.default_rng(seed)
    # A read is degraded iff every replica of the range is unavailable AND
    # the covering data chunk is unavailable AND the rest of the stripe is
    # healthy enough to decode (the dominant term assumes it is intact).
    replica_down = rng.random((trials, copies)) < f
    chunk_down = rng.random(trials) < f
    others_down = rng.random((trials, n - 2)) < f
    degraded = replica_down.all(axis=1) & chunk_down & (~others_down).all(axis=1)
    return {
        "analytic": analytic,
        "monte_carlo": float(degraded.mean()),
        "trials": trials,
    }


# ---------------------------------------------------------------------------
# Fig 4 & Fig 5 — motivation data
# ---------------------------------------------------------------------------

def fig04_transitions(hours: int = 24 * 7) -> Dict:
    """Fig 4: millions of file transitions per hour in four clusters."""
    from repro.traces.generator import four_cluster_rates

    series = four_cluster_rates(hours=hours)
    return {
        "hours": hours,
        "clusters": series,
        "peak_millions": [float(s.max()) for s in series],
        "mean_millions": [float(s.mean()) for s in series],
    }


def fig05_hdd_trend() -> Dict:
    """Fig 5: HDD bandwidth-per-capacity decline and HAMR projection."""
    from repro.traces.hdd import HddTrendModel

    model = HddTrendModel()
    years, measured = model.measured_series()
    spec_years, speculated = model.speculated_series()
    return {
        "years": years,
        "measured_mb_s_per_tb": measured,
        "speculated_years": spec_years,
        "speculated_mb_s_per_tb": speculated,
        "annual_decay": model.ratio_decay,
        "fitted_decay": model.fitted_decay_from_anchors(),
    }


# ---------------------------------------------------------------------------
# Fig 11 — micro / macro cluster benchmarks (functional DFS)
# ---------------------------------------------------------------------------

def fig11_micro(file_mb: int = 8, chunk_kb: int = 16, seed: int = 5) -> Dict:
    """Fig 11a/b: one file through its lifetime on both systems.

    The paper's 8 GB file is scaled to ``file_mb`` (IO *ratios* are scale
    free); phases are ingest -> EC(6,9) -> EC(12,15).
    """
    from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
    from repro.dfs import BaselineDFS, MorphFS
    from repro.obs import Observability

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, file_mb * MB, dtype=np.uint8)

    def snapshot(fs):
        # Reported numbers come from the metrics registry — the same
        # series the Prometheus/JSON exporters publish — not from ad-hoc
        # ledger reads, so telemetry and benchmark output cannot diverge.
        registry = fs.obs.registry
        return {
            "disk_read": registry.value("dfs_disk_read_bytes"),
            "disk_write": registry.value("dfs_disk_write_bytes"),
            "network": registry.value("dfs_net_bytes"),
            "capacity": registry.value("dfs_capacity_bytes"),
        }

    results: Dict = {"file_bytes": float(len(data))}

    baseline = BaselineDFS(chunk_size=chunk_kb * 1024, obs=Observability())
    baseline.write_file("f", data, Replication(3))
    phases_b = {"ingest": snapshot(baseline)}
    baseline.transcode("f", ECScheme(CodeKind.RS, 6, 9))
    phases_b["to_ec_6_9"] = snapshot(baseline)
    baseline.transcode("f", ECScheme(CodeKind.RS, 12, 15))
    phases_b["to_ec_12_15"] = snapshot(baseline)
    results["baseline"] = phases_b

    cc69 = ECScheme(CodeKind.CC, 6, 9)
    morph = MorphFS(
        chunk_size=chunk_kb * 1024, future_widths=[6, 12], obs=Observability()
    )
    morph.write_file("f", data, HybridScheme(1, cc69))
    phases_m = {"ingest": snapshot(morph)}
    morph.transcode("f", cc69)
    phases_m["to_ec_6_9"] = snapshot(morph)
    morph.transcode("f", ECScheme(CodeKind.CC, 12, 15))
    phases_m["to_ec_12_15"] = snapshot(morph)
    results["morph"] = phases_m

    b, m = phases_b["to_ec_12_15"], phases_m["to_ec_12_15"]
    b_disk = b["disk_read"] + b["disk_write"]
    m_disk = m["disk_read"] + m["disk_write"]
    results["disk_reduction"] = 1.0 - m_disk / b_disk
    results["network_reduction"] = 1.0 - m["network"] / b["network"]
    results["ingest_capacity_reduction"] = 1.0 - (
        phases_m["ingest"]["capacity"] / phases_b["ingest"]["capacity"]
    )
    results["baseline_amplification"] = (b_disk + b["network"]) / len(data)
    results["morph_amplification"] = (m_disk + m["network"]) / len(data)
    # Verify integrity after the full lifetime.
    assert np.array_equal(baseline.read_file("f"), data)
    assert np.array_equal(morph.read_file("f"), data)
    return results


def fig11_macro(
    n_files: int = 24,
    file_kb: int = 160,
    chunk_kb: int = 4,
    seed: int = 6,
    disk_mb_s: float = 120.0,
    transcode_fraction: float = 0.20,
) -> Dict:
    """Fig 11c-f: steady-state ingest+transcode on both systems.

    The paper drives ~1100 MB/s of ingest with ~300 MB/s of transcode
    traffic — within the measurement window only a fraction of ingested
    data reaches each lifetime step. Here every file is ingested and the
    first ``transcode_fraction`` of files advance through each step of
    the chain EC(5,8) -> EC(10,13) -> EC(20,23) (CC + native transcode on
    Morph, RS + client RRW on baseline). Both systems execute the exact
    same logical work.
    """
    from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
    from repro.dfs import BaselineDFS, MorphFS
    from repro.obs import Observability

    rng = np.random.default_rng(seed)
    datasets = [
        rng.integers(0, 256, file_kb * 1024, dtype=np.uint8) for _ in range(n_files)
    ]
    chain_rs = [ECScheme(CodeKind.RS, 5, 8), ECScheme(CodeKind.RS, 10, 13), ECScheme(CodeKind.RS, 20, 23)]
    chain_cc = [ECScheme(CodeKind.CC, 5, 8), ECScheme(CodeKind.CC, 10, 13), ECScheme(CodeKind.CC, 20, 23)]
    n_advance = max(1, int(round(transcode_fraction * n_files)))

    def run(system: str) -> Dict:
        if system == "baseline":
            fs = BaselineDFS(chunk_size=chunk_kb * 1024, obs=Observability())
        else:
            fs = MorphFS(
                chunk_size=chunk_kb * 1024,
                future_widths=[5, 10, 20],
                obs=Observability(),
            )
        capacity_series = []
        for i, data in enumerate(datasets):
            name = f"f{i:03d}"
            if system == "baseline":
                fs.write_file(name, data, Replication(3))
            else:
                fs.write_file(name, data, HybridScheme(1, chain_cc[0]))
            capacity_series.append(fs.capacity_used())
        chain = chain_rs if system == "baseline" else chain_cc
        for step, scheme in enumerate(chain):
            # Files deep enough into their lifetime advance one step.
            for i in range(min(n_advance * (len(chain) - step), n_files)):
                fs.transcode(f"f{i:03d}", scheme)
            capacity_series.append(fs.capacity_used())
        registry = fs.obs.registry
        total_disk = registry.value("dfs_disk_read_bytes") + registry.value(
            "dfs_disk_write_bytes"
        )
        n_disks = len(fs.cluster.nodes)
        per_node = fs.metrics.nodes
        datanode_cpu = sum(m.cpu_seconds for nid, m in per_node.items() if nid != "client")
        client_cpu = per_node["client"].cpu_seconds if "client" in per_node else 0.0
        peak_mem = max((m.memory_peak_bytes for m in per_node.values()), default=0.0)
        for i, data in enumerate(datasets):
            assert np.array_equal(fs.read_file(f"f{i:03d}"), data)
        logical = float(sum(len(d) for d in datasets))
        capacity_final = registry.value("dfs_capacity_bytes")
        return {
            "disk_total": total_disk,
            "network_total": registry.value("dfs_net_bytes"),
            "capacity_final": capacity_final,
            "capacity_overhead": capacity_final / logical,
            "capacity_series": capacity_series,
            "client_cpu_s": client_cpu,
            "datanode_cpu_s": datanode_cpu,
            "peak_memory": peak_mem,
            "completion_s": total_disk / (disk_mb_s * MB * n_disks),
        }

    base = run("baseline")
    morph = run("morph")
    base_over = base["capacity_overhead"] - 1.0
    morph_over = morph["capacity_overhead"] - 1.0
    return {
        "baseline": base,
        "morph": morph,
        "disk_reduction": 1.0 - morph["disk_total"] / base["disk_total"],
        "capacity_reduction": 1.0 - morph["capacity_final"] / base["capacity_final"],
        "capacity_overhead_reduction": 1.0 - morph_over / base_over if base_over else 0.0,
        "speedup": base["completion_s"] / morph["completion_s"],
        "client_cpu_reduction": 1.0 - morph["client_cpu_s"] / base["client_cpu_s"]
        if base["client_cpu_s"] else 0.0,
    }
