"""Terminal plots: sparklines, bar charts, and CDFs for bench output.

The paper's figures are time series, CDFs and bar groups; these helpers
render recognisable ASCII versions of each so ``pytest benchmarks/ -s``
shows the *shape* of every result, not just summary numbers.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """One-line sparkline of a series, resampled to ``width`` columns."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).astype(int)
        arr = arr[idx]
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _SPARK[0] * len(arr)
    levels = ((arr - lo) / (hi - lo) * (len(_SPARK) - 1)).round().astype(int)
    return "".join(_SPARK[i] for i in levels)


def series_plot(name: str, values: Sequence[float], unit: str = "") -> str:
    """Sparkline with min/mean/max annotations."""
    arr = np.asarray(values, dtype=float)
    return (
        f"{name:>24} |{sparkline(arr)}| "
        f"min {arr.min():.2f} mean {arr.mean():.2f} max {arr.max():.2f} {unit}"
    )


def bar_chart(
    rows: Sequence[Tuple[str, float]], width: int = 46, unit: str = ""
) -> str:
    """Horizontal bar chart; bar lengths proportional to values."""
    if not rows:
        return ""
    peak = max(v for _n, v in rows) or 1.0
    label_w = max(len(n) for n, _v in rows)
    lines = []
    for name, value in rows:
        bar = "█" * max(1, int(round(value / peak * width)))
        lines.append(f"{name:>{label_w}} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def cdf_plot(
    curves: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 12,
    x_label: str = "latency (ms)",
) -> str:
    """Multi-curve ASCII CDF: each curve gets its own marker character."""
    markers = "*o+x#@"
    xs_all = np.concatenate([np.asarray(xs, dtype=float) for xs, _ys in curves.values()])
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(curves.items()):
        marker = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int(y * (height - 1))
            grid[row][col] = marker
    lines = ["1.0 ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    │" + "".join(row))
    lines.append("0.0 ┤" + "".join(grid[-1]))
    lines.append("    └" + "─" * width)
    lines.append(f"     {x_lo:.0f}{x_label:^{width - 12}}{x_hi:.0f}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(curves)
    )
    lines.append(f"     {legend}")
    return "\n".join(lines)


def histogram(
    samples: Sequence[float], bins: int = 30, width: int = 50, unit: str = "ms"
) -> str:
    """Vertical-bar histogram of a sample."""
    arr = np.asarray(samples, dtype=float)
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(count / peak * width))
        lines.append(f"{lo:9.1f}-{hi:9.1f} {unit} | {bar} {count}")
    return "\n".join(lines)
