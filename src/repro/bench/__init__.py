"""Benchmark harness: experiment drivers and table/series reporting.

Each ``fig*`` function in :mod:`repro.bench.experiments` regenerates the
data behind one figure of the paper and returns a plain dict; the
``benchmarks/`` pytest modules call them, print the same rows/series the
paper reports, and assert the headline shapes.
"""

from repro.bench.reporting import format_table, print_table, series_summary

__all__ = ["format_table", "print_table", "series_summary"]
