"""cProfile harness for the control-plane hot paths.

``python -m repro profile`` runs the failure-burst maintenance
simulation (the workload that drives the event engine, the scheduler and
the resource layer together) under :mod:`cProfile` and prints the top-N
functions by cumulative time.  This is the loop the control-plane fast
path was tuned against; when a regression lands, the table points at the
layer that regressed before anyone has to bisect.

``--target namenode`` profiles the synthetic large-namespace metadata
benchmark instead (batched registration + lookups + per-node chunk
queries), which is the other half of the control plane.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
from typing import List, Optional


def profile_failure_burst(scale: float = 1.0) -> cProfile.Profile:
    """Profile one unthrottled + one throttled burst run."""
    from repro.sched.simulate import SimConfig, compare_budgets

    cfg = SimConfig(
        n_repairs=int(96 * scale),
        duration_s=30.0 * max(1.0, scale),
        read_interarrival_s=0.04 / max(1.0, scale),
    )
    prof = cProfile.Profile()
    prof.enable()
    compare_budgets(cfg)
    prof.disable()
    return prof


def profile_namenode(n_files: int = 200_000) -> cProfile.Profile:
    """Profile the synthetic namespace metadata benchmark."""
    from repro.bench.micro import bench_namenode_meta

    prof = cProfile.Profile()
    prof.enable()
    bench_namenode_meta(n_files, repeats=2)
    prof.disable()
    return prof


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile", description=__doc__
    )
    parser.add_argument(
        "--target",
        choices=("burst", "namenode"),
        default="burst",
        help="workload to profile (default: the failure-burst simulation)",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows to print (default 25)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="burst load multiplier (repairs and read rate)",
    )
    parser.add_argument(
        "--files",
        type=int,
        default=200_000,
        help="namespace size for --target namenode",
    )
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
    )
    args = parser.parse_args(argv)

    if args.target == "burst":
        prof = profile_failure_burst(scale=args.scale)
    else:
        prof = profile_namenode(n_files=args.files)

    stats = pstats.Stats(prof)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
