"""Durability analysis: annual data-loss odds per redundancy scheme.

The paper asserts Hy(1, EC(k,n)) provides "sufficient durability (one
extra replica over an already durable EC stripe)" — this module makes
that quantitative with the standard Markov MTTDL model: chunks fail
independently at rate ``lambda = AFR`` and are repaired at rate
``mu = 1 / MTTR``; data is lost when more chunks than the scheme
tolerates are simultaneously down.

The closed form for a scheme tolerating ``f`` failures out of ``m``
chunks (birth-death chain, repair dominance ``mu >> lambda``)::

    MTTDL ~ mu^f / (binom(m, f+1) * (f+1)! / (f+1) * lambda^(f+1))

computed here exactly by solving the absorbing chain numerically, so it
stays valid outside the asymptotic regime too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.schemes import ECScheme, HybridScheme, RedundancyScheme, Replication

HOURS_PER_YEAR = 24 * 365.0


@dataclass(frozen=True)
class FailureEnvironment:
    """Disk fleet parameters: annualised failure rate and repair time."""

    #: annual failure rate of one disk (typical fleet AFR: 1-4%)
    afr: float = 0.02
    #: mean time to repair/reconstruct one chunk, hours
    mttr_hours: float = 8.0

    @property
    def fail_rate_per_hour(self) -> float:
        return self.afr / HOURS_PER_YEAR

    @property
    def repair_rate_per_hour(self) -> float:
        return 1.0 / self.mttr_hours


def _scheme_shape(scheme: RedundancyScheme):
    """(total chunks m, tolerated failures f) for one protection group."""
    if isinstance(scheme, Replication):
        return scheme.copies, scheme.copies - 1
    if isinstance(scheme, HybridScheme):
        # One stripe + c replica blocks protecting the same span.
        return scheme.ec.n + scheme.copies, scheme.fault_tolerance
    if isinstance(scheme, ECScheme):
        return scheme.n, scheme.fault_tolerance
    raise ValueError(f"unknown scheme {scheme}")


def mttdl_hours(scheme: RedundancyScheme, env: Optional[FailureEnvironment] = None) -> float:
    """Mean time to data loss (hours) of one protection group.

    Solves the absorbing birth-death chain with states 0..f+1 failed
    chunks: failure rate from state i is ``(m - i) * lambda``, repair
    rate is ``i * mu`` (parallel repair), and state f+1 absorbs.
    """
    env = env or FailureEnvironment()
    m, f = _scheme_shape(scheme)
    lam = env.fail_rate_per_hour
    mu = env.repair_rate_per_hour
    n_states = f + 1  # transient states 0..f
    # Expected time to absorption: solve (I - P_t) t = dt in CTMC form:
    # Q t = -1 over transient states.
    q = np.zeros((n_states, n_states))
    for i in range(n_states):
        up = (m - i) * lam
        down = i * mu
        q[i, i] = -(up + down)
        if i + 1 < n_states:
            q[i, i + 1] = up
        if i - 1 >= 0:
            q[i, i - 1] = down
    t = np.linalg.solve(q, -np.ones(n_states))
    return float(t[0])


def annual_loss_probability(
    scheme: RedundancyScheme,
    env: Optional[FailureEnvironment] = None,
    groups: int = 1,
) -> float:
    """P(any of ``groups`` protection groups loses data within a year)."""
    hours = mttdl_hours(scheme, env)
    per_group = -np.expm1(-HOURS_PER_YEAR / hours)  # precise for tiny p
    return float(-np.expm1(groups * np.log1p(-per_group)))


def nines(probability_of_loss: float) -> float:
    """Durability 'nines': -log10 of the annual loss probability."""
    if probability_of_loss <= 0:
        return float("inf")
    return float(-np.log10(probability_of_loss))


def durability_table(env: Optional[FailureEnvironment] = None, groups: int = 1):
    """Annual-loss comparison of the paper's scheme ladder."""
    from repro.core.schemes import CodeKind

    env = env or FailureEnvironment()
    schemes = [
        ("3-r", Replication(3)),
        ("RS(6,9)", ECScheme(CodeKind.RS, 6, 9)),
        ("Hy(1,CC(6,9))", HybridScheme(1, ECScheme(CodeKind.CC, 6, 9))),
        ("Hy(2,CC(6,9))", HybridScheme(2, ECScheme(CodeKind.CC, 6, 9))),
        ("RS(12,15)", ECScheme(CodeKind.RS, 12, 15)),
    ]
    rows = []
    for name, scheme in schemes:
        p = annual_loss_probability(scheme, env, groups)
        rows.append({
            "scheme": name,
            "tolerates": _scheme_shape(scheme)[1],
            "annual_loss_p": p,
            "nines": nines(p),
            "overhead": scheme.storage_overhead,
        })
    return rows
