"""Lifetime manager: age-driven transcode scheduling.

The paper notes that >75% of production transcodes follow pre-programmed
schedules (§5.2). This manager is that scheduler: files register with a
:class:`~repro.core.lifecycle.LifetimePolicy` at ingest, and each tick
compares ages against the policy and issues ``transcode()`` calls for
files whose stage has advanced. Used by the macro-style experiments and
the integration tests; composable with
:class:`repro.dfs.heartbeat.HeartbeatMonitor` (tick both on a cadence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.lifecycle import LifetimePolicy


@dataclass
class ManagedFile:
    """A file under lifetime management."""

    name: str
    policy: LifetimePolicy
    ingested_at: float
    current_stage: int = 0


@dataclass
class LifetimeReport:
    """Transcodes issued by one manager tick."""

    now: float
    transitions: List[tuple] = field(default_factory=list)  # (name, from, to)


class LifetimeManager:
    """Watches file ages and drives their scheduled transitions.

    Two modes:

    * foreground (default) — ``transcode()`` runs inline on the tick that
      crosses a stage boundary, matching the classic behavior;
    * background (``background=True``) — transitions are handed to the
      filesystem's maintenance scheduler via ``schedule_transcode`` with
      the stage boundary as the task deadline. ``lookahead_s`` submits
      the work that much *before* the boundary, giving a budget-throttled
      scheduler slack to finish by the deadline (the scheduler's deadline
      boost kicks in as it nears).
    """

    def __init__(self, fs, background: bool = False, lookahead_s: float = 0.0):
        self.fs = fs
        self.background = background
        self.lookahead_s = max(0.0, float(lookahead_s))
        self._files: Dict[str, ManagedFile] = {}

    def register(self, name: str, policy: LifetimePolicy, now: Optional[float] = None) -> None:
        """Start managing a file that was just ingested."""
        if name in self._files:
            raise ValueError(f"{name} is already managed")
        self.fs.namenode.lookup(name)  # must exist
        self._files[name] = ManagedFile(
            name=name, policy=policy, ingested_at=self.fs.clock if now is None else now
        )

    def unregister(self, name: str) -> None:
        self._files.pop(name, None)

    def managed(self) -> List[str]:
        return list(self._files)

    def stage_of(self, name: str) -> int:
        return self._files[name].current_stage

    def tick(self) -> LifetimeReport:
        """Advance every file whose age crossed a stage boundary.

        A file several boundaries behind (e.g. after downtime) advances
        one stage per tick — transitions stay sequential, so every CC
        merge sees the stripes the previous stage produced.
        """
        report = LifetimeReport(now=self.fs.clock)
        for managed in self._files.values():
            age = self.fs.clock - managed.ingested_at
            horizon = age + (self.lookahead_s if self.background else 0.0)
            target_stage = managed.policy.stage_index_at(horizon)
            if target_stage <= managed.current_stage:
                continue
            if self.background and self._transition_in_flight(managed.name):
                continue  # stay sequential: previous stage must land first
            next_stage = managed.current_stage + 1
            stage = managed.policy.stages[next_stage]
            meta = self.fs.namenode.lookup(managed.name)
            source = meta.scheme
            if self.background and hasattr(self.fs, "schedule_transcode"):
                self.fs.schedule_transcode(
                    managed.name,
                    stage.scheme,
                    deadline=managed.ingested_at + stage.start_age,
                )
            else:
                self.fs.transcode(managed.name, stage.scheme)
            managed.current_stage = next_stage
            report.transitions.append((managed.name, source, stage.scheme))
        return report

    def _transition_in_flight(self, name: str) -> bool:
        """True while a previously issued transition is still queued."""
        if name in self.fs.namenode.utm:
            return True
        scheduler = getattr(self.fs, "scheduler", None)
        if scheduler is None:
            return False
        from repro.sched.tasks import FreeTransitionTask

        return (
            scheduler.queue.find(
                lambda t: isinstance(t, FreeTransitionTask) and t.name == name
            )
            is not None
        )

    def run_until(self, end_clock: float, tick_interval: float) -> List[LifetimeReport]:
        """Tick on a cadence until the DFS clock reaches ``end_clock``."""
        reports = []
        while self.fs.clock < end_clock:
            self.fs.clock = min(self.fs.clock + tick_interval, end_clock)
            reports.append(self.tick())
        return reports
