"""File lifetime model (paper Fig 2).

A file is *hot* at ingest, then cools through *warm*, *cool* and *frigid*
phases; each phase boundary triggers a transcode to a wider, more
space-efficient scheme. A :class:`LifetimePolicy` is the schedule of
(age, scheme) stages a data service programs for its files — the paper
notes >75% of production transcodes follow such pre-determined schedules,
which is what lets Morph plan placement (k*) and pick CC-friendly
parameters at ingest time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    RedundancyScheme,
    Replication,
    lcm_of_widths,
)


class LifetimePhase(enum.Enum):
    HOT = "hot"
    WARM = "warm"
    COOL = "cool"
    FRIGID = "frigid"


#: default phase -> storage-tier mapping for heterogeneous clusters:
#: latency-sensitive phases live on the fast (ssd) tier, cold phases on
#: the dense (hdd) tier. A homogeneous cluster simply has no nodes of
#: either class and the preference is a no-op.
DEFAULT_PHASE_TIERS = {
    LifetimePhase.HOT: "ssd",
    LifetimePhase.WARM: "ssd",
    LifetimePhase.COOL: "hdd",
    LifetimePhase.FRIGID: "hdd",
}


@dataclass(frozen=True)
class LifetimeStage:
    """One stage of a file's life: from ``start_age`` onwards, use ``scheme``."""

    start_age: float  # seconds since ingest
    scheme: RedundancyScheme
    phase: LifetimePhase


class LifetimePolicy:
    """An ordered schedule of redundancy schemes over a file's life."""

    def __init__(self, stages: Sequence[LifetimeStage]):
        if not stages:
            raise ValueError("a lifetime policy needs at least one stage")
        if stages[0].start_age != 0:
            raise ValueError("first stage must start at age 0 (ingest)")
        ages = [s.start_age for s in stages]
        if ages != sorted(ages):
            raise ValueError("stages must be in increasing age order")
        self.stages: List[LifetimeStage] = list(stages)

    def scheme_at(self, age: float) -> RedundancyScheme:
        """The scheme a file of the given age should be stored in."""
        current = self.stages[0].scheme
        for stage in self.stages:
            if age >= stage.start_age:
                current = stage.scheme
            else:
                break
        return current

    def phase_at(self, age: float) -> LifetimePhase:
        """The lifetime phase a file of the given age is in."""
        return self.stages[self.stage_index_at(age)].phase

    def tier_at(self, age: float, tiers: dict = None) -> str:
        """Preferred storage-tier (node class) for a file of this age.

        ``tiers`` maps :class:`LifetimePhase` to a node-class name and
        defaults to :data:`DEFAULT_PHASE_TIERS`. The result feeds
        :attr:`PlacementPolicy.prefer_class`.
        """
        mapping = DEFAULT_PHASE_TIERS if tiers is None else tiers
        return mapping.get(self.phase_at(age), "")

    def stage_index_at(self, age: float) -> int:
        idx = 0
        for i, stage in enumerate(self.stages):
            if age >= stage.start_age:
                idx = i
        return idx

    def transitions(self) -> List[tuple]:
        """(age, from_scheme, to_scheme) for each stage boundary."""
        out = []
        for prev, nxt in zip(self.stages, self.stages[1:]):
            out.append((nxt.start_age, prev.scheme, nxt.scheme))
        return out

    def ec_widths(self) -> List[int]:
        """Stripe widths (k) of every EC stage, for k* placement planning."""
        widths = []
        for stage in self.stages:
            scheme = stage.scheme
            if isinstance(scheme, HybridScheme):
                widths.append(scheme.ec.k)
            elif isinstance(scheme, ECScheme):
                widths.append(scheme.k)
        return widths

    def k_star(self) -> int:
        """LCM of all potential stripe widths (§5.3 data separation)."""
        widths = self.ec_widths()
        return lcm_of_widths(*widths) if widths else 1


HOUR = 3600.0
DAY = 24 * HOUR
MONTH = 30 * DAY


def baseline_microbench_policy(t1: float = 600.0, t2: float = 1500.0) -> LifetimePolicy:
    """Fig 11a baseline: 3-r -> RS(6,9) -> RS(12,15)."""
    return LifetimePolicy(
        [
            LifetimeStage(0.0, Replication(3), LifetimePhase.HOT),
            LifetimeStage(t1, ECScheme(CodeKind.RS, 6, 9), LifetimePhase.WARM),
            LifetimeStage(t2, ECScheme(CodeKind.RS, 12, 15), LifetimePhase.COOL),
        ]
    )


def morph_microbench_policy(t1: float = 600.0, t2: float = 1500.0) -> LifetimePolicy:
    """Fig 11b Morph: Hy(1,CC(6,9)) -> CC(6,9) -> CC(12,15)."""
    cc69 = ECScheme(CodeKind.CC, 6, 9)
    return LifetimePolicy(
        [
            LifetimeStage(0.0, HybridScheme(1, cc69), LifetimePhase.HOT),
            LifetimeStage(t1, cc69, LifetimePhase.WARM),
            LifetimeStage(t2, ECScheme(CodeKind.CC, 12, 15), LifetimePhase.COOL),
        ]
    )


def baseline_macrobench_policy() -> LifetimePolicy:
    """Fig 11c baseline chain: 3-r -> EC(5,8) -> EC(10,13) -> EC(20,23)."""
    return LifetimePolicy(
        [
            LifetimeStage(0.0, Replication(3), LifetimePhase.HOT),
            LifetimeStage(60.0, ECScheme(CodeKind.RS, 5, 8), LifetimePhase.WARM),
            LifetimeStage(180.0, ECScheme(CodeKind.RS, 10, 13), LifetimePhase.COOL),
            LifetimeStage(360.0, ECScheme(CodeKind.RS, 20, 23), LifetimePhase.FRIGID),
        ]
    )


def morph_macrobench_policy() -> LifetimePolicy:
    """Fig 11d Morph chain: Hy(1,CC(5,8)) -> CC(5,8) -> CC(10,13) -> CC(20,23)."""
    cc58 = ECScheme(CodeKind.CC, 5, 8)
    return LifetimePolicy(
        [
            LifetimeStage(0.0, HybridScheme(1, cc58), LifetimePhase.HOT),
            LifetimeStage(60.0, cc58, LifetimePhase.WARM),
            LifetimeStage(180.0, ECScheme(CodeKind.CC, 10, 13), LifetimePhase.COOL),
            LifetimeStage(360.0, ECScheme(CodeKind.CC, 20, 23), LifetimePhase.FRIGID),
        ]
    )
