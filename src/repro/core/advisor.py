"""CC-friendly EC parameter suggestion (paper §5.2).

Applications choose *roughly* what redundancy they want (target width and
parity count); Morph suggests nearby parameters that make future
transcodes cheap without sacrificing durability or meaningfully hurting
space efficiency. The heuristics, in order:

1. Prefer a final width that is an **integral multiple** of the initial
   width (pure merge regime — parities-only transcode in the best case).
2. Prefer **keeping the parity count constant** (access-optimal codes).
3. When extra parities are required for reliability at larger widths,
   minimize the bandwidth-optimal read cost
   ``(k_I / k_F) * (r_I + k_I * (r_F - r_I) / r_F)``.

Suggestions are *advice*: the application keeps the final say (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.codes.costmodel import convertible_cost


@dataclass(frozen=True)
class Suggestion:
    """One candidate final scheme with its predicted transcode cost."""

    k: int
    r: int
    #: predicted transcode disk IO per logical byte (read + parity write)
    transcode_io: float
    storage_overhead: float
    fault_tolerance: int
    #: True if (k, r) is exactly what the application asked for
    is_requested: bool

    @property
    def n(self) -> int:
        return self.k + self.r


class SchemeAdvisor:
    """Ranks CC-friendly final parameters near an application's request.

    Example from the paper: an application transcoding EC(6,9) files into
    EC(27,30) is told EC(24,27) is ~40% cheaper to transcode into, with
    better durability and a trivial space-efficiency decline.
    """

    def __init__(self, width_window: int = 1, max_extra_parities: int = 1):
        self.width_window = width_window
        self.max_extra_parities = max_extra_parities

    def candidates(
        self, k_initial: int, r_initial: int, k_final: int, r_final: int
    ) -> List[Suggestion]:
        """All candidate (k, r) pairs near the request, best first.

        Durability is never reduced below the request (§5.2: suggestions
        must not sacrifice durability); space overhead may drift slightly
        — the application weighs that trade-off.
        """
        seen = set()
        out: List[Suggestion] = []
        width_lo = max(k_initial, k_final - self.width_window * k_initial)
        width_hi = k_final + self.width_window * k_initial
        for k in range(width_lo, width_hi + 1):
            for r in range(r_final, r_final + self.max_extra_parities + 1):
                if (k, r) in seen:
                    continue
                seen.add((k, r))
                cost = convertible_cost(k_initial, r_initial, k, r)
                out.append(
                    Suggestion(
                        k=k,
                        r=r,
                        transcode_io=cost.disk_io,
                        storage_overhead=(k + r) / k,
                        fault_tolerance=r,
                        is_requested=(k == k_final and r == r_final),
                    )
                )
        out.sort(key=self._score(k_final, r_final))
        return out

    def _score(self, k_final: int, r_final: int):
        requested_overhead = (k_final + r_final) / k_final

        def score(s: Suggestion) -> Tuple[float, float, float]:
            # Primary: transcode IO. Secondary: how far the space overhead
            # drifts from the request. Tertiary: width distance.
            overhead_drift = abs(s.storage_overhead - requested_overhead)
            return (s.transcode_io, overhead_drift, abs(s.k - k_final))

        return score

    def suggest(
        self, k_initial: int, r_initial: int, k_final: int, r_final: int
    ) -> Suggestion:
        """Best CC-friendly final scheme for the requested transition."""
        return self.candidates(k_initial, r_initial, k_final, r_final)[0]

    def improvement_over_request(
        self, k_initial: int, r_initial: int, k_final: int, r_final: int
    ) -> Optional[float]:
        """Fractional transcode-IO saving of the suggestion vs the request.

        Returns None when the request already is the best candidate.
        """
        best = self.suggest(k_initial, r_initial, k_final, r_final)
        if best.is_requested:
            return None
        requested = convertible_cost(k_initial, r_initial, k_final, r_final)
        if requested.disk_io == 0:
            return None
        return 1.0 - best.transcode_io / requested.disk_io
