"""Morph's policy layer: redundancy schemes, parameter advice, lifetimes.

This package is the paper's "primary contribution" surface: the hybrid
redundancy scheme definition (§4), the CC-friendly parameter advisor
(§5.2), file lifetime policies (Fig 2) and the transcode planner that
maps a scheme transition onto a concrete conversion strategy and IO plan.
"""

from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    Replication,
    RedundancyScheme,
    degraded_read_probability,
)
from repro.core.advisor import SchemeAdvisor, Suggestion
from repro.core.lifecycle import LifetimePhase, LifetimePolicy, LifetimeStage
from repro.core.manager import LifetimeManager
from repro.core.planner import TranscodePlanner, TranscodeStep
from repro.core.durability import (
    FailureEnvironment,
    annual_loss_probability,
    mttdl_hours,
)
from repro.core.adaptive import AdaptiveRedundancyPlanner, BathtubCurve

__all__ = [
    "CodeKind",
    "ECScheme",
    "HybridScheme",
    "Replication",
    "RedundancyScheme",
    "degraded_read_probability",
    "SchemeAdvisor",
    "Suggestion",
    "LifetimePhase",
    "LifetimePolicy",
    "LifetimeStage",
    "LifetimeManager",
    "TranscodePlanner",
    "TranscodeStep",
    "FailureEnvironment",
    "annual_loss_probability",
    "mttdl_hours",
    "AdaptiveRedundancyPlanner",
    "BathtubCurve",
]
