"""Redundancy scheme descriptors.

A *scheme* describes how a file's bytes are made redundant — replication,
erasure coding, or Morph's hybrid of both — independent of any particular
file. Schemes know their storage overhead, fault tolerance, and ingest IO
multipliers, and can instantiate the matching codec from
:mod:`repro.codes`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.codes.convertible import ConvertibleCode
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.codes.rs import ReedSolomon


class CodeKind(enum.Enum):
    """Which erasure-code construction an ECScheme uses."""

    RS = "rs"
    CC = "cc"
    LRC = "lrc"
    LRCC = "lrcc"

    @property
    def convertible(self) -> bool:
        return self in (CodeKind.CC, CodeKind.LRCC)


class RedundancyScheme:
    """Common interface for replication, EC and hybrid schemes."""

    @property
    def storage_overhead(self) -> float:
        """Bytes at rest per logical byte."""
        raise NotImplementedError

    @property
    def fault_tolerance(self) -> int:
        """Number of arbitrary simultaneous chunk failures tolerated."""
        raise NotImplementedError

    @property
    def ingest_disk_multiplier(self) -> float:
        """Disk bytes written per logical byte during ingest."""
        return self.storage_overhead

    @property
    def chunk_count(self) -> int:
        """Chunks per stripe-equivalent unit (placement footprint)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Replication(RedundancyScheme):
    """c-way replication (the classic 3-r when copies == 3)."""

    copies: int = 3

    def __post_init__(self):
        if self.copies < 1:
            raise ValueError("need at least one copy")

    @property
    def storage_overhead(self) -> float:
        return float(self.copies)

    @property
    def fault_tolerance(self) -> int:
        return self.copies - 1

    @property
    def chunk_count(self) -> int:
        return self.copies

    def __str__(self) -> str:
        return f"{self.copies}-r"


@dataclass(frozen=True)
class ECScheme(RedundancyScheme):
    """An erasure-coding scheme: kind + (k, n) [+ LRC group structure].

    For LRC/LRCC kinds, ``n = k + local_groups + r_global`` and both
    ``local_groups`` and ``r_global`` must be given.

    ``anticipate_parities`` (CC only) declares that a future transcode
    will *increase* the parity count to that value; stripes are then
    encoded with bandwidth-optimal vector codes (piggybacking) so the
    conversion reads only parities plus a fraction of each data chunk
    (paper Appendix A, case 2a / Fig 8). The stored footprint is
    unchanged — only the parity *contents* differ.
    """

    kind: CodeKind
    k: int
    n: int
    local_groups: Optional[int] = None
    r_global: Optional[int] = None
    anticipate_parities: Optional[int] = None

    def __post_init__(self):
        if not 0 < self.k < self.n:
            raise ValueError(f"need 0 < k < n, got k={self.k} n={self.n}")
        if self.kind in (CodeKind.LRC, CodeKind.LRCC):
            if self.local_groups is None or self.r_global is None:
                raise ValueError(f"{self.kind} needs local_groups and r_global")
            if self.k + self.local_groups + self.r_global != self.n:
                raise ValueError(
                    "LRC layout mismatch: n must equal k + local_groups + r_global"
                )
        if self.anticipate_parities is not None:
            if self.kind is not CodeKind.CC:
                raise ValueError("anticipate_parities requires a CC scheme")
            if self.anticipate_parities <= self.r:
                raise ValueError(
                    "anticipate_parities must exceed the current parity count"
                )

    @property
    def r(self) -> int:
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        return self.n / self.k

    @property
    def fault_tolerance(self) -> int:
        if self.kind in (CodeKind.LRC, CodeKind.LRCC):
            # Guaranteed tolerance of an LRC: any single failure per group
            # plus globals is pattern-dependent; the *guaranteed* arbitrary
            # count is r_global + 1 (one local failure anywhere plus globals).
            return (self.r_global or 0) + 1
        return self.r

    @property
    def chunk_count(self) -> int:
        return self.n

    def make_code(self, family_width: int = 40):
        """Instantiate the codec implementing this scheme."""
        if self.kind is CodeKind.RS:
            return ReedSolomon(self.k, self.n)
        if self.kind is CodeKind.CC:
            if self.anticipate_parities is not None:
                from repro.codes.bandwidth import BandwidthOptimalCC

                return BandwidthOptimalCC(
                    self.k, self.r, self.anticipate_parities
                )
            return ConvertibleCode(self.k, self.n, family_width=max(family_width, self.k))
        if self.kind is CodeKind.LRC:
            return LocalReconstructionCode(self.k, self.local_groups, self.r_global)
        if self.kind is CodeKind.LRCC:
            return LocallyRecoverableConvertibleCode(
                self.k, self.local_groups, self.r_global,
                family_width=max(family_width, self.k),
            )
        raise ValueError(f"unknown kind {self.kind}")

    def __str__(self) -> str:
        if self.kind in (CodeKind.LRC, CodeKind.LRCC):
            return f"{self.kind.value.upper()}({self.k},{self.local_groups},{self.r_global})"
        return f"{self.kind.value.upper()}({self.k},{self.n})"


@dataclass(frozen=True)
class HybridScheme(RedundancyScheme):
    """Morph's Hy(c, EC(k, n)): c replicas coexisting with an EC stripe.

    The EC data chunks hold the same bytes as the replicas, so any range
    can be served from a replica or from the stripe. Tolerates
    ``c + (n - k)`` arbitrary chunk failures (§4.4). Transcode to the
    embedded EC scheme is a metadata change plus replica deletion — zero
    IO (§4.5).
    """

    copies: int
    ec: ECScheme

    def __post_init__(self):
        if self.copies < 1:
            raise ValueError("hybrid needs at least one replica")

    @property
    def storage_overhead(self) -> float:
        return self.copies + self.ec.storage_overhead

    @property
    def fault_tolerance(self) -> int:
        return self.copies + (self.ec.n - self.ec.k)

    @property
    def chunk_count(self) -> int:
        # One replica block is one chunk-equivalent per data-chunk span.
        return self.copies * self.ec.k + self.ec.n

    @property
    def ingest_disk_multiplier(self) -> float:
        # Temporary extra replicas are deleted from buffer cache before
        # reaching disk in the common case (§4.2).
        return self.storage_overhead

    def __str__(self) -> str:
        return f"Hy({self.copies},{self.ec})"


def degraded_read_probability(f: float, k: int, n: int, copies: int = 1) -> float:
    """Probability a client read of a Hy(copies, EC(k, n)) file is degraded.

    Appendix B: a degraded-mode stripe read happens only when every
    replica of the range is unavailable *and* the covering data chunk of
    the stripe is unavailable (the client then decodes from the rest of
    the stripe). The dominant term, with per-chunk unavailability ``f``:

        P = f**copies * f * (1 - f)**(n - 2)

    For Hy(1, CC(6, 9)) at f = 0.01 this is ~9e-5 — the paper's
    "tail-of-the-tail" 0.00009.
    """
    if not 0 <= f <= 1:
        raise ValueError("f must be a probability")
    return (f ** copies) * f * (1.0 - f) ** (n - 2)


def lcm_of_widths(*widths: int) -> int:
    """k*: the LCM of potential future stripe widths (§5.3 placement)."""
    out = 1
    for w in widths:
        out = out * w // math.gcd(out, w)
    return out
