"""Disk-adaptive redundancy on top of Convertible Codes.

The paper's related work (§8) observes that disk-adaptive redundancy
systems (HeART, Pacemaker, Tiger) change EC parameters as fleet failure
rates drift with disk age, and that their remaining pain — the bulk IO of
re-encoding whole cohorts — is exactly what Morph's native CC transcode
removes. This module builds that composition:

* a bathtub AFR curve models how a disk cohort's failure rate evolves;
* :class:`AdaptiveRedundancyPlanner` picks, per cohort age, the cheapest
  scheme from a CC-friendly ladder that still meets a durability target;
* the emitted transitions are costed under RRW (what HeART-era systems
  pay) versus native CC (what Morph pays), yielding the transition-IO
  series those papers plot as "IO spikes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codes.costmodel import convertible_cost, rrw_cost
from repro.core.durability import FailureEnvironment, annual_loss_probability
from repro.core.schemes import CodeKind, ECScheme


@dataclass(frozen=True)
class BathtubCurve:
    """Annualised failure rate of a disk cohort as a function of age.

    Classic three-phase shape: infant mortality decaying over the first
    year, a useful-life floor, and wear-out growth after ``wearout_years``.
    """

    infant_afr: float = 0.06
    floor_afr: float = 0.012
    wearout_years: float = 4.0
    wearout_slope: float = 0.03  # AFR added per year past wear-out

    def afr(self, age_years: float) -> float:
        if age_years < 0:
            raise ValueError("age must be non-negative")
        infant = (self.infant_afr - self.floor_afr) * np.exp(-3.0 * age_years)
        wearout = max(0.0, age_years - self.wearout_years) * self.wearout_slope
        return float(self.floor_afr + infant + wearout)


#: The CC-friendly scheme ladder the planner chooses from: one family
#: (r = 3), widths in integral-multiple steps so every adjacent move is a
#: pure merge or split.
DEFAULT_LADDER: Tuple[ECScheme, ...] = (
    ECScheme(CodeKind.CC, 6, 9),
    ECScheme(CodeKind.CC, 12, 15),
    ECScheme(CodeKind.CC, 24, 27),
)


@dataclass
class AdaptiveTransition:
    """One fleet-wide scheme change for a cohort."""

    month: int
    source: ECScheme
    target: ECScheme
    #: per-logical-byte disk IO under each execution strategy
    rrw_io: float
    cc_io: float


@dataclass
class AdaptivePlan:
    """Scheme schedule + transition costs for one cohort's lifetime."""

    schedule: List[ECScheme] = field(default_factory=list)  # per month
    transitions: List[AdaptiveTransition] = field(default_factory=list)

    def io_series(self, strategy: str, months: Optional[int] = None) -> np.ndarray:
        """Per-month transition IO (per logical byte) for a strategy."""
        months = months or len(self.schedule)
        out = np.zeros(months)
        for t in self.transitions:
            if t.month < months:
                out[t.month] += t.rrw_io if strategy == "rrw" else t.cc_io
        return out

    @property
    def total_rrw_io(self) -> float:
        return sum(t.rrw_io for t in self.transitions)

    @property
    def total_cc_io(self) -> float:
        return sum(t.cc_io for t in self.transitions)


class AdaptiveRedundancyPlanner:
    """Chooses the cheapest durable scheme per cohort age (HeART-style).

    For each month of a cohort's life, the planner evaluates the ladder
    under the current AFR and picks the most space-efficient scheme whose
    annual data-loss probability (across ``groups`` protection groups)
    stays below ``loss_budget``. Scheme changes become transitions costed
    under both RRW and native CC.
    """

    def __init__(
        self,
        curve: Optional[BathtubCurve] = None,
        ladder: Sequence[ECScheme] = DEFAULT_LADDER,
        loss_budget: float = 1e-7,
        groups: int = 100_000,
        mttr_hours: float = 12.0,
    ):
        self.curve = curve or BathtubCurve()
        self.ladder = list(ladder)
        self.loss_budget = loss_budget
        self.groups = groups
        self.mttr_hours = mttr_hours

    def scheme_for_afr(self, afr: float) -> ECScheme:
        """Most space-efficient ladder scheme meeting the loss budget."""
        env = FailureEnvironment(afr=afr, mttr_hours=self.mttr_hours)
        best = None
        for scheme in self.ladder:
            p = annual_loss_probability(scheme, env, groups=self.groups)
            if p <= self.loss_budget:
                if best is None or scheme.storage_overhead < best.storage_overhead:
                    best = scheme
        # Nothing qualifies: take the most durable (lowest loss) option.
        if best is None:
            best = min(
                self.ladder,
                key=lambda s: annual_loss_probability(s, env, groups=self.groups),
            )
        return best

    def plan(self, months: int = 72) -> AdaptivePlan:
        """Monthly schedule + transitions over a cohort lifetime."""
        plan = AdaptivePlan()
        current: Optional[ECScheme] = None
        for month in range(months):
            afr = self.curve.afr(month / 12.0)
            scheme = self.scheme_for_afr(afr)
            plan.schedule.append(scheme)
            if current is not None and scheme != current:
                rrw = rrw_cost(current.k, current.r, scheme.k, scheme.r).disk_io
                cc = convertible_cost(current.k, current.r, scheme.k, scheme.r).disk_io
                plan.transitions.append(
                    AdaptiveTransition(month, current, scheme, rrw, cc)
                )
            current = scheme
        return plan

    def savings(self, months: int = 72) -> float:
        """Fractional transition-IO saving of CC execution over RRW."""
        plan = self.plan(months)
        if plan.total_rrw_io == 0:
            return 0.0
        return 1.0 - plan.total_cc_io / plan.total_rrw_io
