"""Transcode planning: map a scheme transition to a strategy and IO cost.

The planner is the policy brain shared by the DFS transcoder (which
executes plans on real chunks) and the trace analyzer (which only needs
the arithmetic). Given (from_scheme, to_scheme) it decides:

* **free** — hybrid -> its own embedded EC scheme: delete replicas,
  flip metadata (§4.5);
* **convertible** — CC/LRCC transitions within a point family: merge /
  split / general-regime conversion (§5);
* **rrw** — anything else (the baseline read-re-encode-write).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.codes.costmodel import (
    TranscodeCost,
    convertible_cost,
    lrcc_from_cc_cost,
    lrcc_merge_cost,
    lrc_rrw_cost,
    rrw_cost,
)
from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    RedundancyScheme,
    Replication,
)


class TranscodeKind(enum.Enum):
    FREE = "free"  # replica deletion + metadata flip
    CONVERTIBLE = "convertible"  # CC / LRCC parity-level conversion
    RRW = "rrw"  # read-re-encode-write


@dataclass(frozen=True)
class TranscodeStep:
    """A planned transition: how to get from one scheme to another."""

    source: RedundancyScheme
    target: RedundancyScheme
    kind: TranscodeKind
    cost: TranscodeCost  # per logical byte

    @property
    def is_free(self) -> bool:
        return self.kind is TranscodeKind.FREE


def _ec_of(scheme: RedundancyScheme) -> Optional[ECScheme]:
    if isinstance(scheme, ECScheme):
        return scheme
    if isinstance(scheme, HybridScheme):
        return scheme.ec
    return None


class TranscodePlanner:
    """Chooses the cheapest supported strategy for each transition."""

    def plan(
        self, source: RedundancyScheme, target: RedundancyScheme
    ) -> TranscodeStep:
        # Hybrid -> its embedded EC: free (delete replicas).
        if isinstance(source, HybridScheme) and source.ec == target:
            return TranscodeStep(
                source, target, TranscodeKind.FREE, TranscodeCost(0.0, 0.0, 0.0)
            )
        src_ec = _ec_of(source)
        tgt_ec = _ec_of(target)
        # Replication -> anything, or anything -> replication: RRW.
        if isinstance(source, Replication) or isinstance(target, Replication):
            cost = self._rrw(source, target)
            return TranscodeStep(source, target, TranscodeKind.RRW, cost)
        if src_ec is None or tgt_ec is None:
            raise ValueError(f"cannot plan {source} -> {target}")
        if self._convertible_pair(src_ec, tgt_ec):
            cost = self._cc_cost(src_ec, tgt_ec)
            if cost is not None:
                if isinstance(source, HybridScheme):
                    # The replicas are deleted as part of the transition;
                    # conversion cost applies to the EC part only.
                    pass
                return TranscodeStep(source, target, TranscodeKind.CONVERTIBLE, cost)
        return TranscodeStep(source, target, TranscodeKind.RRW, self._rrw(source, target))

    # -- helpers -----------------------------------------------------------
    def _convertible_pair(self, src: ECScheme, tgt: ECScheme) -> bool:
        return src.kind.convertible and tgt.kind.convertible

    def _cc_cost(self, src: ECScheme, tgt: ECScheme) -> Optional[TranscodeCost]:
        """Cost of a CC-based conversion, or None if unsupported."""
        try:
            if src.kind is CodeKind.CC and tgt.kind is CodeKind.CC:
                if tgt.r > src.r and src.anticipate_parities != tgt.r:
                    # Adding parities without the piggybacked pre-compute
                    # (vector codes) means reading all data anyway.
                    return None
                return convertible_cost(src.k, src.r, tgt.k, tgt.r)
            if src.kind is CodeKind.CC and tgt.kind is CodeKind.LRCC:
                return lrcc_from_cc_cost(
                    src.k, src.r, tgt.k, tgt.local_groups, tgt.r_global
                )
            if src.kind is CodeKind.LRCC and tgt.kind is CodeKind.LRCC:
                return lrcc_merge_cost(
                    src.k, src.local_groups, src.r_global,
                    tgt.k, tgt.local_groups, tgt.r_global,
                )
        except ValueError:
            return None
        return None

    def _rrw(self, source: RedundancyScheme, target: RedundancyScheme) -> TranscodeCost:
        tgt_ec = _ec_of(target)
        if isinstance(target, Replication):
            return TranscodeCost(1.0, float(target.copies), 1.0 + target.copies)
        assert tgt_ec is not None
        if tgt_ec.kind in (CodeKind.LRC, CodeKind.LRCC):
            return lrc_rrw_cost(
                _ec_of(source).k if _ec_of(source) else 1,
                tgt_ec.k, tgt_ec.local_groups, tgt_ec.r_global,
            )
        src_ec = _ec_of(source)
        src_k = src_ec.k if src_ec else 1
        src_r = src_ec.r if src_ec else 0
        return rrw_cost(src_k, src_r, tgt_ec.k, tgt_ec.r)
