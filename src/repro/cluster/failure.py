"""Failure injection for recovery and degraded-mode experiments.

Beyond independent node failures, the injector drives the correlated
patterns production failure data shows (XORing Elephants: failures
arrive in rack/switch bursts): whole-rack failures, multi-rack bursts,
and seeded fractional failures with consistent fraction-of-total
semantics between :meth:`FailureInjector.fail_fraction` and
:meth:`repro.cluster.topology.Cluster.fail_fraction` — both sample
victims from the *alive* population only, so repeated injections always
add the requested number of new failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.cluster.topology import Cluster


@dataclass
class FailureInjector:
    """Drives node failures and chunk corruptions deterministically."""

    cluster: Cluster
    seed: int = 0
    failed_nodes: Set[str] = field(default_factory=set)

    def __post_init__(self):
        self.rng = np.random.default_rng(self.seed)

    def fail_random_nodes(self, count: int) -> List[str]:
        alive = [n.node_id for n in self.cluster.alive_nodes()]
        if count > len(alive):
            raise ValueError(f"cannot fail {count} of {len(alive)} nodes")
        picks = self.rng.choice(len(alive), size=count, replace=False)
        ids = [alive[int(i)] for i in picks]
        for node_id in ids:
            self.cluster.fail_node(node_id)
            self.failed_nodes.add(node_id)
        return ids

    def fail_fraction(self, fraction: float, of_alive: bool = False) -> List[str]:
        """Fail ``fraction`` of the cluster (of the alive population when
        ``of_alive`` — same semantics as ``Cluster.fail_fraction``)."""
        base = (
            len(self.cluster.alive_nodes()) if of_alive else len(self.cluster)
        )
        count = max(1, int(round(fraction * base)))
        return self.fail_random_nodes(count)

    # -- correlated failures ---------------------------------------------------
    def fail_rack(self, rack: int) -> List[str]:
        """Take down every live node in one rack (switch/PDU failure)."""
        ids = self.cluster.fail_rack(rack)
        self.failed_nodes.update(ids)
        return ids

    def fail_random_rack(self) -> int:
        """Fail one rack chosen among racks that still have live nodes."""
        candidates = [
            rack
            for rack in self.cluster.racks()
            if any(n.is_alive for n in self.cluster.nodes_in_rack(rack))
        ]
        if not candidates:
            raise ValueError("no rack with live nodes left to fail")
        rack = candidates[int(self.rng.integers(len(candidates)))]
        self.fail_rack(rack)
        return rack

    def fail_correlated_burst(self, n_racks: int) -> List[str]:
        """A correlated burst: ``n_racks`` whole racks go down together."""
        ids: List[str] = []
        for _ in range(n_racks):
            rack = self.fail_random_rack()
            ids.extend(
                n.node_id for n in self.cluster.nodes_in_rack(rack)
            )
        return ids

    # -- recovery --------------------------------------------------------------
    def recover_node(self, node_id: str) -> None:
        self.cluster.recover_node(node_id)
        self.failed_nodes.discard(node_id)

    def recover_all(self) -> None:
        for node_id in list(self.failed_nodes):
            self.cluster.recover_node(node_id)
        self.failed_nodes.clear()

    def is_available(self, node_id: str) -> bool:
        return node_id not in self.failed_nodes
