"""Failure injection for recovery and degraded-mode experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.cluster.topology import Cluster


@dataclass
class FailureInjector:
    """Drives node failures and chunk corruptions deterministically."""

    cluster: Cluster
    seed: int = 0
    failed_nodes: Set[str] = field(default_factory=set)

    def __post_init__(self):
        self.rng = np.random.default_rng(self.seed)

    def fail_random_nodes(self, count: int) -> List[str]:
        alive = [n.node_id for n in self.cluster.alive_nodes()]
        if count > len(alive):
            raise ValueError(f"cannot fail {count} of {len(alive)} nodes")
        picks = self.rng.choice(len(alive), size=count, replace=False)
        ids = [alive[int(i)] for i in picks]
        for node_id in ids:
            self.cluster.fail_node(node_id)
            self.failed_nodes.add(node_id)
        return ids

    def fail_fraction(self, fraction: float) -> List[str]:
        count = max(1, int(round(fraction * len(self.cluster))))
        return self.fail_random_nodes(count)

    def recover_all(self) -> None:
        for node_id in list(self.failed_nodes):
            self.cluster.recover_node(node_id)
        self.failed_nodes.clear()

    def is_available(self, node_id: str) -> bool:
        return node_id not in self.failed_nodes
