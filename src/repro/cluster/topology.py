"""Cluster topology: racks, nodes, disks, hardware tiers.

The experimental scale mirrors the paper's testbed: 1 Namenode, 23
Datanodes, 5 client nodes, one HDD per Datanode, 40 GbE. Topology is
plain data; behaviour lives in the DFS and the event-driven experiments.

Two extensions support the adversarial scenario suite:

* **Per-node hardware skew.** ``ClusterSpec.node_disk_multipliers`` /
  ``node_net_multipliers`` scale one node's service times — a multiplier
  of 8.0 models a slow disk (straggler), 0.1 models an SSD. The latency
  models accept the multiplier; the functional DFS consults it for
  hedged-read policy decisions.
* **Node classes (tiers).** ``ClusterSpec.node_classes`` partitions the
  cluster into named hardware tiers (e.g. ``ssd`` / ``hdd``) that feed
  placement preferences and the lifecycle planner. Classes are assigned
  round-robin across racks so a tier never concentrates in one rack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.latency import CpuModel, DiskModel, MemoryModel, NetworkModel

TB = 1024 ** 4


@dataclass
class Node:
    """One server: identity, rack, disk capacity and live/dead state."""

    node_id: str
    rack: int
    disk_capacity_bytes: float = 1 * TB
    is_alive: bool = True
    #: hardware tier this node belongs to ("" = untiered cluster)
    node_class: str = ""

    def __hash__(self):
        return hash(self.node_id)

    def __eq__(self, other):
        return isinstance(other, Node) and self.node_id == other.node_id


@dataclass(frozen=True)
class NodeClass:
    """A hardware tier: how many nodes, and how their IO scales."""

    name: str
    count: int
    #: service-time scaling vs the spec's base models (<1 = faster)
    disk_multiplier: float = 1.0
    net_multiplier: float = 1.0
    disk_capacity_bytes: Optional[float] = None


@dataclass
class ClusterSpec:
    """Sizing and hardware models for a simulated cluster."""

    n_datanodes: int = 23
    n_racks: int = 4
    disk_capacity_bytes: float = 1 * TB
    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: battery-backed buffer cache per Datanode (paper: 512 MB)
    buffer_cache_bytes: float = 512 * 1024 * 1024
    #: per-node service-time multipliers (straggler injection); nodes not
    #: listed run at 1.0
    node_disk_multipliers: Dict[str, float] = field(default_factory=dict)
    node_net_multipliers: Dict[str, float] = field(default_factory=dict)
    #: hardware tiers; counts must sum to <= n_datanodes (the remainder
    #: gets the last class)
    node_classes: Optional[Sequence[NodeClass]] = None


class Cluster:
    """The set of Datanodes (placement targets) of a simulated DFS."""

    def __init__(self, spec: Optional[ClusterSpec] = None):
        self.spec = spec or ClusterSpec()
        classes = self._assign_classes()
        self.nodes: List[Node] = []
        for i in range(self.spec.n_datanodes):
            klass = classes[i] if classes else None
            capacity = self.spec.disk_capacity_bytes
            if klass is not None and klass.disk_capacity_bytes is not None:
                capacity = klass.disk_capacity_bytes
            node = Node(
                node_id=f"dn{i:03d}",
                rack=i % self.spec.n_racks,
                disk_capacity_bytes=capacity,
                node_class=klass.name if klass is not None else "",
            )
            self.nodes.append(node)
            if klass is not None:
                if klass.disk_multiplier != 1.0:
                    self.spec.node_disk_multipliers.setdefault(
                        node.node_id, klass.disk_multiplier
                    )
                if klass.net_multiplier != 1.0:
                    self.spec.node_net_multipliers.setdefault(
                        node.node_id, klass.net_multiplier
                    )
        self._by_id: Dict[str, Node] = {n.node_id: n for n in self.nodes}

    def _assign_classes(self) -> Optional[List[NodeClass]]:
        """Node index -> tier, interleaved so each rack mixes tiers."""
        if not self.spec.node_classes:
            return None
        out: List[NodeClass] = []
        for klass in self.spec.node_classes:
            out.extend([klass] * klass.count)
        if len(out) > self.spec.n_datanodes:
            raise ValueError(
                f"node class counts ({len(out)}) exceed n_datanodes "
                f"({self.spec.n_datanodes})"
            )
        while len(out) < self.spec.n_datanodes:
            out.append(self.spec.node_classes[-1])
        # Node ``i`` sits in rack ``i % n_racks``, so assigning the
        # expanded class list in index order deals each tier across the
        # racks like cards — no rack ends up single-tier.
        return out

    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    def alive_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_alive]

    # -- racks ---------------------------------------------------------------
    def racks(self) -> List[int]:
        """Distinct rack ids, ascending."""
        return sorted({n.rack for n in self.nodes})

    def nodes_in_rack(self, rack: int) -> List[Node]:
        return [n for n in self.nodes if n.rack == rack]

    def fail_rack(self, rack: int) -> List[str]:
        """Correlated burst: every node sharing the rack/switch goes down."""
        ids = [n.node_id for n in self.nodes_in_rack(rack) if n.is_alive]
        for node_id in ids:
            self.fail_node(node_id)
        return ids

    # -- tiers ---------------------------------------------------------------
    def nodes_in_class(self, node_class: str) -> List[Node]:
        return [n for n in self.nodes if n.node_class == node_class]

    def disk_multiplier(self, node_id: str) -> float:
        return self.spec.node_disk_multipliers.get(node_id, 1.0)

    def net_multiplier(self, node_id: str) -> float:
        return self.spec.node_net_multipliers.get(node_id, 1.0)

    def set_disk_multiplier(self, node_id: str, multiplier: float) -> None:
        """Mark a node's disk slow/fast (straggler injection hook)."""
        self._by_id[node_id]  # validate the id
        self.spec.node_disk_multipliers[node_id] = float(multiplier)

    # -- failures ------------------------------------------------------------
    def fail_node(self, node_id: str) -> None:
        self._by_id[node_id].is_alive = False

    def recover_node(self, node_id: str) -> None:
        self._by_id[node_id].is_alive = True

    def fail_fraction(self, fraction: float, rng, of_alive: bool = False) -> List[str]:
        """Fail a random fraction of nodes (Fig 14d: 10% down).

        Victims are sampled from the *alive* population only — repeated
        calls always inject the requested number of NEW failures instead
        of re-failing already-dead nodes (which silently under-injected).
        ``fraction`` is of the total cluster size by default, matching
        :meth:`FailureInjector.fail_fraction`; ``of_alive=True`` makes it
        a fraction of the currently-alive population instead.
        """
        pool = self.alive_nodes()
        base = len(pool) if of_alive else len(self.nodes)
        count = max(1, int(round(fraction * base)))
        if count > len(pool):
            raise ValueError(
                f"cannot fail {count} of {len(pool)} alive nodes"
            )
        victims = rng.choice(len(pool), size=count, replace=False)
        ids = [pool[int(i)].node_id for i in victims]
        for node_id in ids:
            self.fail_node(node_id)
        return ids

    def __len__(self) -> int:
        return len(self.nodes)
