"""Cluster topology: racks, nodes, disks.

The experimental scale mirrors the paper's testbed: 1 Namenode, 23
Datanodes, 5 client nodes, one HDD per Datanode, 40 GbE. Topology is
plain data; behaviour lives in the DFS and the event-driven experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.latency import CpuModel, DiskModel, MemoryModel, NetworkModel

TB = 1024 ** 4


@dataclass
class Node:
    """One server: identity, rack, disk capacity and live/dead state."""

    node_id: str
    rack: int
    disk_capacity_bytes: float = 1 * TB
    is_alive: bool = True

    def __hash__(self):
        return hash(self.node_id)

    def __eq__(self, other):
        return isinstance(other, Node) and self.node_id == other.node_id


@dataclass
class ClusterSpec:
    """Sizing and hardware models for a simulated cluster."""

    n_datanodes: int = 23
    n_racks: int = 4
    disk_capacity_bytes: float = 1 * TB
    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    #: battery-backed buffer cache per Datanode (paper: 512 MB)
    buffer_cache_bytes: float = 512 * 1024 * 1024


class Cluster:
    """The set of Datanodes (placement targets) of a simulated DFS."""

    def __init__(self, spec: Optional[ClusterSpec] = None):
        self.spec = spec or ClusterSpec()
        self.nodes: List[Node] = [
            Node(
                node_id=f"dn{i:03d}",
                rack=i % self.spec.n_racks,
                disk_capacity_bytes=self.spec.disk_capacity_bytes,
            )
            for i in range(self.spec.n_datanodes)
        ]
        self._by_id: Dict[str, Node] = {n.node_id: n for n in self.nodes}

    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    def alive_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_alive]

    def fail_node(self, node_id: str) -> None:
        self._by_id[node_id].is_alive = False

    def recover_node(self, node_id: str) -> None:
        self._by_id[node_id].is_alive = True

    def fail_fraction(self, fraction: float, rng) -> List[str]:
        """Fail a random fraction of nodes (Fig 14d: 10% down)."""
        count = max(1, int(round(fraction * len(self.nodes))))
        victims = rng.choice(len(self.nodes), size=count, replace=False)
        ids = [self.nodes[int(i)].node_id for i in victims]
        for node_id in ids:
            self.fail_node(node_id)
        return ids

    def __len__(self) -> int:
        return len(self.nodes)
