"""Block placement policies (paper §5.3, §6.1).

Placement is where Convertible Codes meet the physical cluster:

* **Data separation.** New stripes form over *sequential* data chunks, so
  chunks that may later share a (wider) stripe must never share a server.
  Morph computes ``k*`` — the LCM of every potential future stripe width —
  and places each window of ``k*`` consecutive chunks on distinct nodes.
* **Parity co-location.** When ``r`` stays constant, each merged parity is
  a function of exactly the parities it replaces, so parity ``j`` of all
  stripes in a merge group is placed on one node: the merge is then a
  server-local read-combine-write with **zero network IO**.
* **Hybrid no-overlap.** Replica blocks of a hybrid file exclude the EC
  chunk locations (and vice versa), preserving the failure independence
  that gives Hy(c, EC(k,n)) its c + (n-k) tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.topology import Cluster


class PlacementError(Exception):
    """Raised when the cluster cannot satisfy a placement constraint."""


class PlacementPolicy:
    """Base: rack-spread random placement with exclusions and distinctness.

    Chunks of one stripe should survive a rack failure, so selection
    round-robins across racks (each rack's candidates in random order)
    before taking the first ``count`` — stripes of n <= #racks chunks land
    on n distinct racks, wider stripes spread as evenly as possible.
    """

    def __init__(self, cluster: Cluster, seed: int = 0):
        self.cluster = cluster
        self.rng = np.random.default_rng(seed)
        #: node class preferred for new placements (``None`` = no
        #: preference). Heterogeneous clusters set this per file from the
        #: lifecycle tier mapping: hot files land on the fast tier, cold
        #: ones on the dense tier. A preference never *fails* a
        #: placement — when the preferred class can't supply ``count``
        #: nodes the remainder comes from the rest of the cluster.
        self.prefer_class: Optional[str] = None

    def pick_nodes(
        self,
        count: int,
        exclude: Optional[Sequence[str]] = None,
        spread_racks: bool = True,
        prefer_class: Optional[str] = None,
    ) -> List[str]:
        """Pick ``count`` distinct live nodes, avoiding ``exclude``."""
        excluded = set(exclude or [])
        pool = [n for n in self.cluster.alive_nodes() if n.node_id not in excluded]
        if len(pool) < count:
            raise PlacementError(
                f"need {count} nodes, only {len(pool)} available after exclusions"
            )
        prefer = prefer_class if prefer_class is not None else self.prefer_class
        if not spread_racks:
            idx = self.rng.choice(len(pool), size=count, replace=False)
            picked_nodes = [pool[int(i)] for i in idx]
            if prefer:
                # Stable reorder: preferred-class picks first. The rng
                # draw is identical with or without a preference, so a
                # homogeneous cluster is unaffected.
                picked_nodes.sort(key=lambda n: n.node_class != prefer)
            return [n.node_id for n in picked_nodes]
        by_rack: dict = {}
        klass = {n.node_id: n.node_class for n in pool}
        for node in pool:
            by_rack.setdefault(node.rack, []).append(node.node_id)
        racks = list(by_rack)
        self.rng.shuffle(racks)
        for rack in racks:
            self.rng.shuffle(by_rack[rack])
            if prefer:
                # Within each rack, preferred-class nodes rank first; the
                # cross-rack round-robin below then consumes the fast
                # tier of every rack before touching the rest. Stable
                # sort keeps the shuffled order within each class.
                by_rack[rack].sort(key=lambda nid: klass[nid] != prefer)
        picked: List[str] = []
        level = 0
        while len(picked) < count:
            progressed = False
            for rack in racks:
                nodes = by_rack[rack]
                if level < len(nodes):
                    picked.append(nodes[level])
                    progressed = True
                    if len(picked) == count:
                        break
            if not progressed:
                break
            level += 1
        return picked[:count]


class DefaultPlacement(PlacementPolicy):
    """HDFS-style placement: distinct nodes per stripe, nothing planned.

    Each stripe independently lands on random distinct nodes, so a later
    merge of two stripes usually finds overlapping servers and must move
    chunks (exactly the overhead Morph's policy designs away).
    """

    def place_stripe(self, k: int, r: int) -> Dict[str, List[str]]:
        nodes = self.pick_nodes(k + r)
        return {"data": nodes[:k], "parity": nodes[k:]}

    def place_replicas(self, copies: int, exclude: Optional[Sequence[str]] = None) -> List[str]:
        return self.pick_nodes(copies, exclude=exclude)


class TranscodeAwarePlacement(PlacementPolicy):
    """Morph's policy: k*-window data separation + parity co-location.

    Per file, window ``w`` of ``k_star`` sequential data chunks is bound
    to ``k_star`` distinct nodes; ``r_star`` additional nodes are reserved
    for parities (parity ``j`` of every stripe in the window lands on
    reserved node ``j``). This guarantees (1) every current *and* future
    stripe within the window has all chunks on distinct servers, (2) data
    and parity never overlap, (3) merge-partner parities are co-located.
    """

    def __init__(self, cluster: Cluster, k_star: int, r_star: int, seed: int = 0):
        super().__init__(cluster, seed)
        if k_star < 1 or r_star < 0:
            raise ValueError("k_star must be >= 1 and r_star >= 0")
        if k_star + r_star > len(cluster.alive_nodes()):
            raise PlacementError(
                f"k*+r* = {k_star + r_star} exceeds cluster size {len(cluster)}"
            )
        self.k_star = k_star
        self.r_star = r_star
        # (file_id, window) -> {"data": [...k_star], "parity": [...r_star]}
        self._windows: Dict[tuple, Dict[str, List[str]]] = {}

    def _window_nodes(self, file_id: str, window: int) -> Dict[str, List[str]]:
        key = (file_id, window)
        if key not in self._windows:
            nodes = self.pick_nodes(self.k_star + self.r_star)
            self._windows[key] = {
                "data": nodes[: self.k_star],
                "parity": nodes[self.k_star :],
            }
        return self._windows[key]

    def data_node(self, file_id: str, chunk_index: int) -> str:
        """Node for the ``chunk_index``-th data chunk of a file."""
        window, slot = divmod(chunk_index, self.k_star)
        return self._window_nodes(file_id, window)["data"][slot]

    def parity_node(self, file_id: str, chunk_index: int, parity_j: int) -> str:
        """Node for parity ``j`` of the stripe containing ``chunk_index``.

        Co-located across all stripes of the same k*-window, which is what
        makes same-r CC merges network-free.
        """
        if parity_j >= self.r_star:
            raise PlacementError(
                f"parity index {parity_j} exceeds reserved r*={self.r_star}"
            )
        window = chunk_index // self.k_star
        return self._window_nodes(file_id, window)["parity"][parity_j]

    def place_stripe(self, file_id: str, stripe_index: int, k: int, r: int) -> Dict[str, List[str]]:
        """Data + parity nodes for stripe ``stripe_index`` of width k."""
        first_chunk = stripe_index * k
        data = [self.data_node(file_id, first_chunk + t) for t in range(k)]
        parity = [self.parity_node(file_id, first_chunk, j) for j in range(r)]
        return {"data": data, "parity": parity}

    def place_replicas(
        self, file_id: str, block_index: int, copies: int, exclude: Sequence[str]
    ) -> List[str]:
        """Replica nodes for a hybrid block, excluding its EC chunk nodes."""
        return self.pick_nodes(copies, exclude=exclude)

    def verify_no_future_overlap(self, file_id: str, n_chunks: int) -> bool:
        """True if every k*-window of the file has fully distinct nodes."""
        for window_start in range(0, n_chunks, self.k_star):
            window_nodes = [
                self.data_node(file_id, t)
                for t in range(window_start, min(window_start + self.k_star, n_chunks))
            ]
            if len(set(window_nodes)) != len(window_nodes):
                return False
        return True


class UnplannedPlacement(PlacementPolicy):
    """Ablation policy: per-stripe random placement, nothing planned.

    API-compatible with :class:`TranscodeAwarePlacement` so MorphFS can
    run with planning disabled: stripes still get distinct nodes, but
    merge partners may collide across stripes and parities are scattered,
    so CC merges pay network IO (and real systems would also move data).
    Used by the placement ablation benchmark.
    """

    def __init__(self, cluster: Cluster, seed: int = 0):
        super().__init__(cluster, seed)
        self._stripes: Dict[tuple, Dict[str, List[str]]] = {}

    def place_stripe(self, file_id: str, stripe_index: int, k: int, r: int) -> Dict[str, List[str]]:
        key = (file_id, stripe_index, k, r)
        if key not in self._stripes:
            nodes = self.pick_nodes(k + r)
            self._stripes[key] = {"data": nodes[:k], "parity": nodes[k:]}
        return self._stripes[key]

    def place_replicas(
        self, file_id: str, block_index: int, copies: int, exclude: Sequence[str]
    ) -> List[str]:
        return self.pick_nodes(copies, exclude=exclude)

    def parity_node(self, file_id: str, chunk_index: int, parity_j: int) -> str:
        return self.pick_nodes(1)[0]
