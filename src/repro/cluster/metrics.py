"""IO / compute / memory accounting.

Counters are plain and explicit: the functional DFS and the event-driven
experiments both record into these, and every benchmark reads savings out
of them. Byte counts are floats so cost-model fractions stay exact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class NodeMetrics:
    """Per-node counters."""

    disk_bytes_read: float = 0.0
    disk_bytes_written: float = 0.0
    net_bytes_in: float = 0.0
    net_bytes_out: float = 0.0
    cpu_seconds: float = 0.0
    memory_peak_bytes: float = 0.0
    memory_in_use_bytes: float = 0.0

    @property
    def disk_bytes_total(self) -> float:
        return self.disk_bytes_read + self.disk_bytes_written

    @property
    def net_bytes_total(self) -> float:
        return self.net_bytes_in + self.net_bytes_out

    def use_memory(self, nbytes: float) -> None:
        self.memory_in_use_bytes += nbytes
        self.memory_peak_bytes = max(self.memory_peak_bytes, self.memory_in_use_bytes)

    def free_memory(self, nbytes: float) -> None:
        self.memory_in_use_bytes = max(0.0, self.memory_in_use_bytes - nbytes)


@dataclass
class IOMetrics:
    """Cluster-wide counters plus a per-node breakdown and a time series."""

    nodes: Dict[str, NodeMetrics] = field(default_factory=lambda: defaultdict(NodeMetrics))
    #: (time, disk_bytes_delta) samples for throughput-over-time plots
    timeline: List[Tuple[float, float, str]] = field(default_factory=list)

    def node(self, node_id: str) -> NodeMetrics:
        return self.nodes[node_id]

    def record_disk_read(self, node_id: str, nbytes: float, at: float = 0.0, tag: str = "") -> None:
        self.nodes[node_id].disk_bytes_read += nbytes
        self.timeline.append((at, nbytes, tag or "disk_read"))

    def record_disk_write(self, node_id: str, nbytes: float, at: float = 0.0, tag: str = "") -> None:
        self.nodes[node_id].disk_bytes_written += nbytes
        self.timeline.append((at, nbytes, tag or "disk_write"))

    def record_transfer(self, src: str, dst: str, nbytes: float) -> None:
        if src == dst:
            return  # server-local: no network IO (parity co-location wins)
        self.nodes[src].net_bytes_out += nbytes
        self.nodes[dst].net_bytes_in += nbytes

    def record_cpu(self, node_id: str, seconds: float) -> None:
        self.nodes[node_id].cpu_seconds += seconds

    # -- aggregates --------------------------------------------------------
    @property
    def disk_bytes_read(self) -> float:
        return sum(m.disk_bytes_read for m in self.nodes.values())

    @property
    def disk_bytes_written(self) -> float:
        return sum(m.disk_bytes_written for m in self.nodes.values())

    @property
    def disk_bytes_total(self) -> float:
        return self.disk_bytes_read + self.disk_bytes_written

    @property
    def net_bytes_total(self) -> float:
        # Count each transfer once (out side).
        return sum(m.net_bytes_out for m in self.nodes.values())

    @property
    def cpu_seconds_total(self) -> float:
        return sum(m.cpu_seconds for m in self.nodes.values())

    def capacity_used(self) -> float:
        """Bytes at rest = written minus deleted; maintained by the DFS."""
        return self.disk_bytes_written  # overridden usage: DFS tracks deletes

    def summary(self) -> Dict[str, float]:
        return {
            "disk_read": self.disk_bytes_read,
            "disk_write": self.disk_bytes_written,
            "disk_total": self.disk_bytes_total,
            "network": self.net_bytes_total,
            "cpu_seconds": self.cpu_seconds_total,
        }
