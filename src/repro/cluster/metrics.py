"""IO / compute / memory accounting.

Counters are plain and explicit: the functional DFS and the event-driven
experiments both record into these, and every benchmark reads savings out
of them. Byte counts are floats so cost-model fractions stay exact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple


class TimelineSample(NamedTuple):
    """One metered IO event: when, how many bytes, and what kind.

    ``tag`` distinguishes disk reads/writes/deletes from network
    transfers (and lets instrumented call sites attach finer labels like
    ``"ingest"`` or ``"repair"``), so throughput-over-time plots can
    filter by flow instead of indexing blind.
    """

    at: float
    nbytes: float
    tag: str


@dataclass
class NodeMetrics:
    """Per-node counters."""

    disk_bytes_read: float = 0.0
    disk_bytes_written: float = 0.0
    disk_bytes_deleted: float = 0.0
    net_bytes_in: float = 0.0
    net_bytes_out: float = 0.0
    cpu_seconds: float = 0.0
    memory_peak_bytes: float = 0.0
    memory_in_use_bytes: float = 0.0

    @property
    def disk_bytes_total(self) -> float:
        return self.disk_bytes_read + self.disk_bytes_written

    @property
    def net_bytes_total(self) -> float:
        return self.net_bytes_in + self.net_bytes_out

    def use_memory(self, nbytes: float) -> None:
        self.memory_in_use_bytes += nbytes
        self.memory_peak_bytes = max(self.memory_peak_bytes, self.memory_in_use_bytes)

    def free_memory(self, nbytes: float) -> None:
        self.memory_in_use_bytes = max(0.0, self.memory_in_use_bytes - nbytes)


@dataclass
class MaintenanceClassMetrics:
    """Background-maintenance counters for one task class (repair, scrub, ...)."""

    disk_bytes: float = 0.0
    net_bytes: float = 0.0
    cpu_seconds: float = 0.0
    tasks_completed: int = 0
    tasks_failed: int = 0
    tasks_dead_lettered: int = 0


@dataclass
class IOMetrics:
    """Cluster-wide counters plus a per-node breakdown and a time series."""

    nodes: Dict[str, NodeMetrics] = field(default_factory=lambda: defaultdict(NodeMetrics))
    #: (at, nbytes, tag) samples — disk *and* network IO — for
    #: throughput-over-time plots; filter by ``tag`` to split flows
    timeline: List[TimelineSample] = field(default_factory=list)
    #: per-task-class maintenance accounting, recorded by the scheduler
    maintenance: Dict[str, MaintenanceClassMetrics] = field(
        default_factory=lambda: defaultdict(MaintenanceClassMetrics)
    )

    def node(self, node_id: str) -> NodeMetrics:
        return self.nodes[node_id]

    def record_disk_read(self, node_id: str, nbytes: float, at: float = 0.0, tag: str = "") -> None:
        self.nodes[node_id].disk_bytes_read += nbytes
        self.timeline.append(TimelineSample(at, nbytes, tag or "disk_read"))

    def record_disk_write(self, node_id: str, nbytes: float, at: float = 0.0, tag: str = "") -> None:
        self.nodes[node_id].disk_bytes_written += nbytes
        self.timeline.append(TimelineSample(at, nbytes, tag or "disk_write"))

    def record_disk_delete(self, node_id: str, nbytes: float, at: float = 0.0, tag: str = "") -> None:
        """Bytes freed from a node's disk (capacity leaves, no IO cost)."""
        self.nodes[node_id].disk_bytes_deleted += nbytes
        self.timeline.append(TimelineSample(at, nbytes, tag or "disk_delete"))

    def record_transfer(
        self, src: str, dst: str, nbytes: float, at: float = 0.0, tag: str = ""
    ) -> None:
        if src == dst:
            return  # server-local: no network IO (parity co-location wins)
        self.nodes[src].net_bytes_out += nbytes
        self.nodes[dst].net_bytes_in += nbytes
        self.timeline.append(TimelineSample(at, nbytes, tag or "net_transfer"))

    def record_cpu(self, node_id: str, seconds: float) -> None:
        self.nodes[node_id].cpu_seconds += seconds

    def record_maintenance(
        self,
        task_class: str,
        disk_bytes: float = 0.0,
        net_bytes: float = 0.0,
        cpu_seconds: float = 0.0,
        completed: int = 0,
        failed: int = 0,
        dead_lettered: int = 0,
    ) -> None:
        """Attribute background work to a maintenance task class.

        The byte counters here are a *view over* the per-node counters
        (the same IO is also in ``nodes``), split by who caused it.
        """
        m = self.maintenance[task_class]
        m.disk_bytes += disk_bytes
        m.net_bytes += net_bytes
        m.cpu_seconds += cpu_seconds
        m.tasks_completed += completed
        m.tasks_failed += failed
        m.tasks_dead_lettered += dead_lettered

    # -- aggregates --------------------------------------------------------
    @property
    def disk_bytes_read(self) -> float:
        return sum(m.disk_bytes_read for m in self.nodes.values())

    @property
    def disk_bytes_written(self) -> float:
        return sum(m.disk_bytes_written for m in self.nodes.values())

    @property
    def disk_bytes_deleted(self) -> float:
        return sum(m.disk_bytes_deleted for m in self.nodes.values())

    @property
    def disk_bytes_total(self) -> float:
        return self.disk_bytes_read + self.disk_bytes_written

    @property
    def net_bytes_total(self) -> float:
        # Count each transfer once (out side).
        return sum(m.net_bytes_out for m in self.nodes.values())

    @property
    def cpu_seconds_total(self) -> float:
        return sum(m.cpu_seconds for m in self.nodes.values())

    def capacity_used(self) -> float:
        """Bytes at rest = written minus deleted.

        The DFS's own ``capacity_used`` sums datanode disk maps; the two
        agree as long as every write and delete is metered (the DFS
        asserts exactly that).
        """
        return self.disk_bytes_written - self.disk_bytes_deleted

    def summary(self) -> Dict[str, float]:
        return {
            "disk_read": self.disk_bytes_read,
            "disk_write": self.disk_bytes_written,
            "disk_deleted": self.disk_bytes_deleted,
            "disk_total": self.disk_bytes_total,
            "network": self.net_bytes_total,
            "cpu_seconds": self.cpu_seconds_total,
        }

    def maintenance_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-task-class maintenance totals, for benchmarks and reports."""
        return {
            klass: {
                "disk_bytes": m.disk_bytes,
                "net_bytes": m.net_bytes,
                "cpu_seconds": m.cpu_seconds,
                "completed": m.tasks_completed,
                "failed": m.tasks_failed,
                "dead_lettered": m.tasks_dead_lettered,
            }
            for klass, m in sorted(self.maintenance.items())
        }
