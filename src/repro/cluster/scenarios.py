"""Adversarial scenario suite: correlated failures, partitions, stragglers.

Each scenario pairs two runs:

1. a **functional** run on the byte-exact in-memory DFS — a seeded
   workload is written, the adversity is injected, the heartbeat monitor
   drives repair until the backlog drains, and the suite asserts *zero
   data loss* (every file reads back byte-identical, no chunk is left on
   a dead node);
2. an **event-driven** run (:func:`repro.sched.simulate.run_failure_burst`)
   shaped like the scenario, which checks the scheduler's
   foreground-latency guarantee: with per-node byte budgets the burst
   never admits more than the budget per node-tick, and the foreground
   p99 stays at or below the unthrottled run's.

Every run is seeded and emits a canonical event trace whose sha256
digest is the determinism oracle: same seed, same digest. The partition
scenario additionally proves namenode convergence after heal — the live
state digest must equal a from-scratch journal replay's digest.

Scenarios::

    rack_burst       a whole rack (switch domain) fails at once
    partition_heal   a minority island is cut off, repaired around,
                     then the partition heals
    straggler        one node's disk turns slow; hedged reads route
                     around it
    tiers            heterogeneous ssd/hdd cluster; placement follows
                     the lifecycle tier mapping, then a burst hits

Run with ``python -m repro scenarios [names] [--quick] [--check]``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.failure import FailureInjector
from repro.cluster.topology import Cluster, ClusterSpec, NodeClass

KB = 1024


class ScenarioError(AssertionError):
    """A scenario invariant (zero loss, convergence, latency) failed."""


@dataclass
class ScenarioResult:
    """One scenario run's outcome and its verification verdicts."""

    name: str
    seed: int
    #: canonical event trace (what happened, in order)
    events: List[dict] = field(default_factory=list)
    #: sha256 over the canonical-JSON trace — the determinism oracle
    trace_digest: str = ""
    files_verified: int = 0
    #: chunks still homed on dead nodes after the drain (must be 0)
    lost_chunks: int = 0
    chunks_recovered: int = 0
    repairs_cancelled: int = 0
    hedged_reads: int = 0
    ticks: int = 0
    #: partition scenario: live namenode state == journal replay?
    journal_converged: Optional[bool] = None
    #: event-driven companion run: foreground p99 with budgets on/off
    fg_p99_ms: float = 0.0
    fg_p99_unthrottled_ms: float = 0.0
    #: max maintenance bytes any (node, tick) admitted under budget
    fg_max_node_tick_mb: float = 0.0

    def summary(self) -> str:
        parts = [
            f"{self.name}: {self.files_verified} files byte-exact",
            f"{self.lost_chunks} lost",
            f"{self.chunks_recovered} repaired in {self.ticks} ticks",
        ]
        if self.repairs_cancelled:
            parts.append(f"{self.repairs_cancelled} stale repairs cancelled")
        if self.hedged_reads:
            parts.append(f"{self.hedged_reads} hedged reads")
        if self.journal_converged is not None:
            parts.append(
                "journal converged" if self.journal_converged else "journal DIVERGED"
            )
        parts.append(
            f"fg p99 {self.fg_p99_ms:.1f} ms budgeted"
            f" vs {self.fg_p99_unthrottled_ms:.1f} ms unthrottled"
        )
        return "  ".join(parts)


def _digest(events: List[dict]) -> str:
    payload = json.dumps(events, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


# -- functional-run machinery -------------------------------------------------

def _make_fs(seed: int, spec: ClusterSpec, journaled: bool = False):
    """A MorphFS on the given cluster, optionally journal-backed."""
    from repro.dfs.filesystem import MorphFS

    namenode = None
    journal = None
    if journaled:
        from repro.dfs.journal import Journal, JournaledNamenode

        journal = Journal()
        namenode = JournaledNamenode(journal)
    fs = MorphFS(
        cluster=Cluster(spec),
        chunk_size=4 * KB,
        seed=seed,
        future_widths=[6, 12],
        namenode=namenode,
    )
    return fs, journal


def _write_workload(fs, seed: int, n_files: int, kb_per_file: int) -> Dict[str, str]:
    """Seeded mixed workload (hybrid + pure EC); name -> payload sha256."""
    from repro.core.schemes import CodeKind, ECScheme, HybridScheme

    cc69 = ECScheme(CodeKind.CC, 6, 9)
    rng = np.random.default_rng(seed)
    digests: Dict[str, str] = {}
    for i in range(n_files):
        name = f"f{i:02d}"
        data = rng.integers(0, 256, kb_per_file * KB, dtype=np.uint8)
        scheme = HybridScheme(1, cc69) if i % 2 == 0 else cc69
        fs.write_file(name, data, scheme)
        digests[name] = hashlib.sha256(data.tobytes()).hexdigest()
    return digests


def _kill(fs, node_ids: List[str]) -> None:
    for node_id in node_ids:
        fs.datanodes[node_id].fail()


def _revive(fs, node_ids: List[str]) -> None:
    for node_id in node_ids:
        fs.cluster.recover_node(node_id)
        fs.datanodes[node_id].recover()


def _drain(fs, monitor, events: List[dict], max_ticks: int = 64) -> dict:
    """Tick the heartbeat monitor until repair work stops, with a bound."""
    from repro.dfs.recovery import RecoveryManager

    recovered = 0
    cancelled = 0
    ticks = 0
    for _ in range(max_ticks):
        report = monitor.tick()
        ticks += 1
        recovered += report.chunks_recovered
        cancelled += report.repairs_cancelled
        if report.newly_dead or report.newly_alive or report.chunks_recovered:
            events.append(
                {
                    "event": "tick",
                    "tick": report.tick,
                    "newly_dead": sorted(report.newly_dead),
                    "newly_alive": sorted(report.newly_alive),
                    "recovered": report.chunks_recovered,
                    "cancelled": report.repairs_cancelled,
                }
            )
        backlog_empty = not fs.scheduler.queue.backlog()
        lost = RecoveryManager(fs).lost_chunks(monitor.declared_dead())
        if backlog_empty and not lost and ticks >= monitor.config.dead_after_missed:
            break
    return {
        "recovered": recovered,
        "cancelled": cancelled,
        "ticks": ticks,
        "lost": len(RecoveryManager(fs).lost_chunks(monitor.declared_dead())),
    }


def _verify_readback(fs, digests: Dict[str, str]) -> int:
    """Byte-exact readback of every file; returns the verified count."""
    verified = 0
    for name, want in digests.items():
        data = fs.read_file(name)
        got = hashlib.sha256(np.asarray(data, dtype=np.uint8).tobytes()).hexdigest()
        if got != want:
            raise ScenarioError(f"{name}: readback digest mismatch after scenario")
        verified += 1
    return verified


# -- event-driven companion run ----------------------------------------------

def _fg_guarantee(sim_cfg) -> Dict[str, float]:
    """Run the burst budgeted and unthrottled; enforce the guarantee."""
    from repro.sched.simulate import run_failure_burst

    throttled = run_failure_burst(sim_cfg.budget_disk_bytes_per_tick, sim_cfg)
    unthrottled = run_failure_burst(None, sim_cfg)
    if throttled.repairs_completed != sim_cfg.n_repairs:
        raise ScenarioError(
            f"budgeted run left {sim_cfg.n_repairs - throttled.repairs_completed}"
            " repairs unfinished"
        )
    if throttled.max_node_tick_disk_bytes > sim_cfg.budget_disk_bytes_per_tick + 1e-6:
        raise ScenarioError(
            "budget violated: a node-tick admitted "
            f"{throttled.max_node_tick_disk_bytes:.0f} bytes"
        )
    p99_b = throttled.p99_latency_s * 1e3
    p99_u = unthrottled.p99_latency_s * 1e3
    # The guarantee: budgets never make the foreground tail *worse*.
    if p99_b > p99_u * 1.05:
        raise ScenarioError(
            f"foreground p99 regressed under budgets: {p99_b:.1f} ms"
            f" vs {p99_u:.1f} ms unthrottled"
        )
    return {
        "p99_ms": p99_b,
        "p99_unthrottled_ms": p99_u,
        "max_node_tick_mb": throttled.max_node_tick_disk_bytes / 1e6,
        "hedged": throttled.hedged_reads,
    }


# -- scenarios ----------------------------------------------------------------

def run_rack_burst(seed: int = 0, quick: bool = False) -> ScenarioResult:
    """A whole rack (shared switch/PDU) fails at once.

    With rack-spread placement a 4-rack cluster keeps at most
    ceil(n/4) chunks of any stripe in one rack, so the burst stays
    within CC(6,9)'s tolerance and every chunk re-materialises on the
    surviving racks.
    """
    from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
    from repro.sched.simulate import SimConfig

    result = ScenarioResult(name="rack_burst", seed=seed)
    spec = ClusterSpec(n_datanodes=16 if quick else 20, n_racks=4)
    fs, _ = _make_fs(seed, spec)
    digests = _write_workload(fs, seed, n_files=2 if quick else 6,
                              kb_per_file=48 if quick else 96)
    injector = FailureInjector(fs.cluster, seed=seed)
    rack = injector.fail_random_rack()
    downed = sorted(injector.failed_nodes)
    _kill(fs, downed)
    result.events.append({"event": "fail_rack", "rack": rack, "nodes": downed})

    monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
    stats = _drain(fs, monitor, result.events)
    result.chunks_recovered = stats["recovered"]
    result.ticks = stats["ticks"]
    result.lost_chunks = stats["lost"]
    if result.lost_chunks:
        raise ScenarioError(f"rack_burst: {result.lost_chunks} chunks lost")
    result.files_verified = _verify_readback(fs, digests)

    # Companion event-driven burst: a rack of simultaneous repairs.
    sim = SimConfig(
        n_nodes=12,
        n_repairs=24 if quick else 96,
        duration_s=14.0 if quick else 30.0,
        seed=seed,
    )
    fg = _fg_guarantee(sim)
    result.fg_p99_ms = fg["p99_ms"]
    result.fg_p99_unthrottled_ms = fg["p99_unthrottled_ms"]
    result.fg_max_node_tick_mb = fg["max_node_tick_mb"]
    result.trace_digest = _digest(result.events)
    return result


def run_partition_heal(seed: int = 0, quick: bool = False) -> ScenarioResult:
    """A minority island is cut off, repaired around, then heals.

    While the partition holds, the namenode declares the island dead
    (missed beats) and re-homes its chunks on the majority side, never
    sourcing bytes across the cut. After heal, stale queued repairs for
    chunks the island still holds are cancelled, and the live namenode
    state must be byte-identical to a from-scratch journal replay.
    """
    from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
    from repro.dfs.journal import JournaledNamenode, state_digest
    from repro.sched.simulate import SimConfig

    result = ScenarioResult(name="partition_heal", seed=seed)
    spec = ClusterSpec(n_datanodes=16 if quick else 20, n_racks=4)
    fs, journal = _make_fs(seed, spec, journaled=True)
    digests = _write_workload(fs, seed, n_files=2 if quick else 6,
                              kb_per_file=48 if quick else 96)

    rng = np.random.default_rng(seed)
    node_ids = [n.node_id for n in fs.cluster.nodes]
    island = sorted(
        node_ids[int(i)] for i in rng.choice(len(node_ids), size=2, replace=False)
    )
    fs.partition.isolate(island)
    result.events.append({"event": "partition", "island": island})

    monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
    stats = _drain(fs, monitor, result.events)
    result.chunks_recovered = stats["recovered"]
    result.ticks = stats["ticks"]
    if stats["lost"]:
        raise ScenarioError(f"partition_heal: {stats['lost']} chunks unrepaired")

    fs.partition.heal()
    result.events.append({"event": "heal", "island": island})
    heal_stats = _drain(fs, monitor, result.events, max_ticks=8)
    result.ticks += heal_stats["ticks"]
    result.chunks_recovered += heal_stats["recovered"]
    result.repairs_cancelled = stats["cancelled"] + heal_stats["cancelled"]
    result.lost_chunks = heal_stats["lost"]
    if result.lost_chunks:
        raise ScenarioError(f"partition_heal: {result.lost_chunks} chunks lost")
    result.files_verified = _verify_readback(fs, digests)

    # Convergence after heal: the live namenode equals a from-scratch
    # replay of its own journal, byte for byte.
    replayed = JournaledNamenode.recover(journal)
    result.journal_converged = state_digest(fs.namenode) == state_digest(replayed)
    if not result.journal_converged:
        raise ScenarioError("partition_heal: namenode diverged from journal replay")

    sim = SimConfig(
        n_nodes=12,
        n_repairs=16 if quick else 64,
        burst_at_s=4.0,
        duration_s=14.0 if quick else 30.0,
        seed=seed,
    )
    fg = _fg_guarantee(sim)
    result.fg_p99_ms = fg["p99_ms"]
    result.fg_p99_unthrottled_ms = fg["p99_unthrottled_ms"]
    result.fg_max_node_tick_mb = fg["max_node_tick_mb"]
    result.trace_digest = _digest(result.events)
    return result


def run_straggler(seed: int = 0, quick: bool = False) -> ScenarioResult:
    """One node's disk turns slow; hedged reads route around it.

    The functional run proves the hedge policy is *correct* (byte-exact
    reads that avoid the slow home copy); the event-driven run proves it
    *wins* (hedged p99 strictly below unhedged p99 under the same seed).
    """
    from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
    from repro.sched.simulate import SimConfig, run_failure_burst

    result = ScenarioResult(name="straggler", seed=seed)
    spec = ClusterSpec(n_datanodes=16 if quick else 20, n_racks=4)
    fs, _ = _make_fs(seed, spec)
    digests = _write_workload(fs, seed, n_files=2 if quick else 6,
                              kb_per_file=48 if quick else 96)

    rng = np.random.default_rng(seed)
    slow = fs.cluster.nodes[int(rng.integers(len(fs.cluster.nodes)))].node_id
    fs.cluster.set_disk_multiplier(slow, 8.0)
    fs.hedge_slow_disk_multiplier = 4.0
    result.events.append({"event": "slow_disk", "node": slow, "multiplier": 8.0})

    result.files_verified = _verify_readback(fs, digests)
    result.hedged_reads = fs.reader.hedged_reads
    result.events.append({"event": "hedged_reads", "count": result.hedged_reads})

    # The straggler is NOT dead: the heartbeat monitor must keep it in
    # the living set (no repair storm for a slow-but-alive node).
    monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
    for _ in range(3):
        report = monitor.tick()
        if report.newly_dead:
            raise ScenarioError("straggler: slow node wrongly declared dead")
    result.ticks = 3
    result.lost_chunks = 0

    # Event-driven: same burst with and without hedging; hedging must
    # strictly improve the foreground tail on the straggler cluster.
    base = dict(
        n_nodes=12,
        n_repairs=16 if quick else 48,
        duration_s=14.0 if quick else 30.0,
        seed=seed,
        node_disk_multipliers={"sim03": 8.0},
    )
    unhedged = run_failure_burst(None, SimConfig(**base))
    hedged = run_failure_burst(None, SimConfig(**base, hedge_after_s=0.05))
    if hedged.hedged_reads == 0:
        raise ScenarioError("straggler: hedging never fired")
    if hedged.p99_latency_s >= unhedged.p99_latency_s:
        raise ScenarioError(
            f"straggler: hedged p99 {hedged.p99_latency_s * 1e3:.1f} ms did not"
            f" beat unhedged {unhedged.p99_latency_s * 1e3:.1f} ms"
        )
    result.hedged_reads += hedged.hedged_reads
    fg = _fg_guarantee(SimConfig(**base, hedge_after_s=0.05))
    result.fg_p99_ms = fg["p99_ms"]
    result.fg_p99_unthrottled_ms = fg["p99_unthrottled_ms"]
    result.fg_max_node_tick_mb = fg["max_node_tick_mb"]
    result.trace_digest = _digest(result.events)
    return result


def run_tiers(seed: int = 0, quick: bool = False) -> ScenarioResult:
    """Heterogeneous ssd/hdd cluster: tiered placement, then a burst.

    Hot files follow the lifecycle tier mapping onto the ssd class;
    after a failure burst the repaired cluster still reads back
    byte-exact and the tier preference demonstrably steered placement.
    """
    from repro.core.lifecycle import morph_microbench_policy
    from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
    from repro.sched.simulate import SimConfig

    result = ScenarioResult(name="tiers", seed=seed)
    # Strictly larger than the k*+r* placement window (16), or the
    # window consumes every node and the tier preference has no slack.
    n_nodes = 24 if quick else 28
    ssd = NodeClass("ssd", count=n_nodes // 2, disk_multiplier=0.25)
    hdd = NodeClass("hdd", count=n_nodes - n_nodes // 2, disk_multiplier=1.0)
    spec = ClusterSpec(n_datanodes=n_nodes, n_racks=4, node_classes=[ssd, hdd])
    fs, _ = _make_fs(seed, spec)

    # Hot files prefer the tier the lifecycle mapping names for age 0.
    policy = morph_microbench_policy()
    fs.placement_prefer_class = policy.tier_at(0.0)
    digests = _write_workload(fs, seed, n_files=2 if quick else 6,
                              kb_per_file=48 if quick else 96)
    ssd_ids = {n.node_id for n in fs.cluster.nodes_in_class("ssd")}
    placed = [c.node_id for name in digests
              for c in fs.namenode.lookup(name).all_chunks()]
    on_ssd = sum(1 for node_id in placed if node_id in ssd_ids)
    ssd_fraction = on_ssd / len(placed)
    result.events.append(
        {"event": "tiered_placement", "prefer": fs.placement_prefer_class,
         "ssd_fraction": round(ssd_fraction, 4)}
    )
    # Half the nodes are ssd; a working preference must beat a fair coin.
    if ssd_fraction <= 0.5:
        raise ScenarioError(
            f"tiers: only {ssd_fraction:.0%} of chunks landed on the ssd tier"
        )

    injector = FailureInjector(fs.cluster, seed=seed)
    downed = injector.fail_fraction(0.10)
    _kill(fs, downed)
    result.events.append({"event": "fail_fraction", "nodes": sorted(downed)})
    monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
    stats = _drain(fs, monitor, result.events)
    result.chunks_recovered = stats["recovered"]
    result.ticks = stats["ticks"]
    result.lost_chunks = stats["lost"]
    if result.lost_chunks:
        raise ScenarioError(f"tiers: {result.lost_chunks} chunks lost")
    result.files_verified = _verify_readback(fs, digests)

    # Companion burst on a half-fast cluster (ssd tier at 0.25x). The
    # burst is sized to saturate: under-sized bursts finish fast either
    # way and throttling only stretches the interference window.
    sim = SimConfig(
        n_nodes=12,
        n_repairs=48 if quick else 96,
        duration_s=14.0 if quick else 30.0,
        seed=seed,
        node_disk_multipliers={f"sim{i:02d}": 0.25 for i in range(6)},
    )
    fg = _fg_guarantee(sim)
    result.fg_p99_ms = fg["p99_ms"]
    result.fg_p99_unthrottled_ms = fg["p99_unthrottled_ms"]
    result.fg_max_node_tick_mb = fg["max_node_tick_mb"]
    result.trace_digest = _digest(result.events)
    return result


SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "rack_burst": run_rack_burst,
    "partition_heal": run_partition_heal,
    "straggler": run_straggler,
    "tiers": run_tiers,
}


def run_scenarios(
    names: Optional[List[str]] = None, seed: int = 0, quick: bool = False
) -> Dict[str, ScenarioResult]:
    """Run the named scenarios (default: all), in declaration order."""
    targets = list(SCENARIOS) if not names else names
    unknown = [n for n in targets if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)}")
    return {name: SCENARIOS[name](seed=seed, quick=quick) for name in targets}


def main(argv: Optional[List[str]] = None) -> int:
    """Implements ``python -m repro scenarios``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description="adversarial scenario suite (seeded, self-verifying)",
    )
    parser.add_argument("names", nargs="*", help=f"subset of: {' '.join(SCENARIOS)}")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small clusters and short sims (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any scenario invariant fails")
    args = parser.parse_args(argv)
    try:
        results = run_scenarios(args.names, seed=args.seed, quick=args.quick)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    except ScenarioError as exc:
        print(f"FAIL: {exc}")
        return 1
    for result in results.values():
        print(result.summary())
        print(f"  trace sha256 {result.trace_digest}")
    if args.check:
        print(f"check: {len(results)} scenario(s) passed all invariants")
    return 0
