"""Cluster substrate: event engine, topology, latency models, placement.

* :mod:`repro.cluster.engine` — minimal discrete-event simulation kernel
  (generator-based processes, resources, timeouts, any-of/all-of joins).
* :mod:`repro.cluster.topology` — racks, nodes, disks and their speeds.
* :mod:`repro.cluster.latency` — empirical service-time distributions
  calibrated to the paper's anchor points.
* :mod:`repro.cluster.metrics` — disk/network/CPU/memory accounting.
* :mod:`repro.cluster.placement` — block placement policies, including
  Morph's k*-separation and parity co-location (§5.3).
* :mod:`repro.cluster.failure` — failure injection.
"""

from repro.cluster.engine import AllOf, AnyOf, Environment, Resource, Timeout
from repro.cluster.topology import Cluster, ClusterSpec, Node
from repro.cluster.metrics import IOMetrics, NodeMetrics
from repro.cluster.placement import (
    PlacementError,
    PlacementPolicy,
    DefaultPlacement,
    TranscodeAwarePlacement,
)

__all__ = [
    "Environment",
    "Resource",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Cluster",
    "ClusterSpec",
    "Node",
    "IOMetrics",
    "NodeMetrics",
    "PlacementError",
    "PlacementPolicy",
    "DefaultPlacement",
    "TranscodeAwarePlacement",
]
