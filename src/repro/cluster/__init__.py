"""Cluster substrate: event engine, topology, latency models, placement.

* :mod:`repro.cluster.engine` — minimal discrete-event simulation kernel
  (generator-based processes, resources, timeouts, any-of/all-of joins).
* :mod:`repro.cluster.topology` — racks, nodes, disks and their speeds.
* :mod:`repro.cluster.latency` — empirical service-time distributions
  calibrated to the paper's anchor points.
* :mod:`repro.cluster.metrics` — disk/network/CPU/memory accounting.
* :mod:`repro.cluster.placement` — block placement policies, including
  Morph's k*-separation and parity co-location (§5.3).
* :mod:`repro.cluster.failure` — failure injection (independent and
  correlated rack/switch bursts).
* :mod:`repro.cluster.partition` — network partition reachability mask.
* :mod:`repro.cluster.scenarios` — the adversarial scenario suite
  (`python -m repro scenarios`).
"""

from repro.cluster.engine import AllOf, AnyOf, Environment, Resource, Timeout
from repro.cluster.partition import NetworkPartition
from repro.cluster.topology import Cluster, ClusterSpec, Node, NodeClass
from repro.cluster.metrics import IOMetrics, NodeMetrics
from repro.cluster.placement import (
    PlacementError,
    PlacementPolicy,
    DefaultPlacement,
    TranscodeAwarePlacement,
)

__all__ = [
    "Environment",
    "Resource",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Cluster",
    "ClusterSpec",
    "NetworkPartition",
    "Node",
    "NodeClass",
    "IOMetrics",
    "NodeMetrics",
    "PlacementError",
    "PlacementPolicy",
    "DefaultPlacement",
    "TranscodeAwarePlacement",
]
