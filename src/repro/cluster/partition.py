"""Network partitions: a reachability mask over the cluster.

A partition splits the endpoint set (datanodes plus the distinguished
``namenode`` and ``client`` control endpoints) into groups; two
endpoints communicate only when they share a group. The mask is
consulted by

* heartbeat collection — a datanode cut off from the namenode misses
  beats and is (correctly) declared dead even though its process lives;
* the client read paths — chunks on unreachable nodes are treated as
  unavailable and served from replicas or degraded decodes;
* repair transfers — reconstruction never sources bytes across the cut.

Healing restores full reachability; convergence after heal is verified
by the scenario suite against the journal replay digest (the live
namenode state must equal a from-scratch journal replay).

Endpoints default to group 0, so an inactive mask (no ``split`` call, or
after :meth:`heal`) means everyone reaches everyone at zero cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

#: distinguished control-plane endpoints the mask understands
NAMENODE = "namenode"
CLIENT = "client"


class NetworkPartition:
    """A symmetric, transitive reachability mask (group membership)."""

    def __init__(self):
        self._group: Dict[str, int] = {}
        self.active = False
        #: how many times the mask was split (scenario bookkeeping)
        self.splits = 0

    def split(self, *groups: Sequence[str]) -> None:
        """Partition the network into the given groups.

        Every endpoint named in ``groups[i]`` lands in group ``i + 1``;
        endpoints not named stay in group 0 (the majority side, which by
        convention keeps the namenode and client unless they are
        explicitly listed in a minority group).
        """
        mapping: Dict[str, int] = {}
        for index, members in enumerate(groups, start=1):
            for endpoint in members:
                if endpoint in mapping:
                    raise ValueError(f"{endpoint} listed in two groups")
                mapping[endpoint] = index
        self._group = mapping
        self.active = bool(mapping)
        if self.active:
            self.splits += 1

    def isolate(self, endpoints: Iterable[str]) -> None:
        """Convenience: cut the listed endpoints off from everyone else."""
        self.split(list(endpoints))

    def heal(self) -> None:
        """Restore full reachability."""
        self._group = {}
        self.active = False

    def group_of(self, endpoint: str) -> int:
        return self._group.get(endpoint, 0)

    def reachable(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` can exchange messages."""
        if not self.active or a == b:
            return True
        return self._group.get(a, 0) == self._group.get(b, 0)

    def unreachable_from(self, endpoint: str, candidates: Iterable[str]) -> List[str]:
        return [c for c in candidates if not self.reachable(endpoint, c)]

    def __repr__(self) -> str:
        if not self.active:
            return "<NetworkPartition healed>"
        groups: Dict[int, List[str]] = {}
        for endpoint, g in self._group.items():
            groups.setdefault(g, []).append(endpoint)
        parts = " | ".join(
            ",".join(sorted(members)) for _, members in sorted(groups.items())
        )
        return f"<NetworkPartition rest | {parts}>"
