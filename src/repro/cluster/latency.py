"""Service-time distributions for disks, network and CPU.

The latency experiments are *shape* reproductions: the mechanisms that
separate 3-r from RS(6,9) (slowest-of-3 vs slowest-of-9, parity compute
on the critical path, degraded-mode decode fan-in) must emerge from the
model rather than be painted on. Disk service times use a lognormal body
(seek + rotation) with a Pareto straggler tail — the standard shape for
HDD service in the tail-at-scale literature — plus a bandwidth term.

The defaults are calibrated so a lightly loaded cluster reproduces the
paper's anchor points (8 MB 3-r write p90 ~ 191 ms; RS(6,9) p90 ~ 732 ms;
8 MB read p90 ~ 265 ms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MB = 1024 * 1024


@dataclass
class DiskModel:
    """7200 RPM HDD: positioning time + transfer + rare stragglers."""

    seek_median_s: float = 0.0085
    seek_sigma: float = 0.45
    bandwidth_mb_s: float = 120.0
    straggler_prob: float = 0.03
    straggler_shape: float = 1.6  # Pareto alpha; smaller = heavier tail
    straggler_scale_s: float = 0.05

    def service_time(
        self, rng: np.random.Generator, size_bytes: float, multiplier: float = 1.0
    ) -> float:
        """One IO's service time; ``multiplier`` scales the whole draw
        (per-node hardware skew: slow disks > 1, SSD tiers < 1)."""
        seek = rng.lognormal(np.log(self.seek_median_s), self.seek_sigma)
        transfer = size_bytes / (self.bandwidth_mb_s * MB)
        tail = 0.0
        if rng.random() < self.straggler_prob:
            tail = self.straggler_scale_s * (rng.pareto(self.straggler_shape) + 1.0)
        return (seek + transfer + tail) * multiplier


@dataclass
class NetworkModel:
    """40 GbE: per-message latency + serialisation time."""

    rtt_s: float = 0.0002
    bandwidth_mb_s: float = 4500.0
    jitter_sigma: float = 0.35

    def transfer_time(
        self, rng: np.random.Generator, size_bytes: float, multiplier: float = 1.0
    ) -> float:
        base = self.rtt_s + size_bytes / (self.bandwidth_mb_s * MB)
        return base * rng.lognormal(0.0, self.jitter_sigma) * multiplier


@dataclass
class CpuModel:
    """GF(256) coding throughput of one core.

    ``encode_mb_s`` is bytes of *output parity* per second per unit of
    generator width: encoding w-wide data into one parity of size s costs
    ``w * s / (encode_mb_s * MB)`` seconds. This makes compute scale with
    the computation-matrix width, which is what Fig 15a measures (CC
    merges over 6 parities compute ~2x faster than RS re-encodes over 12
    data chunks).
    """

    encode_mb_s: float = 2800.0
    jitter_sigma: float = 0.20

    def encode_time(
        self, rng: np.random.Generator, width: int, out_parities: int, size_bytes: float
    ) -> float:
        work = width * out_parities * size_bytes / (self.encode_mb_s * MB)
        return work * rng.lognormal(0.0, self.jitter_sigma)


@dataclass
class MemoryModel:
    """Buffer-cache append cost (battery-backed RAM): effectively free
    but not instant — models the receive/copy path of a Datanode."""

    ingest_mb_s: float = 2200.0
    per_packet_s: float = 0.0006
    jitter_sigma: float = 0.30

    def absorb_time(self, rng: np.random.Generator, size_bytes: float) -> float:
        base = self.per_packet_s + size_bytes / (self.ingest_mb_s * MB)
        return base * rng.lognormal(0.0, self.jitter_sigma)
