"""A minimal discrete-event simulation kernel.

Generator-based processes in the style of SimPy, reduced to exactly what
the latency experiments need: timeouts, FIFO resources, process joins and
any-of/all-of combinators. Implemented here (rather than depending on
SimPy) because the environment is offline and the subset is small.

The control-plane fast path (see docs/performance.md) keeps dispatch
cheap enough for multi-million-event simulations:

* every kernel object carries ``__slots__`` — no per-event ``__dict__``;
* the pending set is a heap of *distinct timestamps* plus one FIFO
  bucket (list) per timestamp, so same-time events cost a dict append
  instead of a heap push, and dispatch drains a whole timestamp batch
  per heap pop.  FIFO-within-bucket reproduces exactly the old
  ``(time, seq)`` ordering — the heap key is the bare float, so there is
  never an object-comparison fallback;
* an event with a single waiting process bypasses the callback list
  entirely (``_waiter`` slot): the run loop resumes the generator
  inline, which is the common case for ``yield env.timeout(...)``,
  resource grants and process joins;
* ``Environment.timeout`` recycles :class:`Timeout` objects through a
  free-list.  A timeout is returned to the pool only when the dispatcher
  can prove nothing else references it (CPython refcount check), so
  user code that keeps a handle to a timeout keeps full event semantics.

Example::

    env = Environment()

    def disk_read(env, disk, service):
        req = disk.request()
        yield req
        yield env.timeout(service)
        disk.release(req)

    p = env.process(disk_read(env, disk, 0.008))
    env.run()
"""

from __future__ import annotations

import heapq
import sys
from collections import deque
from typing import Any, Callable, Generator, List, Optional

#: CPython-only: lets the dispatcher prove a Timeout is unreferenced
#: before recycling it.  On runtimes without refcounts (e.g. PyPy) the
#: stand-in never returns 3, which disables the free-list entirely.
_getrefcount = getattr(sys, "getrefcount", None) or (lambda _obj: 0)


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("env", "callbacks", "triggered", "value", "_processed", "_waiter")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.triggered = False
        self.value: Any = None
        # Events start unprocessed; Process waits and the combinators use
        # the flag to tell "triggered but not yet dispatched" from "done".
        self._processed = False
        #: sole-process fast lane: the Process to resume at dispatch,
        #: before any registered callbacks run (matches legacy append
        #: order: the yielding process was always appended last).
        self._waiter: Optional["Process"] = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule_event(self)
        return self


class Timeout(Event):
    """Fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.triggered = True
        self.value = value
        env._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` objects and is resumed with each
    event's ``value``.
    """

    __slots__ = ("_gen", "_send")

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        self._gen = gen
        self._send = gen.send
        # Bootstrap on the next tick.
        bootstrap = Event(env)
        bootstrap._waiter = self
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        """Callback-lane resume (sole-waiter resumes are inlined in
        :meth:`Environment.run`); delegates to the shared advance."""
        self.env._advance(self, trigger.value)


class AllOf(Event):
    """Fires when every child event has fired; value is their value list."""

    __slots__ = ("_pending", "_events")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self._pending = 0
        self._events = events
        for ev in events:
            if ev.triggered and ev._processed:
                continue
            self._pending += 1
            ev.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([ev.value for ev in events])

    def _on_child(self, ev: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires when the first child fires; value is (index, value).

    When the first child fires, the losers' callbacks are *detached*:
    long-running simulations race timeouts against slow IO, and leaving
    a live closure on every losing child would pin the AnyOf (and its
    whole event list) until the loser eventually fires.
    """

    __slots__ = ("_events", "_child_cbs")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self._events = events
        self._child_cbs: List = []
        done = next(
            (i for i, ev in enumerate(events) if ev.triggered and ev._processed),
            None,
        )
        if done is not None:
            self.succeed((done, events[done].value))
            return
        for i, ev in enumerate(events):
            cb = self._make_cb(i)
            self._child_cbs.append(cb)
            ev.callbacks.append(cb)

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            if not self.triggered:
                self.succeed((index, ev.value))
                self._detach(winner=index)

        return cb

    def _detach(self, winner: int) -> None:
        """Drop the losing children's callbacks so they no longer pin us."""
        for i, (ev, cb) in enumerate(zip(self._events, self._child_cbs)):
            if i == winner:
                continue
            cbs = ev.callbacks
            if cbs:
                try:
                    cbs.remove(cb)
                except ValueError:
                    pass
        self._child_cbs = []


class Resource:
    """A FIFO resource with fixed capacity (e.g. a disk's service slots).

    When given a metrics ``registry``, every granted request records the
    time it spent queued into a ``resource_wait_seconds`` histogram
    labelled with the resource's ``name`` — the contention signal the
    cluster report reads. Without a registry the accounting code never
    runs (observability stays zero-cost when off).
    """

    __slots__ = ("env", "capacity", "in_use", "_waiters", "_wait_hist")

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        name: Optional[str] = None,
        registry=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        # deque, not list: release() grants FIFO from the head, and a
        # list.pop(0) is O(waiters) per release — a failure burst with a
        # deep disk queue turns that into quadratic time.
        self._waiters: deque = deque()
        self._wait_hist = (
            registry.histogram("resource_wait_seconds", resource=name or "resource")
            if registry is not None
            else None
        )

    def _track_wait(self, ev: Event) -> None:
        if self._wait_hist is None:
            return
        requested_at = self.env.now
        hist = self._wait_hist
        ev.callbacks.append(lambda _e: hist.record(self.env.now - requested_at))

    def request(self) -> Event:
        """Event that fires when a slot is granted."""
        ev = Event(self.env)
        self._track_wait(ev)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self, _request: Optional[Event] = None) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class PriorityResource(Resource):
    """A resource whose waiters are granted lowest-priority-value first.

    Foreground/background interference modeling: foreground reads request
    at priority 0, maintenance IO at a higher value, so a backlogged disk
    serves user work first. Ties break FIFO.
    """

    __slots__ = ("_pq", "_pq_seq")

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        name: Optional[str] = None,
        registry=None,
    ):
        super().__init__(env, capacity, name=name, registry=registry)
        self._pq: List = []  # (priority, seq, event)
        self._pq_seq = 0

    def request(self, priority: float = 0.0) -> Event:
        ev = Event(self.env)
        self._track_wait(ev)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            heapq.heappush(self._pq, (priority, self._pq_seq, ev))
            self._pq_seq += 1
        return ev

    def release(self, _request: Optional[Event] = None) -> None:
        if self._pq:
            _, _, ev = heapq.heappop(self._pq)
            ev.succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._pq)


class Environment:
    """Simulation clock plus the pending-event schedule.

    The schedule is a heap of distinct timestamps and a dict mapping
    each pending timestamp to its FIFO bucket of events.  Scheduling at
    an already-pending timestamp is one dict hit and a list append;
    only the first event at a new timestamp pays the heap push.
    """

    __slots__ = (
        "now",
        "_heap",
        "_buckets",
        "_timeout_pool",
        "_cache_t",
        "_cache_bucket",
        "_spare_bucket",
    )

    def __init__(self):
        self.now = 0.0
        self._heap: List[float] = []
        self._buckets: dict = {}
        self._timeout_pool: List[Timeout] = []
        # Last-bucket cache: scheduling several events at one timestamp
        # (the batch-dispatch common case) pays the dict lookup once.
        self._cache_t: Optional[float] = None
        self._cache_bucket: Optional[List[Event]] = None
        self._spare_bucket: Optional[List[Event]] = None

    # -- event plumbing -----------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        t = self.now + delay
        if t == self._cache_t:
            self._cache_bucket.append(event)
            return
        bucket = self._buckets.get(t)
        if bucket is None:
            bucket = self._spare_bucket
            if bucket is None:
                bucket = []
            else:
                self._spare_bucket = None
            self._buckets[t] = bucket
            heapq.heappush(self._heap, t)
        self._cache_t = t
        self._cache_bucket = bucket
        bucket.append(event)

    # -- public API -----------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pending :class:`Timeout`; recycled through the free-list."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.value = value
            ev._processed = False
            ev._waiter = None
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev.callbacks = []
            ev.triggered = True
            ev.value = value
            ev._processed = False
            ev._waiter = None
        t = self.now + delay
        if t == self._cache_t:
            self._cache_bucket.append(ev)
            return ev
        bucket = self._buckets.get(t)
        if bucket is None:
            bucket = self._spare_bucket
            if bucket is None:
                bucket = []
            else:
                self._spare_bucket = None
            self._buckets[t] = bucket
            heapq.heappush(self._heap, t)
        self._cache_t = t
        self._cache_bucket = bucket
        bucket.append(ev)
        return ev

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    def _advance(self, process: Process, value: Any) -> None:
        """Resume ``process`` with ``value`` and wire up its next target."""
        try:
            target = process._send(value)
        except StopIteration as stop:
            if not process.triggered:
                process.triggered = True
                process.value = stop.value
                self._schedule_event(process)
            return
        try:
            processed = target._processed
        except AttributeError:
            raise TypeError(f"process yielded non-event {target!r}") from None
        if not processed:
            # Pending (or triggered-but-undelivered) target: become its
            # sole waiter when possible, else queue behind its callbacks.
            if target._waiter is None and not target.callbacks:
                target._waiter = process
            else:
                target.callbacks.append(process._resume)
        else:
            # Already fired and delivered: resume on the next dispatch.
            stub = Event(self)
            stub.value = target.value
            stub.triggered = True
            stub._waiter = process
            self._schedule_event(stub)

    def run(self, until: Optional[float] = None) -> None:
        """Dispatch events until the schedule drains or the clock passes
        ``until``.  All events of one timestamp dispatch as a batch.

        The sole-waiter lane — a process blocked on a timeout, resource
        grant or join with no other observers — is fully inlined here:
        one generator ``send`` plus one ``_waiter`` store per event, no
        callback list and no intermediate frames.
        """
        heap = self._heap
        buckets = self._buckets
        pool = self._timeout_pool
        heappop = heapq.heappop
        getrefcount = _getrefcount
        while heap:
            if until is None:
                t = heappop(heap)
            else:
                t = heap[0]
                if t > until:
                    self.now = until
                    return
                heappop(heap)
            self.now = t
            bucket = buckets.pop(t)
            if t == self._cache_t:
                # The live bucket for t is leaving the schedule — events
                # created during dispatch at this same timestamp must
                # land in a fresh bucket (they dispatch on a later pop).
                self._cache_t = None
                self._cache_bucket = None
            for event in bucket:
                event._processed = True
                waiter = event._waiter
                if waiter is not None:
                    # Inlined Process resume (see _advance for the
                    # readable form — keep the two in sync).
                    try:
                        target = waiter._send(event.value)
                    except StopIteration as stop:
                        if not waiter.triggered:
                            waiter.triggered = True
                            waiter.value = stop.value
                            self._schedule_event(waiter)
                    else:
                        try:
                            processed = target._processed
                        except AttributeError:
                            raise TypeError(
                                f"process yielded non-event {target!r}"
                            ) from None
                        if not processed:
                            if target._waiter is None and not target.callbacks:
                                target._waiter = waiter
                            else:
                                target.callbacks.append(waiter._resume)
                        else:
                            stub = Event(self)
                            stub.value = target.value
                            stub.triggered = True
                            stub._waiter = waiter
                            self._schedule_event(stub)
                    if (
                        type(event) is Timeout
                        and not event.callbacks
                        and getrefcount(event) == 3
                    ):
                        # bucket + loop variable + getrefcount argument:
                        # provably unreferenced elsewhere — recycle.  The
                        # pool needs no size cap: it can only grow to the
                        # largest same-timestamp batch ever dispatched
                        # (each timeout() call pops one entry back out).
                        # Stale value/_waiter slots are overwritten at
                        # reuse in timeout(), not cleared here.
                        pool.append(event)
                    continue
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
            # The drained bucket is unreachable from user code (never
            # handed out) — recycle the list for the next timestamp.
            bucket.clear()
            self._spare_bucket = bucket
        if until is not None:
            self.now = until
