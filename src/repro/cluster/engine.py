"""A minimal discrete-event simulation kernel.

Generator-based processes in the style of SimPy, reduced to exactly what
the latency experiments need: timeouts, FIFO resources, process joins and
any-of/all-of combinators. Implemented here (rather than depending on
SimPy) because the environment is offline and the subset is small.

Example::

    env = Environment()

    def disk_read(env, disk, service):
        req = disk.request()
        yield req
        yield env.timeout(service)
        disk.release(req)

    p = env.process(disk_read(env, disk, 0.008))
    env.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._schedule_event(self)
        return self


class Timeout(Event):
    """Fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.triggered = True
        self.value = value
        env._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` objects and is resumed with each
    event's ``value``.
    """

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        self._gen = gen
        # Bootstrap on the next tick.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        try:
            target = self._gen.send(trigger.value)
        except StopIteration as stop:
            if not self.triggered:
                self.triggered = True
                self.value = stop.value
                self.env._schedule_event(self)
            return
        if not isinstance(target, Event):
            raise TypeError(f"process yielded non-event {target!r}")
        if target.triggered and target._processed:
            # Already fired and delivered: resume immediately via a stub.
            stub = Event(self.env)
            stub.callbacks.append(self._resume)
            stub.value = target.value
            stub.triggered = True
            self.env._schedule_event(stub)
        else:
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when every child event has fired; value is their value list."""

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self._pending = 0
        self._events = events
        for ev in events:
            if ev.triggered and ev._processed:
                continue
            self._pending += 1
            ev.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([ev.value for ev in events])

    def _on_child(self, ev: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires when the first child fires; value is (index, value)."""

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self._events = events
        done = next(
            (i for i, ev in enumerate(events) if ev.triggered and ev._processed),
            None,
        )
        if done is not None:
            self.succeed((done, events[done].value))
            return
        for i, ev in enumerate(events):
            ev.callbacks.append(self._make_cb(i))

    def _make_cb(self, index: int):
        def cb(ev: Event) -> None:
            if not self.triggered:
                self.succeed((index, ev.value))

        return cb


class Resource:
    """A FIFO resource with fixed capacity (e.g. a disk's service slots).

    When given a metrics ``registry``, every granted request records the
    time it spent queued into a ``resource_wait_seconds`` histogram
    labelled with the resource's ``name`` — the contention signal the
    cluster report reads. Without a registry the accounting code never
    runs (observability stays zero-cost when off).
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        name: Optional[str] = None,
        registry=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: List[Event] = []
        self._wait_hist = (
            registry.histogram("resource_wait_seconds", resource=name or "resource")
            if registry is not None
            else None
        )

    def _track_wait(self, ev: Event) -> None:
        if self._wait_hist is None:
            return
        requested_at = self.env.now
        hist = self._wait_hist
        ev.callbacks.append(lambda _e: hist.record(self.env.now - requested_at))

    def request(self) -> Event:
        """Event that fires when a slot is granted."""
        ev = Event(self.env)
        self._track_wait(ev)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self, _request: Optional[Event] = None) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class PriorityResource(Resource):
    """A resource whose waiters are granted lowest-priority-value first.

    Foreground/background interference modeling: foreground reads request
    at priority 0, maintenance IO at a higher value, so a backlogged disk
    serves user work first. Ties break FIFO.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        name: Optional[str] = None,
        registry=None,
    ):
        super().__init__(env, capacity, name=name, registry=registry)
        self._pq: List = []  # (priority, seq, event)
        self._pq_seq = 0

    def request(self, priority: float = 0.0) -> Event:
        ev = Event(self.env)
        self._track_wait(ev)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            heapq.heappush(self._pq, (priority, self._pq_seq, ev))
            self._pq_seq += 1
        return ev

    def release(self, _request: Optional[Event] = None) -> None:
        if self._pq:
            _, _, ev = heapq.heappop(self._pq)
            ev.succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._pq)


class Environment:
    """Simulation clock plus the pending-event heap."""

    def __init__(self):
        self.now = 0.0
        self._heap: List = []
        self._seq = 0

    # -- event plumbing -----------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    # -- public API -----------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Dispatch events until the heap drains or the clock passes ``until``."""
        while self._heap:
            t, _seq, event = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = t
            event._processed = True
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
        if until is not None:
            self.now = until


# Events start unprocessed; Process._resume and the combinators use the
# flag to distinguish "triggered but not yet dispatched" from "done".
Event._processed = False
