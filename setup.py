"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Morph: Efficient File-Lifetime Redundancy "
        "Management for Cluster File Systems (SOSP 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
