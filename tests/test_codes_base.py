"""Stripe/chunk plumbing and the generic ErasureCode machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.base import (
    DecodeError,
    Stripe,
    chunks_equal,
    join_chunks,
    split_into_chunks,
)
from repro.codes.rs import ReedSolomon


class TestSplitJoin:
    def test_split_even(self):
        data = np.arange(12, dtype=np.uint8)
        chunks = split_into_chunks(data, 3)
        assert len(chunks) == 3
        assert all(len(c) == 4 for c in chunks)
        assert np.array_equal(join_chunks(chunks), data)

    def test_split_pads_tail(self):
        data = np.arange(10, dtype=np.uint8)
        chunks = split_into_chunks(data, 4)
        assert all(len(c) == 3 for c in chunks)
        assert np.array_equal(join_chunks(chunks, length=10), data)

    def test_split_empty(self):
        chunks = split_into_chunks(np.array([], dtype=np.uint8), 2)
        assert len(chunks) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 12))
    def test_roundtrip_property(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        data = rng.integers(0, 256, n, dtype=np.uint8)
        assert np.array_equal(join_chunks(split_into_chunks(data, k), length=n), data)

    def test_chunks_equal(self):
        a = [np.array([1, 2], np.uint8)]
        b = [np.array([1, 2], np.uint8)]
        assert chunks_equal(a, b)
        assert not chunks_equal(a, [np.array([1, 3], np.uint8)])
        assert not chunks_equal(a, a + a)


class TestStripe:
    def _stripe(self):
        code = ReedSolomon(4, 6)
        rng = np.random.default_rng(3)
        data = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(4)]
        return code.encode_stripe(data)

    def test_properties(self):
        s = self._stripe()
        assert s.k == 4 and s.n == 6 and s.r == 2
        assert len(s.data_chunks) == 4
        assert len(s.parity_chunks) == 2
        assert s.chunk_size() == 8

    def test_erase_is_copy(self):
        s = self._stripe()
        e = s.erase(0, 5)
        assert e.erased_indices() == [0, 5]
        assert s.erased_indices() == []
        assert e.available_indices() == [1, 2, 3, 4]

    def test_chunk_size_requires_data(self):
        s = Stripe(2, 3, [None, None, None])
        with pytest.raises(ValueError):
            s.chunk_size()


class TestGenericCodeMachinery:
    def test_encode_wrong_chunk_count(self):
        code = ReedSolomon(4, 6)
        with pytest.raises(ValueError):
            code.encode([np.zeros(4, np.uint8)] * 3)

    def test_decode_insufficient_chunks(self):
        code = ReedSolomon(4, 6)
        with pytest.raises(DecodeError):
            code.decode({0: np.zeros(4, np.uint8)}, [1])

    def test_decode_nothing_returns_empty(self):
        code = ReedSolomon(4, 6)
        assert code.decode({}, []) == {}

    def test_storage_overhead(self):
        assert ReedSolomon(6, 9).storage_overhead() == pytest.approx(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReedSolomon(0, 3)
        with pytest.raises(ValueError):
            ReedSolomon(5, 5)

    def test_repr(self):
        assert repr(ReedSolomon(6, 9)) == "ReedSolomon(6,9)"
