"""DFS read paths: replica-first, striped, degraded (§4.3)."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS
from repro.dfs.client import ReadError

KB = 1024


def hybrid_fs(n_bytes=96 * KB, seed=1, copies=1):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
    data = np.random.default_rng(seed).integers(0, 256, n_bytes, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(copies, ECScheme(CodeKind.CC, 6, 9)))
    return fs, data


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


class TestBasicReads:
    def test_full_read_roundtrip(self):
        fs, data = hybrid_fs()
        assert np.array_equal(fs.read_file("f"), data)

    def test_range_read(self):
        fs, data = hybrid_fs()
        out = fs.read_file("f", offset=5000, length=9000)
        assert np.array_equal(out, data[5000:14000])

    def test_range_validation(self):
        fs, data = hybrid_fs()
        with pytest.raises(ValueError):
            fs.read_file("f", offset=-1, length=10)
        with pytest.raises(ValueError):
            fs.read_file("f", offset=0, length=len(data) + 1)

    def test_replication_read(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(2).integers(0, 256, 64 * KB, dtype=np.uint8)
        fs.write_file("f", data, Replication(3))
        assert np.array_equal(fs.read_file("f"), data)

    def test_ec_read(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(3).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        assert np.array_equal(fs.read_file("f"), data)


class TestStrategySelection:
    def test_small_hybrid_read_prefers_replica(self):
        """A sub-stripe read should touch only the replica's node."""
        fs, data = hybrid_fs()
        before = {nid: m.disk_bytes_read for nid, m in fs.metrics.nodes.items()}
        fs.read_file("f", offset=0, length=4 * KB)
        touched = [
            nid
            for nid, m in fs.metrics.nodes.items()
            if m.disk_bytes_read > before.get(nid, 0)
        ]
        assert len(touched) == 1
        meta = fs.namenode.lookup("f")
        replica_nodes = {c.node_id for b in meta.replica_blocks for c in b.copies}
        assert touched[0] in replica_nodes

    def test_large_read_uses_stripe(self):
        fs, data = hybrid_fs()
        before = fs.metrics.disk_bytes_read
        out = fs.read_file("f", prefer_striped=True)
        assert np.array_equal(out, data)
        meta = fs.namenode.lookup("f")
        data_nodes = {c.node_id for s in meta.stripes for c in s.data}
        touched = {
            nid for nid, m in fs.metrics.nodes.items() if m.disk_bytes_read > 0
        }
        assert touched <= data_nodes

    def test_replica_dead_falls_to_stripe(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        for block in meta.replica_blocks:
            for copy in block.copies:
                kill(fs, copy.node_id)
        assert np.array_equal(fs.read_file("f"), data)


class TestDegradedReads:
    def test_hybrid_degraded_served_from_replica(self):
        """Dead data-chunk node: hybrid reads the replica range (§4.3)."""
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[2].node_id
        kill(fs, victim)
        out = fs.read_file("f", prefer_striped=True)
        assert np.array_equal(out, data)
        # No decode CPU should have been charged to the client.
        assert fs.metrics.node("client").cpu_seconds == 0

    def test_pure_ec_degraded_decodes(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(4).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        kill(fs, meta.stripes[0].data[0].node_id)
        out = fs.read_file("f")
        assert np.array_equal(out, data)
        assert fs.metrics.node("client").cpu_seconds > 0  # decode happened

    def test_beyond_tolerance_raises(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(5).integers(0, 256, 24 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        for chunk in meta.stripes[0].all_chunks()[:4]:
            kill(fs, chunk.node_id)
        with pytest.raises(ReadError):
            fs.read_file("f")

    def test_hybrid_tolerates_c_plus_r_failures(self):
        """Hy(1, CC(6,9)) survives any 4 chunk losses of one block (§4.4)."""
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        stripe = meta.stripes[0]
        block = meta.hybrid_blocks()[0].replicas[0]
        kill(fs, block.copies[0].node_id)  # the replica
        for chunk in stripe.all_chunks()[:3]:  # 3 = n - k stripe chunks
            kill(fs, chunk.node_id)
        assert np.array_equal(fs.read_file("f"), data)

    def test_lrc_degraded_read_local(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[12])
        data = np.random.default_rng(6).integers(0, 256, 96 * KB, dtype=np.uint8)
        lrcc = ECScheme(CodeKind.LRCC, 12, 16, local_groups=2, r_global=2)
        fs.write_file("f", data, lrcc)
        meta = fs.namenode.lookup("f")
        kill(fs, meta.stripes[0].data[1].node_id)
        before = fs.metrics.disk_bytes_read
        out = fs.read_file("f")
        assert np.array_equal(out, data)


class TestDeletion:
    def test_delete_frees_everything(self):
        fs, data = hybrid_fs()
        assert fs.capacity_used() > 0
        fs.delete_file("f")
        assert fs.capacity_used() == 0
        with pytest.raises(KeyError):
            fs.read_file("f")
