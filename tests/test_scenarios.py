"""Adversarial scenario suite + the three bugs it exposed (regressions).

Covers:

* ``Cluster.fail_fraction`` sampling victims from the alive population
  only (it used to re-fail already-dead nodes and under-inject);
* dead-lettered ``ChunkRepairTask``s being resubmitted by the periodic
  repair sweep (they used to orphan their chunk forever);
* heartbeat tolerance for datanodes registered after the monitor was
  constructed (used to ``KeyError``), plus cancellation of stale queued
  repairs when their node returns intact;
* the scenario suite itself: seeded determinism via trace digests,
  partition-heal convergence against the journal replay digest, and the
  hedged-read latency win under a straggler.
"""

import numpy as np
import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.partition import NetworkPartition
from repro.cluster.topology import Cluster, ClusterSpec, NodeClass
from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.sched.policies import SchedulerPolicy
from repro.sched.scheduler import MaintenanceScheduler
from repro.sched.tasks import ChunkRepairTask

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def hybrid_fs(seed=1, n_kb=96, **fs_kw):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12], **fs_kw)
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, CC69))
    return fs, data


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


def revive(fs, node_id):
    fs.cluster.recover_node(node_id)
    fs.datanodes[node_id].recover()


# -- bugfix 1: fail_fraction samples the alive population --------------------

class TestFailFractionAliveOnly:
    def test_never_refails_dead_nodes(self):
        cluster = Cluster(ClusterSpec(n_datanodes=20))
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(5):
            victims = cluster.fail_fraction(0.10, rng)
            assert len(victims) == 2
            # Every injection produces NEW failures.
            assert not (set(victims) & seen)
            seen.update(victims)
        assert len(seen) == 10

    def test_of_alive_uses_current_population(self):
        cluster = Cluster(ClusterSpec(n_datanodes=20))
        rng = np.random.default_rng(0)
        cluster.fail_fraction(0.50, rng)  # 10 down, 10 alive
        victims = cluster.fail_fraction(0.50, rng, of_alive=True)
        assert len(victims) == 5  # half of the 10 still alive

    def test_raises_when_alive_pool_exhausted(self):
        cluster = Cluster(ClusterSpec(n_datanodes=4))
        rng = np.random.default_rng(0)
        cluster.fail_fraction(0.75, rng)
        with pytest.raises(ValueError):
            cluster.fail_fraction(0.75, rng)

    def test_injector_fraction_matches_cluster_semantics(self):
        cluster = Cluster(ClusterSpec(n_datanodes=20))
        injector = FailureInjector(cluster, seed=3)
        first = injector.fail_fraction(0.10)
        second = injector.fail_fraction(0.10)
        assert len(first) == len(second) == 2
        assert not (set(first) & set(second))


# -- bugfix 2: dead-lettered repairs are resubmitted -------------------------

class TestRepairResubmission:
    def test_dead_lettered_repair_is_eventually_resubmitted(self, monkeypatch):
        from repro.dfs import recovery as recovery_mod

        fs, data = hybrid_fs()
        # One failed attempt dead-letters the task immediately.
        fs.scheduler = MaintenanceScheduler(fs, policy=SchedulerPolicy(max_attempts=1))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor = HeartbeatMonitor(
            fs, HeartbeatConfig(dead_after_missed=2, repair_resubmit_every_ticks=3)
        )

        real = recovery_mod.RecoveryManager.recover_chunk
        state = {"fail": True}

        def flaky(self, meta, chunk):
            if state["fail"]:
                raise RuntimeError("transient source error")
            return real(self, meta, chunk)

        monkeypatch.setattr(recovery_mod.RecoveryManager, "recover_chunk", flaky)
        # Declare dead; the first repair wave fails and dead-letters.
        monitor.tick(), monitor.tick()
        assert fs.scheduler.dead_letter
        assert not fs.scheduler.queue.find(lambda t: isinstance(t, ChunkRepairTask))

        # Source recovers; the periodic sweep must resubmit fresh tasks.
        state["fail"] = False
        recovered = sum(monitor.tick().chunks_recovered for _ in range(6))
        assert recovered > 0
        assert np.array_equal(fs.read_file("f"), data)

    def test_no_resubmission_when_disabled(self, monkeypatch):
        from repro.dfs import recovery as recovery_mod

        fs, _ = hybrid_fs()
        fs.scheduler = MaintenanceScheduler(fs, policy=SchedulerPolicy(max_attempts=1))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor = HeartbeatMonitor(
            fs, HeartbeatConfig(dead_after_missed=2, repair_resubmit_every_ticks=0)
        )
        monkeypatch.setattr(
            recovery_mod.RecoveryManager,
            "recover_chunk",
            lambda self, meta, chunk: (_ for _ in ()).throw(RuntimeError("down")),
        )
        for _ in range(8):
            monitor.tick()
        # Legacy behavior when the sweep is off: buried tasks stay buried.
        assert fs.scheduler.dead_letter
        assert not fs.scheduler.queue.find(lambda t: isinstance(t, ChunkRepairTask))


# -- bugfix 3: late-registered datanodes + stale-repair cancellation ---------

class TestLateRegistrationAndStaleRepairs:
    def test_late_registered_datanode_does_not_keyerror(self):
        from repro.dfs.datanode import Datanode

        fs, _ = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
        monitor.tick()
        late = Datanode("late00", fs.metrics)
        late.is_alive = False  # registered already dark: every beat missed
        fs.datanodes["late00"] = late
        report = None
        for _ in range(2):
            report = monitor.tick()  # used to KeyError on the unseen id
        assert "late00" in report.newly_dead

    def test_stale_queued_repairs_cancelled_when_node_returns(self):
        fs, data = hybrid_fs()
        # Near-zero budget: submitted repairs stay queued, never admitted.
        fs.scheduler = MaintenanceScheduler(
            fs, policy=SchedulerPolicy(disk_bytes_per_tick=1.0)
        )
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
        monitor.tick(), monitor.tick()
        queued = [
            t for t in fs.scheduler.queue.backlog() if isinstance(t, ChunkRepairTask)
        ]
        assert queued, "repairs should be queued but not admitted"

        revive(fs, victim)
        report = monitor.tick()
        assert victim in report.newly_alive
        assert report.repairs_cancelled == len(
            [t for t in queued if t.chunk.node_id == victim]
        )
        assert all(
            t.result == "cancelled" for t in queued if t.chunk.node_id == victim
        )
        assert np.array_equal(fs.read_file("f"), data)


# -- the partition mask ------------------------------------------------------

class TestNetworkPartition:
    def test_inactive_mask_reaches_everywhere(self):
        p = NetworkPartition()
        assert p.reachable("a", "b") and not p.active

    def test_split_heal_roundtrip(self):
        p = NetworkPartition()
        p.split(["a", "b"])
        assert p.active
        assert p.reachable("a", "b")
        assert not p.reachable("a", "namenode")
        assert p.unreachable_from("namenode", ["a", "b", "c"]) == ["a", "b"]
        p.heal()
        assert p.reachable("a", "namenode")

    def test_duplicate_membership_rejected(self):
        p = NetworkPartition()
        with pytest.raises(ValueError):
            p.split(["a"], ["a", "b"])

    def test_partitioned_island_declared_dead_and_rehomed(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        island = [meta.stripes[0].data[0].node_id]
        fs.partition.isolate(island)
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
        reports = [monitor.tick() for _ in range(3)]
        assert island[0] in {n for r in reports for n in r.newly_dead}
        # The island's chunks were re-homed on the reachable side.
        assert all(c.node_id not in island for c in meta.all_chunks())
        fs.partition.heal()
        assert np.array_equal(fs.read_file("f"), data)


# -- scenario suite ----------------------------------------------------------

class TestScenarioSuite:
    def test_rack_burst_deterministic_trace(self):
        from repro.cluster.scenarios import run_rack_burst

        a = run_rack_burst(seed=7, quick=True)
        b = run_rack_burst(seed=7, quick=True)
        assert a.trace_digest == b.trace_digest
        assert a.lost_chunks == 0 and a.files_verified > 0

    def test_partition_heal_converges_with_journal_replay(self):
        from repro.cluster.scenarios import run_partition_heal

        result = run_partition_heal(seed=0, quick=True)
        assert result.journal_converged is True
        assert result.lost_chunks == 0
        assert result.files_verified > 0

    def test_straggler_hedged_reads_win(self):
        from repro.sched.simulate import SimConfig, run_failure_burst

        base = dict(
            n_nodes=12,
            n_repairs=16,
            duration_s=14.0,
            seed=0,
            node_disk_multipliers={"sim03": 8.0},
        )
        unhedged = run_failure_burst(None, SimConfig(**base))
        hedged = run_failure_burst(None, SimConfig(**base, hedge_after_s=0.05))
        assert hedged.hedged_reads > 0
        assert hedged.p99_latency_s < unhedged.p99_latency_s

    def test_functional_hedge_avoids_slow_home(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        slow = meta.stripes[0].data[0].node_id
        fs.cluster.set_disk_multiplier(slow, 8.0)
        fs.hedge_slow_disk_multiplier = 4.0
        assert np.array_equal(fs.read_file("f"), data)
        assert fs.reader.hedged_reads > 0

    def test_tier_classes_interleave_across_racks(self):
        ssd = NodeClass("ssd", count=12, disk_multiplier=0.25)
        hdd = NodeClass("hdd", count=12)
        cluster = Cluster(
            ClusterSpec(n_datanodes=24, n_racks=4, node_classes=[ssd, hdd])
        )
        for rack in cluster.racks():
            classes = {n.node_class for n in cluster.nodes_in_rack(rack)}
            assert classes == {"ssd", "hdd"}
        # Class multipliers registered into the spec automatically.
        fast = cluster.nodes_in_class("ssd")[0]
        assert cluster.disk_multiplier(fast.node_id) == 0.25

    def test_tiered_placement_prefers_fast_class(self):
        ssd = NodeClass("ssd", count=12, disk_multiplier=0.25)
        hdd = NodeClass("hdd", count=12)
        cluster = Cluster(
            ClusterSpec(n_datanodes=24, n_racks=4, node_classes=[ssd, hdd])
        )
        fs = MorphFS(cluster=cluster, chunk_size=4 * KB, future_widths=[6, 12])
        fs.placement_prefer_class = "ssd"
        data = np.random.default_rng(0).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("hot", data, HybridScheme(1, CC69))
        ssd_ids = {n.node_id for n in cluster.nodes_in_class("ssd")}
        placed = [c.node_id for c in fs.namenode.lookup("hot").all_chunks()]
        assert sum(1 for p in placed if p in ssd_ids) / len(placed) > 0.5
        assert np.array_equal(fs.read_file("hot"), data)

    def test_cli_lists_unknown_scenario(self):
        from repro.cluster.scenarios import run_scenarios

        with pytest.raises(KeyError):
            run_scenarios(["nope"])
