"""Heartbeat-driven maintenance and hybrid appendability (§4.2, §6.1)."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.dfs.integrity import corrupt_chunk

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def hybrid_fs(seed=1, n_kb=96):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, CC69))
    return fs, data


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


class TestHeartbeatMonitor:
    def test_transient_blip_never_triggers_recovery(self):
        fs, data = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=3))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        r1 = monitor.tick()
        r2 = monitor.tick()
        assert r1.newly_dead == [] and r2.newly_dead == []
        assert r1.chunks_recovered == 0
        # Node comes back before declaration: nothing happened.
        fs.cluster.recover_node(victim)
        fs.datanodes[victim].recover()
        r3 = monitor.tick()
        assert monitor.declared_dead() == set()
        assert r3.chunks_recovered == 0

    def test_sustained_failure_declares_and_recovers(self):
        fs, data = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=2))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor.tick()
        report = monitor.tick()
        assert victim in report.newly_dead
        assert report.chunks_recovered >= 1
        assert np.array_equal(fs.read_file("f"), data)
        # Everything re-homed to live nodes.
        for chunk in fs.namenode.lookup("f").all_chunks():
            assert fs.datanodes[chunk.node_id].is_alive

    def test_recovered_node_rejoins(self):
        fs, data = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=1))
        victim = fs.cluster.nodes[0].node_id
        kill(fs, victim)
        monitor.tick()
        assert victim in monitor.declared_dead()
        fs.cluster.recover_node(victim)
        fs.datanodes[victim].recover()
        report = monitor.tick()
        assert victim in report.newly_alive
        assert victim not in monitor.declared_dead()

    def test_heartbeat_drives_transcode_in_bounded_steps(self):
        fs, data = hybrid_fs(n_kb=192)  # 8 stripes -> 4 merge groups
        fs.transcode("f", CC69)
        meta = fs.namenode.lookup("f")
        groups, parities = fs._build_groups(meta, ECScheme(CodeKind.CC, 12, 15))
        fs.namenode.enqueue_transcode("f", ECScheme(CodeKind.CC, 12, 15), groups, parities)
        monitor = HeartbeatMonitor(fs)
        done_in = 0
        for _ in range(10):
            report = monitor.tick()
            done_in += 1
            if not fs.namenode.utm:
                break
        assert not fs.namenode.utm  # finalized
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 12, 15)
        assert np.array_equal(fs.read_file("f"), data)

    def test_periodic_scrub_repairs_corruption(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        corrupt_chunk(fs, meta.stripes[0].data[0])
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(scrub_every_ticks=2))
        r1 = monitor.tick()
        assert r1.chunks_scrubbed == 0  # not a scrub tick
        r2 = monitor.tick()
        assert r2.chunks_scrubbed > 0
        assert r2.corruptions_repaired == 1
        assert np.array_equal(fs.read_file("f"), data)

    def test_clock_advances(self):
        fs, data = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(interval_s=5.0))
        monitor.run_ticks(4)
        assert fs.clock == pytest.approx(20.0)


class TestAppends:
    def test_append_roundtrip(self):
        fs, data = hybrid_fs(n_kb=24)
        extra = np.random.default_rng(9).integers(0, 256, 40 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        combined = np.concatenate([data, extra])
        assert np.array_equal(fs.read_file("f"), combined)

    def test_open_stripe_has_no_parities(self):
        fs, data = hybrid_fs(n_kb=24)  # exactly one full stripe
        fs.append_file("f", np.ones(10 * KB, dtype=np.uint8))
        meta = fs.namenode.lookup("f")
        assert meta.stripes[-1].parities == []
        assert meta.stripes[-1].k < 6

    def test_open_stripe_keeps_extra_replica(self):
        """Durability of the open stripe comes from c+1 replicas (§4.2)."""
        fs, data = hybrid_fs(n_kb=24)
        fs.append_file("f", np.ones(10 * KB, dtype=np.uint8))
        meta = fs.namenode.lookup("f")
        assert len(meta.replica_blocks[-1].copies) == 2  # Hy(1) + 1 extra

    def test_close_encodes_tail_and_trims_replica(self):
        fs, data = hybrid_fs(n_kb=24)
        extra = np.random.default_rng(4).integers(0, 256, 10 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        fs.close_file("f")
        meta = fs.namenode.lookup("f")
        tail = meta.stripes[-1]
        assert len(tail.parities) == 3  # same parity count, narrower stripe
        assert len(meta.replica_blocks[-1].copies) == 1
        combined = np.concatenate([data, extra])
        assert np.array_equal(fs.read_file("f"), combined)

    def test_closed_tail_survives_failures(self):
        fs, data = hybrid_fs(n_kb=24)
        extra = np.random.default_rng(5).integers(0, 256, 10 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        fs.close_file("f")
        meta = fs.namenode.lookup("f")
        kill(fs, meta.stripes[-1].data[0].node_id)
        combined = np.concatenate([data, extra])
        assert np.array_equal(fs.read_file("f"), combined)

    def test_multiple_appends_complete_stripes(self):
        fs, data = hybrid_fs(n_kb=24)
        pieces = [data]
        rng = np.random.default_rng(6)
        for i in range(4):
            extra = rng.integers(0, 256, 9 * KB, dtype=np.uint8)
            fs.append_file("f", extra)
            pieces.append(extra)
        assert np.array_equal(fs.read_file("f"), np.concatenate(pieces))
        meta = fs.namenode.lookup("f")
        # All but possibly the last stripe are sealed.
        for stripe in meta.stripes[:-1]:
            assert stripe.parities

    def test_open_stripe_survives_replica_failure(self):
        fs, data = hybrid_fs(n_kb=24)
        extra = np.random.default_rng(7).integers(0, 256, 10 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        meta = fs.namenode.lookup("f")
        kill(fs, meta.replica_blocks[-1].copies[0].node_id)
        combined = np.concatenate([data, extra])
        assert np.array_equal(fs.read_file("f"), combined)

    def test_append_to_non_hybrid_rejected(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        fs.write_file("g", np.zeros(24 * KB, np.uint8), CC69)
        with pytest.raises(ValueError):
            fs.append_file("g", np.ones(KB, np.uint8))

    def test_transcode_after_close(self):
        """A closed appended file flows through the normal lifetime."""
        fs, data = hybrid_fs(n_kb=48)
        extra = np.random.default_rng(8).integers(0, 256, 48 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        fs.close_file("f")
        fs.transcode("f", CC69)
        fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))
        combined = np.concatenate([data, extra])
        assert np.array_equal(fs.read_file("f"), combined)
