"""DFS write paths: exact IO accounting per ingest scheme (§4.2)."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS

KB = 1024


def data_of(n_bytes, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n_bytes, dtype=np.uint8)


class TestReplicatedWrite:
    def test_three_copies_on_disk(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = data_of(96 * KB)
        fs.write_file("f", data, Replication(3))
        assert fs.capacity_used() == 3 * len(data)
        assert fs.metrics.disk_bytes_written == 3 * len(data)

    def test_pipeline_network_three_hops(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = data_of(96 * KB)
        fs.write_file("f", data, Replication(3))
        assert fs.metrics.net_bytes_total == 3 * len(data)

    def test_copies_on_distinct_nodes(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        fs.write_file("f", data_of(32 * KB), Replication(3))
        meta = fs.namenode.lookup("f")
        for block in meta.replica_blocks:
            nodes = [c.node_id for c in block.copies]
            assert len(set(nodes)) == 3


class TestECWrite:
    def test_capacity_is_n_over_k(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = data_of(96 * KB)  # 24 chunks = 4 stripes of RS(6,9)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        assert fs.capacity_used() == pytest.approx(1.5 * len(data))

    def test_stripe_nodes_distinct(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        fs.write_file("f", data_of(96 * KB), ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        for stripe in meta.stripes:
            assert len(set(stripe.node_ids())) == 9

    def test_client_cpu_charged_for_encode(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        fs.write_file("f", data_of(96 * KB), ECScheme(CodeKind.RS, 6, 9))
        assert fs.metrics.node("client").cpu_seconds > 0

    def test_partial_stripe_zero_padded(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = data_of(30 * KB)  # 7.5 chunks -> padded to 2 stripes of 6
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        assert len(meta.stripes) == 2
        assert np.array_equal(fs.read_file("f"), data)


class TestHybridWrite:
    def test_resting_state_matches_paper(self):
        """Hy(1, CC(6,9)): 1 replica + 6 data + 1.5x parities on disk."""
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = data_of(96 * KB)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        assert fs.capacity_used() == pytest.approx(2.5 * len(data))
        # 150% overhead vs 3-r's 200% (paper §7.1: 25% overhead cut).
        overhead = fs.capacity_used() / len(data) - 1
        assert overhead == pytest.approx(1.5)

    def test_temporary_replicas_never_touch_disk(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        data = data_of(48 * KB)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        # Disk writes = replica (1x) + data (1x) + parities (0.5x): 2.5x.
        assert fs.metrics.disk_bytes_written == pytest.approx(2.5 * len(data))
        assert fs.memory_used() == 0  # all temporaries dropped

    def test_hy2_persists_both_replicas(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        data = data_of(48 * KB)
        fs.write_file("f", data, HybridScheme(2, ECScheme(CodeKind.CC, 6, 9)))
        assert fs.capacity_used() == pytest.approx(3.5 * len(data))

    def test_network_accounting(self):
        """Small-write protocol: 2 mirror hops + stripe + parities (§4.2)."""
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        data = data_of(48 * KB)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        expected = 2 * len(data) + len(data) + 0.5 * len(data)
        assert fs.metrics.net_bytes_total == pytest.approx(expected)

    def test_replicas_exclude_ec_nodes(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        fs.write_file("f", data_of(48 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        meta = fs.namenode.lookup("f")
        for hybrid in meta.hybrid_blocks():
            ec_nodes = set(hybrid.stripe.node_ids())
            for block in hybrid.replicas:
                for copy in block.copies:
                    assert copy.node_id not in ec_nodes

    def test_parity_encode_charged_to_striper_not_client(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        fs.write_file("f", data_of(48 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        assert fs.metrics.node("client").cpu_seconds == 0
        assert fs.metrics.cpu_seconds_total > 0

    def test_hybrid_block_nesting(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        fs.write_file("f", data_of(96 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        meta = fs.namenode.lookup("f")
        assert meta.is_hybrid
        blocks = meta.hybrid_blocks()
        assert len(blocks) == len(meta.stripes)
        for hb in blocks:
            assert len(hb.replicas) == 1


class TestPlacementIntegration:
    def test_kstar_separation_across_future_widths(self):
        """Chunks that will merge into CC(12,15) stripes never share nodes."""
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        fs.write_file("f", data_of(192 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        meta = fs.namenode.lookup("f")
        data_chunks = [c for s in meta.stripes for c in s.data]
        for w in range(0, len(data_chunks), 12):
            window = [c.node_id for c in data_chunks[w : w + 12]]
            assert len(set(window)) == len(window)

    def test_merge_partner_parities_colocated(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        fs.write_file("f", data_of(192 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        meta = fs.namenode.lookup("f")
        for pair in range(0, len(meta.stripes) - 1, 2):
            for j in range(3):
                assert (
                    meta.stripes[pair].parities[j].node_id
                    == meta.stripes[pair + 1].parities[j].node_id
                )


class TestWriteValidation:
    def test_baseline_rejects_hybrid(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        with pytest.raises(ValueError):
            fs.write_file("f", data_of(8 * KB), HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))

    def test_duplicate_name_rejected(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        fs.write_file("f", data_of(8 * KB), Replication(3))
        with pytest.raises(ValueError):
            fs.write_file("f", data_of(8 * KB), Replication(3))
