"""Native parity-growth transcodes via bandwidth-optimal vector codes.

The paper's Fig 15 case B — EC(6,7) -> EC(12,14) — as a first-class DFS
operation: stripes ingested with ``anticipate_parities`` carry the
piggybacked pre-computation, and the native transcoder reads only the
parities plus the contiguous tail fraction of each data chunk.
"""

import numpy as np
import pytest

from repro.core.planner import TranscodeKind, TranscodePlanner
from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.transcoder import TranscodeError

KB = 1024
SRC = ECScheme(CodeKind.CC, 6, 7, anticipate_parities=2)
TGT = ECScheme(CodeKind.CC, 12, 14)


def bwo_fs(n_kb=96, seed=1):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, SRC))
    fs.transcode("f", SRC)  # free transition
    return fs, data


class TestSchemeDeclaration:
    def test_validation(self):
        with pytest.raises(ValueError):
            ECScheme(CodeKind.RS, 6, 7, anticipate_parities=2)
        with pytest.raises(ValueError):
            ECScheme(CodeKind.CC, 6, 9, anticipate_parities=3)  # not a growth

    def test_make_code_returns_vector_code(self):
        from repro.codes.bandwidth import BandwidthOptimalCC

        code = SRC.make_code()
        assert isinstance(code, BandwidthOptimalCC)
        assert code.r_initial == 1 and code.r_final == 2

    def test_footprint_unchanged(self):
        assert SRC.storage_overhead == pytest.approx(7 / 6)


class TestPlanner:
    def test_anticipated_growth_is_convertible(self):
        step = TranscodePlanner().plan(SRC, TGT)
        assert step.kind is TranscodeKind.CONVERTIBLE
        # Read multiplier: (r_I + k_I * (r_F-r_I)/r_F) * lam / span = 8/12.
        assert step.cost.read == pytest.approx(8 / 12)

    def test_unanticipated_growth_falls_back_to_rrw(self):
        plain = ECScheme(CodeKind.CC, 6, 7)
        step = TranscodePlanner().plan(plain, TGT)
        assert step.kind is TranscodeKind.RRW


class TestNativeBwoTranscode:
    def test_io_matches_fig8(self):
        fs, data = bwo_fs()
        r0 = fs.metrics.disk_bytes_read
        fs.transcode("f", TGT)
        reads = fs.metrics.disk_bytes_read - r0
        # Per 2-stripe group: 2 full parities + 12 half data chunks = 8
        # chunk-equivalents; 2 groups in a 24-chunk file. RS reads 24.
        assert reads == pytest.approx(16 * 4 * KB)

    def test_result_byte_identical_to_direct_encode(self):
        fs, data = bwo_fs()
        fs.transcode("f", TGT)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == TGT
        code = fs.cc_codec(12, 14)
        for stripe in meta.stripes:
            chunks = [fs.datanodes[c.node_id].read(c.chunk_id) for c in stripe.data]
            expected = code.encode(chunks)
            for j, parity in enumerate(stripe.parities):
                stored = fs.datanodes[parity.node_id].read(parity.chunk_id)
                assert np.array_equal(stored, expected[j])

    def test_readback_and_degraded_read(self):
        fs, data = bwo_fs()
        fs.transcode("f", TGT)
        assert np.array_equal(fs.read_file("f"), data)
        meta = fs.namenode.lookup("f")
        for victim in (meta.stripes[0].data[5].node_id,
                       meta.stripes[1].parities[0].node_id):
            fs.cluster.fail_node(victim)
            fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_bwo_stripe_decodes_before_transcode(self):
        """The piggybacked stripes tolerate r_I failures while stored."""
        fs, data = bwo_fs()
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[2].node_id
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_growth_without_anticipation_uses_rrw(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = np.random.default_rng(2).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.CC, 6, 7))
        r0 = fs.metrics.disk_bytes_read
        fs.transcode("f", TGT)  # falls back to RRW
        assert fs.metrics.disk_bytes_read - r0 >= len(data)
        assert np.array_equal(fs.read_file("f"), data)

    def test_tail_misalignment_rejected(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = np.random.default_rng(3).integers(0, 256, 72 * KB, dtype=np.uint8)
        fs.write_file("f", data, SRC)  # 3 stripes: not divisible by lam=2
        with pytest.raises(TranscodeError):
            fs.transcode("f", TGT)
