"""Native transcode through the DFS: free transitions, CC merges,
LRCC targets, RRW baseline, crash consistency (§4.5, §6.2)."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS
from repro.dfs.blocks import FileState

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)
CC1215 = ECScheme(CodeKind.CC, 12, 15)


def morph_with_file(n_kb=96, seed=1, scheme=None, widths=(6, 12)):
    fs = MorphFS(chunk_size=4 * KB, future_widths=list(widths))
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, scheme or HybridScheme(1, CC69))
    return fs, data


class TestFreeTransition:
    def test_zero_io(self):
        fs, data = morph_with_file()
        before = fs.metrics.summary()
        fs.transcode("f", CC69)
        after = fs.metrics.summary()
        io_keys = ("disk_read", "disk_write", "disk_total", "network", "cpu_seconds")
        for key in io_keys:
            assert after[key] == before[key]  # literally no IO
        # Deletion is ledger movement, not IO: the replicas leave disk.
        assert after["disk_deleted"] - before["disk_deleted"] == pytest.approx(len(data))

    def test_capacity_drops_by_replica(self):
        fs, data = morph_with_file()
        cap = fs.capacity_used()
        fs.transcode("f", CC69)
        assert fs.capacity_used() == pytest.approx(cap - len(data))

    def test_metadata_flipped(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == CC69
        assert meta.replica_blocks == []
        assert meta.version == 1

    def test_readable_after(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        assert np.array_equal(fs.read_file("f"), data)


class TestNativeCcMerge:
    def test_merge_reads_parities_only(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        reads_before = fs.metrics.disk_bytes_read
        fs.transcode("f", CC1215)
        reads = fs.metrics.disk_bytes_read - reads_before
        meta = fs.namenode.lookup("f")
        n_initial_stripes = 96 // 24  # 24 chunks / 6 per stripe... see below
        # 96 KB / 4 KB = 24 chunks = 4 stripes of CC(6,9): 12 parity chunks.
        assert reads == pytest.approx(12 * 4 * KB)

    def test_merge_is_network_free_with_colocation(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        net_before = fs.metrics.net_bytes_total
        fs.transcode("f", CC1215)
        assert fs.metrics.net_bytes_total == net_before  # §5.3 co-location

    def test_result_matches_direct_encode(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        fs.transcode("f", CC1215)
        meta = fs.namenode.lookup("f")
        code = fs.cc_codec(12, 15)
        for stripe in meta.stripes:
            chunks = [fs.datanodes[c.node_id].read(c.chunk_id) for c in stripe.data]
            parities = code.encode(chunks)
            for j, parity_meta in enumerate(stripe.parities):
                stored = fs.datanodes[parity_meta.node_id].read(parity_meta.chunk_id)
                assert np.array_equal(stored, parities[j])

    def test_old_parities_deleted_after_switch(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        cap_before = fs.capacity_used()
        fs.transcode("f", CC1215)
        # 12 old parities deleted, 3 new written per 2 merged stripes (6).
        expected = cap_before - 12 * 4 * KB + 6 * 4 * KB
        assert fs.capacity_used() == pytest.approx(expected)

    def test_degraded_read_after_merge(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        fs.transcode("f", CC1215)
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[3].node_id
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_short_tail_group(self):
        """A stripe count not divisible by lambda leaves a narrower tail."""
        fs, data = morph_with_file(n_kb=72)  # 18 chunks = 3 stripes of 6
        fs.transcode("f", CC69)
        fs.transcode("f", CC1215)
        meta = fs.namenode.lookup("f")
        assert [s.k for s in meta.stripes] == [12, 6]
        assert np.array_equal(fs.read_file("f"), data)

    def test_hybrid_directly_to_wider_cc(self):
        """Hybrid -> CC(12,15): replicas dropped, then parities merged."""
        fs, data = morph_with_file()
        fs.transcode("f", CC1215)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == CC1215
        assert meta.replica_blocks == []
        assert np.array_equal(fs.read_file("f"), data)

    def test_chain_of_merges(self):
        fs, data = morph_with_file(
            n_kb=160, scheme=HybridScheme(1, ECScheme(CodeKind.CC, 5, 8)),
            widths=(5, 10, 20))
        for scheme in (ECScheme(CodeKind.CC, 5, 8), ECScheme(CodeKind.CC, 10, 13),
                       ECScheme(CodeKind.CC, 20, 23)):
            fs.transcode("f", scheme)
            assert np.array_equal(fs.read_file("f"), data)
        meta = fs.namenode.lookup("f")
        assert meta.stripes[0].k == 20


class TestLrccTargets:
    def test_cc_to_lrcc(self):
        fs, data = morph_with_file(n_kb=96, widths=(6, 24))
        fs.transcode("f", CC69)
        lrcc = ECScheme(CodeKind.LRCC, 24, 30, local_groups=4, r_global=2)
        reads_before = fs.metrics.disk_bytes_read
        fs.transcode("f", lrcc)
        reads = fs.metrics.disk_bytes_read - reads_before
        assert reads == pytest.approx(12 * 4 * KB)  # 3 parities x 4 stripes
        assert np.array_equal(fs.read_file("f"), data)

    def test_lrcc_to_lrcc(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[12, 24])
        data = np.random.default_rng(7).integers(0, 256, 96 * KB, dtype=np.uint8)
        small = ECScheme(CodeKind.LRCC, 12, 16, local_groups=2, r_global=2)
        big = ECScheme(CodeKind.LRCC, 24, 30, local_groups=4, r_global=2)
        fs.write_file("f", data, small)
        fs.transcode("f", big)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == big
        assert np.array_equal(fs.read_file("f"), data)


class TestRrwBaseline:
    def test_baseline_chain(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(8).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, Replication(3))
        fs.transcode("f", ECScheme(CodeKind.RS, 6, 9))
        fs.transcode("f", ECScheme(CodeKind.RS, 12, 15))
        assert np.array_equal(fs.read_file("f"), data)
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.RS, 12, 15)

    def test_rrw_reads_all_data(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(9).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        reads_before = fs.metrics.disk_bytes_read
        fs.transcode("f", ECScheme(CodeKind.RS, 12, 15))
        assert fs.metrics.disk_bytes_read - reads_before >= len(data)

    def test_morph_falls_back_to_rrw_for_rs_target(self):
        fs, data = morph_with_file()
        fs.transcode("f", ECScheme(CodeKind.RS, 12, 15))
        assert np.array_equal(fs.read_file("f"), data)


class TestCrashConsistency:
    def _mid_transcode(self):
        fs, data = morph_with_file(n_kb=192)  # 8 stripes -> 4 groups
        fs.transcode("f", CC69)
        groups, parities = fs._build_groups(fs.namenode.lookup("f"), CC1215)
        fs.namenode.enqueue_transcode("f", CC1215, groups, parities)
        half = fs.namenode.poll_work(len(groups) // 2)
        for g in half:
            fs.transcoder.execute_group(g)
        return fs, data

    def test_reads_work_mid_transcode(self):
        fs, data = self._mid_transcode()
        assert fs.namenode.lookup("f").state is FileState.TRANSCODING
        assert np.array_equal(fs.read_file("f"), data)

    def test_old_metadata_in_effect_until_switch(self):
        fs, data = self._mid_transcode()
        meta = fs.namenode.lookup("f")
        assert meta.scheme == CC69
        assert all(s.k == 6 for s in meta.stripes)

    def test_degraded_read_mid_transcode(self):
        fs, data = self._mid_transcode()
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[0].node_id
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_crash_and_idempotent_restart(self):
        fs, data = self._mid_transcode()
        fs.namenode.abort_transcode("f")  # Namenode crash: UTM is in-memory
        assert np.array_equal(fs.read_file("f"), data)
        fs.transcode("f", CC1215)  # restart re-runs the whole conversion
        meta = fs.namenode.lookup("f")
        assert meta.scheme == CC1215
        assert np.array_equal(fs.read_file("f"), data)

    def test_completion_triggers_single_atomic_switch(self):
        fs, data = morph_with_file()
        fs.transcode("f", CC69)
        version = fs.namenode.lookup("f").version
        fs.transcode("f", CC1215)
        assert fs.namenode.lookup("f").version == version + 1
