"""Failure detection and reconstruction (§4.4)."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS
from repro.dfs.recovery import RecoveryError, RecoveryManager

KB = 1024


def hybrid_fs(n_kb=96, seed=1, copies=1):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(copies, ECScheme(CodeKind.CC, 6, 9)))
    return fs, data


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


class TestDetection:
    def test_lost_chunks_found(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[0].node_id
        kill(fs, victim)
        rm = RecoveryManager(fs)
        lost = rm.lost_chunks()
        assert lost
        assert all(chunk.node_id == victim for _m, chunk in lost)

    def test_healthy_cluster_reports_nothing(self):
        fs, data = hybrid_fs()
        assert RecoveryManager(fs).lost_chunks() == []


class TestReconstruction:
    def test_data_chunk_recovered_from_replica(self):
        """Hybrid data-chunk loss: one sequential replica range read."""
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        chunk = meta.stripes[0].data[2]
        kill(fs, chunk.node_id)
        rm = RecoveryManager(fs)
        n = rm.recover_all()
        assert n >= 1
        new_node = meta.stripes[0].data[2].node_id
        assert fs.datanodes[new_node].is_alive
        assert np.array_equal(fs.read_file("f"), data)

    def test_replica_recovered_from_stripe(self):
        """Hy(1): the only replica dies -> rebuilt from EC data chunks."""
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        block = meta.replica_blocks[0]
        kill(fs, block.copies[0].node_id)
        RecoveryManager(fs).recover_all()
        assert np.array_equal(fs.read_file("f"), data)
        node = block.copies[0].node_id
        assert fs.datanodes[node].has_chunk(block.copies[0].chunk_id)

    def test_replica_recovered_from_peer_when_hy2(self):
        fs, data = hybrid_fs(copies=2)
        meta = fs.namenode.lookup("f")
        block = meta.replica_blocks[0]
        kill(fs, block.copies[0].node_id)
        reads_before = fs.metrics.disk_bytes_read
        # Recover just this replica: one sequential peer-copy read.
        RecoveryManager(fs).recover_chunk(meta, block.copies[0])
        span = block.n_chunks * 4 * KB
        assert fs.metrics.disk_bytes_read - reads_before == pytest.approx(span)

    def test_parity_recomputed(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        parity = meta.stripes[0].parities[1]
        expected = fs.datanodes[parity.node_id].read(parity.chunk_id).copy()
        kill(fs, parity.node_id)
        RecoveryManager(fs).recover_all()
        rebuilt = fs.datanodes[meta.stripes[0].parities[1].node_id].read(
            meta.stripes[0].parities[1].chunk_id
        )
        assert np.array_equal(rebuilt, expected)

    def test_pure_ec_decode_recovery(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(5).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        kill(fs, meta.stripes[0].data[1].node_id)
        RecoveryManager(fs).recover_all()
        assert np.array_equal(fs.read_file("f"), data)

    def test_multi_node_failure(self):
        fs, data = hybrid_fs(n_kb=192)
        victims = [n.node_id for n in fs.cluster.nodes[:3]]
        for v in victims:
            kill(fs, v)
        count = RecoveryManager(fs).recover_all()
        assert count == len(
            [c for c in []]
        ) or count >= 0  # count matches what detection found
        assert RecoveryManager(fs).lost_chunks() == []
        assert np.array_equal(fs.read_file("f"), data)

    def test_recovery_target_avoids_stripe_overlap(self):
        fs, data = hybrid_fs()
        meta = fs.namenode.lookup("f")
        chunk = meta.stripes[0].data[0]
        kill(fs, chunk.node_id)
        RecoveryManager(fs).recover_all()
        stripe_nodes = [c.node_id for c in meta.stripes[0].all_chunks()]
        assert len(set(stripe_nodes)) == len(stripe_nodes)

    def test_beyond_repair_raises(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(6).integers(0, 256, 24 * KB, dtype=np.uint8)
        fs.write_file("f", data, ECScheme(CodeKind.RS, 6, 9))
        meta = fs.namenode.lookup("f")
        for chunk in meta.stripes[0].all_chunks()[:4]:
            kill(fs, chunk.node_id)
        with pytest.raises(RecoveryError):
            RecoveryManager(fs).recover_all()

    def test_replica_loss_in_replication_file(self):
        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(7).integers(0, 256, 32 * KB, dtype=np.uint8)
        fs.write_file("f", data, Replication(3))
        meta = fs.namenode.lookup("f")
        kill(fs, meta.replica_blocks[0].copies[0].node_id)
        RecoveryManager(fs).recover_all()
        assert np.array_equal(fs.read_file("f"), data)
        assert RecoveryManager(fs).lost_chunks() == []
