"""Crash-recovery fault injection: kill the namenode at every record
boundary of a full failure-burst workload and assert byte-identical
recovery against the snapshot+replay oracle (ISSUE 9 acceptance bar).
"""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS, Namenode, ShardedNamenode
from repro.dfs.integrity import corrupt_chunk
from repro.dfs.journal import (
    Journal,
    JournalCrash,
    JournaledNamenode,
    state_digest,
)
from repro.dfs.recovery import RecoveryManager
from repro.sched.tasks import ChunkRepairTask, ScrubTask

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)
CC1215 = ECScheme(CodeKind.CC, 12, 15)


def run_failure_burst(nn, seed=0, n_files=4, file_kb=48, chunk_kb=4):
    """The report demo's failure-burst trace, plus the ops it skips
    (append/close, rename, abort), driven over a supplied namenode."""
    fs = MorphFS(
        chunk_size=chunk_kb * KB, future_widths=[6, 12], seed=seed, namenode=nn
    )
    rng = np.random.default_rng(seed)

    datasets = {}
    for i in range(n_files):
        name = f"f{i:02d}"
        data = rng.integers(0, 256, file_kb * KB, dtype=np.uint8)
        fs.write_file(name, data, HybridScheme(1, CC69))
        datasets[name] = data
    for name in datasets:
        fs.read_file(name, 0, 8 * KB)

    # Native transcodes: ENQUEUE / POLL / COMPLETE / NEW_STRIPE / FINALIZE.
    fs.transcode("f00", CC69)
    fs.transcode("f00", CC1215)

    # Failure burst: degraded reads, then scheduled repairs (NOTE records).
    chunk_homes = {
        c.node_id
        for meta in fs.namenode.files.values()
        for c in meta.all_chunks()
    }
    for victim in sorted(chunk_homes)[:2]:
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
    for name in datasets:
        fs.read_file(name, 0, 8 * KB)
    for meta, chunk in RecoveryManager(fs).lost_chunks():
        fs.scheduler.submit(ChunkRepairTask(meta, chunk))
    fs.scheduler.run_until_drained()

    # Silent corruption caught by a scrub (repair relocations -> NOTE).
    meta = fs.namenode.lookup("f01")
    corrupt_chunk(fs, meta.stripes[0].data[0])
    fs.scheduler.submit(ScrubTask())
    fs.scheduler.run_until_drained()

    # Appends re-open and re-seal the tail stripe of a hybrid file.
    extra = rng.integers(0, 256, 3 * chunk_kb * KB, dtype=np.uint8)
    fs.append_file("f02", extra)
    datasets["f02"] = np.concatenate([datasets["f02"], extra])
    fs.close_file("f02")
    # A second append re-opens the sealed short tail stripe: exercises
    # the drop-open-region rewrite on a registered (journaled) file and
    # leaves the file with an open stripe for recovery to carry.
    extra2 = rng.integers(0, 256, chunk_kb * KB // 2, dtype=np.uint8)
    fs.append_file("f02", extra2)
    datasets["f02"] = np.concatenate([datasets["f02"], extra2])

    # Namespace churn: rename (cross-shard when hashes differ) + an
    # enqueued-then-aborted conversion (ABORT record).
    fs.namenode.rename("f03", "renamed/f03")
    datasets["renamed/f03"] = datasets.pop("f03")
    meta = fs.namenode.lookup("f01")
    groups, parities = fs._build_groups(meta, CC1215)
    fs.namenode.enqueue_transcode("f01", CC1215, groups, parities)
    fs.namenode.poll_work(2)
    fs.namenode.abort_transcode("f01")

    for name, data in datasets.items():
        assert np.array_equal(fs.read_file(name), data), f"{name} corrupted"
    return fs, datasets


@pytest.fixture(scope="module")
def burst():
    """One sharded, journaled failure-burst run with per-boundary digests."""
    nn = ShardedNamenode.journaled(n_shards=4)
    digests = [[] for _ in nn.shards]
    for si, shard in enumerate(nn.shards):
        shard.after_append = (
            lambda node, op, d=digests[si]: d.append(state_digest(node))
        )
    fs, datasets = run_failure_burst(nn)
    return fs, datasets, digests


def test_crash_at_every_record_boundary_recovers_exactly(burst):
    """The acceptance criterion: for every shard, killing the namenode
    at every journal-record boundary of the failure-burst trace recovers
    byte-identically to the state the oracle pinned at that boundary."""
    fs, _datasets, digests = burst
    empty = state_digest(Namenode())
    total = 0
    for si, shard in enumerate(fs.namenode.shards):
        n = len(shard.journal)
        assert n == len(digests[si])
        assert n > 0, f"shard {si} journal never written"
        for boundary in range(n + 1):
            recovered = JournaledNamenode.recover(shard.journal.prefix(boundary))
            want = empty if boundary == 0 else digests[si][boundary - 1]
            got = state_digest(recovered)
            assert got == want, f"shard {si} boundary {boundary} diverged"
            total += 1
    assert total >= 80  # the trace is long enough to mean something


def test_full_recovery_matches_live_state(burst):
    fs, datasets, _ = burst
    live = fs.namenode
    recovered = ShardedNamenode.recover([s.journal for s in live.shards])
    for si, shard in enumerate(live.shards):
        assert state_digest(recovered.shards[si]) == state_digest(shard)
        assert recovered.shards[si].replayed == len(shard.journal)
    assert sorted(recovered.files) == sorted(live.files)
    for name in datasets:
        assert recovered.lookup(name).size == live.lookup(name).size


def test_recovered_namenode_serves_a_filesystem(burst):
    """A recovered sharded namenode is a working control plane: reads,
    repairs and appends keep functioning against the same datanodes."""
    fs, datasets, _ = burst
    recovered = ShardedNamenode.recover([s.journal for s in fs.namenode.shards])
    fs.namenode = recovered
    for name, data in datasets.items():
        assert np.array_equal(fs.read_file(name), data)
    extra = np.arange(2 * fs.chunk_size, dtype=np.uint8) % 251
    fs.append_file("f02", extra)
    assert np.array_equal(
        fs.read_file("f02"), np.concatenate([datasets["f02"], extra])
    )


def test_all_opcodes_exercised(burst):
    fs, _, _ = burst
    from repro.dfs.journal import Op

    seen = set()
    for shard in fs.namenode.shards:
        for op, _payload in shard.journal.records():
            seen.add(op)
    must_cover = {
        Op.REGISTER, Op.UNREGISTER, Op.NOTE, Op.MINT, Op.ENQUEUE,
        Op.POLL, Op.COMPLETE, Op.NEW_STRIPE, Op.FINALIZE, Op.ABORT,
    }
    missing = must_cover - seen
    assert not missing, f"trace never journaled {sorted(o.name for o in missing)}"


def test_injected_crash_loses_only_the_unacked_op():
    """Write-behind: a JournalCrash before record N leaves a journal
    that recovers every acknowledged op and nothing after it."""
    nn = JournaledNamenode(journal=Journal(fail_after=2))
    from repro.dfs.blocks import FileMeta

    def meta(name):
        return FileMeta(
            name=name, size=0, chunk_size=4 * KB,
            scheme=CC69, stripes=[], replica_blocks=[],
        )

    nn.register_file(meta("a"))
    nn.register_file(meta("b"))
    with pytest.raises(JournalCrash):
        nn.register_file(meta("c"))
    # The third op applied in memory (write-behind) but never journaled.
    assert "c" in nn.files
    recovered = JournaledNamenode.recover(nn.journal)
    assert sorted(recovered.files) == ["a", "b"]
    assert state_digest(recovered) != state_digest(nn)


def test_file_backed_journal_survives_torn_tail(tmp_path):
    path = tmp_path / "edits.log"
    nn = JournaledNamenode(journal=Journal(path))
    from repro.dfs.blocks import FileMeta

    for i in range(5):
        nn.register_file(FileMeta(
            name=f"f{i}", size=0, chunk_size=4 * KB,
            scheme=CC69, stripes=[], replica_blocks=[],
        ))
    nn.journal.close()
    # Tear the tail: chop into the last record's payload.
    raw = path.read_bytes()
    path.write_bytes(raw[:-3])
    reopened = Journal(path)
    assert len(reopened) == 4
    assert path.read_bytes() == raw[: reopened.byte_size]  # disk truncated too
    recovered = JournaledNamenode.recover(reopened)
    assert sorted(recovered.files) == ["f0", "f1", "f2", "f3"]
