"""Redundancy scheme descriptors, Appendix-B probability, k*."""

import pytest

from repro.core.schemes import (
    CodeKind,
    ECScheme,
    HybridScheme,
    Replication,
    degraded_read_probability,
    lcm_of_widths,
)


class TestReplication:
    def test_overhead_and_tolerance(self):
        r = Replication(3)
        assert r.storage_overhead == 3.0
        assert r.fault_tolerance == 2
        assert r.chunk_count == 3
        assert str(r) == "3-r"

    def test_invalid(self):
        with pytest.raises(ValueError):
            Replication(0)


class TestECScheme:
    def test_rs(self):
        ec = ECScheme(CodeKind.RS, 6, 9)
        assert ec.r == 3
        assert ec.storage_overhead == pytest.approx(1.5)
        assert ec.fault_tolerance == 3
        assert str(ec) == "RS(6,9)"

    def test_lrc_layout_validation(self):
        with pytest.raises(ValueError):
            ECScheme(CodeKind.LRC, 12, 16, local_groups=2, r_global=1)  # 12+2+1 != 16
        with pytest.raises(ValueError):
            ECScheme(CodeKind.LRC, 12, 16)  # missing group structure

    def test_lrc_fault_tolerance_is_guaranteed_level(self):
        ec = ECScheme(CodeKind.LRC, 12, 16, local_groups=2, r_global=2)
        assert ec.fault_tolerance == 3  # r_global + 1

    def test_make_code_kinds(self):
        from repro.codes import (
            ConvertibleCode,
            LocalReconstructionCode,
            LocallyRecoverableConvertibleCode,
            ReedSolomon,
        )

        assert isinstance(ECScheme(CodeKind.RS, 6, 9).make_code(), ReedSolomon)
        assert isinstance(ECScheme(CodeKind.CC, 6, 9).make_code(), ConvertibleCode)
        assert isinstance(
            ECScheme(CodeKind.LRC, 12, 16, local_groups=2, r_global=2).make_code(),
            LocalReconstructionCode,
        )
        assert isinstance(
            ECScheme(CodeKind.LRCC, 12, 16, local_groups=2, r_global=2).make_code(),
            LocallyRecoverableConvertibleCode,
        )

    def test_convertible_flag(self):
        assert ECScheme(CodeKind.CC, 6, 9).kind.convertible
        assert not ECScheme(CodeKind.RS, 6, 9).kind.convertible


class TestHybrid:
    def test_overheads(self):
        hy = HybridScheme(1, ECScheme(CodeKind.CC, 6, 9))
        assert hy.storage_overhead == pytest.approx(2.5)
        assert hy.ingest_disk_multiplier == pytest.approx(2.5)
        assert str(hy) == "Hy(1,CC(6,9))"

    def test_fault_tolerance_c_plus_r(self):
        hy = HybridScheme(2, ECScheme(CodeKind.CC, 6, 9))
        assert hy.fault_tolerance == 5  # 2 replicas + 3 parities (§4.4)

    def test_cheaper_than_3r(self):
        for k, n in [(5, 6), (6, 9), (12, 15)]:
            hy = HybridScheme(1, ECScheme(CodeKind.CC, k, n))
            assert hy.storage_overhead < 3.0

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            HybridScheme(0, ECScheme(CodeKind.CC, 6, 9))


class TestDegradedReadProbability:
    def test_paper_anchor(self):
        # Appendix B: Hy(1, CC(6,9)) at f=0.01 -> ~0.00009.
        p = degraded_read_probability(0.01, 6, 9, copies=1)
        assert p == pytest.approx(9e-5, rel=0.1)

    def test_monotone_in_f(self):
        ps = [degraded_read_probability(f, 6, 9) for f in (0.001, 0.01, 0.05)]
        assert ps[0] < ps[1] < ps[2]

    def test_more_copies_much_rarer(self):
        p1 = degraded_read_probability(0.01, 6, 9, copies=1)
        p2 = degraded_read_probability(0.01, 6, 9, copies=2)
        assert p2 < p1 / 50

    def test_monte_carlo_agreement(self):
        from repro.bench.experiments import appendix_b

        result = appendix_b(trials=300_000)
        assert result["monte_carlo"] == pytest.approx(result["analytic"], rel=0.5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            degraded_read_probability(1.5, 6, 9)


class TestKStar:
    def test_lcm(self):
        assert lcm_of_widths(6, 12) == 12
        assert lcm_of_widths(5, 10, 20) == 20
        assert lcm_of_widths(6, 15) == 30
        assert lcm_of_widths() == 1
