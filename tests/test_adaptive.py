"""Disk-adaptive redundancy composed with Convertible Codes (§8)."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveRedundancyPlanner,
    BathtubCurve,
    DEFAULT_LADDER,
)


class TestBathtubCurve:
    def test_three_phases(self):
        curve = BathtubCurve()
        infant = curve.afr(0.0)
        floor = curve.afr(2.5)
        wearout = curve.afr(6.0)
        assert infant > floor
        assert wearout > floor
        assert floor == pytest.approx(curve.floor_afr, rel=0.05)

    def test_monotone_decay_then_growth(self):
        curve = BathtubCurve()
        early = [curve.afr(a) for a in np.linspace(0, 2, 10)]
        late = [curve.afr(a) for a in np.linspace(4, 8, 10)]
        assert all(a >= b for a, b in zip(early, early[1:]))
        assert all(a <= b for a, b in zip(late, late[1:]))

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            BathtubCurve().afr(-1)


class TestPlanner:
    def test_lifecycle_narrow_wide_narrow(self):
        """Young disks get narrow stripes; mature disks widen; wear-out
        narrows again — the HeART/Pacemaker pattern."""
        plan = AdaptiveRedundancyPlanner().plan(72)
        widths = [s.k for s in plan.schedule]
        assert widths[0] < max(widths)       # starts narrow
        assert widths[-1] < max(widths)      # ends narrow
        assert len(plan.transitions) == 2

    def test_transitions_are_ladder_neighbors(self):
        plan = AdaptiveRedundancyPlanner().plan(72)
        ladder_pairs = {(a.k, b.k) for a in DEFAULT_LADDER for b in DEFAULT_LADDER}
        for t in plan.transitions:
            assert (t.source.k, t.target.k) in ladder_pairs
            # Integral-multiple ladder: always a clean merge or split.
            assert max(t.source.k, t.target.k) % min(t.source.k, t.target.k) == 0

    def test_cc_always_cheaper_than_rrw(self):
        plan = AdaptiveRedundancyPlanner().plan(72)
        for t in plan.transitions:
            assert t.cc_io < t.rrw_io

    def test_savings_band(self):
        saving = AdaptiveRedundancyPlanner().savings(72)
        assert 0.40 < saving < 0.80  # CC removes most of the spike IO

    def test_io_series_spikes_at_transition_months(self):
        planner = AdaptiveRedundancyPlanner()
        plan = planner.plan(72)
        series = plan.io_series("rrw")
        spike_months = {t.month for t in plan.transitions}
        for month, io in enumerate(series):
            assert (io > 0) == (month in spike_months)

    def test_riskier_fleet_stays_narrow_longer(self):
        calm = AdaptiveRedundancyPlanner(curve=BathtubCurve(infant_afr=0.03))
        risky = AdaptiveRedundancyPlanner(curve=BathtubCurve(infant_afr=0.20))
        calm_first = next(
            (t.month for t in calm.plan(72).transitions), None)
        risky_first = next(
            (t.month for t in risky.plan(72).transitions), None)
        if calm_first is not None and risky_first is not None:
            assert risky_first >= calm_first

    def test_tight_budget_never_widens(self):
        planner = AdaptiveRedundancyPlanner(loss_budget=1e-15)
        plan = planner.plan(72)
        assert all(s.k == DEFAULT_LADDER[0].k for s in plan.schedule)
        assert plan.transitions == []

    def test_scheme_for_afr_monotone(self):
        planner = AdaptiveRedundancyPlanner()
        narrow = planner.scheme_for_afr(0.08)
        wide = planner.scheme_for_afr(0.005)
        assert wide.k >= narrow.k
