"""Trace-driven replay: executing the trace workload on the real DFS."""

import pytest

from repro.traces.replay import TraceReplayer, compare_replay


class TestReplayer:
    def test_runs_and_verifies(self):
        result = TraceReplayer("morph", hours=8, files_per_hour=2, seed=3).run()
        assert result.files_written == 16
        assert result.transitions > 0
        assert len(result.disk_io_series) == 8
        assert len(result.capacity_series) == 8

    def test_baseline_runs(self):
        result = TraceReplayer("baseline", hours=6, files_per_hour=2, seed=4).run()
        assert result.files_written == 12
        assert result.total_disk_io > 0

    def test_deletions_happen(self):
        result = TraceReplayer("morph", hours=10, files_per_hour=3, seed=5).run()
        assert result.files_deleted > 0

    def test_deterministic(self):
        a = TraceReplayer("morph", hours=6, files_per_hour=2, seed=6).run()
        b = TraceReplayer("morph", hours=6, files_per_hour=2, seed=6).run()
        assert a.total_disk_io == b.total_disk_io
        assert a.disk_io_series == b.disk_io_series

    def test_identical_workload_across_systems(self):
        """Same seed -> same files, same fates, same logical bytes."""
        base = TraceReplayer("baseline", hours=8, files_per_hour=2, seed=7).run()
        morph = TraceReplayer("morph", hours=8, files_per_hour=2, seed=7).run()
        assert base.files_written == morph.files_written
        assert base.files_deleted == morph.files_deleted
        assert base.transitions == morph.transitions
        assert base.logical_bytes == morph.logical_bytes

    def test_invalid_system(self):
        with pytest.raises(ValueError):
            TraceReplayer("hdfs")


class TestReplayComparison:
    def test_morph_saves_disk_io(self):
        r = compare_replay(hours=10, files_per_hour=2, seed=1)
        assert r["disk_reduction"] > 0.20
        # Replay-measured savings should be in the ballpark of the
        # analytical Fig 1 arithmetic for this workload mix.
        assert r["disk_reduction"] < 0.60

    def test_capacity_lower_during_early_life(self):
        r = compare_replay(hours=6, files_per_hour=2, seed=2)
        # Early hours are ingest-dominated: Hy(1,...) < 3-r capacity.
        base_cap = r["baseline"].capacity_series[1]
        morph_cap = r["morph"].capacity_series[1]
        assert morph_cap < base_cap
