"""IO metrics accounting and cluster topology/failure plumbing."""

import numpy as np
import pytest

from repro.cluster.failure import FailureInjector
from repro.cluster.metrics import IOMetrics, NodeMetrics, TimelineSample
from repro.cluster.topology import Cluster, ClusterSpec


class TestNodeMetrics:
    def test_totals(self):
        m = NodeMetrics()
        m.disk_bytes_read = 10
        m.disk_bytes_written = 5
        m.net_bytes_in = 3
        m.net_bytes_out = 4
        assert m.disk_bytes_total == 15
        assert m.net_bytes_total == 7

    def test_memory_watermark(self):
        m = NodeMetrics()
        m.use_memory(100)
        m.use_memory(50)
        m.free_memory(120)
        m.use_memory(10)
        assert m.memory_peak_bytes == 150
        assert m.memory_in_use_bytes == 40

    def test_free_never_negative(self):
        m = NodeMetrics()
        m.free_memory(10)
        assert m.memory_in_use_bytes == 0


class TestIOMetrics:
    def test_transfer_counts_once(self):
        metrics = IOMetrics()
        metrics.record_transfer("a", "b", 100)
        assert metrics.net_bytes_total == 100
        assert metrics.node("a").net_bytes_out == 100
        assert metrics.node("b").net_bytes_in == 100

    def test_local_transfer_is_free(self):
        metrics = IOMetrics()
        metrics.record_transfer("a", "a", 100)
        assert metrics.net_bytes_total == 0

    def test_aggregates(self):
        metrics = IOMetrics()
        metrics.record_disk_read("a", 10)
        metrics.record_disk_write("b", 20)
        metrics.record_cpu("a", 1.5)
        assert metrics.disk_bytes_total == 30
        assert metrics.cpu_seconds_total == 1.5
        summary = metrics.summary()
        assert summary["disk_read"] == 10
        assert summary["disk_write"] == 20

    def test_timeline_records(self):
        metrics = IOMetrics()
        metrics.record_disk_write("a", 10, at=1.0, tag="ingest")
        metrics.record_disk_read("a", 5, at=2.0)
        assert metrics.timeline == [(1.0, 10, "ingest"), (2.0, 5, "disk_read")]

    def test_timeline_samples_have_named_fields(self):
        metrics = IOMetrics()
        metrics.record_disk_write("a", 10, at=1.0, tag="ingest")
        sample = metrics.timeline[0]
        assert isinstance(sample, TimelineSample)
        assert sample.at == 1.0
        assert sample.nbytes == 10
        assert sample.tag == "ingest"

    def test_transfer_lands_in_timeline(self):
        # Regression: record_transfer used to meter the per-node counters
        # but never append a timeline sample, so throughput plots were
        # blind to every network transfer.
        metrics = IOMetrics()
        metrics.record_transfer("a", "b", 100, at=3.0, tag="repair")
        metrics.record_transfer("c", "d", 50, at=4.0)
        assert metrics.timeline == [
            TimelineSample(3.0, 100, "repair"),
            TimelineSample(4.0, 50, "net_transfer"),
        ]

    def test_local_transfer_not_in_timeline(self):
        metrics = IOMetrics()
        metrics.record_transfer("a", "a", 100, at=1.0)
        assert metrics.timeline == []

    def test_capacity_used_nets_out_deletes(self):
        # Regression: capacity_used() promised "written minus deleted"
        # but returned gross writes (deletes were never tracked at all).
        metrics = IOMetrics()
        metrics.record_disk_write("a", 100)
        metrics.record_disk_write("b", 50)
        metrics.record_disk_delete("a", 30, at=2.0)
        assert metrics.disk_bytes_deleted == 30
        assert metrics.capacity_used() == 120
        assert metrics.summary()["disk_deleted"] == 30
        assert metrics.timeline[-1] == TimelineSample(2.0, 30, "disk_delete")

    def test_dfs_capacity_ledger_agrees_with_disks(self):
        # The DFS override sums physical chunk maps and asserts the
        # metrics ledger agrees; a full write+delete cycle must return
        # both views to zero.
        from repro.core.schemes import CodeKind, ECScheme, HybridScheme
        from repro.dfs import MorphFS

        fs = MorphFS(chunk_size=4 * 1024, future_widths=[6, 12])
        data = np.random.default_rng(7).integers(0, 256, 96 * 1024, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        assert fs.capacity_used() == fs.metrics.capacity_used() > 0
        fs.delete_file("f")
        assert fs.capacity_used() == 0
        assert fs.metrics.capacity_used() == 0


class TestCluster:
    def test_default_size_matches_paper_testbed(self):
        cluster = Cluster()
        assert len(cluster) == 23  # paper: 23 Datanodes

    def test_racks_assigned(self):
        cluster = Cluster(ClusterSpec(n_datanodes=8, n_racks=4))
        racks = {n.rack for n in cluster.nodes}
        assert racks == {0, 1, 2, 3}

    def test_fail_and_recover(self):
        cluster = Cluster()
        cluster.fail_node("dn000")
        assert len(cluster.alive_nodes()) == 22
        cluster.recover_node("dn000")
        assert len(cluster.alive_nodes()) == 23

    def test_fail_fraction(self):
        cluster = Cluster()
        rng = np.random.default_rng(0)
        failed = cluster.fail_fraction(0.10, rng)
        assert len(failed) == 2  # round(0.1 * 23)
        assert len(cluster.alive_nodes()) == 21


class TestFailureInjector:
    def test_deterministic(self):
        a = FailureInjector(Cluster(), seed=1)
        b = FailureInjector(Cluster(), seed=1)
        assert a.fail_random_nodes(3) == b.fail_random_nodes(3)

    def test_recover_all(self):
        inj = FailureInjector(Cluster(), seed=2)
        inj.fail_fraction(0.2)
        assert len(inj.cluster.alive_nodes()) < 23
        inj.recover_all()
        assert len(inj.cluster.alive_nodes()) == 23
        assert not inj.failed_nodes

    def test_availability_query(self):
        inj = FailureInjector(Cluster(), seed=3)
        victims = inj.fail_random_nodes(1)
        assert not inj.is_available(victims[0])
        assert inj.is_available("dn999-nonexistent")

    def test_cannot_fail_more_than_alive(self):
        inj = FailureInjector(Cluster(ClusterSpec(n_datanodes=3)), seed=4)
        with pytest.raises(ValueError):
            inj.fail_random_nodes(5)
