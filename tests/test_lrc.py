"""Plain LRC(k, l, r): layout, local repair, global decode."""

import numpy as np
import pytest

from repro.codes.base import DecodeError, chunks_equal
from repro.codes.lrc import LocalReconstructionCode


def encode(code, seed=0, chunk_len=24):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, chunk_len, dtype=np.uint8) for _ in range(code.k)]
    return data, code.encode_stripe(data)


class TestLayout:
    def test_chunk_counts(self):
        code = LocalReconstructionCode(12, 2, 2)
        assert code.n == 16
        assert code.group_size == 6
        _, stripe = encode(code)
        assert len(stripe.parity_chunks) == 4

    def test_group_membership(self):
        code = LocalReconstructionCode(12, 3, 2)
        assert code.group_of(0) == 0
        assert code.group_of(4) == 1
        assert code.group_of(11) == 2
        assert code.group_of(12) == 0  # first local parity
        assert code.group_members(1) == [4, 5, 6, 7, 13]

    def test_global_parity_has_no_group(self):
        code = LocalReconstructionCode(12, 2, 2)
        with pytest.raises(ValueError):
            code.group_of(14)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LocalReconstructionCode(10, 3, 2)  # 10 % 3 != 0
        with pytest.raises(ValueError):
            LocalReconstructionCode(12, 2, -1)


class TestLocalRepair:
    def test_data_chunk_repair_reads_only_group(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=1)
        # Provide only the group of chunk 3 (group 0) and nothing else.
        group = {i: stripe.chunks[i] for i in code.group_members(0) if i != 3}
        repaired = code.local_repair(3, group)
        assert np.array_equal(repaired, stripe.chunks[3])

    def test_local_parity_repair(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=2)
        avail = {i: stripe.chunks[i] for i in range(16) if i != 12}
        repaired = code.local_repair(12, avail)
        assert np.array_equal(repaired, stripe.chunks[12])

    def test_local_repair_needs_full_group(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=3)
        avail = {i: stripe.chunks[i] for i in range(16) if i not in (3, 4)}
        with pytest.raises(DecodeError):
            code.local_repair(3, avail)


class TestDecode:
    def test_one_failure_per_group_plus_globals(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=4)
        rec = code.decode_stripe(stripe.erase(0, 7))
        assert chunks_equal(rec.chunks, stripe.chunks)

    def test_multi_failure_uses_globals(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=5)
        # Two failures in one group: local repair impossible, globals needed.
        rec = code.decode_stripe(stripe.erase(0, 1))
        assert chunks_equal(rec.chunks, stripe.chunks)

    def test_four_failures_recoverable_pattern(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=6)
        # One per group + both globals: information-theoretically fine.
        rec = code.decode_stripe(stripe.erase(0, 7, 14, 15))
        assert chunks_equal(rec.chunks, stripe.chunks)

    def test_unrecoverable_pattern_raises(self):
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=7)
        # 4 failures inside one group exceed local(1) + global(2) capacity.
        with pytest.raises(DecodeError):
            code.decode_stripe(stripe.erase(0, 1, 2, 3))

    def test_zero_global_parities(self):
        code = LocalReconstructionCode(8, 2, 0)
        data, stripe = encode(code, seed=8)
        rec = code.decode_stripe(stripe.erase(2))
        assert chunks_equal(rec.chunks, stripe.chunks)

    def test_fault_tolerance_reporting(self):
        # Guaranteed arbitrary-failure tolerance of LRC is r_global + 1.
        code = LocalReconstructionCode(12, 2, 2)
        data, stripe = encode(code, seed=9)
        # Any 3 = r_global + 1 failures must decode; sample several.
        for pattern in [(0, 1, 2), (5, 13, 15), (0, 6, 12), (10, 11, 14)]:
            rec = code.decode_stripe(stripe.erase(*pattern))
            assert chunks_equal(rec.chunks, stripe.chunks), pattern
