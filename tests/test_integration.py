"""Full-system integration: complete lifetimes under adversity.

These tests run the whole stack together — hybrid ingest, lifetime
management, heartbeat maintenance, failures, corruption, appends,
transcodes — and assert that data stays byte-identical and the IO ledger
stays consistent with the cost model throughout.
"""

import numpy as np
import pytest

from repro.core.lifecycle import (
    LifetimePhase,
    LifetimePolicy,
    LifetimeStage,
    morph_macrobench_policy,
)
from repro.core.manager import LifetimeManager
from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs import BaselineDFS, MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.dfs.integrity import Scrubber, corrupt_chunk
from repro.dfs.recovery import RecoveryManager

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


class TestFullLifetimeUnderFailures:
    def test_lifetime_with_mid_life_node_loss(self):
        """Ingest -> fail a node -> recover -> transcode chain -> verify."""
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = np.random.default_rng(1).integers(0, 256, 192 * KB, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, CC69))
        victim = fs.namenode.lookup("f").stripes[1].data[2].node_id
        kill(fs, victim)
        RecoveryManager(fs).recover_all()
        fs.transcode("f", CC69)
        fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))
        assert np.array_equal(fs.read_file("f"), data)

    def test_failure_during_transcode_then_recovery(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = np.random.default_rng(2).integers(0, 256, 192 * KB, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, CC69))
        fs.transcode("f", CC69)
        meta = fs.namenode.lookup("f")
        groups, parities = fs._build_groups(meta, ECScheme(CodeKind.CC, 12, 15))
        fs.namenode.enqueue_transcode("f", ECScheme(CodeKind.CC, 12, 15), groups, parities)
        # Execute half, then lose a node holding an old parity.
        for g in fs.namenode.poll_work(len(groups) // 2):
            fs.transcoder.execute_group(g)
        victim = meta.stripes[-1].parities[0].node_id
        kill(fs, victim)
        # Old metadata is still authoritative; recovery rebuilds from it.
        RecoveryManager(fs).recover_all()
        assert np.array_equal(fs.read_file("f"), data)
        # Resume and finish.
        fs.run_transcode_heartbeats("f")
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 12, 15)
        assert np.array_equal(fs.read_file("f"), data)

    def test_corruption_failure_and_append_interleaved(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, CC69))
        # Corrupt a parity, append more data, fail a node, scrub, verify.
        corrupt_chunk(fs, fs.namenode.lookup("f").stripes[0].parities[0])
        extra = rng.integers(0, 256, 30 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        fs.close_file("f")
        victim = fs.namenode.lookup("f").stripes[-1].data[0].node_id
        kill(fs, victim)
        Scrubber(fs).scan_and_repair()
        RecoveryManager(fs).recover_all()
        assert np.array_equal(fs.read_file("f"), np.concatenate([data, extra]))

    def test_heartbeat_manager_combo(self):
        """Heartbeat maintenance + lifetime manager driving real time."""
        policy = morph_macrobench_policy()
        fs = MorphFS(chunk_size=4 * KB, future_widths=policy.ec_widths())
        manager = LifetimeManager(fs)
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(interval_s=30.0, dead_after_missed=2))
        data = np.random.default_rng(4).integers(0, 256, 160 * KB, dtype=np.uint8)
        fs.write_file("f", data, policy.stages[0].scheme)
        manager.register("f", policy)
        victim_killed = False
        for _ in range(16):
            monitor.tick()
            manager.tick()
            if not victim_killed and fs.clock >= 120:
                kill(fs, fs.namenode.lookup("f").stripes[0].data[0].node_id)
                victim_killed = True
        meta = fs.namenode.lookup("f")
        assert meta.scheme == ECScheme(CodeKind.CC, 20, 23)
        assert np.array_equal(fs.read_file("f"), data)


class TestBaselineVsMorphConsistency:
    def test_identical_logical_state_different_cost(self):
        """Both systems end at the same logical state; Morph pays less."""
        rng = np.random.default_rng(5)
        datasets = {f"f{i}": rng.integers(0, 256, 48 * KB, dtype=np.uint8) for i in range(3)}

        baseline = BaselineDFS(chunk_size=4 * KB)
        morph = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        for name, data in datasets.items():
            baseline.write_file(name, data, Replication(3))
            morph.write_file(name, data, HybridScheme(1, CC69))
        for name in datasets:
            baseline.transcode(name, ECScheme(CodeKind.RS, 6, 9))
            baseline.transcode(name, ECScheme(CodeKind.RS, 12, 15))
            morph.transcode(name, CC69)
            morph.transcode(name, ECScheme(CodeKind.CC, 12, 15))
        for name, data in datasets.items():
            assert np.array_equal(baseline.read_file(name), data)
            assert np.array_equal(morph.read_file(name), data)
        assert baseline.capacity_used() == morph.capacity_used()
        assert morph.metrics.disk_bytes_total < 0.55 * baseline.metrics.disk_bytes_total

    def test_io_ledger_matches_cost_model(self):
        """Simulator-measured transcode IO equals the closed form."""
        from repro.codes.costmodel import convertible_cost

        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
        data = np.random.default_rng(6).integers(0, 256, 192 * KB, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, CC69))
        fs.transcode("f", CC69)
        read0 = fs.metrics.disk_bytes_read
        write0 = fs.metrics.disk_bytes_written
        fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))
        cost = convertible_cost(6, 3, 12, 3)
        logical = float(len(data))
        assert fs.metrics.disk_bytes_read - read0 == pytest.approx(cost.read * logical)
        assert fs.metrics.disk_bytes_written - write0 == pytest.approx(cost.write * logical)


class TestCustomPolicies:
    def test_service_a_like_policy_through_dfs(self):
        """narrow CC -> medium LRCC -> wide LRCC on real (small) stripes."""
        hy = HybridScheme(1, ECScheme(CodeKind.CC, 6, 9))
        med = ECScheme(CodeKind.LRCC, 12, 16, local_groups=2, r_global=2)
        wide = ECScheme(CodeKind.LRCC, 24, 30, local_groups=4, r_global=2)
        policy = LifetimePolicy([
            LifetimeStage(0.0, hy, LifetimePhase.HOT),
            LifetimeStage(10.0, hy.ec, LifetimePhase.WARM),
            LifetimeStage(20.0, med, LifetimePhase.COOL),
            LifetimeStage(30.0, wide, LifetimePhase.FRIGID),
        ])
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12, 24])
        manager = LifetimeManager(fs)
        data = np.random.default_rng(7).integers(0, 256, 96 * KB, dtype=np.uint8)
        fs.write_file("f", data, hy)
        manager.register("f", policy)
        manager.run_until(end_clock=50.0, tick_interval=5.0)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == wide
        assert np.array_equal(fs.read_file("f"), data)
        # Late-life repair is local: kill one node, read still fine.
        kill(fs, meta.stripes[0].data[3].node_id)
        assert np.array_equal(fs.read_file("f"), data)
