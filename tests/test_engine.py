"""Discrete-event kernel semantics."""

import pytest

from repro.cluster.engine import AllOf, AnyOf, Environment, Resource


class TestTimeouts:
    def test_clock_advances_in_order(self):
        env = Environment()
        log = []

        def proc(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(2.0, "b"))
        env.process(proc(1.0, "a"))
        env.run()
        assert log == [(1.0, "a"), (2.0, "b")]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_run_until(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append("late")

        env.process(proc())
        env.run(until=2.0)
        assert log == []
        assert env.now == 2.0
        env.run()
        assert log == ["late"]

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        seen = []

        def proc():
            yield env.timeout(1.0)
            seen.append(env.now)
            yield env.timeout(2.5)
            seen.append(env.now)

        env.process(proc())
        env.run()
        assert seen == [1.0, 3.5]


class TestProcesses:
    def test_process_join(self):
        env = Environment()
        order = []

        def child():
            yield env.timeout(3.0)
            order.append("child")
            return 42

        def parent():
            value = yield env.process(child())
            order.append(("parent", value, env.now))

        env.process(parent())
        env.run()
        assert order == ["child", ("parent", 42, 3.0)]

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield "nope"

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()


class TestCombinators:
    def test_all_of_waits_for_slowest(self):
        env = Environment()
        done = []

        def proc():
            yield AllOf(env, [env.timeout(1.0), env.timeout(4.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [4.0]

    def test_any_of_returns_first(self):
        env = Environment()
        result = []

        def proc():
            idx, _ = yield AnyOf(env, [env.timeout(5.0), env.timeout(1.0)])
            result.append((idx, env.now))

        env.process(proc())
        env.run()
        assert result == [(1, 1.0)]

    def test_all_of_empty(self):
        env = Environment()
        hit = []

        def proc():
            yield AllOf(env, [])
            hit.append(env.now)

        env.process(proc())
        env.run()
        assert hit == [0.0]


class TestResources:
    def test_fifo_queueing(self):
        env = Environment()
        disk = Resource(env, capacity=1)
        order = []

        def proc(tag, service):
            req = disk.request()
            yield req
            yield env.timeout(service)
            disk.release(req)
            order.append((tag, env.now))

        env.process(proc("a", 2.0))
        env.process(proc("b", 1.0))
        env.run()
        # b waits for a despite shorter service (FIFO).
        assert order == [("a", 2.0), ("b", 3.0)]

    def test_capacity_two_runs_in_parallel(self):
        env = Environment()
        disk = Resource(env, capacity=2)
        order = []

        def proc(tag):
            req = disk.request()
            yield req
            yield env.timeout(1.0)
            disk.release(req)
            order.append((tag, env.now))

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_queue_length(self):
        env = Environment()
        disk = Resource(env, capacity=1)
        disk.request()
        disk.request()
        disk.request()
        assert disk.queue_length == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)
