"""ShardedNamenode: routing, facade equivalence and deterministic merges."""

from zlib import crc32

import pytest

from repro.core.schemes import CodeKind, ECScheme
from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta
from repro.dfs.namenode import ConversionGroup, FileNotFoundError_, Namenode
from repro.dfs.shards import ShardedNamenode
from repro.dfs.journal import encode_file, state_digest

N_SHARDS = 4


def make_meta(name, n_stripes=2, k=3, r=1, node_base=0):
    meta = FileMeta(name=name, size=n_stripes * k * 64, chunk_size=64,
                    scheme=ECScheme(CodeKind.CC, k, k + r))
    for s in range(n_stripes):
        stripe = ECStripeMeta(stripe_index=s, k=k, n=k + r)
        for t in range(k):
            stripe.data.append(ChunkMeta(
                f"{name}/s{s}d{t}", f"dn{(node_base + t) % 8:03d}",
                ChunkKind.DATA, 64))
        for j in range(r):
            stripe.parities.append(ChunkMeta(
                f"{name}/s{s}p{j}", f"dn{(node_base + k + j) % 8:03d}",
                ChunkKind.PARITY, 64))
        meta.stripes.append(stripe)
    return meta


def names_on_distinct_shards():
    """One file name per shard, discovered by routing, so tests exercise
    cross-shard paths regardless of crc32 details."""
    picked = {}
    i = 0
    while len(picked) < N_SHARDS:
        name = f"file-{i:04d}"
        picked.setdefault(crc32(name.encode()) % N_SHARDS, name)
        i += 1
    return [picked[s] for s in range(N_SHARDS)]


def test_routing_is_deterministic_and_total():
    nn = ShardedNamenode(N_SHARDS)
    for i in range(100):
        name = f"f{i}"
        si = nn.shard_index(name)
        assert 0 <= si < N_SHARDS
        assert si == crc32(name.encode()) % N_SHARDS
        assert nn.shard_for(name) is nn.shards[si]


def test_facade_matches_single_namenode():
    """Same op sequence against one Namenode and the sharded facade:
    namespace contents, lookups and node-major results agree (the
    sharded chunks_on_node is a shard-order concat, so compare sets)."""
    single, sharded = Namenode(), ShardedNamenode(N_SHARDS)
    metas = [make_meta(f"f{i:03d}", node_base=i) for i in range(24)]
    for target in (single, sharded):
        target.register_files([make_meta(f"f{i:03d}", node_base=i)
                               for i in range(12)])
        for i in range(12, 24):
            target.register_file(make_meta(f"f{i:03d}", node_base=i))
    assert sorted(single.files) == sorted(sharded.files)
    assert len(sharded.files) == len(single.files) == 24
    for meta in metas:
        assert encode_file(sharded.lookup(meta.name)) == encode_file(
            single.lookup(meta.name)
        )
    for node in {c.node_id for m in metas for c in m.all_chunks()}:
        got = {(m.name, c.chunk_id) for m, c in sharded.chunks_on_node(node)}
        want = {(m.name, c.chunk_id) for m, c in single.chunks_on_node(node)}
        assert got == want
    single.unregister_file("f003")
    sharded.unregister_file("f003")
    assert sorted(single.files) == sorted(sharded.files)
    with pytest.raises(FileNotFoundError_):
        sharded.lookup("f003")


def test_cross_shard_rename_moves_the_meta():
    nn = ShardedNamenode(N_SHARDS)
    a, b, *_ = names_on_distinct_shards()
    assert nn.shard_index(a) != nn.shard_index(b)
    meta = make_meta(a)
    nn.register_file(meta)
    nn.rename(a, b)
    assert nn.lookup(b) is meta
    assert meta.name == b
    assert a not in nn.files
    assert b in nn.shards[nn.shard_index(b)].files
    # Rename onto an occupied name fails cleanly, original stays put.
    nn.register_file(make_meta(a))
    with pytest.raises(ValueError):
        nn.rename(a, b)
    assert nn.lookup(a).name == a


def test_same_shard_rename_delegates():
    nn = ShardedNamenode(1)
    nn.register_file(make_meta("x"))
    nn.rename("x", "y")
    assert "y" in nn.files and "x" not in nn.files


def test_chunk_ids_never_collide_across_shards():
    nn = ShardedNamenode(N_SHARDS)
    minted = set()
    for name in names_on_distinct_shards():
        for cid in nn.next_chunk_ids(f"{name}/s0d", 5):
            assert cid not in minted
            minted.add(cid)
        cid = nn.next_chunk_id(f"{name}/p")
        assert cid not in minted
        minted.add(cid)
    assert len(minted) == N_SHARDS * 6


def test_file_order_keys_compare_globally():
    nn = ShardedNamenode(N_SHARDS)
    names = [f"f{i:03d}" for i in range(16)]
    for name in names:
        nn.register_file(make_meta(name))
    keys = [nn._file_order[name] for name in names]
    assert len(set(keys)) == len(keys)
    assert all(name in nn._file_order for name in names)
    assert nn._file_order.get("ghost") is None
    # Per-shard relative order is preserved under the global sort.
    by_key = [name for _, name in sorted(zip(keys, names))]
    for si in range(N_SHARDS):
        mine = [n for n in names if nn.shard_index(n) == si]
        assert [n for n in by_key if nn.shard_index(n) == si] == mine


def test_poll_work_budget_spans_shards():
    nn = ShardedNamenode(N_SHARDS)
    target = ECScheme(CodeKind.CC, 6, 8)
    for name in names_on_distinct_shards():
        meta = make_meta(name)
        nn.register_file(meta)
        gs = [ConversionGroup(file_name=name, group_index=0,
                              initial_stripe_indices=[0, 1],
                              n_final_stripes=1, target_scheme=target)]
        nn.enqueue_transcode(name, target, gs, 2)
    assert len(nn.atq) == N_SHARDS
    first = nn.poll_work(max_items=3)
    assert len(first) == 3
    assert len(nn.poll_work(max_items=8)) == 1
    # Per-file poll still routes to the owning shard.
    assert nn.poll_work_for("anything", 4) == []


def test_transcode_lifecycle_through_facade():
    nn = ShardedNamenode(N_SHARDS)
    name = "job-file"
    meta = make_meta(name, n_stripes=2, k=3, r=1)
    nn.register_file(meta)
    target = ECScheme(CodeKind.CC, 6, 8)
    gs = [ConversionGroup(file_name=name, group_index=0,
                          initial_stripe_indices=[0, 1],
                          n_final_stripes=1, target_scheme=target)]
    nn.enqueue_transcode(name, target, gs, 2)
    assert name in nn.utm
    nn.poll_work_for(name, 4)
    stripe = ECStripeMeta(stripe_index=0, k=6, n=8)
    for t in range(6):
        stripe.data.append(ChunkMeta(f"n/d{t}", "dn000", ChunkKind.DATA, 64))
    for j in range(2):
        stripe.parities.append(ChunkMeta(f"n/p{j}", "dn001", ChunkKind.PARITY, 64))
        nn.complete_parity(name, 0, 0, j, 2)
    nn.record_new_stripe(name, 0, 0, stripe)
    old = nn.try_finalize(name)
    assert old is not None
    assert nn.lookup(name).scheme == target
    assert name not in nn.utm


def test_snapshot_restore_roundtrip():
    nn = ShardedNamenode(N_SHARDS)
    for i in range(10):
        nn.register_file(make_meta(f"f{i:03d}", node_base=i))
    snap = nn.snapshot()
    back = ShardedNamenode.restore(snap)
    assert back.n_shards == N_SHARDS
    for si in range(N_SHARDS):
        assert state_digest(back.shards[si]) == state_digest(nn.shards[si])


def test_metadata_stats_aggregates_shards():
    nn = ShardedNamenode.journaled(N_SHARDS)
    for i in range(8):
        nn.register_file(make_meta(f"f{i:03d}"))
    stats = nn.metadata_stats()
    assert stats["files"] == 8
    assert stats["chunks"] == 8 * 2 * 4
    assert len(stats["shards"]) == N_SHARDS
    assert stats["files"] == sum(s["files"] for s in stats["shards"])
    assert stats["journal_records"] == sum(
        s["journal_records"] for s in stats["shards"]
    )
    assert stats["journal_records"] >= 8


def test_views_behave_like_mappings():
    nn = ShardedNamenode(N_SHARDS)
    names = [f"f{i:03d}" for i in range(6)]
    for name in names:
        nn.register_file(make_meta(name))
    assert set(nn.files) == set(names)
    assert len(nn.files) == 6
    assert "f000" in nn.files
    assert nn.files.get("ghost") is None
    assert sorted(m.name for m in nn.files.values()) == names
    assert len(nn.utm) == 0
