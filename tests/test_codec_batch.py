"""Differential tests: batched / fused codec paths vs the scalar loop.

Every multi-stripe batch API and every fused decode path must be
bit-identical to calling the per-stripe methods in a loop — GF
arithmetic is exact, so "close" is not a thing. This suite pins that
contract across code families, batch shapes (size 1, ragged tails),
failure patterns (data, parity, all-parity), and pattern-LRU churn.
"""

import numpy as np
import pytest

from repro.codes.bandwidth import BandwidthOptimalCC
from repro.codes.convertible import ConvertibleCode
from repro.codes.lrc import LocalReconstructionCode
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.codes.rs import ReedSolomon
from repro.codes.wide import WideConvertibleCode
from repro.gf import kernels
from repro.gf.field16 import bytes_to_symbols, gf16_mul, symbols_to_bytes


def _stripes(k, n_stripes, chunk_bytes, seed=0, ragged=False):
    rng = np.random.default_rng(seed)
    out = []
    for s in range(n_stripes):
        size = chunk_bytes
        if ragged and s == n_stripes - 1:
            size = max(2, chunk_bytes // 2)
        out.append(
            [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(k)]
        )
    return out


def _codes():
    return [
        ReedSolomon(4, 7),
        ConvertibleCode(4, 6),
        LocalReconstructionCode(6, 2, 2),
        LocallyRecoverableConvertibleCode(6, 2, 2),
        WideConvertibleCode(6, 9),
        BandwidthOptimalCC(4, 2, 4),
    ]


def _chunk_bytes(code):
    # BWO substripes need chunk_size % r_final == 0.
    return 8192 if isinstance(code, BandwidthOptimalCC) else 6000


class TestEncodeBatch:
    @pytest.mark.parametrize("code", _codes(), ids=lambda c: type(c).__name__)
    def test_matches_per_stripe_loop(self, code):
        stripes = _stripes(code.k, 5, _chunk_bytes(code), seed=1)
        batched = code.encode_batch(stripes)
        for chunks, parities in zip(stripes, batched):
            expected = code.encode(chunks)
            assert len(parities) == len(expected)
            for got, want in zip(parities, expected):
                assert np.array_equal(got, want)

    @pytest.mark.parametrize("code", _codes(), ids=lambda c: type(c).__name__)
    def test_batch_of_one(self, code):
        stripes = _stripes(code.k, 1, _chunk_bytes(code), seed=2)
        batched = code.encode_batch(stripes)
        expected = code.encode(stripes[0])
        assert all(
            np.array_equal(g, w) for g, w in zip(batched[0], expected)
        )

    def test_ragged_final_stripe(self):
        code = ReedSolomon(4, 7)
        stripes = _stripes(4, 4, 6000, seed=3, ragged=True)
        batched = code.encode_batch(stripes)
        for chunks, parities in zip(stripes, batched):
            expected = code.encode(chunks)
            assert all(np.array_equal(g, w) for g, w in zip(parities, expected))

    def test_ragged_final_stripe_wide(self):
        code = WideConvertibleCode(6, 9)
        stripes = _stripes(6, 3, 6000, seed=4, ragged=True)
        batched = code.encode_batch(stripes)
        for chunks, parities in zip(stripes, batched):
            expected = code.encode(chunks)
            assert all(np.array_equal(g, w) for g, w in zip(parities, expected))

    def test_small_chunks_take_reference_path(self):
        code = ReedSolomon(4, 7)
        stripes = _stripes(4, 3, 64, seed=5)
        batched = code.encode_batch(stripes)
        for chunks, parities in zip(stripes, batched):
            expected = code.encode(chunks)
            assert all(np.array_equal(g, w) for g, w in zip(parities, expected))


def _erasure_cases(code):
    """(erased, label) patterns: data-only, mixed, all-parity."""
    k, n = code.k, code.n
    r = n - k
    cases = [([0], "one_data"), ([k], "one_parity")]
    if r >= 2:
        cases.append(([0, k + 1], "data_plus_parity"))
        cases.append((list(range(k, min(n, k + r))), "all_parity"))
    return cases


class TestDecodeBatch:
    @pytest.mark.parametrize("code", _codes(), ids=lambda c: type(c).__name__)
    def test_matches_per_stripe_loop(self, code):
        stripes = _stripes(code.k, 4, _chunk_bytes(code), seed=6)
        parities = [code.encode(chunks) for chunks in stripes]
        for erased, label in _erasure_cases(code):
            availables, eraseds = [], []
            for chunks, pars in zip(stripes, parities):
                full = list(chunks) + list(pars)
                availables.append(
                    {i: c for i, c in enumerate(full) if i not in erased}
                )
                eraseds.append(list(erased))
            batched = code.decode_batch(availables, eraseds)
            for avail, chunks, pars, rec in zip(
                availables, stripes, parities, batched
            ):
                expected = code.decode(avail, erased)
                assert set(rec) == set(expected), label
                for idx in erased:
                    assert np.array_equal(rec[idx], expected[idx]), label
                    full = list(chunks) + list(pars)
                    assert np.array_equal(rec[idx], full[idx]), label

    def test_mixed_patterns_in_one_batch(self):
        code = ReedSolomon(4, 7)
        stripes = _stripes(4, 6, 6000, seed=7)
        parities = [code.encode(chunks) for chunks in stripes]
        patterns = [[0], [0], [1, 4], [1, 4], [5, 6], [0]]
        availables, eraseds = [], []
        for chunks, pars, erased in zip(stripes, parities, patterns):
            full = list(chunks) + list(pars)
            availables.append(
                {i: c for i, c in enumerate(full) if i not in erased}
            )
            eraseds.append(erased)
        batched = code.decode_batch(availables, eraseds)
        for chunks, pars, erased, rec in zip(
            stripes, parities, patterns, batched
        ):
            full = list(chunks) + list(pars)
            for idx in erased:
                assert np.array_equal(rec[idx], full[idx])

    def test_batch_of_one_and_empty_erasure(self):
        code = ReedSolomon(4, 7)
        chunks = _stripes(4, 1, 6000, seed=8)[0]
        pars = code.encode(chunks)
        full = chunks + pars
        avail = {i: c for i, c in enumerate(full) if i != 2}
        out = code.decode_batch([avail, dict(enumerate(full))], [[2], []])
        assert np.array_equal(out[0][2], chunks[2])
        assert out[1] == {}

    def test_ragged_lengths_group_separately(self):
        code = ReedSolomon(4, 7)
        stripes = _stripes(4, 3, 6000, seed=9, ragged=True)
        availables, eraseds = [], []
        for chunks in stripes:
            full = chunks + code.encode(chunks)
            availables.append({i: c for i, c in enumerate(full) if i != 0})
            eraseds.append([0])
        batched = code.decode_batch(availables, eraseds)
        for chunks, rec in zip(stripes, batched):
            assert np.array_equal(rec[0], chunks[0])

    def test_lrc_batch_preserves_local_repair_result(self):
        code = LocalReconstructionCode(6, 2, 2)
        stripes = _stripes(6, 3, 6000, seed=10)
        availables, eraseds = [], []
        for chunks in stripes:
            full = chunks + code.encode(chunks)
            availables.append({i: c for i, c in enumerate(full) if i != 1})
            eraseds.append([1])
        batched = code.decode_batch(availables, eraseds)
        for chunks, rec in zip(stripes, batched):
            assert np.array_equal(rec[1], chunks[1])


class TestFusedDecode:
    def test_pattern_cache_hits_on_repeat(self):
        kernels.clear_plan_caches()
        code = ReedSolomon(4, 7)
        chunks = _stripes(4, 1, 6000, seed=11)[0]
        full = chunks + code.encode(chunks)
        avail = {i: c for i, c in enumerate(full) if i != 0}
        code.decode(avail, [0])
        before = kernels.cache_stats()["pattern_hits"]
        code.decode(avail, [0])
        assert kernels.cache_stats()["pattern_hits"] == before + 1

    def test_lru_eviction_churn_stays_correct(self):
        kernels.clear_plan_caches()
        code = ReedSolomon(6, 9)
        chunks = _stripes(6, 1, 6000, seed=12)[0]
        full = chunks + code.encode(chunks)
        # More distinct patterns than the LRU holds: every (erased pair)
        # of the 9 chunk positions (36 > capacity), twice over.
        patterns = [
            [i, j] for i in range(9) for j in range(i + 1, 9)
        ]
        for _ in range(2):
            for erased in patterns:
                avail = {
                    i: c for i, c in enumerate(full) if i not in erased
                }
                rec = code.decode(avail, erased)
                for idx in erased:
                    assert np.array_equal(rec[idx], full[idx])
        stats = kernels.cache_stats()
        assert len(patterns) > kernels._PATTERN_CACHE_MAX
        assert stats["pattern_evictions"] > 0

    def test_wide_fused_small_and_large_chunks_agree(self):
        code = WideConvertibleCode(6, 9)
        for size in (64, 50_000):  # reference path vs packed plan path
            chunks = _stripes(6, 1, size, seed=13)[0]
            full = chunks + code.encode(chunks)
            erased = [0, 4, 7]
            avail = {i: c for i, c in enumerate(full) if i not in erased}
            rec = code.decode(avail, erased)
            for idx in erased:
                assert np.array_equal(rec[idx], full[idx])

    def test_wide_decode_odd_length_chunks(self):
        code = WideConvertibleCode(6, 9)
        chunks = _stripes(6, 1, 4097, seed=14)[0]
        full = chunks + code.encode(chunks)
        avail = {i: c for i, c in enumerate(full) if i != 3}
        rec = code.decode(avail, [3])
        assert np.array_equal(rec[3], chunks[3])


class TestPackedPlan16:
    def test_packed_matches_reference(self):
        from repro.gf.field16 import gf16_matmul_reference
        from repro.gf.kernels import PACK_MAX_ROWS, MulPlan16

        rng = np.random.default_rng(15)
        for m in range(1, PACK_MAX_ROWS + 1):
            coeffs = rng.integers(0, 1 << 16, (m, 5), dtype=np.uint16)
            b = rng.integers(0, 1 << 16, (5, 9001), dtype=np.uint16)
            plan = MulPlan16(coeffs)
            assert plan.packed
            want = gf16_matmul_reference(coeffs, b)
            assert np.array_equal(plan.apply(b), want)
            assert np.array_equal(plan.apply_rows(list(b)), want)

    def test_wider_than_pack_uses_combined(self):
        from repro.gf.field16 import gf16_matmul_reference
        from repro.gf.kernels import PACK_MAX_ROWS, MulPlan16

        rng = np.random.default_rng(16)
        m = PACK_MAX_ROWS + 1
        coeffs = rng.integers(0, 1 << 16, (m, 4), dtype=np.uint16)
        b = rng.integers(0, 1 << 16, (4, 8001), dtype=np.uint16)
        plan = MulPlan16(coeffs)
        assert not plan.packed and plan.combined
        assert np.array_equal(
            plan.apply(b), gf16_matmul_reference(coeffs, b)
        )


class TestGf16ScaleXor:
    @pytest.mark.parametrize("c", [0, 1, 2, 0x1234, 0xFFFF])
    @pytest.mark.parametrize("n", [7, 2048, 70_000])
    def test_matches_mul_xor(self, c, n):
        from repro.gf.kernels import gf16_scale_xor

        rng = np.random.default_rng(17)
        acc = rng.integers(0, 1 << 16, n, dtype=np.uint16)
        x = rng.integers(0, 1 << 16, n, dtype=np.uint16)
        want = acc ^ gf16_mul(np.uint16(c), x)
        got = acc.copy()
        gf16_scale_xor(got, c, x)
        assert np.array_equal(got, want)


class TestWideMergeParities:
    def test_merge_matches_direct_encode(self):
        initial = WideConvertibleCode(4, 6)
        final = WideConvertibleCode(8, 10)
        stripes = _stripes(4, 2, 5000, seed=18)
        stripe_parities = [initial.encode(chunks) for chunks in stripes]
        merged = initial.merge_parities(final, stripe_parities)
        direct = final.encode(stripes[0] + stripes[1])
        for got, want in zip(merged, direct):
            assert np.array_equal(got, want)


class TestSymbolPacking:
    def test_view_mode_round_trips(self):
        rng = np.random.default_rng(19)
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        view = bytes_to_symbols(data, copy=False)
        copied = bytes_to_symbols(data)
        assert np.array_equal(view, copied)
        assert np.array_equal(symbols_to_bytes(view, len(data)), data)
        # The view aliases; the copy does not.
        assert view.base is not None

    def test_odd_length_always_private(self):
        rng = np.random.default_rng(20)
        data = rng.integers(0, 256, 4097, dtype=np.uint8)
        sym = bytes_to_symbols(data, copy=False)
        sym[0] ^= 0xFFFF  # must not corrupt the caller's buffer
        assert np.array_equal(
            symbols_to_bytes(bytes_to_symbols(data), 4097), data
        )
