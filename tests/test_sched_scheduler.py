"""MaintenanceScheduler behavior: admission, budgets, retries, accounting.

Covers the scheduler standalone (CallbackTasks, no filesystem) and wired
into MorphFS through the heartbeat loop.
"""

import numpy as np
import pytest

from repro.cluster.engine import Environment, PriorityResource
from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.sched import (
    CallbackTask,
    MaintenanceScheduler,
    SchedulerPolicy,
    TaskClass,
    TaskCost,
    TaskState,
)

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def hybrid_fs(seed=1, n_kb=96, **kw):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12], **kw)
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, CC69))
    return fs, data


def kill(fs, node_id):
    fs.cluster.fail_node(node_id)
    fs.datanodes[node_id].fail()


def io_task(order, name, klass=TaskClass.REPAIR, node="n1", nbytes=10):
    return CallbackTask(
        lambda: order.append(name),
        klass=klass,
        charges={node: TaskCost(disk_bytes=nbytes)},
        label=name,
    )


class TestExecutionOrder:
    def test_priority_bands_respected_within_a_tick(self):
        sched = MaintenanceScheduler()
        order = []
        sched.submit(io_task(order, "scrub", TaskClass.SCRUB))
        sched.submit(io_task(order, "transcode", TaskClass.TRANSCODE))
        sched.submit(io_task(order, "repair", TaskClass.REPAIR))
        sched.submit(io_task(order, "critical", TaskClass.CRITICAL_REPAIR))
        report = sched.run_tick()
        assert order == ["critical", "repair", "transcode", "scrub"]
        assert len(report.executed) == 4
        assert not sched.has_pending()


class TestBudgets:
    def test_budget_spreads_work_across_ticks(self):
        policy = SchedulerPolicy(disk_bytes_per_tick=25)
        sched = MaintenanceScheduler(policy=policy)
        order = []
        for i in range(6):
            sched.submit(io_task(order, f"t{i}", nbytes=10))
        per_tick = []
        while sched.has_pending():
            report = sched.run_tick()
            per_tick.append(len(report.executed))
        # 25 bytes/tick admits 2 x 10-byte tasks per tick on node n1.
        assert per_tick == [2, 2, 2]
        assert order == [f"t{i}" for i in range(6)]

    def test_per_node_budgets_are_independent(self):
        policy = SchedulerPolicy(disk_bytes_per_tick=10)
        sched = MaintenanceScheduler(policy=policy)
        order = []
        sched.submit(io_task(order, "a1", node="a", nbytes=10))
        sched.submit(io_task(order, "b1", node="b", nbytes=10))
        report = sched.run_tick()
        assert len(report.executed) == 2  # different nodes, both fit

    def test_block_on_head_banks_budget_for_urgent_work(self):
        policy = SchedulerPolicy(disk_bytes_per_tick=10, budget_burst_ticks=2.0)
        sched = MaintenanceScheduler(policy=policy)
        order = []
        sched.submit(io_task(order, "big-repair", TaskClass.REPAIR, nbytes=20))
        sched.submit(io_task(order, "small-scrub", TaskClass.SCRUB, nbytes=5))
        sched.budgets.charge("n1", disk_bytes=15)  # drain before tick 1
        r1 = sched.run_tick()  # refills to 15: head (20) doesn't fit
        # The scrub COULD fit in the remaining 15 but is held back so the
        # bucket banks up for the more urgent repair.
        assert r1.executed == [] and r1.deferred_budget == 2
        r2 = sched.run_tick()  # refilled to 20 (capacity): head runs
        assert [t.label for t in r2.executed] == ["big-repair"]
        r3 = sched.run_tick()  # scrub follows once budget refills
        assert [t.label for t in r3.executed] == ["small-scrub"]

    def test_metadata_only_bypasses_budget_exhaustion(self):
        policy = SchedulerPolicy(disk_bytes_per_tick=10)
        sched = MaintenanceScheduler(policy=policy)
        sched.budgets.charge("n1", disk_bytes=1e9)  # deep debt: no overdraft
        order = []
        sched.submit(io_task(order, "blocked", TaskClass.REPAIR, nbytes=100_000))
        meta_task = CallbackTask(
            lambda: order.append("meta"), klass=TaskClass.TRANSCODE, label="meta"
        )
        meta_task.metadata_only = True
        sched.submit(meta_task)
        report = sched.run_tick()
        assert order == ["meta"]
        assert report.deferred_budget >= 1


class TestRetries:
    def test_failure_retries_with_exponential_backoff_then_dead_letters(self):
        sched = MaintenanceScheduler(policy=SchedulerPolicy(max_attempts=3))
        boom = RuntimeError("disk on fire")

        def fail():
            raise boom

        task = sched.submit(CallbackTask(fail, label="doomed"))
        attempt_ticks = []
        for _ in range(12):
            report = sched.run_tick()
            if report.failed:
                attempt_ticks.append(sched.tick_count)
            if report.dead_lettered:
                break
        # Backoff: attempt at tick 1, then +1, then +2.
        assert attempt_ticks == [1, 2, 4]
        assert task.state is TaskState.DEAD
        assert task.attempts == 3
        assert task.last_error is boom
        assert sched.dead_letter == [task]
        assert not sched.has_pending()

    def test_success_after_retry_leaves_no_dead_letter(self):
        sched = MaintenanceScheduler()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RuntimeError("transient")
            return "ok"

        task = sched.submit(CallbackTask(flaky, label="flaky"))
        sched.run_until_drained()
        assert task.state is TaskState.DONE
        assert task.result == "ok"
        assert sched.dead_letter == []

    def test_per_task_max_attempts_override(self):
        sched = MaintenanceScheduler(policy=SchedulerPolicy(max_attempts=5))

        def fail():
            raise RuntimeError("nope")

        task = CallbackTask(fail, label="once")
        task.max_attempts = 1
        sched.submit(task)
        sched.run_tick()
        assert task.state is TaskState.DEAD
        assert sched.dead_letter == [task]


class TestMorphFSIntegration:
    def test_budgeted_repairs_spread_over_heartbeats_then_complete(self):
        fs, data = hybrid_fs(n_kb=96)
        # One chunk repair worst-case: (k+1) * 4 KB disk with k=6 -> 28 KB.
        fs.scheduler = MaintenanceScheduler(
            fs, SchedulerPolicy(disk_bytes_per_tick=30 * KB)
        )
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=1))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        n_lost = len(fs.namenode.chunks_on_node(victim))
        kill(fs, victim)
        reports = [monitor.tick() for _ in range(40)]
        recovered = sum(r.chunks_recovered for r in reports)
        assert n_lost >= 2
        assert recovered == n_lost
        # Throttling actually spread the work over multiple ticks.
        busy_ticks = [r for r in reports if r.chunks_recovered]
        assert len(busy_ticks) > 1
        assert sum(r.scheduler.deferred_budget for r in reports) > 0
        assert np.array_equal(fs.read_file("f"), data)

    def test_scheduler_records_per_class_accounting(self):
        fs, data = hybrid_fs()
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=1))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor.tick()
        summary = fs.metrics.maintenance_summary()
        repair_classes = {"repair", "critical_repair"} & set(summary)
        assert repair_classes
        assert sum(summary[c]["completed"] for c in repair_classes) >= 1
        assert sum(summary[c]["disk_bytes"] for c in repair_classes) > 0

    def test_free_transition_completes_in_one_tick_under_exhausted_budget(self):
        fs, data = hybrid_fs()
        fs.scheduler = MaintenanceScheduler(
            fs, SchedulerPolicy(disk_bytes_per_tick=1.0)
        )
        for node_id in fs.datanodes:
            fs.scheduler.budgets.charge(node_id, disk_bytes=1e12)  # deep debt
        fs.schedule_transcode("f", CC69)
        report = fs.scheduler.run_tick()
        assert [t.describe() for t in report.executed] == ["free-transition f"]
        meta = fs.namenode.lookup("f")
        assert meta.scheme == CC69
        assert meta.replica_blocks == []
        assert np.array_equal(fs.read_file("f"), data)

    def test_scheduled_convertible_transcode_runs_via_heartbeats(self):
        fs, data = hybrid_fs(n_kb=192)
        fs.transcode("f", CC69)
        fs.schedule_transcode(
            "f", ECScheme(CodeKind.CC, 12, 15), deadline=fs.clock + 60.0
        )
        assert fs.namenode.utm["f"].deadline == pytest.approx(fs.clock + 60.0)
        monitor = HeartbeatMonitor(fs)
        for _ in range(10):
            monitor.tick()
            if not fs.namenode.utm:
                break
        assert not fs.namenode.utm
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 12, 15)
        assert np.array_equal(fs.read_file("f"), data)

    def test_repair_task_skips_if_node_returns_before_execution(self):
        fs, data = hybrid_fs()
        fs.scheduler = MaintenanceScheduler(
            fs, SchedulerPolicy(disk_bytes_per_tick=1 * KB)
        )
        for node_id in fs.datanodes:
            fs.scheduler.budgets.charge(node_id, disk_bytes=1e12)
        monitor = HeartbeatMonitor(fs, HeartbeatConfig(dead_after_missed=1))
        victim = fs.namenode.lookup("f").stripes[0].data[0].node_id
        kill(fs, victim)
        monitor.tick()  # declares dead; repairs blocked on budget
        assert fs.scheduler.has_pending()
        fs.cluster.recover_node(victim)
        fs.datanodes[victim].recover()
        # Lift the throttle so the queued tasks actually execute.
        fs.scheduler.policy = SchedulerPolicy()
        fs.scheduler.budgets = MaintenanceScheduler(fs).budgets
        report = monitor.tick()
        assert report.chunks_recovered == 0  # everything skipped, not repaired
        assert all(
            t.result == "skipped" for t in report.scheduler.executed
        )


class TestPriorityResource:
    def test_lower_priority_value_granted_first(self):
        env = Environment()
        disk = PriorityResource(env)
        grants = []

        def holder():
            req = disk.request(priority=0)
            yield req
            yield env.timeout(1.0)
            disk.release(req)

        def waiter(name, prio):
            yield env.timeout(0.1)  # queue while held
            req = disk.request(priority=prio)
            yield req
            grants.append(name)
            yield env.timeout(0.1)
            disk.release(req)

        env.process(holder())
        env.process(waiter("background", 10))
        env.process(waiter("foreground", 0))
        env.run()
        assert grants == ["foreground", "background"]

    def test_fifo_within_equal_priority(self):
        env = Environment()
        disk = PriorityResource(env)
        grants = []

        def holder():
            req = disk.request()
            yield req
            yield env.timeout(1.0)
            disk.release(req)

        def waiter(name):
            yield env.timeout(0.1)
            req = disk.request(priority=5)
            yield req
            grants.append(name)
            disk.release(req)

        env.process(holder())
        for name in ("first", "second", "third"):
            env.process(waiter(name))
        env.run()
        assert grants == ["first", "second", "third"]
