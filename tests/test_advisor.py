"""CC-friendly parameter advisor (§5.2 heuristics)."""

import pytest

from repro.codes.costmodel import convertible_cost
from repro.core.advisor import SchemeAdvisor


class TestSuggestions:
    def test_paper_example_prefers_24_over_27(self):
        """EC(6,9) -> EC(27,30): the advisor should steer to EC(24,27)."""
        advisor = SchemeAdvisor()
        best = advisor.suggest(6, 3, 27, 3)
        assert best.k % 6 == 0  # integral multiple of the initial width
        assert best.transcode_io < convertible_cost(6, 3, 27, 3).disk_io
        # The paper quotes ~40% with a more conservative general-regime
        # cost; our general regime already exploits derivation, so the gap
        # narrows but the integral multiple still wins clearly.
        improvement = advisor.improvement_over_request(6, 3, 27, 3)
        assert improvement is not None and improvement > 0.05

    def test_integral_multiple_always_wins_nearby(self):
        advisor = SchemeAdvisor()
        for k_req in (11, 13, 17, 25):
            best = advisor.suggest(6, 3, k_req, 3)
            assert best.k % 6 == 0

    def test_cc_friendly_request_stays_cc_friendly(self):
        advisor = SchemeAdvisor()
        best = advisor.suggest(6, 3, 12, 3)
        # Wider integral multiples amortize parity writes even better, so
        # the top pick may exceed the request — but it must stay a clean
        # merge target and never cost more than the request.
        assert best.k % 6 == 0
        assert best.transcode_io <= convertible_cost(6, 3, 12, 3).disk_io

    def test_keeps_parity_count_when_possible(self):
        advisor = SchemeAdvisor(max_extra_parities=1)
        best = advisor.suggest(6, 3, 18, 3)
        assert best.r == 3  # adding a parity would force vector codes

    def test_candidates_sorted_by_cost(self):
        advisor = SchemeAdvisor()
        cands = advisor.candidates(6, 3, 18, 3)
        costs = [c.transcode_io for c in cands]
        assert costs == sorted(costs)

    def test_candidate_metadata(self):
        advisor = SchemeAdvisor()
        cands = advisor.candidates(6, 3, 12, 3)
        requested = [c for c in cands if c.is_requested]
        assert len(requested) == 1
        assert requested[0].n == 15
        assert requested[0].storage_overhead == pytest.approx(15 / 12)

    def test_durability_never_silently_reduced_below_request_minus_one(self):
        advisor = SchemeAdvisor()
        for cand in advisor.candidates(6, 3, 24, 3):
            assert cand.fault_tolerance >= 2
