"""Journal record codec, log mechanics and snapshot compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication
from repro.dfs.blocks import (
    ChunkKind,
    ChunkMeta,
    ECStripeMeta,
    FileMeta,
    FileState,
    ReplicaBlockMeta,
)
from repro.dfs.journal import (
    Journal,
    JournalError,
    JournaledNamenode,
    Op,
    decode_file,
    decode_job,
    encode_file,
    encode_job,
    encode_state,
    load_state,
    state_digest,
)
from repro.dfs.namenode import ConversionGroup, Namenode, TranscodeJob

# -- strategies ---------------------------------------------------------------

names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)
ec_schemes = st.builds(
    lambda kind, k, r: ECScheme(kind, k, k + r),
    kind=st.sampled_from([CodeKind.RS, CodeKind.CC]),
    k=st.integers(1, 12), r=st.integers(1, 4),
)
schemes = st.one_of(
    ec_schemes,
    st.builds(Replication, copies=st.integers(1, 3)),
    st.builds(HybridScheme, copies=st.integers(1, 3), ec=ec_schemes),
)
chunks = st.builds(
    ChunkMeta,
    chunk_id=names, node_id=names,
    kind=st.sampled_from(list(ChunkKind)), size=st.integers(0, 1 << 20),
)
stripes = st.builds(
    lambda i, data, parities: ECStripeMeta(
        stripe_index=i, k=len(data), n=len(data) + len(parities),
        data=data, parities=parities,
    ),
    i=st.integers(0, 7),
    data=st.lists(chunks, min_size=1, max_size=4),
    parities=st.lists(chunks, max_size=3),
)
blocks = st.builds(
    ReplicaBlockMeta,
    block_index=st.integers(0, 7), first_chunk=st.integers(0, 64),
    n_chunks=st.integers(1, 8), copies=st.lists(chunks, max_size=3),
)
file_metas = st.builds(
    FileMeta,
    name=names, size=st.integers(0, 1 << 30), chunk_size=st.integers(1, 1 << 16),
    scheme=schemes,
    stripes=st.lists(stripes, max_size=3),
    replica_blocks=st.lists(blocks, max_size=2),
    state=st.sampled_from(list(FileState)),
    version=st.integers(0, 9),
)
groups = st.builds(
    ConversionGroup,
    file_name=names, group_index=st.integers(0, 7),
    initial_stripe_indices=st.lists(st.integers(0, 15), max_size=4),
    n_final_stripes=st.integers(1, 4), target_scheme=schemes,
)
jobs = st.builds(
    TranscodeJob,
    file_name=names, target_scheme=schemes,
    groups=st.lists(groups, max_size=3),
    pending_bits=st.integers(0, (1 << 24) - 1),
    total_bits=st.integers(0, 24),
    new_stripes=st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), stripes, max_size=3
    ),
    deadline=st.one_of(
        st.none(), st.floats(allow_nan=False, allow_infinity=False)
    ),
)


# -- codec round-trips --------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(file_metas)
def test_file_record_roundtrip(meta):
    doc = encode_file(meta)
    back = decode_file(doc)
    assert encode_file(back) == doc
    assert back.name == meta.name and back.scheme == meta.scheme
    assert back.state is meta.state and back.version == meta.version
    assert [c.chunk_id for s in back.stripes for c in s.data] == [
        c.chunk_id for s in meta.stripes for c in s.data
    ]


@settings(max_examples=100, deadline=None)
@given(jobs)
def test_job_record_roundtrip(job):
    doc = encode_job(job)
    back = decode_job(doc)
    assert encode_job(back) == doc
    assert back.pending_bits == job.pending_bits
    assert back.deadline == job.deadline
    assert sorted(back.new_stripes) == sorted(job.new_stripes)


def test_lrc_scheme_roundtrip():
    from repro.dfs.journal import decode_scheme, encode_scheme

    s = ECScheme(CodeKind.LRC, 12, 16, local_groups=2, r_global=2)
    assert decode_scheme(encode_scheme(s)) == s


@settings(max_examples=40, deadline=None)
@given(
    st.lists(file_metas, max_size=5, unique_by=lambda m: m.name),
    st.integers(0, 1 << 20),
)
def test_state_roundtrip_with_inflight_transcode(metas, chunk_seq):
    """snapshot/restore through the journal's canonical state codec,
    including queued ATQ groups and a half-finished UTM job."""
    nn = Namenode()
    for meta in metas:
        nn.register_file(meta)
    nn._chunk_seq = chunk_seq
    if metas:
        meta = metas[0]
        target = ECScheme(CodeKind.CC, 12, 15)
        gs = [ConversionGroup(
            file_name=meta.name, group_index=0,
            initial_stripe_indices=list(range(len(meta.stripes))),
            n_final_stripes=1, target_scheme=target,
        )]
        nn.enqueue_transcode(meta.name, target, gs, 3)
        nn.complete_parity(meta.name, 0, 0, 0, 3)
    fresh = Namenode()
    load_state(fresh, encode_state(nn))
    assert state_digest(fresh) == state_digest(nn)
    assert list(fresh.files) == list(nn.files)
    # Derived caches were rebuilt, not copied.
    for name in fresh.files:
        assert fresh._file_order[name] > 0


# -- log mechanics ------------------------------------------------------------

def _meta(name):
    return FileMeta(name=name, size=0, chunk_size=4096,
                    scheme=ECScheme(CodeKind.CC, 6, 9))


def test_append_records_prefix_and_stats():
    j = Journal()
    j.append(Op.REGISTER, {"a": 1})
    j.append(Op.NOTE, {"b": 2})
    j.append(Op.MINT, {"c": 3})
    assert len(j) == 3
    assert [op for op, _ in j.records()] == [Op.REGISTER, Op.NOTE, Op.MINT]
    assert [p for _, p in j.prefix(2).records()] == [{"a": 1}, {"b": 2}]
    s = j.stats()
    assert s["records"] == 3 and s["appended_total"] == 3
    assert s["snapshots"] == 0 and s["records_since_snapshot"] == 3


def test_corruption_before_tail_raises():
    j = Journal()
    for i in range(4):
        j.append(Op.NOTE, {"i": i})
    raw = bytearray(j.data)
    # Flip a payload byte of the *second* record: damage that does not
    # reach EOF must be treated as corruption, not a torn tail.
    raw[j._offsets[1] + 16] ^= 0xFF
    with pytest.raises(JournalError):
        Journal()._load(bytes(raw))


def test_torn_tail_is_truncated_in_memory():
    j = Journal()
    for i in range(4):
        j.append(Op.NOTE, {"i": i})
    fresh = Journal()
    fresh._load(j.data[:-2])
    assert len(fresh) == 3


def test_future_record_version_rejected():
    import struct
    import zlib

    body = b"{}"
    rec = struct.pack("<IHHI", len(body), 99, int(Op.NOTE), zlib.crc32(body)) + body
    with pytest.raises(JournalError):
        Journal()._load(rec)


def test_file_backed_journal_reopens(tmp_path):
    path = tmp_path / "edits.log"
    nn = JournaledNamenode(journal=Journal(path))
    nn.register_file(_meta("a"))
    nn.next_chunk_ids("a/s0d", 6)
    nn.rename("a", "b")
    nn.journal.close()
    recovered = JournaledNamenode.recover(Journal(path))
    assert sorted(recovered.files) == ["b"]
    assert recovered._chunk_seq == nn._chunk_seq
    assert state_digest(recovered) == state_digest(nn)
    assert recovered.replayed == 3


def test_mint_replay_advances_sequence():
    nn = JournaledNamenode()
    nn.next_chunk_id("x")
    nn.next_chunk_ids("y", 7)
    recovered = JournaledNamenode.recover(nn.journal)
    assert recovered._chunk_seq == 8
    assert recovered.next_chunk_id("z") == nn.next_chunk_id("z")


def test_auto_compaction_folds_log_to_snapshot():
    nn = JournaledNamenode(compact_every=4)
    for i in range(10):
        nn.register_file(_meta(f"f{i}"))
    s = nn.journal.stats()
    assert s["snapshots"] == 1
    assert s["records"] < 10
    assert s["records_since_snapshot"] == s["records"] - 1
    recovered = JournaledNamenode.recover(nn.journal)
    assert state_digest(recovered) == state_digest(nn)


def test_manual_compaction_single_record(tmp_path):
    path = tmp_path / "edits.log"
    nn = JournaledNamenode(journal=Journal(path))
    for i in range(6):
        nn.register_file(_meta(f"f{i}"))
    nn.unregister_file("f3")
    before = state_digest(nn)
    nn.compact()
    assert len(nn.journal) == 1
    assert [op for op, _ in nn.journal.records()] == [Op.SNAPSHOT]
    nn.journal.close()
    recovered = JournaledNamenode.recover(Journal(path))
    assert state_digest(recovered) == before


def test_batch_register_is_atomic_in_the_journal():
    nn = JournaledNamenode()
    nn.register_file(_meta("dup"))
    with pytest.raises(ValueError):
        nn.register_files([_meta("x"), _meta("dup")])
    # Failed batch: nothing applied, nothing journaled.
    assert "x" not in nn.files
    recovered = JournaledNamenode.recover(nn.journal)
    assert state_digest(recovered) == state_digest(nn)


def test_metadata_stats_reports_journal_counters():
    nn = JournaledNamenode()
    nn.register_file(_meta("a"))
    stats = nn.metadata_stats()
    assert stats["files"] == 1
    assert stats["journal_records"] == 1
    assert stats["journal_bytes"] > 0
    assert stats["replayed"] == 0
