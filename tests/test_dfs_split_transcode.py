"""Native split and general-regime transcodes through the DFS.

The paper's conversions are any-to-any; the DFS exercises merges in the
macrobenchmarks, but the split (wide -> narrow, e.g. re-heating cold
data) and general regimes must also work natively end to end.
"""

import numpy as np
import pytest

from repro.codes.costmodel import convertible_cost
from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS

KB = 1024


def fs_with_cc_file(k, n, n_stripes, widths, seed=1):
    fs = MorphFS(chunk_size=4 * KB, future_widths=list(widths))
    data = np.random.default_rng(seed).integers(
        0, 256, k * n_stripes * 4 * KB, dtype=np.uint8
    )
    fs.write_file("f", data, ECScheme(CodeKind.CC, k, n))
    return fs, data


class TestSplitRegime:
    def test_split_12_to_6(self):
        fs, data = fs_with_cc_file(12, 15, 2, widths=[12, 6])
        read0 = fs.metrics.disk_bytes_read
        fs.transcode("f", ECScheme(CodeKind.CC, 6, 9))
        # Split reads (k_I - k_F) data + r parities per initial stripe.
        cost = convertible_cost(12, 3, 6, 3)
        expected = cost.read * len(data)
        assert fs.metrics.disk_bytes_read - read0 == pytest.approx(expected)
        meta = fs.namenode.lookup("f")
        assert [s.k for s in meta.stripes] == [6, 6, 6, 6]
        assert np.array_equal(fs.read_file("f"), data)

    def test_split_then_merge_roundtrip(self):
        """Down-shift then up-shift; stripes stay byte-consistent."""
        fs, data = fs_with_cc_file(12, 15, 2, widths=[12, 6])
        fs.transcode("f", ECScheme(CodeKind.CC, 6, 9))
        fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))
        meta = fs.namenode.lookup("f")
        assert [s.k for s in meta.stripes] == [12, 12]
        assert np.array_equal(fs.read_file("f"), data)
        # Final parities byte-match a direct encode.
        code = fs.cc_codec(12, 15)
        for stripe in meta.stripes:
            chunks = [fs.datanodes[c.node_id].read(c.chunk_id) for c in stripe.data]
            expected = code.encode(chunks)
            for j, parity in enumerate(stripe.parities):
                stored = fs.datanodes[parity.node_id].read(parity.chunk_id)
                assert np.array_equal(stored, expected[j])

    def test_degraded_read_after_split(self):
        fs, data = fs_with_cc_file(12, 15, 2, widths=[12, 6])
        fs.transcode("f", ECScheme(CodeKind.CC, 6, 9))
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[2].data[1].node_id
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)


class TestGeneralRegime:
    def test_general_6_to_15(self):
        """5 stripes of CC(6,9) -> 2 stripes of CC(15,18), natively."""
        fs, data = fs_with_cc_file(6, 9, 5, widths=[6, 15])
        read0 = fs.metrics.disk_bytes_read
        fs.transcode("f", ECScheme(CodeKind.CC, 15, 18))
        # 18 chunk reads per 30-chunk span (the paper's 40% saving). The
        # 23-node cluster cannot hold a k* = lcm(6,15) = 30 window, so a
        # couple of collision relocations may add reads — still far below
        # the 30-chunk RS baseline.
        reads = fs.metrics.disk_bytes_read - read0
        assert 18 * 4 * KB <= reads <= 24 * 4 * KB
        meta = fs.namenode.lookup("f")
        assert [s.k for s in meta.stripes] == [15, 15]
        assert np.array_equal(fs.read_file("f"), data)

    def test_general_with_tail(self):
        """7 stripes of CC(6,9) -> two 15-wide + one 12-wide tail."""
        fs, data = fs_with_cc_file(6, 9, 7, widths=[6, 15])
        fs.transcode("f", ECScheme(CodeKind.CC, 15, 18))
        meta = fs.namenode.lookup("f")
        assert [s.k for s in meta.stripes] == [15, 15, 12]
        assert np.array_equal(fs.read_file("f"), data)

    def test_hybrid_to_general_target(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 15])
        data = np.random.default_rng(5).integers(0, 256, 120 * KB, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        fs.transcode("f", ECScheme(CodeKind.CC, 15, 18))
        assert np.array_equal(fs.read_file("f"), data)
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 15, 18)
