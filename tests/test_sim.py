"""Performance-simulation shape properties (Figs 3, 13, 14, 15)."""

import pytest

from repro.sim import protocols as P
from repro.sim.cluster import SimCluster
from repro.sim.workload import ClosedLoopWorkload, percentile

MB = 1024 * 1024


def run(op, t=12, ops=40, size=8 * MB, seed=42, fail=0.0):
    sim = SimCluster(seed=seed)
    if fail:
        sim.fail_fraction(fail)
    wl = ClosedLoopWorkload(sim, op, n_threads=t, ops_per_thread=ops, op_bytes=size)
    return wl.run()


class TestWriteShapes:
    def test_hybrid_matches_3r(self):
        """Identical client path; tolerance covers seed-to-seed noise."""
        r3 = run(lambda s: P.write_replicated(s, 8 * MB, 3), ops=80)
        hy = run(lambda s: P.write_hybrid(s, 8 * MB, 6, 9, 1), ops=80)
        assert hy.p(50) == pytest.approx(r3.p(50), rel=0.08)
        assert hy.p(90) == pytest.approx(r3.p(90), rel=0.15)

    def test_rs_write_much_slower(self):
        r3 = run(lambda s: P.write_replicated(s, 8 * MB, 3))
        rs = run(lambda s: P.write_rs(s, 8 * MB, 6, 9))
        assert rs.p(50) > 3 * r3.p(50)  # paper: ~6x at median
        assert rs.p(90) > 3 * r3.p(90)  # paper: ~4x at p90

    def test_3r_p90_near_paper_anchor(self):
        r3 = run(lambda s: P.write_replicated(s, 8 * MB, 3), ops=80)
        assert 0.120 < r3.p(90) < 0.280  # paper: 191 ms

    def test_rs_p90_near_paper_anchor(self):
        rs = run(lambda s: P.write_rs(s, 8 * MB, 6, 9), ops=80)
        assert 0.500 < rs.p(90) < 1.000  # paper: 732 ms

    def test_hy2_same_shape_as_hy1(self):
        h1 = run(lambda s: P.write_hybrid(s, 8 * MB, 6, 9, 1))
        h2 = run(lambda s: P.write_hybrid(s, 8 * MB, 6, 9, 2))
        assert h2.p(50) == pytest.approx(h1.p(50), rel=0.05)


class TestWriteThroughput:
    def test_hybrid_streaming_tput_matches_3r(self):
        r3 = run(lambda s: P.write_replicated(s, 120 * MB, 3), ops=20, size=120 * MB)
        hy = run(lambda s: P.write_hybrid(s, 120 * MB, 6, 9, 1), ops=20, size=120 * MB)
        assert hy.throughput_mb_s == pytest.approx(r3.throughput_mb_s, rel=0.05)

    def test_rs_streaming_tput_slightly_lower(self):
        hy = run(lambda s: P.write_hybrid(s, 120 * MB, 6, 9, 1), ops=20, size=120 * MB)
        rs = run(lambda s: P.write_rs_streaming(s, 120 * MB, 6, 9), ops=20, size=120 * MB)
        assert rs.throughput_mb_s < hy.throughput_mb_s
        assert rs.throughput_mb_s > 0.7 * hy.throughput_mb_s  # paper: ~6%


class TestReadShapes:
    def test_hybrid_read_close_to_3r(self):
        r3 = run(lambda s: P.read_replica_hedged(s, 8 * MB, 3))
        hy = run(lambda s: P.read_replica_hedged(s, 8 * MB, 1, stripe_k=6, stripe_n=9))
        assert hy.p(50) == pytest.approx(r3.p(50), rel=0.15)

    def test_load_increases_latency(self):
        low = run(lambda s: P.read_replica_hedged(s, 8 * MB, 3), t=12)
        high = run(lambda s: P.read_replica_hedged(s, 8 * MB, 3), t=40)
        assert high.p(90) > low.p(90)

    def test_degraded_cluster_hurts_rs_most(self):
        r3 = run(lambda s: P.read_replica_hedged(s, 8 * MB, 3), t=25)
        r3d = run(lambda s: P.read_replica_hedged(s, 8 * MB, 3), t=25, fail=0.1)
        rs = run(lambda s: P.read_striped(s, 8 * MB, 6, 9), t=25)
        rsd = run(
            lambda s: P.read_striped(s, 8 * MB, 6, 9, unavailable_fraction=0.1),
            t=25, fail=0.1)
        r3_hit = r3d.p(90) / r3.p(90)
        rs_hit = rsd.p(90) / rs.p(90)
        assert rs_hit > r3_hit  # RS suffers more in degraded mode

    def test_striped_scan_beats_replica_scan(self):
        rep = run(lambda s: P.read_large_scan(s, 48 * MB, 6, 9, False), ops=20, size=48 * MB)
        stp = run(lambda s: P.read_large_scan(s, 48 * MB, 6, 9, True), ops=20, size=48 * MB)
        assert stp.throughput_mb_s > 1.2 * rep.throughput_mb_s  # paper: +46-71%


class TestTranscodeShapes:
    def test_cc_merge_read_faster_than_rs(self):
        rs = run(lambda s: P.transcode_read_rs(s, 96 * MB, 12, 6), t=20, ops=5, size=96 * MB)
        cc = run(lambda s: P.transcode_read_cc(s, 96 * MB, 12, 6), t=20, ops=5, size=96 * MB)
        assert cc.p(50) < 0.75 * rs.p(50)  # paper: ~40% lower

    def test_cc_compute_half_of_rs(self):
        rs = run(lambda s: P.transcode_compute(s, 96 * MB, 12, 12, 3), t=20, ops=5, size=96 * MB)
        cc = run(lambda s: P.transcode_compute(s, 96 * MB, 12, 6, 3), t=20, ops=5, size=96 * MB)
        assert cc.p(50) == pytest.approx(0.5 * rs.p(50), rel=0.2)

    def test_vector_cc_compute_slower(self):
        rs = run(lambda s: P.transcode_compute(s, 96 * MB, 12, 12, 2), t=20, ops=5, size=96 * MB)
        cc = run(lambda s: P.transcode_compute(s, 96 * MB, 12, 14, 2, 1.8), t=20, ops=5, size=96 * MB)
        assert cc.p(50) > rs.p(50)  # paper: separating piggybacks costs


class TestHybridParityPersist:
    def test_95_percent_under_500ms(self):
        log = []
        sim = SimCluster(seed=42)
        wl = ClosedLoopWorkload(
            sim,
            lambda s: P.write_hybrid(s, 8 * MB, 6, 9, 1, parity_persist_log=log),
            n_threads=12, ops_per_thread=60, op_bytes=8 * MB)
        wl.run()
        assert log, "no parity persists logged"
        under = sum(1 for x in log if x < 0.5) / len(log)
        assert under >= 0.90  # paper: 95% within 500 ms


class TestWorkloadMachinery:
    def test_percentile_basics(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_is_monotone(self):
        res = run(lambda s: P.write_replicated(s, 8 * MB, 3), ops=20)
        xs, ys = res.cdf(points=50)
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = run(lambda s: P.write_replicated(s, 8 * MB, 3), seed=7, ops=20)
        b = run(lambda s: P.write_replicated(s, 8 * MB, 3), seed=7, ops=20)
        assert a.latencies == b.latencies
