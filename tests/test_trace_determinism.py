"""Trace generators must be pure functions of their seed.

Experiments seed these generators so figures regenerate byte-identically
across runs and machines; any hidden global-RNG use would silently break
reproducibility. Same seed -> byte-identical output, different seed ->
different output.
"""

import numpy as np

from repro.traces.generator import (
    IngestGenerator,
    TransitionRateGenerator,
    four_cluster_rates,
)


def identical(a: np.ndarray, b: np.ndarray) -> bool:
    return a.tobytes() == b.tobytes()


class TestIngestGenerator:
    def test_same_seed_is_byte_identical(self):
        a = IngestGenerator(seed=42).generate(24 * 7, warmup_hours=12)
        b = IngestGenerator(seed=42).generate(24 * 7, warmup_hours=12)
        assert identical(a.values, b.values)
        assert a.start_hour == b.start_hour

    def test_generate_twice_from_one_instance_is_identical(self):
        gen = IngestGenerator(seed=3)
        assert identical(gen.generate(100).values, gen.generate(100).values)

    def test_different_seeds_differ(self):
        a = IngestGenerator(seed=1).generate(100)
        b = IngestGenerator(seed=2).generate(100)
        assert not identical(a.values, b.values)

    def test_does_not_perturb_global_numpy_rng(self):
        np.random.seed(7)
        before = np.random.random(4)
        np.random.seed(7)
        IngestGenerator(seed=9).generate(500)
        after = np.random.random(4)
        assert identical(before, after)


class TestTransitionRateGenerator:
    def test_same_seed_is_byte_identical(self):
        a = TransitionRateGenerator(seed=5).generate(24 * 7)
        b = TransitionRateGenerator(seed=5).generate(24 * 7)
        assert identical(a, b)

    def test_different_burst_seed_differs(self):
        a = TransitionRateGenerator(seed=5).generate(200)
        b = TransitionRateGenerator(seed=6).generate(200)
        assert not identical(a, b)

    def test_different_ingest_seed_differs(self):
        a = TransitionRateGenerator(ingest=IngestGenerator(seed=1), seed=5)
        b = TransitionRateGenerator(ingest=IngestGenerator(seed=2), seed=5)
        assert not identical(a.generate(200), b.generate(200))


class TestFourClusterRates:
    def test_same_seed_is_byte_identical(self):
        first = four_cluster_rates(hours=48, seed=7)
        second = four_cluster_rates(hours=48, seed=7)
        assert len(first) == len(second) == 4
        for a, b in zip(first, second):
            assert identical(a, b)

    def test_different_seeds_differ(self):
        first = four_cluster_rates(hours=48, seed=7)
        second = four_cluster_rates(hours=48, seed=8)
        assert not all(identical(a, b) for a, b in zip(first, second))

    def test_clusters_are_mutually_distinct(self):
        rates = four_cluster_rates(hours=48, seed=7)
        for i in range(len(rates)):
            for j in range(i + 1, len(rates)):
                assert not identical(rates[i], rates[j])
