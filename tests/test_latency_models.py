"""Device latency models and simulation calibration sanity."""

import numpy as np
import pytest

from repro.cluster.latency import CpuModel, DiskModel, MemoryModel, NetworkModel
from repro.sim.calibration import SimCalibration

MB = 1024 * 1024


def samples(fn, n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return np.array([fn(rng) for _ in range(n)])


class TestDiskModel:
    def test_service_time_scales_with_size(self):
        model = DiskModel()
        small = samples(lambda r: model.service_time(r, 64 * 1024)).mean()
        large = samples(lambda r: model.service_time(r, 8 * MB)).mean()
        assert large > small + 0.05  # 8 MB adds ~66 ms of transfer

    def test_heavy_tail_exists(self):
        model = DiskModel()
        arr = samples(lambda r: model.service_time(r, 1 * MB))
        assert np.percentile(arr, 99.5) > 3 * np.percentile(arr, 50)

    def test_median_positioning_time(self):
        model = DiskModel(straggler_prob=0.0)
        arr = samples(lambda r: model.service_time(r, 0))
        assert np.percentile(arr, 50) == pytest.approx(model.seek_median_s, rel=0.1)


class TestNetworkAndCpuModels:
    def test_network_transfer_time(self):
        model = NetworkModel()
        arr = samples(lambda r: model.transfer_time(r, 8 * MB))
        expected = model.rtt_s + 8 * MB / (model.bandwidth_mb_s * MB)
        assert np.median(arr) == pytest.approx(expected, rel=0.2)

    def test_cpu_encode_scales_with_width(self):
        model = CpuModel()
        narrow = samples(lambda r: model.encode_time(r, 6, 3, MB)).mean()
        wide = samples(lambda r: model.encode_time(r, 12, 3, MB)).mean()
        assert wide == pytest.approx(2 * narrow, rel=0.1)

    def test_memory_absorb(self):
        model = MemoryModel()
        arr = samples(lambda r: model.absorb_time(r, 8 * MB))
        assert arr.min() > 0


class TestCalibration:
    def test_disk_time_components(self):
        cal = SimCalibration()
        rng = np.random.default_rng(1)
        arr = np.array([cal.disk_time(rng, 8 * MB) for _ in range(2000)])
        transfer = 8 * MB / (cal.disk_bandwidth_mb_s * MB)
        assert np.median(arr) > transfer  # seek adds on top

    def test_encode_decode_asymmetry(self):
        """Decode is far slower than encode (Java HDFS codec reality)."""
        cal = SimCalibration()
        assert cal.decode_time(6, 1, MB) > 5 * cal.encode_time(6, 1, MB)

    def test_ec_read_overhead_exceeds_replica_read_overhead(self):
        cal = SimCalibration()
        rng = np.random.default_rng(2)
        ec = np.median([cal.ec_read_overhead(rng) for _ in range(2000)])
        rep = np.median([cal.read_overhead(rng) for _ in range(2000)])
        assert ec > rep

    def test_absorb_uses_pipeline_bandwidth(self):
        cal = SimCalibration()
        rng = np.random.default_rng(3)
        arr = np.array([cal.absorb_time(rng, 120 * MB) for _ in range(500)])
        floor = 120 * MB / (cal.pipeline_mb_s * MB)
        assert arr.min() > floor
