"""Bandwidth-optimal (vector / piggybacked) Convertible Codes."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.bandwidth import BandwidthOptimalCC
from repro.codes.base import DecodeError, chunks_equal
from repro.codes.convertible import ConvertibleCode


def make_stripes(code, n_stripes, chunk_len=32, seed=0):
    rng = np.random.default_rng(seed)
    stripes, alldata = [], []
    for _ in range(n_stripes):
        data = [rng.integers(0, 256, chunk_len, dtype=np.uint8) for _ in range(code.k)]
        alldata.extend(data)
        stripes.append(code.encode_stripe(data))
    return stripes, alldata


class TestConstruction:
    def test_requires_parity_growth(self):
        with pytest.raises(ValueError):
            BandwidthOptimalCC(4, 2, 2)
        with pytest.raises(ValueError):
            BandwidthOptimalCC(4, 3, 2)
        with pytest.raises(ValueError):
            BandwidthOptimalCC(4, 0, 2)

    def test_chunk_size_must_divide(self):
        code = BandwidthOptimalCC(4, 1, 2)
        data = [np.zeros(33, np.uint8)] * 4  # 33 % 2 != 0
        with pytest.raises(ValueError):
            code.encode(data)

    def test_stores_r_initial_parities(self):
        code = BandwidthOptimalCC(6, 1, 2)
        stripes, _ = make_stripes(code, 1)
        assert stripes[0].n == 7
        assert len(stripes[0].parity_chunks) == 1


class TestDecode:
    @pytest.mark.parametrize("k,r_i,r_f", [(4, 1, 2), (6, 1, 2), (4, 2, 3), (6, 3, 4)])
    def test_tolerates_all_r_initial_erasures(self, k, r_i, r_f):
        code = BandwidthOptimalCC(k, r_i, r_f, family_width=4 * k)
        stripes, _ = make_stripes(code, 1, chunk_len=r_f * 8, seed=k + r_f)
        full = stripes[0]
        for erased in combinations(range(k + r_i), r_i):
            rec = code.decode_stripe(full.erase(*erased))
            assert chunks_equal(rec.chunks, full.chunks), erased

    def test_insufficient_chunks_raises(self):
        code = BandwidthOptimalCC(4, 1, 2)
        stripes, _ = make_stripes(code, 1)
        with pytest.raises(DecodeError):
            code.decode({0: stripes[0].chunks[0]}, [1])


class TestConversion:
    @pytest.mark.parametrize(
        "k,r_i,r_f,lam", [(4, 1, 2, 2), (6, 1, 2, 2), (4, 2, 3, 2), (4, 1, 2, 3)]
    )
    def test_merge_matches_direct_encode(self, k, r_i, r_f, lam):
        code = BandwidthOptimalCC(k, r_i, r_f, family_width=lam * k)
        final = ConvertibleCode(lam * k, lam * k + r_f, family_width=lam * k)
        stripes, alldata = make_stripes(code, lam, chunk_len=r_f * 12, seed=lam)
        merged, io = code.convert_merge(stripes, final)
        direct = final.encode_stripe(alldata)
        assert chunks_equal(merged.chunks, direct.chunks)

    def test_fig8_io_accounting(self):
        # CC(4,5) -> CC(8,10): read 2 parities + half of 8 data chunks = 6
        # chunk-equivalents vs 8 for RS: 25% less (paper Fig 8).
        code = BandwidthOptimalCC(4, 1, 2, family_width=8)
        final = ConvertibleCode(8, 10, family_width=8)
        stripes, _ = make_stripes(code, 2, chunk_len=16, seed=3)
        _, io = code.convert_merge(stripes, final)
        assert io.chunks_read == pytest.approx(6.0)
        assert io.data_read_fraction == pytest.approx(0.5)

    def test_conversion_read_chunks_formula(self):
        code = BandwidthOptimalCC(4, 2, 3, family_width=12)
        # Per stripe: 2 parities + 4 * (1/3) data.
        assert code.conversion_read_chunks(3) == pytest.approx(3 * (2 + 4 / 3))

    def test_merged_stripe_decodes(self):
        code = BandwidthOptimalCC(4, 1, 2, family_width=8)
        final = ConvertibleCode(8, 10, family_width=8)
        stripes, _ = make_stripes(code, 2, chunk_len=16, seed=5)
        merged, _ = code.convert_merge(stripes, final)
        rec = final.decode_stripe(merged.erase(1, 9))
        assert chunks_equal(rec.chunks, merged.chunks)

    def test_wrong_final_params_rejected(self):
        code = BandwidthOptimalCC(4, 1, 2)
        stripes, _ = make_stripes(code, 2, chunk_len=16)
        with pytest.raises(ValueError):
            code.convert_merge(stripes, ConvertibleCode(8, 9))  # r_F mismatch

    def test_erased_chunk_blocks_conversion(self):
        code = BandwidthOptimalCC(4, 1, 2)
        final = ConvertibleCode(8, 10, family_width=8)
        stripes, _ = make_stripes(code, 2, chunk_len=16, seed=6)
        stripes[0] = stripes[0].erase(2)
        with pytest.raises(DecodeError):
            code.convert_merge(stripes, final)


class TestHopAndCouple:
    def test_conversion_reads_are_tail_contiguous(self):
        """The data fraction read during conversion is the chunk's tail.

        Hop-and-couple (§6.1): the pre-computed piggybacks cover the
        *early* substripes precisely so the conversion-time read is one
        contiguous range — substripes r_I..r_F-1, i.e. bytes
        [r_I/r_F * L, L) of every data chunk.
        """
        code = BandwidthOptimalCC(4, 1, 2, family_width=8)
        final = ConvertibleCode(8, 10, family_width=8)
        stripes, alldata = make_stripes(code, 2, chunk_len=16, seed=7)
        # Zero out the head (unread) halves of all data chunks; parities
        # and tails must suffice to produce correct *tail* substripes of
        # final parities, proving only the tail is consumed from data.
        merged_ref, _ = code.convert_merge(stripes, final)
        for s in stripes:
            for t in range(4):
                s.chunks[t] = s.chunks[t].copy()
                s.chunks[t][:8] = 0  # corrupt the head half
        merged_corrupt, _ = code.convert_merge(stripes, final)
        # Every final parity must be unaffected: the stored parities carry
        # the head information, so conversion never reads the heads.
        for j in (8, 9):
            assert np.array_equal(merged_ref.chunks[j], merged_corrupt.chunks[j])
