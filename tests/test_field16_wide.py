"""GF(2^16) field and wide convertible codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.wide import (
    MAX_WIDTH_16,
    WideConvertibleCode,
    wide_family_points,
)
from repro.gf.field16 import (
    FIELD_ORDER_16,
    bytes_to_symbols,
    gf16_batch_det,
    gf16_inv,
    gf16_matinv,
    gf16_matmul,
    gf16_mul,
    gf16_pow,
    symbols_to_bytes,
)

el16 = st.integers(min_value=0, max_value=65535)
nz16 = st.integers(min_value=1, max_value=65535)


class TestField16:
    @settings(max_examples=50, deadline=None)
    @given(el16, el16, el16)
    def test_distributive(self, a, b, c):
        left = gf16_mul(a, b ^ c)
        right = gf16_mul(a, b) ^ gf16_mul(a, c)
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(nz16)
    def test_inverse(self, a):
        assert gf16_mul(a, gf16_inv(a)) == 1

    def test_zero_handling(self):
        assert gf16_mul(0, 12345) == 0
        with pytest.raises(ZeroDivisionError):
            gf16_inv(0)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 65536, 200, dtype=np.uint16)
        b = rng.integers(0, 65536, 200, dtype=np.uint16)
        out = gf16_mul(a, b)
        for i in range(0, 200, 17):
            assert out[i] == gf16_mul(int(a[i]), int(b[i]))

    def test_pow_negative(self):
        for a in (1, 2, 54321):
            assert gf16_mul(gf16_pow(a, -1), a) == 1

    def test_generator_order(self):
        # g^order == 1 and g^(order/p) != 1 for small prime factors.
        assert gf16_pow(2, FIELD_ORDER_16) == 1
        for p in (3, 5, 17, 257):
            assert gf16_pow(2, FIELD_ORDER_16 // p) != 1

    def test_matinv_roundtrip(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 65536, (6, 6), dtype=np.uint16)
        try:
            inv = gf16_matinv(a)
        except Exception:
            return
        eye = gf16_matmul(a, inv)
        assert np.array_equal(eye, np.eye(6, dtype=np.uint16))

    def test_batch_det_detects_singularity(self):
        singular = np.array([[[1, 2], [1, 2]]], dtype=np.uint16)
        regular = np.array([[[1, 0], [0, 1]]], dtype=np.uint16)
        assert gf16_batch_det(singular)[0] == 0
        assert gf16_batch_det(regular)[0] == 1


class TestSymbolPacking:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 300), st.integers(0, 1000))
    def test_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, n, dtype=np.uint8)
        assert np.array_equal(symbols_to_bytes(bytes_to_symbols(data), n), data)

    def test_odd_length_padded(self):
        symbols = bytes_to_symbols(np.array([1, 2, 3], dtype=np.uint8))
        assert len(symbols) == 2


class TestWideFamilies:
    def test_curated_chain_verified(self):
        for r in (2, 3, 4, 5):
            points = wide_family_points(r, MAX_WIDTH_16[r])
            assert len(set(points)) == r

    def test_nested_prefixes(self):
        p3 = wide_family_points(3, 64)
        p5 = wide_family_points(5, 64)
        assert p5[:3] == p3

    def test_width_ceiling_enforced(self):
        with pytest.raises(ValueError):
            wide_family_points(5, 200)
        with pytest.raises(ValueError):
            wide_family_points(7, 10)


class TestWideConvertibleCode:
    def _encode(self, code, seed=0, chunk_len=32):
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 256, chunk_len, dtype=np.uint8) for _ in range(code.k)]
        return data, code.encode(data)

    def test_erasure_decode_wide(self):
        code = WideConvertibleCode(34, 37, family_width=34)
        data, parities = self._encode(code, seed=2)
        avail = {i: data[i] for i in range(34) if i not in (3, 20, 33)}
        avail.update({34 + j: parities[j] for j in range(3)})
        rec = code.decode(avail, [3, 20, 33])
        for i in (3, 20, 33):
            assert np.array_equal(rec[i], data[i])

    def test_parity_reconstruction(self):
        code = WideConvertibleCode(10, 14, family_width=40)
        data, parities = self._encode(code, seed=3)
        avail = {i: data[i] for i in range(10)}
        rec = code.decode(avail, [10, 12, 13])
        for j in (0, 2, 3):
            assert np.array_equal(rec[10 + j], parities[j])

    def test_paper_17_to_34_merge(self):
        """EC(17,20) -> EC(34,37): >80% read saving (paper Appendix A)."""
        rng = np.random.default_rng(4)
        cc17 = WideConvertibleCode(17, 20, family_width=34)
        cc34 = WideConvertibleCode(34, 37, family_width=34)
        all_parities, alldata = [], []
        for _ in range(2):
            data = [rng.integers(0, 256, 48, dtype=np.uint8) for _ in range(17)]
            alldata.extend(data)
            all_parities.append(cc17.encode(data))
        merged = cc17.merge_parities(cc34, all_parities)
        direct = cc34.encode(alldata)
        assert all(np.array_equal(a, b) for a, b in zip(merged, direct))
        # reads: 2 stripes x 3 parities = 6 vs 34 data chunks.
        assert 1 - 6 / 34 > 0.80

    def test_wide_r5_merge(self):
        rng = np.random.default_rng(5)
        small = WideConvertibleCode(16, 21, family_width=80)
        big = WideConvertibleCode(80, 85, family_width=80)
        parities, alldata = [], []
        for _ in range(5):
            data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(16)]
            alldata.extend(data)
            parities.append(small.encode(data))
        merged = small.merge_parities(big, parities)
        direct = big.encode(alldata)
        assert all(np.array_equal(a, b) for a, b in zip(merged, direct))

    def test_merge_validation(self):
        small = WideConvertibleCode(8, 11, family_width=16)
        wrong = WideConvertibleCode(17, 20, family_width=17)
        with pytest.raises(ValueError):
            small.merge_parities(wrong, [[np.zeros(4, np.uint8)] * 3] * 2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WideConvertibleCode(0, 4)
