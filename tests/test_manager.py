"""Age-driven lifetime management."""

import numpy as np
import pytest

from repro.core.lifecycle import morph_macrobench_policy, morph_microbench_policy
from repro.core.manager import LifetimeManager
from repro.core.schemes import CodeKind, ECScheme
from repro.dfs import MorphFS

KB = 1024


def managed_fs(policy, n_kb=96, seed=1):
    widths = policy.ec_widths()
    fs = MorphFS(chunk_size=4 * KB, future_widths=widths)
    manager = LifetimeManager(fs)
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, policy.stages[0].scheme)
    manager.register("f", policy)
    return fs, manager, data


class TestLifetimeManager:
    def test_no_transitions_before_first_boundary(self):
        policy = morph_microbench_policy(t1=100, t2=200)
        fs, manager, data = managed_fs(policy)
        fs.clock = 50
        report = manager.tick()
        assert report.transitions == []
        assert manager.stage_of("f") == 0

    def test_transitions_follow_schedule(self):
        policy = morph_microbench_policy(t1=100, t2=200)
        fs, manager, data = managed_fs(policy)
        fs.clock = 150
        report = manager.tick()
        assert len(report.transitions) == 1
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 6, 9)
        fs.clock = 250
        manager.tick()
        assert fs.namenode.lookup("f").scheme == ECScheme(CodeKind.CC, 12, 15)
        assert np.array_equal(fs.read_file("f"), data)

    def test_catchup_is_one_stage_per_tick(self):
        """A file far behind schedule advances sequentially, not at once."""
        policy = morph_microbench_policy(t1=100, t2=200)
        fs, manager, data = managed_fs(policy)
        fs.clock = 10_000  # way past both boundaries
        manager.tick()
        assert manager.stage_of("f") == 1
        manager.tick()
        assert manager.stage_of("f") == 2
        assert np.array_equal(fs.read_file("f"), data)

    def test_run_until_drives_full_chain(self):
        policy = morph_macrobench_policy()
        fs, manager, data = managed_fs(policy, n_kb=160)
        manager.run_until(end_clock=1000, tick_interval=30)
        meta = fs.namenode.lookup("f")
        assert meta.scheme == ECScheme(CodeKind.CC, 20, 23)
        assert np.array_equal(fs.read_file("f"), data)

    def test_many_files_staggered(self):
        policy = morph_microbench_policy(t1=100, t2=200)
        widths = policy.ec_widths()
        fs = MorphFS(chunk_size=4 * KB, future_widths=widths)
        manager = LifetimeManager(fs)
        rng = np.random.default_rng(5)
        datasets = {}
        for i in range(4):
            name = f"f{i}"
            fs.clock = i * 60.0
            data = rng.integers(0, 256, 48 * KB, dtype=np.uint8)
            fs.write_file(name, data, policy.stages[0].scheme)
            manager.register(name, policy)
            datasets[name] = data
        fs.clock = 310.0
        manager.tick()  # files advance according to their own ages
        stages = [manager.stage_of(f"f{i}") for i in range(4)]
        assert stages == sorted(stages, reverse=True)
        for name, data in datasets.items():
            assert np.array_equal(fs.read_file(name), data)

    def test_register_requires_existing_file(self):
        fs = MorphFS(chunk_size=4 * KB, future_widths=[6])
        manager = LifetimeManager(fs)
        with pytest.raises(KeyError):
            manager.register("ghost", morph_microbench_policy())

    def test_double_register_rejected(self):
        policy = morph_microbench_policy()
        fs, manager, data = managed_fs(policy)
        with pytest.raises(ValueError):
            manager.register("f", policy)

    def test_unregister_stops_management(self):
        policy = morph_microbench_policy(t1=100, t2=200)
        fs, manager, data = managed_fs(policy)
        manager.unregister("f")
        fs.clock = 500
        report = manager.tick()
        assert report.transitions == []
