"""Block metadata helpers, client error paths, Namenode restart."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS
from repro.dfs.blocks import FileState
from repro.dfs.client import ReadError
from repro.dfs.namenode import Namenode

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def hybrid_fs(n_kb=96, seed=1):
    fs = MorphFS(chunk_size=4 * KB, future_widths=[6, 12])
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, CC69))
    return fs, data


class TestFileMetaHelpers:
    def test_hybrid_blocks_nest_correct_replicas(self):
        fs, _ = hybrid_fs()
        meta = fs.namenode.lookup("f")
        for hb in meta.hybrid_blocks():
            first = hb.stripe.stripe_index * hb.stripe.k
            for block in hb.replicas:
                assert block.first_chunk < first + hb.stripe.k
                assert block.first_chunk + block.n_chunks > first

    def test_chunk_by_id(self):
        fs, _ = hybrid_fs()
        meta = fs.namenode.lookup("f")
        target = meta.stripes[1].parities[2]
        assert meta.chunk_by_id(target.chunk_id) is target
        assert meta.chunk_by_id("nope") is None

    def test_all_chunks_counts(self):
        fs, _ = hybrid_fs(n_kb=96)  # 24 chunks -> 4 stripes of CC(6,9)
        meta = fs.namenode.lookup("f")
        # 4 stripes x 9 + 4 replica blocks x 1 copy.
        assert len(meta.all_chunks()) == 4 * 9 + 4

    def test_n_data_chunks(self):
        fs, _ = hybrid_fs(n_kb=96)
        meta = fs.namenode.lookup("f")
        assert meta.n_data_chunks == 24

    def test_is_hybrid_flag(self):
        fs, _ = hybrid_fs()
        meta = fs.namenode.lookup("f")
        assert meta.is_hybrid
        fs.transcode("f", CC69)
        assert not meta.is_hybrid


class TestClientErrorPaths:
    def test_read_beyond_eof(self):
        fs, data = hybrid_fs()
        with pytest.raises(ValueError):
            fs.read_file("f", offset=len(data), length=1)

    def test_zero_length_read(self):
        fs, data = hybrid_fs()
        out = fs.read_file("f", offset=100, length=0)
        assert len(out) == 0

    def test_replication_file_with_all_copies_dead(self):
        from repro.core.schemes import Replication
        from repro.dfs import BaselineDFS

        fs = BaselineDFS(chunk_size=4 * KB)
        data = np.random.default_rng(2).integers(0, 256, 16 * KB, dtype=np.uint8)
        fs.write_file("r", data, Replication(2))
        meta = fs.namenode.lookup("r")
        for copy in meta.replica_blocks[0].copies:
            fs.cluster.fail_node(copy.node_id)
            fs.datanodes[copy.node_id].fail()
        with pytest.raises(ReadError):
            fs.read_file("r")

    def test_unaligned_cross_stripe_range(self):
        fs, data = hybrid_fs(n_kb=96)
        # Range straddling two stripes, offset mid-chunk.
        out = fs.read_file("f", offset=23 * KB, length=26 * KB, prefer_striped=True)
        assert np.array_equal(out, data[23 * KB : 49 * KB])


class TestNamenodeRestart:
    def test_snapshot_restore_roundtrip(self):
        fs, data = hybrid_fs()
        snap = fs.namenode.snapshot()
        fs.namenode = Namenode.restore(snap)
        assert np.array_equal(fs.read_file("f"), data)

    def test_restart_mid_transcode_drops_utm_keeps_files(self):
        fs, data = hybrid_fs(n_kb=192)
        fs.transcode("f", CC69)
        target = ECScheme(CodeKind.CC, 12, 15)
        groups, parities = fs._build_groups(fs.namenode.lookup("f"), target)
        fs.namenode.enqueue_transcode("f", target, groups, parities)
        for g in fs.namenode.poll_work(2):
            fs.transcoder.execute_group(g)
        assert fs.namenode.lookup("f").state is FileState.TRANSCODING
        # Crash + restart from the durable namespace.
        fs.namenode = Namenode.restore(fs.namenode.snapshot())
        meta = fs.namenode.lookup("f")
        assert meta.state is FileState.HEALTHY
        assert meta.scheme == CC69  # old metadata authoritative
        assert np.array_equal(fs.read_file("f"), data)
        # Re-run the whole conversion cleanly.
        fs.transcode("f", target)
        assert fs.namenode.lookup("f").scheme == target
        assert np.array_equal(fs.read_file("f"), data)

    def test_chunk_ids_stay_unique_after_restart(self):
        fs, data = hybrid_fs()
        before = fs.namenode.next_chunk_id("x")
        fs.namenode = Namenode.restore(fs.namenode.snapshot())
        after = fs.namenode.next_chunk_id("x")
        assert before != after
