"""Durability analysis: the quantitative case for hybrid redundancy."""

import pytest

from repro.core.durability import (
    FailureEnvironment,
    annual_loss_probability,
    durability_table,
    mttdl_hours,
    nines,
)
from repro.core.schemes import CodeKind, ECScheme, HybridScheme, Replication


class TestMttdl:
    def test_more_tolerance_lives_longer(self):
        env = FailureEnvironment()
        single = mttdl_hours(Replication(1), env)
        double = mttdl_hours(Replication(2), env)
        triple = mttdl_hours(Replication(3), env)
        assert single < double < triple

    def test_unprotected_mttdl_is_disk_lifetime(self):
        env = FailureEnvironment(afr=0.02)
        # One copy, zero tolerance: MTTDL = 1 / lambda.
        assert mttdl_hours(Replication(1), env) == pytest.approx(
            1.0 / env.fail_rate_per_hour, rel=1e-9
        )

    def test_faster_repair_helps(self):
        fast = FailureEnvironment(mttr_hours=2.0)
        slow = FailureEnvironment(mttr_hours=48.0)
        scheme = ECScheme(CodeKind.RS, 6, 9)
        assert mttdl_hours(scheme, fast) > mttdl_hours(scheme, slow)

    def test_wider_stripe_same_tolerance_is_riskier(self):
        env = FailureEnvironment()
        narrow = mttdl_hours(ECScheme(CodeKind.RS, 6, 9), env)
        wide = mttdl_hours(ECScheme(CodeKind.RS, 12, 15), env)
        assert wide < narrow  # more chunks, same 3-failure budget


class TestPaperClaims:
    def test_hybrid_is_more_durable_than_3r(self):
        """§4.1: Hy(1, EC) gives 'sufficient durability' — in fact more
        than 3-r, at lower overhead than 3-r."""
        env = FailureEnvironment()
        hy = HybridScheme(1, ECScheme(CodeKind.CC, 6, 9))
        p_hy = annual_loss_probability(hy, env, groups=10_000)
        p_3r = annual_loss_probability(Replication(3), env, groups=10_000)
        assert p_hy < p_3r
        assert hy.storage_overhead < Replication(3).storage_overhead

    def test_ec_more_durable_than_3r_at_half_the_overhead(self):
        env = FailureEnvironment()
        p_ec = annual_loss_probability(ECScheme(CodeKind.RS, 6, 9), env)
        p_3r = annual_loss_probability(Replication(3), env)
        assert p_ec < p_3r

    def test_nines_helper(self):
        assert nines(1e-6) == pytest.approx(6.0)
        assert nines(0.0) == float("inf")

    def test_table_shape(self):
        rows = durability_table(groups=1000)
        names = [r["scheme"] for r in rows]
        assert "Hy(1,CC(6,9))" in names
        by_name = {r["scheme"]: r for r in rows}
        assert by_name["Hy(1,CC(6,9))"]["annual_loss_p"] <= by_name["3-r"]["annual_loss_p"]

    def test_groups_scale_risk(self):
        env = FailureEnvironment()
        scheme = Replication(2)
        one = annual_loss_probability(scheme, env, groups=1)
        many = annual_loss_probability(scheme, env, groups=1000)
        assert many > one
        assert many == pytest.approx(1 - (1 - one) ** 1000, rel=1e-6)

    def test_loss_probability_monotone_in_afr(self):
        scheme = ECScheme(CodeKind.RS, 6, 9)
        ps = [
            annual_loss_probability(scheme, FailureEnvironment(afr=a))
            for a in (0.005, 0.02, 0.08)
        ]
        assert ps[0] < ps[1] < ps[2]
