"""Hypothesis property tests on the core coding invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codes.base import chunks_equal
from repro.codes.convertible import ConvertibleCode, convert
from repro.codes.lrcc import LocallyRecoverableConvertibleCode
from repro.codes.rs import ReedSolomon

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_data(rng, k, chunk_len):
    return [rng.integers(0, 256, chunk_len, dtype=np.uint8) for _ in range(k)]


class TestRsRoundtrip:
    @common
    @given(
        st.integers(2, 10),
        st.integers(1, 4),
        st.integers(1, 64),
        st.integers(0, 10_000),
    )
    def test_any_r_erasures_decode(self, k, r, chunk_len, seed):
        rng = np.random.default_rng(seed)
        code = ReedSolomon(k, k + r)
        stripe = code.encode_stripe(random_data(rng, k, chunk_len))
        erased = rng.choice(k + r, size=r, replace=False)
        rec = code.decode_stripe(stripe.erase(*[int(e) for e in erased]))
        assert chunks_equal(rec.chunks, stripe.chunks)


class TestCcRoundtrip:
    @common
    @given(
        st.integers(2, 8),
        st.integers(1, 3),
        st.integers(0, 10_000),
    )
    def test_cc_erasures_decode(self, k, r, seed):
        rng = np.random.default_rng(seed)
        code = ConvertibleCode(k, k + r)
        stripe = code.encode_stripe(random_data(rng, k, 16))
        erased = rng.choice(k + r, size=r, replace=False)
        rec = code.decode_stripe(stripe.erase(*[int(e) for e in erased]))
        assert chunks_equal(rec.chunks, stripe.chunks)


class TestConversionEqualsDirectEncode:
    """THE Morph invariant: converted == re-encoded from scratch."""

    @common
    @given(
        st.integers(2, 6),      # k_initial
        st.integers(2, 3),      # r (same before/after)
        st.integers(2, 4),      # lambda (merge factor)
        st.integers(0, 10_000),
    )
    def test_merge_regime(self, k_i, r, lam, seed):
        rng = np.random.default_rng(seed)
        initial = ConvertibleCode(k_i, k_i + r, family_width=lam * k_i)
        final = ConvertibleCode(lam * k_i, lam * k_i + r, family_width=lam * k_i)
        stripes, alldata = [], []
        for _ in range(lam):
            data = random_data(rng, k_i, 12)
            alldata.extend(data)
            stripes.append(initial.encode_stripe(data))
        out, io = convert(initial, final, stripes)
        direct = final.encode_stripe(alldata)
        assert chunks_equal(out[0].chunks, direct.chunks)
        if r < k_i:
            # Merge regime reads no data when parities are cheaper.
            assert io.data_chunks_read == 0
        assert io.chunks_read <= lam * k_i  # never worse than RS

    @common
    @given(
        st.integers(2, 5),      # k_final
        st.integers(2, 3),      # r
        st.integers(2, 3),      # lambda (split factor)
        st.integers(0, 10_000),
    )
    def test_split_regime(self, k_f, r, lam, seed):
        rng = np.random.default_rng(seed)
        k_i = lam * k_f
        initial = ConvertibleCode(k_i, k_i + r, family_width=k_i)
        final = ConvertibleCode(k_f, k_f + r, family_width=k_i)
        data = random_data(rng, k_i, 12)
        stripe = initial.encode_stripe(data)
        out, io = convert(initial, final, [stripe])
        for m in range(lam):
            direct = final.encode_stripe(data[m * k_f : (m + 1) * k_f])
            assert chunks_equal(out[m].chunks, direct.chunks)
        if r < k_f:
            # Split saves exactly one final stripe of data reads.
            assert io.data_chunks_read == k_i - k_f
        assert io.chunks_read <= k_i  # never worse than RS

    @common
    @given(st.integers(0, 10_000))
    def test_random_general_regime(self, seed):
        rng = np.random.default_rng(seed)
        k_i = int(rng.integers(2, 7))
        k_f = int(rng.integers(2, 13))
        r = int(rng.integers(1, 4))
        from math import gcd

        span = k_i * k_f // gcd(k_i, k_f)
        n_stripes = span // k_i
        initial = ConvertibleCode(k_i, k_i + r, family_width=span)
        final = ConvertibleCode(k_f, k_f + r, family_width=span)
        stripes, alldata = [], []
        for _ in range(n_stripes):
            data = random_data(rng, k_i, 8)
            alldata.extend(data)
            stripes.append(initial.encode_stripe(data))
        out, io = convert(initial, final, stripes)
        for m, stripe in enumerate(out):
            direct = final.encode_stripe(alldata[m * k_f : (m + 1) * k_f])
            assert chunks_equal(stripe.chunks, direct.chunks)
        # Never worse than reading everything.
        assert io.chunks_read <= span + 1e-9


class TestLrccProperties:
    @common
    @given(st.integers(0, 10_000))
    def test_local_repair_of_every_position(self, seed):
        rng = np.random.default_rng(seed)
        code = LocallyRecoverableConvertibleCode(12, int(rng.choice([2, 3])), 2)
        stripe = code.encode_stripe(random_data(rng, 12, 16))
        failed = int(rng.integers(0, 12 + code.l))
        avail = {
            i: c for i, c in enumerate(stripe.chunks) if i != failed
        }
        repaired = code.local_repair(failed, avail)
        assert np.array_equal(repaired, stripe.chunks[failed])


class TestDfsRoundtripProperty:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(1, 200), st.integers(0, 1000))
    def test_write_read_any_size(self, n_kb, seed):
        from repro.core.schemes import CodeKind, ECScheme, HybridScheme
        from repro.dfs import MorphFS

        rng = np.random.default_rng(seed)
        fs = MorphFS(chunk_size=4 * 1024, future_widths=[6, 12], seed=seed)
        data = rng.integers(0, 256, n_kb * 1024, dtype=np.uint8)
        fs.write_file("f", data, HybridScheme(1, ECScheme(CodeKind.CC, 6, 9)))
        assert np.array_equal(fs.read_file("f"), data)
        fs.transcode("f", ECScheme(CodeKind.CC, 6, 9))
        fs.transcode("f", ECScheme(CodeKind.CC, 12, 15))
        assert np.array_equal(fs.read_file("f"), data)


class TestLrccConversionProperties:
    @common
    @given(
        st.integers(2, 4),     # k_initial
        st.integers(2, 4),     # lambda (stripes merged)
        st.integers(1, 2),     # r_global of the LRCC target
        st.integers(0, 10_000),
    )
    def test_cc_to_lrcc_random_shapes(self, k_i, lam, r_g, seed):
        from repro.codes.lrcc import convert_cc_to_lrcc

        rng = np.random.default_rng(seed)
        r_i = r_g + 1  # minimum initial parities for the conversion
        big_k = lam * k_i
        initial = ConvertibleCode(k_i, k_i + r_i, family_width=big_k)
        final = LocallyRecoverableConvertibleCode(big_k, lam, r_g, family_width=big_k)
        stripes, alldata = [], []
        for _ in range(lam):
            data = random_data(rng, k_i, 8)
            alldata.extend(data)
            stripes.append(initial.encode_stripe(data))
        merged, io = convert_cc_to_lrcc(initial, final, stripes)
        direct = final.encode_stripe(alldata)
        assert chunks_equal(merged.chunks, direct.chunks)
        assert io.data_chunks_read == 0

    @common
    @given(
        st.integers(2, 4),     # initial group size
        st.integers(2, 3),     # groups per initial stripe
        st.integers(2, 3),     # lambda
        st.integers(0, 10_000),
    )
    def test_lrcc_merge_random_shapes(self, gs, l_i, lam, seed):
        from repro.codes.lrcc import convert_lrcc_to_lrcc

        rng = np.random.default_rng(seed)
        k_i = gs * l_i
        initial = LocallyRecoverableConvertibleCode(
            k_i, l_i, 2, family_width=lam * k_i
        )
        final = LocallyRecoverableConvertibleCode(
            lam * k_i, lam * l_i, 2, family_width=lam * k_i
        )
        stripes, alldata = [], []
        for _ in range(lam):
            data = random_data(rng, k_i, 8)
            alldata.extend(data)
            stripes.append(initial.encode_stripe(data))
        merged, io = convert_lrcc_to_lrcc(initial, final, stripes)
        direct = final.encode_stripe(alldata)
        assert chunks_equal(merged.chunks, direct.chunks)
        assert io.data_chunks_read == 0

    @common
    @given(st.integers(1, 3), st.integers(2, 4), st.integers(0, 10_000))
    def test_bwo_merge_random_shapes(self, r_i, lam, seed):
        from repro.codes.bandwidth import BandwidthOptimalCC

        rng = np.random.default_rng(seed)
        r_f = r_i + 1
        k = int(np.random.default_rng(seed + 1).integers(2, 6))
        code = BandwidthOptimalCC(k, r_i, r_f, family_width=lam * k)
        final = ConvertibleCode(lam * k, lam * k + r_f, family_width=lam * k)
        stripes, alldata = [], []
        for _ in range(lam):
            data = random_data(rng, k, r_f * 4)
            alldata.extend(data)
            stripes.append(code.encode_stripe(data))
        merged, io = code.convert_merge(stripes, final)
        direct = final.encode_stripe(alldata)
        assert chunks_equal(merged.chunks, direct.chunks)
        # Bandwidth bound: r_I parities + (r_F-r_I)/r_F of the data.
        bound = lam * (r_i + k * (r_f - r_i) / r_f)
        assert io.chunks_read == pytest.approx(bound)
