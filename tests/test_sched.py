"""Units of the maintenance control plane: tasks, policies, queue, budgets."""

import pytest

from repro.sched import (
    BudgetManager,
    CallbackTask,
    MaintenanceTask,
    NodeBudget,
    PriorityTaskQueue,
    SchedulerPolicy,
    TaskClass,
    TaskCost,
    TaskState,
    TokenBucket,
    backoff_ticks,
    effective_priority,
)


class TestTaskCost:
    def test_addition(self):
        total = TaskCost(10, 5) + TaskCost(1, 2)
        assert total.disk_bytes == 11 and total.net_bytes == 7

    def test_default_is_free(self):
        assert TaskCost().disk_bytes == 0 and TaskCost().net_bytes == 0


class TestTokenBucket:
    def test_starts_full_and_caps_at_capacity(self):
        bucket = TokenBucket(100, capacity=250)
        assert bucket.tokens == 250
        bucket.take(200)
        bucket.refill()
        assert bucket.tokens == 150
        bucket.refill()
        assert bucket.tokens == 250  # capped

    def test_can_within_tokens(self):
        bucket = TokenBucket(100)
        assert bucket.can(100)
        bucket.take(40)
        # No longer full, so the overdraft escape doesn't apply.
        assert bucket.can(60) and not bucket.can(61)

    def test_oversized_task_admitted_only_against_full_bucket(self):
        bucket = TokenBucket(100)
        assert bucket.can(350)  # bigger than capacity, bucket full
        bucket.take(350)
        assert bucket.tokens == -250
        assert not bucket.can(1)  # in debt
        for _ in range(3):
            bucket.refill()
        assert bucket.tokens == 50
        assert bucket.can(50) and not bucket.can(350)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(0)


class TestBudgetManager:
    def test_unlimited_admits_everything(self):
        budgets = BudgetManager()
        assert budgets.unlimited
        assert budgets.admits({"a": TaskCost(1e18, 1e18)})
        assert budgets.admits_everywhere(["a", "b"], TaskCost(1e18, 1e18))

    def test_admits_checks_every_listed_node(self):
        budgets = BudgetManager(disk_bytes_per_tick=100)
        budgets.charge("a", disk_bytes=80)
        assert budgets.admits({"a": TaskCost(disk_bytes=20)})
        assert not budgets.admits(
            {"a": TaskCost(disk_bytes=30), "b": TaskCost(disk_bytes=10)}
        )
        assert budgets.admits({"b": TaskCost(disk_bytes=100)})

    def test_admits_everywhere_is_conservative(self):
        budgets = BudgetManager(disk_bytes_per_tick=100)
        budgets.charge("a", disk_bytes=50)
        # The aggregate estimate must fit on EVERY node it might touch.
        assert not budgets.admits_everywhere(["a", "b"], TaskCost(disk_bytes=60))
        assert budgets.admits_everywhere(["a", "b"], TaskCost(disk_bytes=50))

    def test_net_budget_independent_of_disk(self):
        budget = NodeBudget(disk=TokenBucket(100), net=TokenBucket(100))
        budget.net.take(95)
        assert not budget.can(TaskCost(disk_bytes=50, net_bytes=6))
        assert budget.can(TaskCost(disk_bytes=50, net_bytes=5))

    def test_refill_all_only_touches_materialised_nodes(self):
        budgets = BudgetManager(disk_bytes_per_tick=100, burst_ticks=2.0)
        budgets.charge("a", disk_bytes=150)
        budgets.refill_all()
        assert budgets.node("a").disk.tokens == 150  # 200-150+100


class TestPolicies:
    def make(self, klass, deadline=None):
        task = MaintenanceTask(klass, deadline=deadline)
        task.submitted_tick = 0  # as scheduler.submit() would stamp
        return task

    def test_band_order(self):
        policy = SchedulerPolicy()
        tick, clock = 0, 0.0
        prios = [
            effective_priority(self.make(k), policy, tick, clock)
            for k in (
                TaskClass.CRITICAL_REPAIR,
                TaskClass.REPAIR,
                TaskClass.TRANSCODE,
                TaskClass.SCRUB,
            )
        ]
        assert prios == sorted(prios)
        assert len(set(prios)) == 4

    def test_deadline_boost_moves_transcode_between_bands(self):
        policy = SchedulerPolicy()
        near = self.make(TaskClass.TRANSCODE, deadline=500.0)
        far = self.make(TaskClass.TRANSCODE, deadline=5000.0)
        repair = self.make(TaskClass.REPAIR)
        # clock 0, window 600: the 500s deadline is inside the window.
        p_near = effective_priority(near, policy, 0, 0.0)
        p_far = effective_priority(far, policy, 0, 0.0)
        p_repair = effective_priority(repair, policy, 0, 0.0)
        assert p_near == policy.boosted_transcode_priority
        assert p_repair < p_near < p_far

    def test_aging_improves_priority_but_floors(self):
        policy = SchedulerPolicy(aging_per_tick=1.0)
        scrub = self.make(TaskClass.SCRUB)
        scrub.submitted_tick = 0
        p0 = effective_priority(scrub, policy, 0, 0.0)
        p10 = effective_priority(scrub, policy, 10, 0.0)
        p1000 = effective_priority(scrub, policy, 1000, 0.0)
        assert p10 < p0
        assert p1000 == policy.aged_priority_floor
        # Aged work still never outranks the critical band.
        critical = effective_priority(
            self.make(TaskClass.CRITICAL_REPAIR), policy, 1000, 0.0
        )
        assert critical < p1000

    def test_critical_band_does_not_age(self):
        policy = SchedulerPolicy()
        crit = self.make(TaskClass.CRITICAL_REPAIR)
        crit.submitted_tick = 0
        assert effective_priority(crit, policy, 500, 0.0) == 0.0

    def test_backoff_progression_and_cap(self):
        policy = SchedulerPolicy()
        delays = [backoff_ticks(policy, i) for i in range(1, 9)]
        assert delays == [1, 2, 4, 8, 16, 32, 64, 64]


class TestPriorityTaskQueue:
    def test_ready_orders_by_effective_priority_then_fifo(self):
        queue = PriorityTaskQueue()
        policy = SchedulerPolicy()
        scrub = queue.push(MaintenanceTask(TaskClass.SCRUB))
        repair_a = queue.push(MaintenanceTask(TaskClass.REPAIR))
        repair_b = queue.push(MaintenanceTask(TaskClass.REPAIR))
        critical = queue.push(MaintenanceTask(TaskClass.CRITICAL_REPAIR))
        ready = queue.ready(policy, 0, 0.0)
        assert ready == [critical, repair_a, repair_b, scrub]

    def test_backoff_holds_excluded_until_due(self):
        queue = PriorityTaskQueue()
        policy = SchedulerPolicy()
        task = queue.push(MaintenanceTask(TaskClass.REPAIR))
        task.not_before_tick = 5
        assert queue.ready(policy, 4, 0.0) == []
        assert queue.ready(policy, 5, 0.0) == [task]

    def test_bury_moves_to_dead_letter(self):
        queue = PriorityTaskQueue()
        task = queue.push(MaintenanceTask(TaskClass.REPAIR))
        queue.bury(task)
        assert len(queue) == 0
        assert queue.dead_letter == [task]
        assert task.state is TaskState.DEAD

    def test_find(self):
        queue = PriorityTaskQueue()
        queue.push(MaintenanceTask(TaskClass.REPAIR))
        scrub = queue.push(MaintenanceTask(TaskClass.SCRUB))
        assert queue.find(lambda t: t.klass is TaskClass.SCRUB) is scrub
        assert queue.find(lambda t: t.klass is TaskClass.TRANSCODE) is None


class TestCallbackTask:
    def test_zero_arg_callable(self):
        hits = []
        task = CallbackTask(lambda: hits.append(1))
        task.execute(None)
        assert hits == [1]

    def test_fs_arg_callable(self):
        seen = []
        task = CallbackTask(lambda fs: seen.append(fs))
        task.execute("the-fs")
        assert seen == ["the-fs"]

    def test_exact_charges_returned(self):
        charges = {"n1": TaskCost(disk_bytes=10)}
        task = CallbackTask(lambda: None, charges=charges)
        assert task.node_charges(None) is charges
