"""Regression tests for the control-plane fast path.

Two layers of protection:

* **Golden traces** — the event engine rewrite (bucketed scheduling,
  sole-waiter lane, timeout free-list) must be *behaviour-invisible*.
  These tests pin sha256 hashes of fixed-seed traces captured on the
  pre-optimisation engine; any reordering, value change or clock drift
  flips the hash.
* **Edge cases** — the specific mechanisms the fast path introduced
  (same-timestamp FIFO, free-list reuse, AnyOf detach, per-node chunk
  index with lazy purge, batched registration, ``record_many``) each get
  a direct test, so a future refactor can't silently drop one.
"""

import hashlib
import random

import pytest

from repro.cluster.engine import (
    AllOf,
    AnyOf,
    Environment,
    PriorityResource,
    Resource,
    Timeout,
)
from repro.obs import LogLinearHistogram


# ---------------------------------------------------------------------------
# Golden traces (captured on the pre-fast-path engine)
# ---------------------------------------------------------------------------

ENGINE_TRACE_SHA256 = "458eec07f55e00819ae7075f70dc44cf61a5e189e18dffe395f5e62ae7c694db"
ENGINE_TRACE_LEN = 102
ENGINE_TRACE_END = 11.771444213804195

BURST_UNTHROTTLED_SHA256 = (
    "976d12e36f4573df10b2ae4a218cdf57db89872c1d51af6840e7b97342a11d8b"
)
BURST_THROTTLED_SHA256 = (
    "f5e500fef7377ea5c6e236a7b0918662e5dcd51487df7fe393dc1d7da930b991"
)


def _engine_trace(seed=42):
    """A mixed workload touching every engine feature: shared resources,
    a priority resource, AnyOf/AllOf combinators and seeded timeouts."""
    rng = random.Random(seed)
    env = Environment()
    log = []
    disks = [Resource(env, capacity=2) for _ in range(3)]
    pq = PriorityResource(env, capacity=1)

    def worker(tag):
        for i in range(20):
            d = disks[rng.randrange(3)]
            req = d.request()
            yield req
            yield env.timeout(rng.random())
            d.release(req)
            log.append((env.now, tag, i))

    def prio_worker(tag, prio):
        for i in range(10):
            req = pq.request(priority=prio)
            yield req
            yield env.timeout(0.25)
            pq.release(req)
            log.append((env.now, "p", tag, i))

    def combo():
        idx, val = yield AnyOf(env, [env.timeout(1.0, "a"), env.timeout(0.5, "b")])
        log.append((env.now, "any", idx, val))
        vals = yield AllOf(env, [env.timeout(0.3, 1), env.timeout(0.7, 2)])
        log.append((env.now, "all", tuple(vals)))

    for t in range(4):
        env.process(worker(t))
    env.process(prio_worker("hi", 0))
    env.process(prio_worker("lo", 5))
    env.process(combo())
    env.run()
    return hashlib.sha256(repr(log).encode()).hexdigest(), len(log), env.now


def _burst_trace_sig(budget):
    from repro.sched.simulate import SimConfig, run_failure_burst

    r = run_failure_burst(budget, SimConfig(seed=7))
    h = hashlib.sha256()
    for lat in r.foreground_latencies:
        h.update(repr(lat).encode())
    h.update(repr(r.repairs_completed).encode())
    h.update(repr(sorted(r.node_tick_disk_bytes.items())).encode())
    h.update(repr(r.ticks).encode())
    return h.hexdigest()


class TestGoldenTraces:
    def test_engine_mixed_trace_bit_identical(self):
        digest, length, end = _engine_trace()
        assert digest == ENGINE_TRACE_SHA256
        assert length == ENGINE_TRACE_LEN
        assert end == ENGINE_TRACE_END

    def test_failure_burst_unthrottled_bit_identical(self):
        assert _burst_trace_sig(None) == BURST_UNTHROTTLED_SHA256

    def test_failure_burst_throttled_bit_identical(self):
        assert _burst_trace_sig(16e6) == BURST_THROTTLED_SHA256


# ---------------------------------------------------------------------------
# Engine edge cases
# ---------------------------------------------------------------------------


class TestSameTimestampOrdering:
    def test_fifo_within_one_timestamp(self):
        """Events scheduled for the same instant dispatch in schedule
        order — the bucket is a FIFO, like the old (t, seq) heap key."""
        env = Environment()
        order = []

        def p(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        for tag in range(6):
            env.process(p(tag, 1.0))
        env.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_zero_delay_during_dispatch_runs_same_instant(self):
        """A zero-delay timeout created while its own timestamp is being
        dispatched still runs at that timestamp, after the current batch."""
        env = Environment()
        order = []

        def a():
            yield env.timeout(1.0)
            order.append("a")
            env.process(b())

        def b():
            yield env.timeout(0.0)
            order.append(("b", env.now))

        def c():
            yield env.timeout(1.0)
            order.append("c")

        env.process(a())
        env.process(c())
        env.run()
        assert order == ["a", "c", ("b", 1.0)]


class TestTimeoutFreeList:
    def test_unreferenced_timeouts_are_recycled(self):
        """Timeouts yielded-and-forgotten go back to the pool and come
        out again as the same objects."""
        env = Environment()
        seen = []

        def p():
            for _ in range(4):
                t = env.timeout(1.0)
                seen.append(id(t))
                yield t

        env.process(p())
        env.run()
        assert len(env._timeout_pool) == 1
        assert len(set(seen)) < len(seen)  # at least one object was reused

    def test_user_held_timeout_is_not_recycled(self):
        """A timeout the program still references must never be handed
        out again — the refcount guard keeps it out of the pool."""
        env = Environment()
        held = []

        def p():
            t = env.timeout(1.0, value="mine")
            held.append(t)
            yield t

        env.process(p())
        env.run()
        assert held[0] not in env._timeout_pool
        assert held[0].value == "mine"

    def test_recycled_timeout_carries_fresh_value(self):
        env = Environment()
        values = []

        def p():
            v = yield env.timeout(1.0, value="first")
            values.append(v)
            v = yield env.timeout(1.0, value="second")
            values.append(v)

        env.process(p())
        env.run()
        assert values == ["first", "second"]


class TestCombinatorEdgeCases:
    def test_allof_with_already_processed_children(self):
        """AllOf over events that already triggered *and* dispatched
        succeeds immediately instead of waiting forever."""
        env = Environment()
        done = []
        t1 = env.timeout(0.5, value=1)
        t2 = env.timeout(1.0, value=2)

        def p():
            yield env.timeout(2.0)  # both children long since processed
            vals = yield AllOf(env, [t1, t2])
            done.append(list(vals))

        env.process(p())
        env.run()
        assert done == [[1, 2]]

    def test_anyof_with_already_processed_child(self):
        env = Environment()
        done = []
        t1 = env.timeout(0.5, value="early")

        def p():
            yield env.timeout(2.0)
            idx, val = yield AnyOf(env, [t1, env.timeout(5.0, value="late")])
            done.append((idx, val, env.now))

        env.process(p())
        env.run()
        # The already-processed child wins immediately at t=2.
        assert done == [(0, "early", 2.0)]

    def test_anyof_detaches_loser_callbacks(self):
        """Once a winner fires, the losers' callback lists no longer hold
        the AnyOf's closures — long-lived events don't accumulate stale
        callbacks from decided races."""
        env = Environment()
        winner = env.timeout(1.0, value="w")
        loser = env.timeout(10.0, value="l")
        results = []

        def p():
            results.append((yield AnyOf(env, [winner, loser])))

        env.process(p())
        env.run(until=5.0)
        assert results == [(0, "w")]
        assert loser.callbacks == []


class TestResourceQueues:
    def test_fifo_grants_under_contention(self):
        env = Environment()
        order = []
        res = Resource(env, capacity=1)

        def p(tag):
            req = res.request()
            yield req
            yield env.timeout(1.0)
            res.release(req)
            order.append(tag)

        for tag in range(8):
            env.process(p(tag))
        env.run()
        assert order == list(range(8))

    def test_priority_resource_orders_grants(self):
        env = Environment()
        order = []
        res = PriorityResource(env, capacity=1)

        def p(tag, prio, delay):
            yield env.timeout(delay)
            req = res.request(priority=prio)
            yield req
            yield env.timeout(5.0)
            res.release(req)
            order.append(tag)

        # "first" grabs the resource; the rest queue with priorities.
        env.process(p("first", 9, 0.0))
        env.process(p("low", 5, 1.0))
        env.process(p("high", 0, 2.0))
        env.process(p("mid", 3, 3.0))
        env.run()
        assert order == ["first", "high", "mid", "low"]


class TestEngineValidation:
    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-0.1)

    def test_timeout_type(self):
        env = Environment()
        assert isinstance(env.timeout(0.0), Timeout)


# ---------------------------------------------------------------------------
# Namenode per-node chunk index
# ---------------------------------------------------------------------------


def _make_meta(name, placements, chunk_size=1024):
    """One single-stripe EC file; ``placements`` is (data_nodes, parity_nodes)."""
    from repro.core.schemes import CodeKind, ECScheme
    from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta

    data_nodes, parity_nodes = placements
    data = [
        ChunkMeta(f"{name}/d{i}", n, ChunkKind.DATA, chunk_size)
        for i, n in enumerate(data_nodes)
    ]
    parities = [
        ChunkMeta(f"{name}/p{i}", n, ChunkKind.PARITY, chunk_size)
        for i, n in enumerate(parity_nodes)
    ]
    k, n = len(data), len(data) + len(parities)
    stripe = ECStripeMeta(stripe_index=0, k=k, n=n, data=data, parities=parities)
    return FileMeta(
        name=name,
        size=k * chunk_size,
        chunk_size=chunk_size,
        scheme=ECScheme(CodeKind.RS, k, n),
        stripes=[stripe],
    )


def _full_scan(namenode, node_id):
    """The pre-index O(namespace) implementation, as the oracle."""
    out = []
    for meta in namenode.files.values():
        for chunk in meta.all_chunks():
            if chunk.node_id == node_id:
                out.append((meta, chunk))
    return out


class TestNamenodeChunkIndex:
    def _populate(self, namenode, n_files=40, n_nodes=7, seed=3):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(n_nodes)]
        for i in range(n_files):
            picks = rng.sample(nodes, 3)
            namenode.register_file(_make_meta(f"f{i:03d}", (picks[:2], picks[2:])))
        return nodes

    def test_matches_full_scan_including_order(self):
        from repro.dfs.namenode import Namenode

        nn = Namenode()
        nodes = self._populate(nn)
        for node in nodes:
            assert nn.chunks_on_node(node) == _full_scan(nn, node)

    def test_index_self_heals_after_moves_and_deletes(self):
        """The protocol is: additions call ``note_chunk``, removals call
        nothing.  After a wave of moves (noted at the destination only)
        and a deletion, stale source-side entries are purged on the next
        query and every answer still matches the full-scan oracle."""
        from repro.dfs.namenode import Namenode

        nn = Namenode()
        nodes = self._populate(nn)
        rng = random.Random(11)
        # Move a third of all chunks; index only the new placements —
        # exactly what repair/transcode do.
        for meta in list(nn.files.values())[::3]:
            for chunk in meta.all_chunks():
                chunk.node_id = rng.choice(nodes)
                nn.note_chunk(chunk.node_id, meta.name)
        nn.unregister_file("f001")
        for node in nodes:
            assert nn.chunks_on_node(node) == _full_scan(nn, node)
        # Purged: no index entry names a file without a chunk on the node.
        for node, index in nn._node_files.items():
            for name in index:
                meta = nn.files.get(name)
                assert meta is not None
                assert any(c.node_id == node for c in meta.all_chunks())

    def test_note_chunk_indexes_new_placement(self):
        from repro.dfs.namenode import Namenode

        nn = Namenode()
        nn.register_file(_make_meta("f", (["a", "b"], ["c"])))
        meta = nn.lookup("f")
        chunk = meta.stripes[0].data[0]
        chunk.node_id = "z"
        nn.note_chunk("z", "f")
        assert nn.chunks_on_node("z") == [(meta, chunk)]

    def test_register_files_matches_individual_registration(self):
        from repro.dfs.namenode import Namenode

        metas_a = [_make_meta(f"f{i}", (["a", "b"], ["c"])) for i in range(5)]
        metas_b = [_make_meta(f"f{i}", (["a", "b"], ["c"])) for i in range(5)]
        one, batch = Namenode(), Namenode()
        for m in metas_a:
            one.register_file(m)
        batch.register_files(metas_b)
        assert list(one.files) == list(batch.files)
        assert one._file_order == batch._file_order
        for node in ("a", "b", "c"):
            assert [m.name for m, _ in one.chunks_on_node(node)] == [
                m.name for m, _ in batch.chunks_on_node(node)
            ]

    def test_next_chunk_ids_batch_matches_singles(self):
        from repro.dfs.namenode import Namenode

        a, b = Namenode(), Namenode()
        batch = a.next_chunk_ids("x", 5)
        singles = [b.next_chunk_id("x") for _ in range(5)]
        assert batch == singles
        # The counter keeps advancing across calls.
        assert a.next_chunk_ids("x", 1)[0] == b.next_chunk_id("x")


# ---------------------------------------------------------------------------
# Histogram bulk recording
# ---------------------------------------------------------------------------


class TestRecordMany:
    def test_equivalent_to_per_record(self):
        rng = random.Random(5)
        values = [rng.uniform(-0.5, 100.0) for _ in range(2000)] + [0.0, 0.0]
        one, bulk = LogLinearHistogram(), LogLinearHistogram()
        for v in values:
            one.record(v)
        bulk.record_many(values)
        assert bulk.count == one.count
        assert bulk.sum == one.sum  # bit-identical: same accumulation order
        assert bulk.min == one.min
        assert bulk.max == one.max
        assert bulk.zero_count == one.zero_count
        assert bulk._counts == one._counts
        for p in (1, 50, 90, 99, 99.9):
            assert bulk.percentile(p) == one.percentile(p)

    def test_empty_batch_is_a_noop(self):
        hist = LogLinearHistogram()
        hist.record_many([])
        assert hist.count == 0
        assert hist.to_dict()["min"] is None
