"""Trace generation and the Fig 1 / Fig 12 analysis pipeline."""

import numpy as np
import pytest

from repro.traces import (
    HddTrendModel,
    IngestGenerator,
    analyze_service,
    compare_systems,
    service_a,
    service_b,
)
from repro.traces.generator import TransitionRateGenerator, four_cluster_rates


class TestIngestGenerator:
    def test_length_and_positivity(self):
        series = IngestGenerator(seed=1).generate(24 * 7)
        assert len(series) == 24 * 7
        assert np.all(series.values > 0)

    def test_warmup_extends_series(self):
        series = IngestGenerator(seed=1).generate(48, warmup_hours=24)
        assert len(series) == 72
        assert series.start_hour == 24

    def test_diurnal_cycle_visible(self):
        gen = IngestGenerator(seed=2, diurnal_amplitude=0.3, noise_sigma=0.0,
                              weekly_amplitude=0.0)
        series = gen.generate(48)
        by_hour = series.values[:24]
        assert by_hour.max() / by_hour.min() > 1.5

    def test_deterministic(self):
        a = IngestGenerator(seed=3).generate(100).values
        b = IngestGenerator(seed=3).generate(100).values
        assert np.array_equal(a, b)

    def test_mean_near_base(self):
        series = IngestGenerator(base_pb_per_hour=3.0, seed=4).generate(24 * 30)
        assert series.values.mean() == pytest.approx(3.0, rel=0.1)


class TestTransitionRates:
    def test_fig4_clusters(self):
        series = four_cluster_rates(hours=48)
        assert len(series) == 4
        # Millions of transitions per hour, ordered roughly by cluster size.
        means = [s.mean() for s in series]
        assert means[0] > means[-1]
        assert all(m > 1 for m in means)  # millions, like the paper

    def test_generator_scales_with_file_size(self):
        small = TransitionRateGenerator(mean_file_mb=64, seed=5).generate(24)
        large = TransitionRateGenerator(mean_file_mb=512, seed=5).generate(24)
        assert small.mean() > large.mean()


class TestServiceAnalysis:
    def test_baseline_transcode_share_matches_paper_band(self):
        analysis = analyze_service(service_a(), "baseline", hours=24 * 14)
        share = analysis.mean_transcode() / analysis.mean_total()
        assert 0.15 < share < 0.35  # paper: transcode is 20-33% of total

    def test_service_a_reductions(self):
        comp = compare_systems(service_a(), hours=24 * 30)
        assert comp.total_reduction == pytest.approx(0.43, abs=0.06)
        assert comp.transcode_reduction == pytest.approx(0.95, abs=0.04)
        assert 0.15 < comp.ingest_reduction < 0.35  # paper: ~20%

    def test_service_b_reductions(self):
        comp = compare_systems(service_b(), hours=24 * 30)
        assert comp.total_reduction == pytest.approx(0.51, abs=0.06)
        assert comp.transcode_reduction == pytest.approx(1.0, abs=1e-9)
        assert comp.ingest_reduction == pytest.approx(0.28, abs=0.05)

    def test_morph_first_transition_is_free(self):
        analysis = analyze_service(service_a(), "morph", hours=24 * 7)
        assert np.all(analysis.transcode_io["Hy->narrowCC"] == 0)
        assert np.all(analysis.transcode_io["Hy->medLRCC"] == 0)

    def test_flow_labels_complete(self):
        base = analyze_service(service_a(), "baseline", hours=24)
        assert set(base.transcode_io) == {
            "3r->narrowRS", "narrowRS->medLRC", "3r->medLRC", "medLRC->wideLRC",
        }

    def test_invalid_system_rejected(self):
        with pytest.raises(ValueError):
            analyze_service(service_a(), "hdfs", hours=24)

    def test_hourly_series_shapes(self):
        analysis = analyze_service(service_b(), "baseline", hours=24 * 3)
        assert len(analysis.total_io) == 24 * 3
        assert np.all(analysis.total_io >= analysis.transcode_total)


class TestHddTrend:
    def test_ratio_declines(self):
        model = HddTrendModel()
        years, ratio = model.measured_series()
        assert ratio[0] > ratio[-1]

    def test_decay_rate_near_paper(self):
        model = HddTrendModel()
        assert model.ratio_decay == pytest.approx(0.06, abs=0.03)
        assert model.fitted_decay_from_anchors() == pytest.approx(0.085, abs=0.035)

    def test_hamr_cliff(self):
        model = HddTrendModel()
        _y, measured = model.measured_series()
        _sy, speculated = model.speculated_series()
        assert speculated.min() < measured.min()

    def test_model_extrapolation_monotone(self):
        model = HddTrendModel()
        values = [model.bandwidth_per_tb(y) for y in range(2014, 2030)]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestTransitionQueue:
    def test_under_capacity_passes_through(self):
        from repro.traces.generator import TransitionQueueModel

        model = TransitionQueueModel(capacity_millions=100.0)
        demanded = np.array([1.0, 2.0, 3.0])
        out = model.series(demanded)
        assert np.allclose(out, demanded)  # no backlog ever forms

    def test_burst_builds_and_drains_backlog(self):
        from repro.traces.generator import TransitionQueueModel

        model = TransitionQueueModel(capacity_millions=2.0)
        demanded = np.array([5.0, 0.0, 0.0, 0.0])
        out = model.series(demanded)
        # Hour 0: 2 performed + 3 pending = 5; hour 1: 2 + 1 = 3; then 1, 0.
        assert np.allclose(out, [5.0, 3.0, 1.0, 0.0])

    def test_conservation(self):
        """Everything demanded is eventually performed exactly once."""
        from repro.traces.generator import TransitionQueueModel

        rng = np.random.default_rng(0)
        demanded = rng.uniform(0, 4, 200)
        model = TransitionQueueModel(capacity_millions=2.5)
        out = model.series(np.concatenate([demanded, np.zeros(50)]))
        performed_total = 0.0
        pending = 0.0
        for i, d in enumerate(np.concatenate([demanded, np.zeros(50)])):
            queue = pending + d
            performed = min(queue, 2.5)
            pending = queue - performed
            performed_total += performed
        assert performed_total == pytest.approx(demanded.sum(), rel=1e-9)
