"""Matrix algebra over GF(256): matmul, inversion, rank, constructions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gf.field import gf_mul
from repro.gf.matrix import (
    SingularMatrixError,
    cauchy_matrix,
    gf_identity,
    gf_matinv,
    gf_matmul,
    gf_matvec,
    gf_rank,
    gf_solve,
    is_superregular,
    vandermonde,
)


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, (rows, cols), dtype=np.uint8)


class TestMatmul:
    def test_identity(self):
        rng = np.random.default_rng(1)
        a = random_matrix(rng, 5, 5)
        assert np.array_equal(gf_matmul(gf_identity(5), a), a)
        assert np.array_equal(gf_matmul(a, gf_identity(5)), a)

    def test_matches_scalar_definition(self):
        rng = np.random.default_rng(2)
        a = random_matrix(rng, 3, 4)
        b = random_matrix(rng, 4, 2)
        out = gf_matmul(a, b)
        for i in range(3):
            for j in range(2):
                acc = 0
                for t in range(4):
                    acc ^= gf_mul(int(a[i, t]), int(b[t, j]))
                assert out[i, j] == acc

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), np.uint8), np.zeros((2, 3), np.uint8))

    def test_matvec(self):
        rng = np.random.default_rng(3)
        a = random_matrix(rng, 4, 4)
        x = rng.integers(0, 256, 4, dtype=np.uint8)
        assert np.array_equal(gf_matvec(a, x), gf_matmul(a, x.reshape(-1, 1)).reshape(-1))


class TestInversion:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_inverse_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 9))
        a = random_matrix(rng, n, n)
        try:
            inv = gf_matinv(a)
        except SingularMatrixError:
            assert gf_rank(a) < n
            return
        assert np.array_equal(gf_matmul(a, inv), gf_identity(n))
        assert np.array_equal(gf_matmul(inv, a), gf_identity(n))

    def test_singular_raises(self):
        a = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            gf_matinv(a)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf_matinv(np.zeros((2, 3), np.uint8))

    def test_solve_vector(self):
        rng = np.random.default_rng(7)
        a = cauchy_matrix(range(5), range(10, 15))
        x = rng.integers(0, 256, 5, dtype=np.uint8)
        b = gf_matvec(a, x)
        assert np.array_equal(gf_solve(a, b), x)

    def test_solve_matrix(self):
        rng = np.random.default_rng(8)
        a = cauchy_matrix(range(4), range(10, 14))
        x = random_matrix(rng, 4, 6)
        b = gf_matmul(a, x)
        assert np.array_equal(gf_solve(a, b), x)


class TestRank:
    def test_full_rank_identity(self):
        assert gf_rank(gf_identity(6)) == 6

    def test_rank_deficient(self):
        a = np.array([[1, 2, 3], [2, 4, 6], [0, 0, 0]], dtype=np.uint8)
        # Row 2 = 2 * row 1 in GF(256): 2*1=2, 2*2=4, 2*3=6.
        assert gf_rank(a) == 1

    def test_rank_of_wide_matrix(self):
        a = np.concatenate([gf_identity(3), gf_identity(3)], axis=1)
        assert gf_rank(a) == 3


class TestConstructions:
    def test_vandermonde_values(self):
        v = vandermonde([1, 2], 3)
        assert v[:, 0].tolist() == [1, 1, 1]
        assert v[0, 1] == 1 and v[1, 1] == 2 and v[2, 1] == 4

    def test_vandermonde_distinct_points(self):
        with pytest.raises(ValueError):
            vandermonde([3, 3], 2)

    def test_cauchy_is_superregular(self):
        c = cauchy_matrix(range(4), range(10, 14))
        assert is_superregular(c)

    def test_cauchy_validation(self):
        with pytest.raises(ValueError):
            cauchy_matrix([1, 2], [2, 3])
        with pytest.raises(ValueError):
            cauchy_matrix([1, 1], [2, 3])

    def test_superregular_detects_singular_submatrix(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert not is_superregular(m)

    def test_superregular_rejects_zero_entry(self):
        m = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        assert not is_superregular(m)
