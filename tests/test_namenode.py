"""Namenode: namespace and the ATQ/UTM transcode lifecycle."""

import pytest

from repro.core.schemes import CodeKind, ECScheme
from repro.dfs.blocks import ChunkKind, ChunkMeta, ECStripeMeta, FileMeta, FileState
from repro.dfs.namenode import (
    ConversionGroup,
    FileNotFoundError_,
    Namenode,
    TranscodeStateError,
)


def file_meta(name="f", stripes=2, k=6, n=9):
    meta = FileMeta(name=name, size=k * stripes * 64, chunk_size=64,
                    scheme=ECScheme(CodeKind.CC, k, n))
    for s in range(stripes):
        stripe = ECStripeMeta(stripe_index=s, k=k, n=n)
        for t in range(k):
            stripe.data.append(ChunkMeta(f"{name}/s{s}d{t}", f"dn{t:03d}", ChunkKind.DATA, 64))
        for j in range(n - k):
            stripe.parities.append(
                ChunkMeta(f"{name}/s{s}p{j}", f"dn{20+j:03d}", ChunkKind.PARITY, 64))
        meta.stripes.append(stripe)
    return meta


def groups_for(meta, target, group_size=2, n_finals=1):
    out = []
    for gi, start in enumerate(range(0, len(meta.stripes), group_size)):
        out.append(ConversionGroup(
            file_name=meta.name, group_index=gi,
            initial_stripe_indices=list(range(start, min(start + group_size, len(meta.stripes)))),
            n_final_stripes=n_finals, target_scheme=target))
    return out


class TestNamespace:
    def test_register_lookup_unregister(self):
        nn = Namenode()
        meta = file_meta()
        nn.register_file(meta)
        assert nn.lookup("f") is meta
        nn.unregister_file("f")
        with pytest.raises(FileNotFoundError_):
            nn.lookup("f")

    def test_duplicate_rejected(self):
        nn = Namenode()
        nn.register_file(file_meta())
        with pytest.raises(ValueError):
            nn.register_file(file_meta())

    def test_rename(self):
        nn = Namenode()
        nn.register_file(file_meta())
        nn.rename("f", "g")
        assert nn.lookup("g").name == "g"
        with pytest.raises(FileNotFoundError_):
            nn.lookup("f")

    def test_chunk_ids_unique(self):
        nn = Namenode()
        ids = {nn.next_chunk_id("x") for _ in range(100)}
        assert len(ids) == 100

    def test_chunks_on_node(self):
        nn = Namenode()
        nn.register_file(file_meta())
        found = nn.chunks_on_node("dn000")
        assert len(found) == 2  # one data chunk per stripe


def _full_scan(nn, node_id):
    """The pre-index O(namespace) implementation, as the oracle."""
    out = []
    for meta in nn.files.values():
        for chunk in meta.all_chunks():
            if chunk.node_id == node_id:
                out.append((meta, chunk))
    return out


class TestNodeIndexVsOracle:
    """The lazy-purge per-node index against a full namespace scan, on
    the namespace-churn paths where stale entries could survive."""

    def _all_nodes(self, nn):
        return {c.node_id for m in nn.files.values() for c in m.all_chunks()}

    def test_rename_then_query(self):
        nn = Namenode()
        nn.register_file(file_meta("a"))
        nn.register_file(file_meta("b"))
        nn.rename("a", "a2")
        for node in self._all_nodes(nn):
            assert nn.chunks_on_node(node) == _full_scan(nn, node)
        # The stale entries under the old name were purged by the query.
        for index in nn._node_files.values():
            assert "a" not in index

    def test_delete_then_reregister_same_name(self):
        nn = Namenode()
        nn.register_file(file_meta("a"))  # chunks on dn000..dn022
        nn.unregister_file("a")
        # Same name comes back with entirely different placements; the
        # index entries from the first life must not leak into answers.
        fresh = file_meta("a")
        for chunk in [c for s in fresh.stripes for c in s.data + s.parities]:
            chunk.node_id = f"dn{int(chunk.node_id[2:]) + 50:03d}"
        nn.register_file(fresh)
        for node in self._all_nodes(nn) | {"dn000", "dn020"}:
            assert nn.chunks_on_node(node) == _full_scan(nn, node)
        assert nn.chunks_on_node("dn000") == []

    def test_rename_mid_transcode_drops_job(self):
        nn = Namenode()
        meta = file_meta("a")
        nn.register_file(meta)
        target = ECScheme(CodeKind.CC, 12, 15)
        nn.enqueue_transcode("a", target, groups_for(meta, target), 3)
        nn.rename("a", "b")
        # The job was keyed by the old name; keeping it would leave UTM
        # and ATQ entries no worker can ever resolve.
        assert nn.utm == {}
        assert len(nn.atq) == 0
        assert nn.lookup("b").state is FileState.HEALTHY

    def test_unregister_mid_transcode_drops_job(self):
        nn = Namenode()
        meta = file_meta("a")
        nn.register_file(meta)
        target = ECScheme(CodeKind.CC, 12, 15)
        nn.enqueue_transcode("a", target, groups_for(meta, target), 3)
        other = file_meta("keep", stripes=2)
        nn.register_file(other)
        nn.enqueue_transcode("keep", target, groups_for(other, target), 3)
        dropped = nn.unregister_file("a")
        assert dropped.state is FileState.HEALTHY
        assert "a" not in nn.utm and "keep" in nn.utm
        assert all(g.file_name == "keep" for g in nn.atq)


class TestTranscodeLifecycle:
    def _setup(self):
        nn = Namenode()
        meta = file_meta()
        nn.register_file(meta)
        target = ECScheme(CodeKind.CC, 12, 15)
        groups = groups_for(meta, target)
        job = nn.enqueue_transcode("f", target, groups, parities_per_final_stripe=3)
        return nn, meta, target, groups, job

    def test_enqueue_populates_atq_and_utm(self):
        nn, meta, target, groups, job = self._setup()
        assert meta.state is FileState.TRANSCODING
        assert len(nn.atq) == 1
        assert job.total_bits == 3
        assert not job.is_complete()

    def test_double_enqueue_rejected(self):
        nn, meta, target, groups, _ = self._setup()
        with pytest.raises(TranscodeStateError):
            nn.enqueue_transcode("f", target, groups, 3)

    def test_poll_respects_budget(self):
        nn = Namenode()
        meta = file_meta(stripes=8)
        nn.register_file(meta)
        target = ECScheme(CodeKind.CC, 12, 15)
        groups = groups_for(meta, target)
        nn.enqueue_transcode("f", target, groups, 3)
        first = nn.poll_work(max_items=2)
        assert len(first) == 2
        rest = nn.poll_work(max_items=10)
        assert len(rest) == 2

    def test_finalize_requires_all_bits(self):
        nn, meta, target, groups, job = self._setup()
        assert nn.try_finalize("f") is None
        new_stripe = ECStripeMeta(stripe_index=0, k=12, n=15)
        for t in range(12):
            new_stripe.data.append(ChunkMeta(f"n/d{t}", "dn000", ChunkKind.DATA, 64))
        for j in range(3):
            new_stripe.parities.append(ChunkMeta(f"n/p{j}", "dn001", ChunkKind.PARITY, 64))
            nn.complete_parity("f", 0, 0, j, 3)
        nn.record_new_stripe("f", 0, 0, new_stripe)
        old = nn.try_finalize("f")
        assert old is not None and len(old) == 6  # 2 old stripes x 3 parities
        assert meta.scheme == target
        assert meta.state is FileState.HEALTHY
        assert meta.version == 1
        assert [s.k for s in meta.stripes] == [12]

    def test_abort_clears_state_keeps_metadata(self):
        nn, meta, target, groups, job = self._setup()
        nn.complete_parity("f", 0, 0, 0, 3)
        nn.abort_transcode("f")
        assert "f" not in nn.utm
        assert len(nn.atq) == 0
        assert meta.state is FileState.HEALTHY
        assert meta.scheme == ECScheme(CodeKind.CC, 6, 9)  # unchanged

    def test_complete_parity_unknown_file(self):
        nn = Namenode()
        with pytest.raises(TranscodeStateError):
            nn.complete_parity("ghost", 0, 0, 0, 3)

    def test_bitmap_tracks_multi_group_jobs(self):
        nn = Namenode()
        meta = file_meta(stripes=4)
        nn.register_file(meta)
        target = ECScheme(CodeKind.CC, 12, 15)
        groups = groups_for(meta, target)
        job = nn.enqueue_transcode("f", target, groups, 3)
        assert job.total_bits == 6
        for g in range(2):
            for j in range(3):
                nn.complete_parity("f", g, 0, j, 3)
        assert job.is_complete()
