"""§6.1 parity options and the §4.2 spanning-write protocol, functional."""

import numpy as np
import pytest

from repro.core.schemes import CodeKind, ECScheme, HybridScheme
from repro.dfs import MorphFS

KB = 1024
CC69 = ECScheme(CodeKind.CC, 6, 9)


def make_fs(**kwargs):
    return MorphFS(chunk_size=4 * KB, future_widths=[6, 12], **kwargs)


def write(fs, n_kb=48, seed=1):
    data = np.random.default_rng(seed).integers(0, 256, n_kb * KB, dtype=np.uint8)
    fs.write_file("f", data, HybridScheme(1, CC69))
    return data


class TestAsyncDefault:
    def test_striper_pays_encode(self):
        fs = make_fs()
        write(fs)
        assert fs.metrics.node("client").cpu_seconds == 0
        assert fs.metrics.cpu_seconds_total > 0


class TestSyncMode:
    def test_client_pays_encode_and_parity_network(self):
        fs = make_fs(parity_mode="sync")
        data = write(fs)
        assert fs.metrics.node("client").cpu_seconds > 0
        # Parities travel from the client: client net_out includes them
        # in addition to the initial block send.
        client_out = fs.metrics.node("client").net_bytes_out
        assert client_out == pytest.approx(len(data) + 0.5 * len(data))

    def test_same_resting_state_as_async(self):
        sync = make_fs(parity_mode="sync")
        asyn = make_fs(parity_mode="async")
        d1 = write(sync)
        d2 = write(asyn)
        assert sync.capacity_used() == asyn.capacity_used()
        assert np.array_equal(sync.read_file("f"), d1)


class TestNoneMode:
    def test_no_parities_extra_replica(self):
        fs = make_fs(parity_mode="none")
        data = write(fs)
        meta = fs.namenode.lookup("f")
        for stripe in meta.stripes:
            assert stripe.parities == []
        for block in meta.replica_blocks:
            assert len(block.copies) == 2  # c + 1
        # Footprint: 2 replicas + data chunks = 3.0x (same as c+1 rep + stripe).
        assert fs.capacity_used() == pytest.approx(3.0 * len(data))

    def test_reads_and_failures(self):
        fs = make_fs(parity_mode="none")
        data = write(fs)
        meta = fs.namenode.lookup("f")
        victim = meta.stripes[0].data[0].node_id
        fs.cluster.fail_node(victim)
        fs.datanodes[victim].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_no_encode_cpu_anywhere(self):
        fs = make_fs(parity_mode="none")
        write(fs)
        assert fs.metrics.cpu_seconds_total == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_fs(parity_mode="lazy")


class TestSpanningProtocol:
    def test_extra_network_copy(self):
        small = make_fs(spanning_protocol=False)
        spanning = make_fs(spanning_protocol=True)
        d1 = write(small)
        write(spanning)
        # Spanning mirrors 3 full copies before striping: one extra block
        # transfer per stripe versus the 2-mirror small-write variant.
        assert spanning.metrics.net_bytes_total == pytest.approx(
            small.metrics.net_bytes_total + len(d1)
        )

    def test_same_resting_state(self):
        small = make_fs(spanning_protocol=False)
        spanning = make_fs(spanning_protocol=True)
        d = write(small)
        write(spanning)
        assert small.capacity_used() == spanning.capacity_used()
        assert np.array_equal(spanning.read_file("f"), d)

    def test_temporaries_never_hit_disk(self):
        fs = make_fs(spanning_protocol=True)
        data = write(fs)
        assert fs.metrics.disk_bytes_written == pytest.approx(2.5 * len(data))
        assert fs.memory_used() == 0


class TestNoneModeTransition:
    def test_free_transition_seals_stripes_first(self):
        """Dropping replicas must not strand parity-less stripes (§4.5
        is only free when the EC side already exists)."""
        fs = make_fs(parity_mode="none")
        data = write(fs)
        fs.transcode("f", CC69)
        meta = fs.namenode.lookup("f")
        assert meta.replica_blocks == []
        for stripe in meta.stripes:
            assert len(stripe.parities) == 3
        # Full EC protection: any 3 chunk losses of a stripe are fine.
        for chunk in meta.stripes[0].all_chunks()[:3]:
            fs.cluster.fail_node(chunk.node_id)
            fs.datanodes[chunk.node_id].fail()
        assert np.array_equal(fs.read_file("f"), data)

    def test_sealing_costs_parity_writes_only_once(self):
        fs = make_fs(parity_mode="none")
        data = write(fs)
        w0 = fs.metrics.disk_bytes_written
        fs.transcode("f", CC69)
        # 2 stripes x 3 parities of 4 KB each.
        assert fs.metrics.disk_bytes_written - w0 == pytest.approx(6 * 4 * KB)

    def test_open_append_tail_also_sealed(self):
        fs = make_fs()
        data = write(fs, n_kb=24)
        extra = np.random.default_rng(8).integers(0, 256, 10 * KB, dtype=np.uint8)
        fs.append_file("f", extra)
        # Transcode without an explicit close: the open tail gets sealed.
        fs.transcode("f", CC69)
        meta = fs.namenode.lookup("f")
        for stripe in meta.stripes:
            assert len(stripe.parities) == 3
        assert np.array_equal(fs.read_file("f"), np.concatenate([data, extra]))
